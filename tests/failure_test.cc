// Tests for failure injection in the simulator and the recovery experiment driver.
#include <gtest/gtest.h>

#include "src/caps/cost_model.h"
#include "src/caps/greedy.h"
#include "src/controller/failure_experiments.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

TEST(FailureInjectionTest, FailedWorkerStopsProcessing) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  FluidSimulator sim(graph, cluster, GreedyBalancedPlacement(model));
  sim.SetAllSourceRates(10000.0);
  sim.RunFor(30);
  double before = sim.Summarize(sim.time_s() - 15, sim.time_s()).throughput;
  sim.FailWorker(0);
  EXPECT_TRUE(sim.IsWorkerFailed(0));
  sim.RunFor(30);
  double after = sim.Summarize(sim.time_s() - 15, sim.time_s()).throughput;
  EXPECT_NEAR(before, 10000.0, 100.0);
  EXPECT_LT(after, before * 0.8);  // the pipeline stalls behind the dead worker
}

TEST(FailureInjectionTest, RestoreResumesProcessing) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  FluidSimulator sim(graph, cluster, GreedyBalancedPlacement(model));
  sim.SetAllSourceRates(8000.0);
  sim.RunFor(20);
  sim.FailWorker(1);
  sim.RunFor(20);
  sim.RestoreWorker(1);
  EXPECT_FALSE(sim.IsWorkerFailed(1));
  sim.RunFor(40);
  double t = sim.time_s();
  EXPECT_NEAR(sim.Summarize(t - 15, t).throughput, 8000.0, 200.0);
}

TEST(FailureInjectionTest, FailedSourceWorkerStopsEmission) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(5));  // 5 slots: 14 non-source tasks fit on 3
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  // Put both source tasks on worker 3.
  Placement plan(graph.num_tasks());
  int w = 0;
  for (const auto& t : graph.tasks()) {
    plan.Assign(t.id, t.op == 0 ? 3 : (w++ % 3));
  }
  ASSERT_EQ(plan.Validate(graph, cluster), "");
  FluidSimulator sim(graph, cluster, plan);
  sim.SetAllSourceRates(8000.0);
  sim.RunFor(20);
  sim.FailWorker(3);
  sim.RunFor(20);
  double t = sim.time_s();
  EXPECT_LT(sim.Summarize(t - 10, t).throughput, 100.0);
}

TEST(FailureRecoveryTest, CapsRecoversToTarget) {
  Cluster cluster(6, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  FailureExperimentOptions options;
  options.policy = PlacementPolicy::kCaps;
  options.fail_at_s = 60.0;
  options.run_s = 240.0;
  FailureRun run = RunFailureRecoveryExperiment(q, cluster, options);
  EXPECT_NEAR(run.throughput_before, q.TotalTargetRate(), q.TotalTargetRate() * 0.05);
  EXPECT_LT(run.throughput_during, run.throughput_before);
  EXPECT_TRUE(run.recovered);
  EXPECT_GT(run.recovery_time_s, 0.0);
  EXPECT_NEAR(run.throughput_after, q.TotalTargetRate(), q.TotalTargetRate() * 0.05);
}

TEST(FailureRecoveryTest, VictimIsBusiestWorker) {
  Cluster cluster(6, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  FailureExperimentOptions options;
  options.fail_at_s = 30.0;
  options.run_s = 120.0;
  FailureRun run = RunFailureRecoveryExperiment(q, cluster, options);
  EXPECT_GE(run.victim, 0);
  EXPECT_LT(run.victim, cluster.num_workers());
  ASSERT_FALSE(run.timeline.empty());
  // Timeline is monotone and covers the full run.
  double prev = 0.0;
  for (const auto& p : run.timeline) {
    EXPECT_GT(p.time_s, prev);
    prev = p.time_s;
  }
  EXPECT_GE(prev, options.run_s - 10.0);
}

}  // namespace
}  // namespace capsys
