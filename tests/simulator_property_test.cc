// Parameterized property tests for the fluid simulator across all six evaluation queries:
// conservation, rate tracking below saturation, backpressure beyond saturation, utilization
// bounds, and placement-quality ordering.
#include <gtest/gtest.h>

#include <string>

#include "src/caps/cost_model.h"
#include "src/caps/greedy.h"
#include "src/baselines/flink_strategies.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

struct QueryFixture {
  QuerySpec q;
  Cluster cluster{4, WorkerSpec::M5d2xlarge(8)};
  PhysicalGraph graph;
  Placement balanced;

  explicit QueryFixture(const std::string& name) : q(BuildQueryByName(name)) {
    q.ScaleRates(2.0);
    graph = PhysicalGraph::Expand(q.graph);
    CostModel model(graph, cluster, TaskDemands(graph, PropagateRates(q.graph, q.source_rates)));
    balanced = GreedyBalancedPlacement(model);
  }
};

class QuerySweep : public ::testing::TestWithParam<std::string> {};

TEST_P(QuerySweep, HalfRateRunsWithoutBackpressure) {
  QueryFixture s(GetParam());
  FluidSimulator sim(s.graph, s.cluster, s.balanced);
  double total = 0.0;
  for (const auto& [op, r] : s.q.source_rates) {
    sim.SetSourceRate(op, r * 0.5);
    total += r * 0.5;
  }
  QuerySummary summary = sim.RunMeasured(40, 80);
  EXPECT_NEAR(summary.throughput, total, total * 0.02) << GetParam();
  EXPECT_LT(summary.backpressure, 0.01) << GetParam();
}

TEST_P(QuerySweep, TripleRateSaturates) {
  QueryFixture s(GetParam());
  FluidSimulator sim(s.graph, s.cluster, s.balanced);
  double total = 0.0;
  for (const auto& [op, r] : s.q.source_rates) {
    sim.SetSourceRate(op, r * 3.0);
    total += r * 3.0;
  }
  QuerySummary summary = sim.RunMeasured(40, 80);
  EXPECT_LT(summary.throughput, total * 0.999) << GetParam();
}

TEST_P(QuerySweep, SinkRateMatchesSelectivityProduct) {
  QueryFixture s(GetParam());
  FluidSimulator sim(s.graph, s.cluster, s.balanced);
  for (const auto& [op, r] : s.q.source_rates) {
    sim.SetSourceRate(op, r * 0.5);
  }
  sim.RunFor(120);
  double t = sim.time_s();
  // Expected sink arrival = sum over sinks of their propagated input rates.
  std::map<OperatorId, double> half_rates;
  for (const auto& [op, r] : s.q.source_rates) {
    half_rates[op] = r * 0.5;
  }
  auto rates = PropagateRates(s.q.graph, half_rates);
  double expected = 0.0;
  for (OperatorId sink : s.q.graph.SinkIds()) {
    expected += rates[static_cast<size_t>(sink)].input_rate;
  }
  double measured = 0.0;
  for (OperatorId sink : s.q.graph.SinkIds()) {
    measured += sim.OperatorInputRate(sink, t - 40, t);
  }
  EXPECT_NEAR(measured, expected, expected * 0.03 + 1.0) << GetParam();
}

TEST_P(QuerySweep, UtilizationAlwaysBounded) {
  QueryFixture s(GetParam());
  FluidSimulator sim(s.graph, s.cluster, s.balanced);
  for (const auto& [op, r] : s.q.source_rates) {
    sim.SetSourceRate(op, r * 3.0);  // overloaded on purpose
  }
  sim.RunFor(60);
  for (WorkerId w = 0; w < s.cluster.num_workers(); ++w) {
    for (const char* metric : {"cpu_util", "io_util", "net_util"}) {
      double u = sim.metrics().MeanSinceOr(WorkerMetric(w, metric), 0.0, 0.0);
      EXPECT_GE(u, -1e-9) << GetParam() << " " << metric;
      EXPECT_LE(u, 1.0 + 1e-9) << GetParam() << " " << metric;
    }
  }
}

TEST_P(QuerySweep, BalancedPlanBeatsWorstDefaultSeed) {
  QueryFixture s(GetParam());
  // Find the worst of a few default-policy plans and compare against balanced.
  double worst = 1e300;
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(seed);
    Placement plan = FlinkDefaultPlacement(s.graph, s.cluster, rng);
    FluidSimulator sim(s.graph, s.cluster, plan);
    for (const auto& [op, r] : s.q.source_rates) {
      sim.SetSourceRate(op, r);
    }
    worst = std::min(worst, sim.RunMeasured(40, 80).throughput);
  }
  FluidSimulator sim(s.graph, s.cluster, s.balanced);
  for (const auto& [op, r] : s.q.source_rates) {
    sim.SetSourceRate(op, r);
  }
  double balanced = sim.RunMeasured(40, 80).throughput;
  EXPECT_GE(balanced + 1.0, worst) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllQueries, QuerySweep,
                         ::testing::Values("q1", "q2", "q3", "q4", "q5", "q6"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           return info.param;
                         });

}  // namespace
}  // namespace capsys
