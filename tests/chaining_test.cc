// Tests for operator chaining (src/dataflow/chaining.h) and the partitioned placement
// search (src/caps/partitioned.h).
#include <gtest/gtest.h>

#include "src/caps/cost_model.h"
#include "src/caps/partitioned.h"
#include "src/caps/search.h"
#include "src/dataflow/chaining.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

OperatorProfile Prof(double cpu_us, double io, double out, double sel, double gc = 0.0) {
  OperatorProfile p;
  p.cpu_per_record = cpu_us * 1e-6;
  p.io_bytes_per_record = io;
  p.out_bytes_per_record = out;
  p.selectivity = sel;
  p.stateful = io > 0;
  p.gc_spike_fraction = gc;
  return p;
}

// src -> map1 -> map2 -> window -> sink, all rebalance, equal parallelism except the window
// boundary (hash).
LogicalGraph ChainableGraph() {
  LogicalGraph g("chainable");
  OperatorId src = g.AddOperator("src", OperatorKind::kSource, Prof(10, 0, 100, 1.0), 2);
  OperatorId m1 = g.AddOperator("m1", OperatorKind::kMap, Prof(20, 0, 120, 0.5), 4);
  OperatorId m2 = g.AddOperator("m2", OperatorKind::kFilter, Prof(40, 0, 80, 0.5), 4);
  OperatorId win = g.AddOperator("win", OperatorKind::kSlidingWindow, Prof(100, 5000, 60, 0.1), 4);
  OperatorId sink = g.AddOperator("sink", OperatorKind::kSink, Prof(5, 0, 0, 1.0), 1);
  g.AddEdge(src, m1, PartitionScheme::kRebalance);
  g.AddEdge(m1, m2, PartitionScheme::kRebalance);
  g.AddEdge(m2, win, PartitionScheme::kHash);
  g.AddEdge(win, sink, PartitionScheme::kRebalance);
  return g;
}

TEST(ChainingTest, FusesLinearRebalanceSegments) {
  ChainingResult r = ChainOperators(ChainableGraph());
  // m1->m2 fuse; the hash edge to win and the parallelism change win(4)->sink(1) block the
  // rest; sources are never chained.
  EXPECT_EQ(r.graph.num_operators(), 4);
  EXPECT_EQ(r.chain_of[1], r.chain_of[2]);  // m1 and m2 share a chain
  EXPECT_NE(r.chain_of[0], r.chain_of[1]);
  EXPECT_NE(r.chain_of[2], r.chain_of[3]);
  EXPECT_EQ(r.graph.Validate(), "");
}

TEST(ChainingTest, ChainProfileComposesCosts) {
  ChainingResult r = ChainOperators(ChainableGraph());
  const auto& chain = r.graph.op(r.chain_of[1]);
  // Per chain-input record: m1 runs once (20us), m2 runs sel(m1)=0.5 times (40us * 0.5).
  EXPECT_NEAR(chain.profile.cpu_per_record, 20e-6 + 0.5 * 40e-6, 1e-12);
  // Chain selectivity = 0.5 * 0.5.
  EXPECT_NEAR(chain.profile.selectivity, 0.25, 1e-12);
  // Output record size comes from the last operator in the chain.
  EXPECT_EQ(chain.profile.out_bytes_per_record, 80.0);
  EXPECT_EQ(chain.parallelism, 4);
  EXPECT_EQ(chain.name, "m1->m2");
}

TEST(ChainingTest, RatePropagationEquivalentAfterChaining) {
  LogicalGraph g = ChainableGraph();
  ChainingResult r = ChainOperators(g);
  auto before = PropagateRates(g, 1000.0);
  auto after = PropagateRates(r.graph, 1000.0);
  // The window's input rate is unchanged by fusing its upstream chain.
  OperatorId win_after = r.chain_of[3];
  EXPECT_NEAR(after[static_cast<size_t>(win_after)].input_rate, before[3].input_rate, 1e-9);
  EXPECT_NEAR(after[static_cast<size_t>(win_after)].output_rate, before[3].output_rate, 1e-9);
}

TEST(ChainingTest, HashEdgesNeverChain) {
  LogicalGraph g("hash");
  OperatorId a = g.AddOperator("a", OperatorKind::kSource, Prof(10, 0, 100, 1.0), 2);
  OperatorId b = g.AddOperator("b", OperatorKind::kMap, Prof(10, 0, 100, 1.0), 2);
  g.AddEdge(a, b, PartitionScheme::kHash);
  ChainingResult r = ChainOperators(g);
  EXPECT_EQ(r.graph.num_operators(), 2);
}

TEST(ChainingTest, ParallelismMismatchBlocksChain) {
  LogicalGraph g("mismatch");
  OperatorId a = g.AddOperator("a", OperatorKind::kMap, Prof(10, 0, 100, 1.0), 2);
  OperatorId b = g.AddOperator("b", OperatorKind::kMap, Prof(10, 0, 100, 1.0), 3);
  g.AddEdge(a, b, PartitionScheme::kRebalance);
  ChainingResult r = ChainOperators(g);
  EXPECT_EQ(r.graph.num_operators(), 2);
}

TEST(ChainingTest, FanOutBlocksChain) {
  LogicalGraph g("fan");
  OperatorId a = g.AddOperator("a", OperatorKind::kMap, Prof(10, 0, 100, 1.0), 2);
  OperatorId b = g.AddOperator("b", OperatorKind::kMap, Prof(10, 0, 100, 1.0), 2);
  OperatorId c = g.AddOperator("c", OperatorKind::kMap, Prof(10, 0, 100, 1.0), 2);
  g.AddEdge(a, b, PartitionScheme::kRebalance);
  g.AddEdge(a, c, PartitionScheme::kRebalance);
  ChainingResult r = ChainOperators(g);
  EXPECT_EQ(r.graph.num_operators(), 3);
}

TEST(ChainingTest, GcFractionIsCpuWeighted) {
  LogicalGraph g("gc");
  OperatorId a = g.AddOperator("a", OperatorKind::kMap, Prof(100, 0, 100, 1.0, 0.4), 2);
  OperatorId b = g.AddOperator("b", OperatorKind::kMap, Prof(300, 0, 100, 1.0, 0.0), 2);
  g.AddEdge(a, b, PartitionScheme::kRebalance);
  ChainingResult r = ChainOperators(g);
  ASSERT_EQ(r.graph.num_operators(), 1);
  // gc = (100us * 0.4) / 400us = 0.1.
  EXPECT_NEAR(r.graph.op(0).profile.gc_spike_fraction, 0.1, 1e-12);
}

TEST(ChainingTest, SearchWorksOnChainedGraph) {
  ChainingResult r = ChainOperators(ChainableGraph());
  PhysicalGraph physical = PhysicalGraph::Expand(r.graph);
  Cluster cluster(3, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(r.graph, 1000.0);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  SearchResult result = CapsSearch(model, SearchOptions{}).Run();
  ASSERT_TRUE(result.found);
  EXPECT_EQ(result.best.placement.Validate(physical, cluster), "");
}

// --- Partitioned search --------------------------------------------------------------------------

TEST(PartitionedTest, ProducesValidPlacementCoveringAllTasks) {
  QuerySpec q = BuildQ2Join();
  q.graph.SetParallelism({2, 2, 4, 6, 10});
  Cluster cluster(8, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  auto demands = TaskDemands(physical, rates);
  PartitionedOptions options;
  options.num_partitions = 2;
  PartitionedResult r = PartitionedPlacementSearch(physical, cluster, demands, options);
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.placement.Validate(physical, cluster), "");
  EXPECT_EQ(r.partitions.size(), 2u);
  // Every operator appears in exactly one partition.
  std::vector<int> seen(static_cast<size_t>(q.graph.num_operators()), 0);
  for (const auto& part : r.partitions) {
    for (OperatorId o : part) {
      ++seen[static_cast<size_t>(o)];
    }
  }
  for (int s : seen) {
    EXPECT_EQ(s, 1);
  }
}

TEST(PartitionedTest, PartitionsUseDisjointWorkers) {
  QuerySpec q = BuildQ2Join();
  q.graph.SetParallelism({2, 2, 4, 6, 10});
  Cluster cluster(8, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  auto demands = TaskDemands(physical, rates);
  PartitionedOptions options;
  options.num_partitions = 2;
  PartitionedResult r = PartitionedPlacementSearch(physical, cluster, demands, options);
  ASSERT_TRUE(r.found);
  // Workers of partition-0 operators never host partition-1 tasks.
  std::vector<int> partition_of_op(static_cast<size_t>(q.graph.num_operators()), -1);
  for (size_t pi = 0; pi < r.partitions.size(); ++pi) {
    for (OperatorId o : r.partitions[pi]) {
      partition_of_op[static_cast<size_t>(o)] = static_cast<int>(pi);
    }
  }
  std::vector<int> worker_partition(static_cast<size_t>(cluster.num_workers()), -1);
  for (const auto& t : physical.tasks()) {
    int pi = partition_of_op[static_cast<size_t>(t.op)];
    WorkerId w = r.placement.WorkerOf(t.id);
    if (worker_partition[static_cast<size_t>(w)] == -1) {
      worker_partition[static_cast<size_t>(w)] = pi;
    } else {
      EXPECT_EQ(worker_partition[static_cast<size_t>(w)], pi);
    }
  }
}

TEST(PartitionedTest, InfeasibleWhenPartitionsNeedMoreWorkersThanExist) {
  QuerySpec q = BuildQ2Join();
  q.graph.SetParallelism({4, 4, 4, 4, 4});  // 20 tasks
  Cluster cluster(5, WorkerSpec::R5dXlarge(4));  // exactly 20 slots, no slack
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  auto demands = TaskDemands(physical, rates);
  PartitionedOptions options;
  options.num_partitions = 5;  // per-partition ceilings exceed the 5 workers
  PartitionedResult r = PartitionedPlacementSearch(physical, cluster, demands, options);
  // Either a valid plan (if ceilings happen to fit) or a clean infeasibility — never a
  // malformed placement.
  if (r.found) {
    EXPECT_EQ(r.placement.Validate(physical, cluster), "");
  }
}

TEST(PartitionedTest, SinglePartitionMatchesWholeGraphQuality) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  auto demands = TaskDemands(physical, rates);
  PartitionedOptions options;
  options.num_partitions = 1;
  PartitionedResult r = PartitionedPlacementSearch(physical, cluster, demands, options);
  ASSERT_TRUE(r.found);
  CostModel model(physical, cluster, demands);
  // A single partition is just CAPS with auto-tuned thresholds: the io cost (the dominant
  // dimension for Q1) must be near the global optimum.
  SearchResult full = CapsSearch(model, SearchOptions{}).Run();
  EXPECT_LE(model.Cost(r.placement).io, full.best.cost.io + 0.35);
}

}  // namespace
}  // namespace capsys
