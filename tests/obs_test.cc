// Tests for the observability subsystem: span tracing (nesting, attributes, thread
// safety, disabled fast path), the structured event log and its typed emitters, the
// Chrome-trace / JSON-lines exporters, the telemetry bundle writer, and an end-to-end
// chaos run validating that the control plane actually emits the records the bundle
// promises.
#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "src/controller/chaos_experiments.h"
#include "src/nexmark/queries.h"
#include "src/obs/events.h"
#include "src/obs/exporters.h"
#include "src/obs/json_util.h"
#include "src/obs/trace.h"

namespace capsys {
namespace {

// The tracer and event log are process-global; each test starts from a clean, enabled
// state and leaves both disabled for whoever runs next.
class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Global().Enable();
    Tracer::Global().Reset();
    EventLog::Global().Enable();
    EventLog::Global().Reset();
  }
  void TearDown() override {
    Tracer::Global().Disable();
    Tracer::Global().Reset();
    EventLog::Global().Disable();
    EventLog::Global().Reset();
  }
};

TEST_F(ObsTest, DisabledTracerRecordsNothing) {
  Tracer::Global().Disable();
  {
    Span s("noop");
    EXPECT_FALSE(s.active());
    s.AddAttr("ignored", 1);  // must be a safe no-op
  }
  EXPECT_EQ(Tracer::Global().SpanCount(), 0u);
}

TEST_F(ObsTest, SpansNestViaThreadLocalStack) {
  {
    Span outer("outer");
    EXPECT_TRUE(outer.active());
    {
      Span inner("inner");
      Span sibling_child("child_of_inner");
    }
    Span second("second_child");
  }
  auto spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 4u);
  // Spans are recorded at destruction: child_of_inner, inner, second_child, outer.
  const SpanRecord* outer = nullptr;
  const SpanRecord* inner = nullptr;
  const SpanRecord* grandchild = nullptr;
  const SpanRecord* second = nullptr;
  for (const auto& s : spans) {
    if (s.name == "outer") outer = &s;
    if (s.name == "inner") inner = &s;
    if (s.name == "child_of_inner") grandchild = &s;
    if (s.name == "second_child") second = &s;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(grandchild, nullptr);
  ASSERT_NE(second, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(inner->parent, outer->id);
  EXPECT_EQ(grandchild->parent, inner->id);
  EXPECT_EQ(second->parent, outer->id);
  // Same thread -> same logical tid; timing is sane.
  EXPECT_EQ(outer->tid, inner->tid);
  EXPECT_GE(inner->start_us, outer->start_us);
  EXPECT_GE(outer->dur_us, inner->dur_us);
}

TEST_F(ObsTest, AttributesStringifyByType) {
  {
    Span s("attrs");
    s.AddAttr("str", std::string("hello"));
    s.AddAttr("cstr", "world");
    s.AddAttr("int", 42);
    s.AddAttr("dbl", 2.5);
  }
  auto spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  ASSERT_EQ(spans[0].attrs.size(), 4u);
  EXPECT_EQ(spans[0].attrs[0], (std::pair<std::string, std::string>{"str", "hello"}));
  EXPECT_EQ(spans[0].attrs[1].second, "world");
  EXPECT_EQ(spans[0].attrs[2].second, "42");
  EXPECT_EQ(spans[0].attrs[3].first, "dbl");
  EXPECT_DOUBLE_EQ(std::stod(spans[0].attrs[3].second), 2.5);
}

TEST_F(ObsTest, ConcurrentSpansAllRecorded) {
  constexpr int kThreads = 8;
  constexpr int kSpansPerThread = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < kSpansPerThread; ++i) {
        Span root("thread_root");
        Span child("thread_child");
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  auto spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), static_cast<size_t>(kThreads * kSpansPerThread * 2));
  std::set<uint64_t> ids;
  std::set<int> tids;
  for (const auto& s : spans) {
    ids.insert(s.id);
    tids.insert(s.tid);
    if (s.name == "thread_root") {
      EXPECT_EQ(s.parent, 0u);  // nesting never leaks across threads
    } else {
      EXPECT_NE(s.parent, 0u);
    }
  }
  EXPECT_EQ(ids.size(), spans.size());  // ids unique
  EXPECT_EQ(tids.size(), static_cast<size_t>(kThreads));
}

TEST_F(ObsTest, ResetDropsSpansAndRestartsEpoch) {
  { Span s("before"); }
  EXPECT_EQ(Tracer::Global().SpanCount(), 1u);
  Tracer::Global().Reset();
  EXPECT_EQ(Tracer::Global().SpanCount(), 0u);
  { Span s("after"); }
  auto spans = Tracer::Global().Snapshot();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_LT(spans[0].start_us, 1e6);  // started well under a second after the new epoch
}

TEST_F(ObsTest, EventLogTypedEmitters) {
  EventLog::Global().set_now(12.5);
  EXPECT_DOUBLE_EQ(EventLog::Global().now(), 12.5);
  EmitPlacementDecision(12.5, "capsys", 16, 4, ResourceVector{0.9, 0.8, 0.7},
                        ResourceVector{0.1, 0.2, 0.3}, 0.25);
  EmitFaultInjected(13.0, "crash", 2, 0.0);
  EmitWorkerDeclaredDead(14.0, 2, true);
  EmitMetricDropout(15.0, "op.1.emit_rate", 1.0);
  EXPECT_EQ(EventLog::Global().Count(), 4u);
  EXPECT_EQ(EventLog::Global().CountOf(EventType::kPlacementDecision), 1u);
  EXPECT_EQ(EventLog::Global().CountOf(EventType::kFaultInjected), 1u);
  EXPECT_EQ(EventLog::Global().CountOf(EventType::kScaleDecision), 0u);

  auto events = EventLog::Global().Snapshot();
  EXPECT_EQ(events[0].type, EventType::kPlacementDecision);
  EXPECT_DOUBLE_EQ(events[0].time_s, 12.5);
  std::string json = events[0].ToJson();
  EXPECT_NE(json.find("\"type\":\"PlacementDecision\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"policy\":\"capsys\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"tasks\":16"), std::string::npos) << json;  // numbers unquoted
  // Four lines of JSON, one per event.
  std::string lines = EventLog::Global().ToJsonLines();
  EXPECT_EQ(std::count(lines.begin(), lines.end(), '\n'), 4);
  std::istringstream in(lines);
  std::string line;
  while (std::getline(in, line)) {
    EXPECT_EQ(line.front(), '{');
    EXPECT_EQ(line.back(), '}');
  }
}

TEST_F(ObsTest, DisabledEventLogDropsEmits) {
  EventLog::Global().Disable();
  EmitFaultInjected(1.0, "crash", 0, 0.0);
  EmitBackpressureOnset(2.0, 0.9);
  EXPECT_EQ(EventLog::Global().Count(), 0u);
}

TEST_F(ObsTest, ChromeTraceJsonShape) {
  {
    Span outer("deploy \"q1\"");  // name needing escaping
    outer.AddAttr("tasks", 16);
    outer.AddAttr("policy", "capsys");
    Span inner("search");
  }
  std::string json = ChromeTraceJson(Tracer::Global().Snapshot());
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"deploy \\\"q1\\\"\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"tasks\":16"), std::string::npos);          // numeric attr unquoted
  EXPECT_NE(json.find("\"policy\":\"capsys\""), std::string::npos); // string attr quoted
  EXPECT_NE(json.find("\"parent_id\":"), std::string::npos);
  // Braces/brackets balance (cheap well-formedness check; no JSON parser available).
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'), std::count(json.begin(), json.end(), '}'));
  EXPECT_EQ(std::count(json.begin(), json.end(), '['), std::count(json.begin(), json.end(), ']'));
}

TEST_F(ObsTest, JsonUtilClassifiesNumbers) {
  EXPECT_TRUE(IsJsonNumber("42"));
  EXPECT_TRUE(IsJsonNumber("-1.5e3"));
  EXPECT_FALSE(IsJsonNumber(""));
  EXPECT_FALSE(IsJsonNumber("+1"));
  EXPECT_FALSE(IsJsonNumber(".5"));
  EXPECT_FALSE(IsJsonNumber("0x10"));
  EXPECT_FALSE(IsJsonNumber("nan"));
  EXPECT_FALSE(IsJsonNumber("12abc"));
  EXPECT_EQ(JsonNumber(1.0 / 0.0), "null");
  EXPECT_EQ(JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

// --- End-to-end: a chaos run produces the telemetry the bundle promises ---------------------

TEST_F(ObsTest, ChaosRunEmitsDecisionsFaultsAndNestedSpans) {
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  FaultSchedule schedule;
  schedule.Crash(20.0, 1).Restore(60.0, 1);
  ChaosExperimentOptions options;
  options.policy = PlacementPolicy::kCaps;  // so controller.place nests the CAPS search
  options.run_s = 90.0;
  options.seed = 3;
  options.search_threads = 1;
  ChaosRun run = RunChaosExperiment(q, cluster, schedule, options);

  // Structured events: at least the initial placement and the injected crash/restore.
  EventLog& log = EventLog::Global();
  EXPECT_GE(log.CountOf(EventType::kPlacementDecision), 1u);
  EXPECT_GE(log.CountOf(EventType::kFaultInjected), 2u);
  bool saw_crash = false;
  for (const Event& e : log.Snapshot()) {
    if (e.type != EventType::kFaultInjected) {
      continue;
    }
    for (const auto& [key, value] : e.fields) {
      if (key == "kind" && value == "crash") {
        saw_crash = true;
        EXPECT_DOUBLE_EQ(e.time_s, 20.0);
      }
    }
    if (saw_crash) break;
  }
  EXPECT_TRUE(saw_crash);

  // Spans: the chaos driver, the placement pipeline, and the search nested inside it.
  auto spans = Tracer::Global().Snapshot();
  const SpanRecord* place = nullptr;
  const SpanRecord* search = nullptr;
  bool saw_chaos_root = false;
  for (const auto& s : spans) {
    if (s.name == "controller.place" && place == nullptr) place = &s;
    if (s.name == "caps.search.run" && search == nullptr) search = &s;
    if (s.name == "chaos.run") saw_chaos_root = true;
  }
  EXPECT_TRUE(saw_chaos_root);
  ASSERT_NE(place, nullptr);
  ASSERT_NE(search, nullptr);
  EXPECT_NE(place->parent, 0u);   // nested under controller.deploy / chaos.run
  EXPECT_NE(search->parent, 0u);  // nested under controller.place

  // Driver telemetry: the timeline gauges and at least one replan-latency observation.
  EXPECT_NE(run.telemetry.Find("chaos.0.throughput"), nullptr);
  const Histogram* replan = run.telemetry.FindHistogram("chaos.0.replan_seconds");
  ASSERT_NE(replan, nullptr);
  EXPECT_GE(replan->Count(), 1u);

  // Bundle: all four artifacts land on disk and the prom dump parses line-by-line.
  std::string dir = ::testing::TempDir() + "capsys_obs_bundle";
  std::filesystem::remove_all(dir);
  std::string error;
  ASSERT_TRUE(WriteTelemetryBundle(dir, &run.telemetry, &error)) << error;
  for (const char* file : {"metrics.prom", "metrics.json", "trace.json", "events.jsonl"}) {
    std::ifstream in(dir + "/" + file);
    ASSERT_TRUE(in.good()) << file;
    std::stringstream buf;
    buf << in.rdbuf();
    EXPECT_FALSE(buf.str().empty()) << file;
  }
  std::ifstream prom(dir + "/metrics.prom");
  std::string line;
  int sample_lines = 0;
  while (std::getline(prom, line)) {
    if (line.empty() || line[0] == '#') {
      continue;
    }
    size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    EXPECT_NO_THROW(std::stod(line.substr(space + 1))) << line;
    ++sample_lines;
  }
  EXPECT_GT(sample_lines, 0);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace capsys
