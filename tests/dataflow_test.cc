// Tests for src/dataflow: logical graphs, physical expansion, rate propagation, and
// placement plans.
#include <gtest/gtest.h>

#include <set>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/dataflow/logical_graph.h"
#include "src/dataflow/physical_graph.h"
#include "src/dataflow/placement.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

OperatorProfile SimpleProfile(double selectivity = 1.0) {
  OperatorProfile p;
  p.cpu_per_record = 1e-5;
  p.out_bytes_per_record = 100;
  p.selectivity = selectivity;
  return p;
}

LogicalGraph Diamond() {
  // src -> {a, b} -> sink
  LogicalGraph g("diamond");
  OperatorId src = g.AddOperator("src", OperatorKind::kSource, SimpleProfile(), 2);
  OperatorId a = g.AddOperator("a", OperatorKind::kMap, SimpleProfile(0.5), 3);
  OperatorId b = g.AddOperator("b", OperatorKind::kFilter, SimpleProfile(0.25), 2);
  OperatorId sink = g.AddOperator("sink", OperatorKind::kSink, SimpleProfile(), 1);
  g.AddEdge(src, a);
  g.AddEdge(src, b);
  g.AddEdge(a, sink);
  g.AddEdge(b, sink);
  return g;
}

// --- LogicalGraph ----------------------------------------------------------------------------

TEST(LogicalGraphTest, TopologicalOrderRespectsEdges) {
  LogicalGraph g = Diamond();
  auto order = g.TopologicalOrder();
  ASSERT_EQ(order.size(), 4u);
  std::vector<int> pos(4);
  for (size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<size_t>(order[i])] = static_cast<int>(i);
  }
  for (const auto& e : g.edges()) {
    EXPECT_LT(pos[static_cast<size_t>(e.from)], pos[static_cast<size_t>(e.to)]);
  }
}

TEST(LogicalGraphTest, SourcesAndSinks) {
  LogicalGraph g = Diamond();
  EXPECT_EQ(g.SourceIds(), std::vector<OperatorId>{0});
  EXPECT_EQ(g.SinkIds(), std::vector<OperatorId>{3});
}

TEST(LogicalGraphTest, UpstreamsDownstreams) {
  LogicalGraph g = Diamond();
  EXPECT_EQ(g.Downstreams(0).size(), 2u);
  EXPECT_EQ(g.Upstreams(3).size(), 2u);
  EXPECT_EQ(g.Upstreams(0).size(), 0u);
}

TEST(LogicalGraphTest, ValidateDetectsCycle) {
  LogicalGraph g("cyclic");
  OperatorId a = g.AddOperator("a", OperatorKind::kMap, SimpleProfile(), 1);
  OperatorId b = g.AddOperator("b", OperatorKind::kMap, SimpleProfile(), 1);
  g.AddEdge(a, b);
  g.AddEdge(b, a);
  EXPECT_NE(g.Validate(), "");
}

TEST(LogicalGraphTest, ValidateDetectsForwardParallelismMismatch) {
  LogicalGraph g("fwd");
  OperatorId a = g.AddOperator("a", OperatorKind::kSource, SimpleProfile(), 2);
  OperatorId b = g.AddOperator("b", OperatorKind::kMap, SimpleProfile(), 3);
  g.AddEdge(a, b, PartitionScheme::kForward);
  EXPECT_NE(g.Validate(), "");
  g.SetParallelism(b, 2);
  EXPECT_EQ(g.Validate(), "");
}

TEST(LogicalGraphTest, ValidateEmptyGraph) {
  LogicalGraph g("empty");
  EXPECT_NE(g.Validate(), "");
}

TEST(LogicalGraphTest, TotalParallelism) {
  LogicalGraph g = Diamond();
  EXPECT_EQ(g.total_parallelism(), 8);
  g.SetParallelism(0, 5);
  EXPECT_EQ(g.total_parallelism(), 11);
}

TEST(LogicalGraphTest, SetParallelismVector) {
  LogicalGraph g = Diamond();
  g.SetParallelism({1, 1, 1, 1});
  EXPECT_EQ(g.total_parallelism(), 4);
}

TEST(LogicalGraphTest, MergeProducesDisjointUnion) {
  LogicalGraph a = Diamond();
  LogicalGraph b = Diamond();
  size_t a_edges = a.edges().size();
  OperatorId offset = a.Merge(b);
  EXPECT_EQ(offset, 4);
  EXPECT_EQ(a.num_operators(), 8);
  EXPECT_EQ(a.edges().size(), a_edges * 2);
  EXPECT_EQ(a.Validate(), "");
  // Merged copy's edges reference the offset ids.
  EXPECT_EQ(a.SourceIds().size(), 2u);
}

// --- PhysicalGraph ---------------------------------------------------------------------------

TEST(PhysicalGraphTest, TaskCountsMatchParallelism) {
  LogicalGraph g = Diamond();
  PhysicalGraph p = PhysicalGraph::Expand(g);
  EXPECT_EQ(p.num_tasks(), 8);
  for (const auto& op : g.operators()) {
    EXPECT_EQ(static_cast<int>(p.TasksOf(op.id).size()), op.parallelism);
  }
}

TEST(PhysicalGraphTest, HashEdgesAreAllToAll) {
  LogicalGraph g = Diamond();
  PhysicalGraph p = PhysicalGraph::Expand(g);
  // src(2) -> a(3): 6, src(2) -> b(2): 4, a(3) -> sink(1): 3, b(2) -> sink(1): 2.
  EXPECT_EQ(p.num_channels(), 6 + 4 + 3 + 2);
}

TEST(PhysicalGraphTest, ForwardEdgesAreOneToOne) {
  LogicalGraph g("fwd");
  OperatorId a = g.AddOperator("a", OperatorKind::kSource, SimpleProfile(), 3);
  OperatorId b = g.AddOperator("b", OperatorKind::kMap, SimpleProfile(), 3);
  g.AddEdge(a, b, PartitionScheme::kForward);
  PhysicalGraph p = PhysicalGraph::Expand(g);
  EXPECT_EQ(p.num_channels(), 3);
  for (const auto& c : p.channels()) {
    EXPECT_EQ(p.task(c.from).index, p.task(c.to).index);
  }
}

TEST(PhysicalGraphTest, DownstreamChannelsConsistent) {
  LogicalGraph g = Diamond();
  PhysicalGraph p = PhysicalGraph::Expand(g);
  size_t total = 0;
  for (const auto& t : p.tasks()) {
    for (ChannelId c : p.DownstreamChannels(t.id)) {
      EXPECT_EQ(p.channel(c).from, t.id);
    }
    for (ChannelId c : p.UpstreamChannels(t.id)) {
      EXPECT_EQ(p.channel(c).to, t.id);
    }
    total += p.DownstreamChannels(t.id).size();
  }
  EXPECT_EQ(total, static_cast<size_t>(p.num_channels()));
}

TEST(PhysicalGraphTest, SinkTasksHaveNoDownstream) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph p = PhysicalGraph::Expand(q.graph);
  for (TaskId t : p.TasksOf(3)) {  // sink
    EXPECT_TRUE(p.DownstreamChannels(t).empty());
  }
}

// Property: expansion of random valid graphs preserves structural invariants.
TEST(PhysicalGraphTest, RandomGraphExpansionInvariants) {
  Rng rng(101);
  for (int trial = 0; trial < 30; ++trial) {
    LogicalGraph g("rand");
    int ops = static_cast<int>(rng.UniformInt(2, 6));
    for (int i = 0; i < ops; ++i) {
      g.AddOperator(
          "op" + std::to_string(i),
          i == 0 ? OperatorKind::kSource : OperatorKind::kMap, SimpleProfile(),
          static_cast<int>(rng.UniformInt(1, 4)));
    }
    // Random forward-only DAG edges i -> j (i < j).
    for (int i = 0; i < ops; ++i) {
      for (int j = i + 1; j < ops; ++j) {
        if (rng.Bernoulli(0.4)) {
          g.AddEdge(i, j, PartitionScheme::kHash);
        }
      }
    }
    if (!g.Validate().empty()) {
      continue;
    }
    PhysicalGraph p = PhysicalGraph::Expand(g);
    EXPECT_EQ(p.num_tasks(), g.total_parallelism());
    int expected_channels = 0;
    for (const auto& e : g.edges()) {
      expected_channels += g.op(e.from).parallelism * g.op(e.to).parallelism;
    }
    EXPECT_EQ(p.num_channels(), expected_channels);
  }
}

// --- Rates -----------------------------------------------------------------------------------

TEST(RatesTest, LinearChainPropagation) {
  LogicalGraph g("chain");
  OperatorId a = g.AddOperator("a", OperatorKind::kSource, SimpleProfile(1.0), 1);
  OperatorId b = g.AddOperator("b", OperatorKind::kMap, SimpleProfile(0.5), 2);
  OperatorId c = g.AddOperator("c", OperatorKind::kSink, SimpleProfile(2.0), 1);
  g.AddEdge(a, b);
  g.AddEdge(b, c);
  auto rates = PropagateRates(g, 1000.0);
  EXPECT_EQ(rates[static_cast<size_t>(a)].output_rate, 1000.0);
  EXPECT_EQ(rates[static_cast<size_t>(b)].input_rate, 1000.0);
  EXPECT_EQ(rates[static_cast<size_t>(b)].output_rate, 500.0);
  EXPECT_EQ(rates[static_cast<size_t>(c)].input_rate, 500.0);
  EXPECT_EQ(rates[static_cast<size_t>(c)].output_rate, 1000.0);
}

TEST(RatesTest, MultiSourceFanIn) {
  LogicalGraph g = Diamond();
  auto rates = PropagateRates(g, 1000.0);
  // sink input = a.out + b.out = 1000*0.5 + 1000*0.25.
  EXPECT_EQ(rates[3].input_rate, 750.0);
}

TEST(RatesTest, PerSourceRatesMap) {
  QuerySpec q = BuildQ2Join();
  auto rates = PropagateRates(q.graph, q.source_rates);
  EXPECT_EQ(rates[0].input_rate, 30000.0);
  EXPECT_EQ(rates[1].input_rate, 80000.0);
  // join input = map_p.out + map_a.out = 30000*1.0 + 80000*0.6.
  EXPECT_NEAR(rates[4].input_rate, 30000.0 + 48000.0, 1e-6);
}

TEST(RatesTest, TaskDemandsSplitEvenly) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph p = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  auto demands = TaskDemands(p, rates);
  // All tasks of one operator share identical demands.
  for (const auto& op : q.graph.operators()) {
    const auto& tasks = p.TasksOf(op.id);
    for (TaskId t : tasks) {
      EXPECT_EQ(demands[static_cast<size_t>(t)], demands[static_cast<size_t>(tasks[0])]);
    }
  }
  // Window: input 14000*0.9 = 12600 over 8 tasks.
  double per_task_in = 12600.0 / 8;
  EXPECT_NEAR(demands[static_cast<size_t>(p.TasksOf(2)[0])].cpu, per_task_in * 120e-6, 1e-9);
  EXPECT_NEAR(demands[static_cast<size_t>(p.TasksOf(2)[0])].io, per_task_in * 35000, 1e-6);
}

TEST(RatesTest, ZeroRateSourceYieldsZeroDemands) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph p = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, 0.0);
  auto demands = TaskDemands(p, rates);
  for (const auto& d : demands) {
    EXPECT_EQ(d.cpu, 0.0);
    EXPECT_EQ(d.io, 0.0);
    EXPECT_EQ(d.net, 0.0);
  }
}

// --- Placement -------------------------------------------------------------------------------

TEST(PlacementTest, ValidateCatchesUnassignedAndOverflow) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph p = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  Placement plan(p.num_tasks());
  EXPECT_NE(plan.Validate(p, cluster), "");  // unassigned
  for (TaskId t = 0; t < p.num_tasks(); ++t) {
    plan.Assign(t, 0);
  }
  EXPECT_NE(plan.Validate(p, cluster), "");  // 16 tasks on a 4-slot worker
  for (TaskId t = 0; t < p.num_tasks(); ++t) {
    plan.Assign(t, t % 4);
  }
  EXPECT_EQ(plan.Validate(p, cluster), "");
}

TEST(PlacementTest, RemoteFractionEndpoints) {
  LogicalGraph g("pair");
  OperatorId a = g.AddOperator("a", OperatorKind::kSource, SimpleProfile(), 1);
  OperatorId b = g.AddOperator("b", OperatorKind::kSink, SimpleProfile(), 4);
  g.AddEdge(a, b);
  PhysicalGraph p = PhysicalGraph::Expand(g);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  // All of b co-located with a: fully local.
  Placement local(std::vector<WorkerId>{0, 0, 0, 0, 0});
  EXPECT_EQ(local.RemoteFraction(p, 0), 0.0);
  // b spread: 3 of 4 channels remote.
  Placement spread(std::vector<WorkerId>{0, 0, 1, 2, 3});
  EXPECT_NEAR(spread.RemoteFraction(p, 0), 0.75, 1e-12);
  // Sink tasks have no downstream.
  EXPECT_EQ(local.RemoteFraction(p, 1), 0.0);
}

TEST(PlacementTest, ColocationDegree) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph p = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  Placement plan(p.num_tasks());
  // Put all 8 window tasks (op 2) on workers 0 and 1, 4 each; others spread.
  int w = 0;
  for (const auto& t : p.tasks()) {
    if (t.op == 2) {
      plan.Assign(t.id, t.index < 4 ? 0 : 1);
    } else {
      plan.Assign(t.id, 2 + (w++ % 2));
    }
  }
  EXPECT_EQ(plan.ColocationDegree(p, cluster, 2), 4);
  EXPECT_LE(plan.ColocationDegree(p, cluster, 1), 3);
}

TEST(PlacementTest, CanonicalKeyInvariantUnderWorkerPermutation) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph p = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  Rng rng(303);
  for (int trial = 0; trial < 20; ++trial) {
    Placement plan(p.num_tasks());
    std::vector<int> used(4, 0);
    for (TaskId t = 0; t < p.num_tasks(); ++t) {
      WorkerId w;
      do {
        w = static_cast<WorkerId>(rng.NextBounded(4));
      } while (used[static_cast<size_t>(w)] >= 4);
      plan.Assign(t, w);
      ++used[static_cast<size_t>(w)];
    }
    // Apply a random worker permutation.
    std::vector<WorkerId> perm = {0, 1, 2, 3};
    rng.Shuffle(perm);
    Placement permuted(p.num_tasks());
    for (TaskId t = 0; t < p.num_tasks(); ++t) {
      permuted.Assign(t, perm[static_cast<size_t>(plan.WorkerOf(t))]);
    }
    EXPECT_EQ(plan.CanonicalKey(p, cluster), permuted.CanonicalKey(p, cluster));
  }
}

TEST(PlacementTest, CanonicalKeyDistinguishesDifferentPlans) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph p = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  Placement a(p.num_tasks());
  Placement b(p.num_tasks());
  for (TaskId t = 0; t < p.num_tasks(); ++t) {
    a.Assign(t, t % 4);
    b.Assign(t, (t / 4) % 4);
  }
  EXPECT_NE(a.CanonicalKey(p, cluster), b.CanonicalKey(p, cluster));
}

// --- Cluster ---------------------------------------------------------------------------------

TEST(ClusterTest, TotalSlotsAndSpecs) {
  Cluster c(4, WorkerSpec::M5d2xlarge(8));
  EXPECT_EQ(c.num_workers(), 4);
  EXPECT_EQ(c.slots_per_worker(), 8);
  EXPECT_EQ(c.total_slots(), 32);
  EXPECT_EQ(c.worker(0).spec.cpu_capacity, 8.0);
}

TEST(ClusterTest, SetNetBandwidthAppliesToAll) {
  Cluster c(3, WorkerSpec::R5dXlarge(4));
  c.SetNetBandwidth(125e6);
  for (const auto& w : c.workers()) {
    EXPECT_EQ(w.spec.net_bandwidth_bps, 125e6);
  }
}

TEST(ClusterTest, InstanceTypePresetsDiffer) {
  EXPECT_LT(WorkerSpec::R5dXlarge().cpu_capacity, WorkerSpec::M5d2xlarge().cpu_capacity);
  EXPECT_LT(WorkerSpec::M5d2xlarge().cpu_capacity, WorkerSpec::C5d4xlarge().cpu_capacity);
}

}  // namespace
}  // namespace capsys
