// Asserts the steady-state simulator tick performs no heap allocation.
//
// The global operator new/new[] are replaced with counting versions. After a warmup that
// grows every arena to its final size, a window of Step() calls must not allocate at all —
// this is the enforcement half of the "arena-based simulator ticks" refactor, so an
// accidental per-tick std::vector cannot creep back in unnoticed.
//
// Not registered in the sanitizer CI jobs: ASan/TSan interpose their own allocators.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "src/caps/cost_model.h"
#include "src/caps/greedy.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace {

std::atomic<bool> g_counting{false};
std::atomic<uint64_t> g_allocs{0};

void* CountedAlloc(std::size_t size) {
  if (g_counting.load(std::memory_order_relaxed)) {
    g_allocs.fetch_add(1, std::memory_order_relaxed);
  }
  if (void* p = std::malloc(size == 0 ? 1 : size)) {
    return p;
  }
  throw std::bad_alloc();
}

}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size); }
void* operator new[](std::size_t size) { return CountedAlloc(size); }
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace capsys {
namespace {

uint64_t CountAllocsDuringSteps(FluidSimulator& sim, int steps) {
  g_allocs.store(0);
  g_counting.store(true);
  for (int i = 0; i < steps; ++i) {
    sim.Step();
  }
  g_counting.store(false);
  return g_allocs.load();
}

TEST(ZeroAllocTest, SteadyStateStepDoesNotAllocate) {
  QuerySpec q = BuildQ3Inf();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  CostModel model(graph, cluster, TaskDemands(graph, PropagateRates(q.graph, q.source_rates)));
  SimConfig cfg;
  cfg.metrics_interval_s = 1e18;  // flushing allocates metric records; keep it out of scope
  FluidSimulator sim(graph, cluster, GreedyBalancedPlacement(model), cfg);
  sim.SetAllSourceRates(q.TotalTargetRate());
  // Warm: queues fill, every scratch vector and solver arena reaches its final size.
  for (int i = 0; i < 1000; ++i) {
    sim.Step();
  }
  EXPECT_EQ(CountAllocsDuringSteps(sim, 1000), 0u);
}

// Backpressure (full queues, emit throttling) exercises the remaining tick branches; they
// must be allocation-free too. Q2's rates saturate the cluster.
TEST(ZeroAllocTest, BackpressuredStepDoesNotAllocate) {
  QuerySpec q = BuildQ2Join();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  CostModel model(graph, cluster, TaskDemands(graph, PropagateRates(q.graph, q.source_rates)));
  SimConfig cfg;
  cfg.metrics_interval_s = 1e18;
  FluidSimulator sim(graph, cluster, GreedyBalancedPlacement(model), cfg);
  sim.SetAllSourceRates(q.TotalTargetRate());
  for (int i = 0; i < 1000; ++i) {
    sim.Step();
  }
  EXPECT_EQ(CountAllocsDuringSteps(sim, 1000), 0u);
}

}  // namespace
}  // namespace capsys
