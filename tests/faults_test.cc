// Tests for the chaos engine (robustness extension): fault schedules and injection,
// heartbeat failure detection with suspicion and flap blacklisting, graceful degraded-mode
// recovery, and the end-to-end chaos experiment driver.
#include <gtest/gtest.h>

#include <cmath>

#include "src/caps/cost_model.h"
#include "src/caps/greedy.h"
#include "src/controller/chaos_experiments.h"
#include "src/controller/failure_detector.h"
#include "src/controller/recovery.h"
#include "src/dataflow/rates.h"
#include "src/faults/fault_injector.h"
#include "src/faults/fault_schedule.h"
#include "src/nexmark/queries.h"
#include "src/obs/events.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

// --- FaultSchedule ---------------------------------------------------------------------------

TEST(FaultScheduleTest, ExpandFlattensCompoundEventsInTimeOrder) {
  FaultSchedule s;
  s.Slowdown(50.0, 2, 0.3, 30.0);  // degrade at 50, restore at 80
  s.Flap(10.0, 1, 20.0, 2);        // crashes at 10, 30; restores at 20, 40
  s.Crash(5.0, 0);
  std::vector<PrimitiveFault> prims = s.Expand();
  ASSERT_EQ(prims.size(), 7u);
  for (size_t i = 1; i < prims.size(); ++i) {
    EXPECT_LE(prims[i - 1].time_s, prims[i].time_s);
  }
  EXPECT_EQ(prims[0].kind, PrimitiveFault::Kind::kCrash);  // t=5 crash w0
  EXPECT_EQ(prims[0].worker, 0);
  EXPECT_EQ(prims[1].kind, PrimitiveFault::Kind::kCrash);  // t=10 flap down
  EXPECT_EQ(prims[1].worker, 1);
  EXPECT_EQ(prims[2].kind, PrimitiveFault::Kind::kRestore);  // t=20 flap up
  // The slowdown expands into a degrade/restore pair.
  EXPECT_EQ(prims[5].kind, PrimitiveFault::Kind::kSetDegrade);
  EXPECT_DOUBLE_EQ(prims[5].value, 0.3);
  EXPECT_EQ(prims[6].kind, PrimitiveFault::Kind::kSetDegrade);
  EXPECT_DOUBLE_EQ(prims[6].value, 1.0);
  EXPECT_DOUBLE_EQ(prims[6].time_s, 80.0);
}

TEST(FaultScheduleTest, RandomScheduleIsSeedDeterministic) {
  FaultSchedule::RandomOptions options;
  FaultSchedule a = FaultSchedule::Random(6, options, 42);
  FaultSchedule b = FaultSchedule::Random(6, options, 42);
  FaultSchedule c = FaultSchedule::Random(6, options, 43);
  EXPECT_FALSE(a.empty());
  EXPECT_EQ(a.ToString(), b.ToString());
  EXPECT_NE(a.ToString(), c.ToString());
}

TEST(FaultScheduleTest, RandomScheduleRespectsBlastRadius) {
  FaultSchedule::RandomOptions options;
  options.num_faults = 30;
  options.allow_slowdowns = false;
  options.allow_flaps = false;
  options.allow_metric_faults = false;
  options.max_concurrent_crashes = 2;
  FaultSchedule s = FaultSchedule::Random(4, options, 7);
  // Replay the primitive timeline and check at most 2 workers are ever down at once.
  std::vector<bool> down(4, false);
  for (const PrimitiveFault& p : s.Expand()) {
    if (p.kind == PrimitiveFault::Kind::kCrash) {
      down[static_cast<size_t>(p.worker)] = true;
    } else if (p.kind == PrimitiveFault::Kind::kRestore) {
      down[static_cast<size_t>(p.worker)] = false;
    }
    EXPECT_LE(std::count(down.begin(), down.end(), true), 2);
  }
}

// --- Simulator degradation and metric corruption ---------------------------------------------

FluidSimulator MakeQ1Sim(const Cluster& cluster, double rate) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  FluidSimulator sim(graph, cluster, GreedyBalancedPlacement(model));
  sim.SetAllSourceRates(rate);
  return sim;
}

TEST(DegradeWorkerTest, StragglerSlowsButDoesNotStopThroughput) {
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  FluidSimulator sim = MakeQ1Sim(cluster, 20000.0);
  sim.RunFor(30);
  double healthy = sim.Summarize(sim.time_s() - 15, sim.time_s()).throughput;
  sim.DegradeWorker(0, 0.2);
  EXPECT_DOUBLE_EQ(sim.WorkerDegradeFactor(0), 0.2);
  sim.RunFor(30);
  double degraded = sim.Summarize(sim.time_s() - 15, sim.time_s()).throughput;
  EXPECT_LT(degraded, healthy * 0.9);  // visibly slower...
  EXPECT_GT(degraded, 0.0);            // ...but alive, unlike a crash
  sim.DegradeWorker(0, 1.0);
  sim.RunFor(40);
  double restored = sim.Summarize(sim.time_s() - 15, sim.time_s()).throughput;
  EXPECT_NEAR(restored, healthy, healthy * 0.05);
}

TEST(MetricCorruptionTest, CorruptsControllerReadsButNotGroundTruth) {
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  FluidSimulator sim = MakeQ1Sim(cluster, 10000.0);
  sim.RunFor(60);
  double t = sim.time_s();
  double clean_read = sim.OperatorEmitRate(0, t - 20, t);
  double clean_truth = sim.Summarize(t - 20, t).throughput;
  ASSERT_GT(clean_read, 0.0);

  MetricCorruption corruption;
  corruption.noise_frac = 0.5;
  corruption.staleness_s = 10.0;
  sim.SetMetricCorruption(corruption, 99);
  double noisy = sim.OperatorEmitRate(0, t - 20, t);
  EXPECT_NE(noisy, clean_read);
  // Ground truth is immune: experiments must not be able to lie to themselves.
  EXPECT_DOUBLE_EQ(sim.Summarize(t - 20, t).throughput, clean_truth);

  sim.ClearMetricCorruption();
  EXPECT_DOUBLE_EQ(sim.OperatorEmitRate(0, t - 20, t), clean_read);
}

// --- Failure detector ------------------------------------------------------------------------

FailureDetectorOptions FastDetector() {
  FailureDetectorOptions o;
  o.heartbeat_interval_s = 1.0;
  o.timeout_s = 3.0;
  o.dead_after_misses = 3;
  return o;
}

TEST(FailureDetectorTest, SilentWorkerProgressesSuspectedThenDead) {
  FailureDetector det(2, FastDetector());
  // Both workers beat at t=1; then w1 goes silent.
  det.RecordHeartbeat(0, 1.0);
  det.RecordHeartbeat(1, 1.0);
  std::vector<WorkerId> dead;
  for (double now = 2.0; now <= 16.0; now += 1.0) {
    det.RecordHeartbeat(0, now);
    for (WorkerId w : det.Tick(now)) {
      dead.push_back(w);
    }
    if (now < 1.0 + det.options().timeout_s) {
      EXPECT_EQ(det.HealthOf(1), WorkerHealth::kAlive) << "t=" << now;
    }
  }
  ASSERT_EQ(dead.size(), 1u);  // declared exactly once
  EXPECT_EQ(dead[0], 1);
  EXPECT_EQ(det.HealthOf(1), WorkerHealth::kDead);
  EXPECT_EQ(det.HealthOf(0), WorkerHealth::kAlive);
  EXPECT_FALSE(det.IsUsable(1, 16.0));
  // A heartbeat brings it back.
  det.RecordHeartbeat(1, 17.0);
  EXPECT_EQ(det.HealthOf(1), WorkerHealth::kAlive);
  EXPECT_TRUE(det.IsUsable(1, 17.0));
}

TEST(FailureDetectorTest, StragglerIsSuspectedButNeverDeclaredDead) {
  FailureDetector det(1, FastDetector());
  // A degraded worker beats every 4 s: slower than the 3 s timeout (so it accumulates one
  // miss and gets suspected) but never 3 consecutive misses.
  bool ever_suspected = false;
  double last_beat = 0.0;
  for (double now = 0.5; now <= 120.0; now += 0.5) {
    if (now - last_beat >= 4.0) {
      det.RecordHeartbeat(0, now);
      last_beat = now;
    }
    EXPECT_TRUE(det.Tick(now).empty()) << "straggler declared dead at t=" << now;
    ever_suspected = ever_suspected || det.HealthOf(0) == WorkerHealth::kSuspected;
    EXPECT_TRUE(det.IsUsable(0, now));  // suspicion must not evict it from placement
  }
  EXPECT_TRUE(ever_suspected);
  EXPECT_EQ(det.deaths_declared(), 0);
}

TEST(FailureDetectorTest, FlappingWorkerIsBlacklistedWithBackoff) {
  FailureDetectorOptions o = FastDetector();
  o.flap_deaths_to_blacklist = 2;
  o.flap_window_s = 120.0;
  o.blacklist_base_s = 30.0;
  FailureDetector det(1, o);
  // Cycle: silent long enough to die, then one beat, repeated.
  double now = 0.0;
  auto kill_once = [&]() {
    det.RecordHeartbeat(0, now);
    int deaths = 0;
    for (int i = 0; i < 20 && deaths == 0; ++i) {
      now += 1.0;
      deaths = static_cast<int>(det.Tick(now).size());
    }
    EXPECT_EQ(deaths, 1);
  };
  kill_once();
  EXPECT_FALSE(det.IsBlacklisted(0, now));  // one death is not flapping
  kill_once();
  EXPECT_TRUE(det.IsBlacklisted(0, now));  // two deaths within the window
  double until_first = det.BlacklistedUntil(0);
  EXPECT_NEAR(until_first - now, 30.0, 1e-9);
  EXPECT_FALSE(det.IsUsable(0, now));
  // Blacklisted-but-beating is still not usable until the backoff expires.
  det.RecordHeartbeat(0, now);
  EXPECT_FALSE(det.IsUsable(0, now + 1.0));
  EXPECT_TRUE(det.IsUsable(0, until_first + 1.0));
  // A third death doubles the backoff.
  kill_once();
  EXPECT_NEAR(det.BlacklistedUntil(0) - now, 60.0, 1e-9);
}

// --- Injector heartbeats ---------------------------------------------------------------------

TEST(FaultInjectorTest, CrashedWorkerEmitsNoHeartbeatsUntilRestored) {
  FaultSchedule s;
  s.Crash(5.0, 1).Restore(10.0, 1);
  FaultInjector injector(s, 2, 3);
  std::vector<int> beats(2, 0);
  for (double now = 1.0; now <= 20.0; now += 1.0) {
    injector.AdvanceTo(now, nullptr);
    for (WorkerId w : injector.CollectHeartbeats(now)) {
      ++beats[static_cast<size_t>(w)];
    }
    if (now >= 5.0 && now < 10.0) {
      EXPECT_TRUE(injector.IsCrashed(1));
    }
  }
  EXPECT_EQ(beats[0], 20);          // healthy worker beats every interval
  EXPECT_GT(beats[1], 10);          // crashed 5 s out of 20
  EXPECT_LT(beats[1], beats[0]);
  EXPECT_FALSE(injector.IsCrashed(1));
}

// --- Recovery planning -----------------------------------------------------------------------

DeployOptions CheapDeploy() {
  DeployOptions o;
  o.policy = PlacementPolicy::kFlinkEvenly;
  o.use_ds2_sizing = true;
  o.seed = 1;
  return o;
}

TEST(RecoveryTest, FullWidthWhenSurvivorsHaveRoom) {
  Cluster cluster(6, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  CapsysController controller(cluster, CheapDeploy());
  Deployment d = controller.Deploy(q);
  std::vector<bool> usable(6, true);
  usable[1] = false;
  RecoveryPlan plan = PlanRecovery(d.graph, d.source_rates, d.costs, cluster, usable,
                                   CheapDeploy());
  EXPECT_EQ(plan.outcome, RecoveryOutcome::kRecoveredFull);
  EXPECT_EQ(plan.graph.total_parallelism(), d.graph.total_parallelism());
  for (TaskId t = 0; t < plan.physical.num_tasks(); ++t) {
    EXPECT_NE(plan.placement.WorkerOf(t), 1);  // never lands on the dead worker
  }
}

TEST(RecoveryTest, DownScalesWhenSlotsAreShort) {
  Cluster cluster(6, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  q.ScaleRates(2.0);  // widen the query past one worker's slot budget
  CapsysController controller(cluster, CheapDeploy());
  Deployment d = controller.Deploy(q);
  ASSERT_GT(d.graph.total_parallelism(), 4);
  std::vector<bool> usable(6, false);
  usable[0] = true;  // one 4-slot worker survives
  RecoveryPlan plan = PlanRecovery(d.graph, d.source_rates, d.costs, cluster, usable,
                                   CheapDeploy());
  EXPECT_EQ(plan.outcome, RecoveryOutcome::kRecoveredDegraded);
  EXPECT_LE(plan.graph.total_parallelism(), 4);
  EXPECT_GE(plan.graph.total_parallelism(), static_cast<int>(d.graph.operators().size()));
  EXPECT_GT(plan.sustainable_rate, 0.0);
  EXPECT_LT(plan.sustainable_rate, q.TotalTargetRate());
  for (TaskId t = 0; t < plan.physical.num_tasks(); ++t) {
    EXPECT_EQ(plan.placement.WorkerOf(t), 0);
  }
}

TEST(RecoveryTest, UnplaceableIsStructuredNotFatal) {
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  CapsysController controller(cluster, CheapDeploy());
  Deployment d = controller.Deploy(q);
  std::vector<bool> nobody(4, false);
  RecoveryPlan plan = PlanRecovery(d.graph, d.source_rates, d.costs, cluster, nobody,
                                   CheapDeploy());
  EXPECT_EQ(plan.outcome, RecoveryOutcome::kUnplaceable);
  EXPECT_FALSE(plan.Placeable());
}

// --- End-to-end chaos runs -------------------------------------------------------------------

ChaosExperimentOptions FastChaos() {
  ChaosExperimentOptions o;
  o.policy = PlacementPolicy::kFlinkEvenly;  // deterministic and cheap to re-place
  o.run_s = 180.0;
  o.seed = 11;
  o.upscale_cooldown_s = 20.0;
  return o;
}

TEST(ChaosExperimentTest, SlotShortageDownScalesInsteadOfAborting) {
  Cluster cluster(6, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  q.ScaleRates(2.0);  // DS2 sizes the query wider than one worker
  // Five of six workers die and stay down: full parallelism no longer fits anywhere.
  FaultSchedule s;
  for (WorkerId w = 1; w < 6; ++w) {
    s.Crash(40.0, w);
  }
  ChaosRun run = RunChaosExperiment(q, cluster, s, FastChaos());
  EXPECT_EQ(run.last_outcome, RecoveryOutcome::kRecoveredDegraded);
  EXPECT_GE(run.reconfigurations, 1);
  EXPECT_LE(run.final_slots, 4);
  // The degraded deployment still processes data at the end of the run.
  ASSERT_FALSE(run.timeline.empty());
  EXPECT_GT(run.timeline.back().throughput, 0.0);
}

TEST(ChaosExperimentTest, TotalClusterLossYieldsUnplaceableVerdict) {
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  FaultSchedule s;
  for (WorkerId w = 0; w < 4; ++w) {
    s.Crash(30.0, w);
  }
  ChaosExperimentOptions o = FastChaos();
  o.run_s = 120.0;
  ChaosRun run = RunChaosExperiment(q, cluster, s, o);  // must not abort
  EXPECT_EQ(run.last_outcome, RecoveryOutcome::kUnplaceable);
  EXPECT_GE(run.unplaceable_verdicts, 1);
  EXPECT_EQ(run.false_positives, 0);
}

TEST(ChaosExperimentTest, StragglerAloneCausesNoDeathsOrReconfigurations) {
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  FaultSchedule s;
  s.Slowdown(40.0, 2, 0.25, 60.0);
  ChaosExperimentOptions o = FastChaos();
  o.run_s = 150.0;
  ChaosRun run = RunChaosExperiment(q, cluster, s, o);
  EXPECT_EQ(run.deaths_declared, 0);
  EXPECT_EQ(run.false_positives, 0);
  EXPECT_EQ(run.reconfigurations, 0);
  EXPECT_EQ(run.last_outcome, RecoveryOutcome::kRecoveredFull);
}

TEST(ChaosExperimentTest, SameSeedYieldsIdenticalRecoveryTimeline) {
  Cluster cluster(5, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  FaultSchedule s;
  s.Crash(30.0, 1).Restore(90.0, 1);
  s.Slowdown(50.0, 2, 0.3, 20.0);
  s.MetricDropout(40.0, 0.4, 30.0);
  ChaosRun a = RunChaosExperiment(q, cluster, s, FastChaos());
  ChaosRun b = RunChaosExperiment(q, cluster, s, FastChaos());
  EXPECT_EQ(a.ToString(), b.ToString());
  ASSERT_EQ(a.timeline.size(), b.timeline.size());
  for (size_t i = 0; i < a.timeline.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.timeline[i].throughput, b.timeline[i].throughput) << "sample " << i;
    EXPECT_EQ(a.timeline[i].slots, b.timeline[i].slots);
  }
  EXPECT_EQ(a.reconfig_times_s, b.reconfig_times_s);
}

namespace {

// PlacementDecision events carry decision_time_s, the one wall-clock measurement in the
// event log (how long the placement search took on this machine). Blank it out so the
// comparison covers every simulated quantity byte-for-byte.
std::string StripWallClockFields(std::string log) {
  const std::string key = "\"decision_time_s\":";
  size_t pos = 0;
  while ((pos = log.find(key, pos)) != std::string::npos) {
    size_t value_begin = pos + key.size();
    size_t value_end = log.find_first_of(",}", value_begin);
    if (value_end == std::string::npos) {
      break;
    }
    log.replace(value_begin, value_end - value_begin, "0");
    pos = value_begin;
  }
  return log;
}

}  // namespace

TEST(ChaosExperimentTest, SameSeedYieldsByteIdenticalEventLog) {
  Cluster cluster(5, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  FaultSchedule s;
  s.Crash(30.0, 1).Restore(90.0, 1);
  s.CheckpointFailureStorm(50.0, 20.0);
  s.MetricDropout(40.0, 0.4, 30.0);
  ChaosExperimentOptions o = FastChaos();
  o.search_threads = 1;  // multi-threaded search ties break non-deterministically
  EventLog& log = EventLog::Global();
  log.Enable();
  log.Reset();
  RunChaosExperiment(q, cluster, s, o);
  std::string first = StripWallClockFields(log.ToJsonLines());
  log.Reset();
  RunChaosExperiment(q, cluster, s, o);
  std::string second = StripWallClockFields(log.ToJsonLines());
  log.Disable();
  log.Reset();
  ASSERT_FALSE(first.empty());
  // Every event — faults, detector verdicts, checkpoints, restores — replays identically.
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace capsys
