// Tests for src/common: RNG determinism and distribution properties, streaming statistics,
// string helpers, the thread pool, and ResourceVector arithmetic.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <set>
#include <thread>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/str.h"
#include "src/common/thread_pool.h"
#include "src/common/types.h"

namespace capsys {
namespace {

// --- Rng ------------------------------------------------------------------------------------

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextU64() == b.NextU64()) {
      ++same;
    }
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ull, 2ull, 3ull, 10ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(9);
  std::set<int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values hit
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformDouble();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Normal(5.0, 2.0));
  }
  EXPECT_NEAR(stats.Mean(), 5.0, 0.1);
  EXPECT_NEAR(stats.Stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMeanMatchesRate) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Exponential(4.0));
  }
  EXPECT_NEAR(stats.Mean(), 0.25, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) {
    v[static_cast<size_t>(i)] = i;
  }
  auto original = v;
  rng.Shuffle(v);
  auto sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, original);
  EXPECT_NE(v, original);  // astronomically unlikely to be identity
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(23);
  Rng b = a.Split();
  EXPECT_NE(a.NextU64(), b.NextU64());
}

// --- RunningStats ----------------------------------------------------------------------------

TEST(RunningStatsTest, MatchesDirectComputation) {
  std::vector<double> xs = {1.5, 2.5, -3.0, 7.25, 0.0, 4.5};
  RunningStats stats;
  double sum = 0.0;
  for (double x : xs) {
    stats.Add(x);
    sum += x;
  }
  double mean = sum / xs.size();
  double var = 0.0;
  for (double x : xs) {
    var += (x - mean) * (x - mean);
  }
  var /= xs.size() - 1;
  EXPECT_NEAR(stats.Mean(), mean, 1e-12);
  EXPECT_NEAR(stats.Variance(), var, 1e-12);
  EXPECT_EQ(stats.Min(), -3.0);
  EXPECT_EQ(stats.Max(), 7.25);
  EXPECT_EQ(stats.Count(), xs.size());
}

TEST(RunningStatsTest, MergeEqualsSequential) {
  Rng rng(29);
  RunningStats all;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 500; ++i) {
    double x = rng.Normal();
    all.Add(x);
    (i < 200 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.Count(), all.Count());
  EXPECT_NEAR(left.Mean(), all.Mean(), 1e-9);
  EXPECT_NEAR(left.Variance(), all.Variance(), 1e-9);
  EXPECT_EQ(left.Min(), all.Min());
  EXPECT_EQ(left.Max(), all.Max());
}

TEST(RunningStatsTest, EmptyAndSingleElement) {
  RunningStats stats;
  EXPECT_EQ(stats.Mean(), 0.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  stats.Add(3.0);
  EXPECT_EQ(stats.Mean(), 3.0);
  EXPECT_EQ(stats.Variance(), 0.0);
  EXPECT_EQ(stats.Min(), 3.0);
  EXPECT_EQ(stats.Max(), 3.0);
}

// --- Distribution / BoxSummary ---------------------------------------------------------------

TEST(DistributionTest, PercentilesOnKnownData) {
  Distribution d;
  for (int i = 1; i <= 100; ++i) {
    d.Add(i);
  }
  EXPECT_NEAR(d.Percentile(0), 1.0, 1e-9);
  EXPECT_NEAR(d.Percentile(100), 100.0, 1e-9);
  EXPECT_NEAR(d.Median(), 50.5, 1e-9);
  EXPECT_NEAR(d.Percentile(25), 25.75, 1e-9);
  EXPECT_NEAR(d.Mean(), 50.5, 1e-9);
}

TEST(DistributionTest, PercentileMonotoneInQ) {
  Rng rng(31);
  Distribution d;
  for (int i = 0; i < 300; ++i) {
    d.Add(rng.Uniform(-10, 10));
  }
  double prev = d.Percentile(0);
  for (double q = 5; q <= 100; q += 5) {
    double cur = d.Percentile(q);
    EXPECT_GE(cur, prev);
    prev = cur;
  }
}

TEST(DistributionTest, EmptyReturnsZero) {
  Distribution d;
  EXPECT_EQ(d.Percentile(50), 0.0);
  EXPECT_EQ(d.Mean(), 0.0);
}

TEST(BoxSummaryTest, OrderedFields) {
  std::vector<double> v = {5, 1, 9, 3, 7, 2, 8};
  BoxSummary s = Summarize(v);
  EXPECT_LE(s.min, s.p25);
  EXPECT_LE(s.p25, s.median);
  EXPECT_LE(s.median, s.p75);
  EXPECT_LE(s.p75, s.max);
  EXPECT_EQ(s.min, 1.0);
  EXPECT_EQ(s.max, 9.0);
  EXPECT_EQ(s.median, 5.0);
}

// --- Str -------------------------------------------------------------------------------------

TEST(StrTest, SprintfFormats) {
  EXPECT_EQ(Sprintf("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(Sprintf("%.2f", 3.14159), "3.14");
  EXPECT_EQ(Sprintf("%s", ""), "");
}

TEST(StrTest, SprintfLongString) {
  std::string big(5000, 'a');
  EXPECT_EQ(Sprintf("%s", big.c_str()).size(), 5000u);
}

TEST(StrTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ","), "a,b,c");
  EXPECT_EQ(Join({"x"}, ","), "x");
  EXPECT_EQ(Join({}, ","), "");
}

TEST(StrTest, HumanizeTrimsZeros) {
  EXPECT_EQ(Humanize(1.5, 3), "1.5");
  EXPECT_EQ(Humanize(2.0, 3), "2.0");
}

// --- ThreadPool ------------------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, TasksCanSpawnTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, WaitOnIdlePoolReturnsImmediately) {
  ThreadPool pool(2);
  pool.Wait();
  // Workers may still be starting up; they must settle into the idle state shortly.
  bool idle = false;
  for (int i = 0; i < 200 && !idle; ++i) {
    idle = pool.HasIdleThread();
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(idle);
}

TEST(ThreadPoolTest, MultipleWaitCycles) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&count] { count.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(count.load(), 100);
}

// --- ResourceVector --------------------------------------------------------------------------

TEST(ResourceVectorTest, Arithmetic) {
  ResourceVector a{1, 2, 3};
  ResourceVector b{0.5, 0.5, 0.5};
  ResourceVector sum = a + b;
  EXPECT_EQ(sum.cpu, 1.5);
  EXPECT_EQ(sum.io, 2.5);
  EXPECT_EQ(sum.net, 3.5);
  ResourceVector scaled = a * 2.0;
  EXPECT_EQ(scaled.cpu, 2.0);
  EXPECT_EQ(scaled.net, 6.0);
  ResourceVector diff = a - b;
  EXPECT_EQ(diff.cpu, 0.5);
}

TEST(ResourceVectorTest, IndexingMatchesFields) {
  ResourceVector v{1, 2, 3};
  EXPECT_EQ(v[Resource::kCpu], 1.0);
  EXPECT_EQ(v[Resource::kIo], 2.0);
  EXPECT_EQ(v[Resource::kNet], 3.0);
  v[Resource::kIo] = 9.0;
  EXPECT_EQ(v.io, 9.0);
}

TEST(ResourceVectorTest, DominanceSemantics) {
  ResourceVector a{1, 1, 1};
  ResourceVector b{2, 2, 2};
  ResourceVector c{0.5, 3, 1};
  EXPECT_TRUE(a.Dominates(b));
  EXPECT_FALSE(b.Dominates(a));
  EXPECT_FALSE(a.Dominates(a));  // equal vectors do not dominate
  EXPECT_FALSE(a.Dominates(c));
  EXPECT_FALSE(c.Dominates(a));
}

TEST(ResourceVectorTest, MaxAndSum) {
  ResourceVector v{0.2, 0.9, 0.4};
  EXPECT_EQ(v.Max(), 0.9);
  EXPECT_NEAR(v.Sum(), 1.5, 1e-12);
}

TEST(ResourceVectorTest, ResourceNames) {
  EXPECT_STREQ(ResourceName(Resource::kCpu), "cpu");
  EXPECT_STREQ(ResourceName(Resource::kIo), "io");
  EXPECT_STREQ(ResourceName(Resource::kNet), "net");
}

}  // namespace
}  // namespace capsys
