// Tests for the CAPS search (src/caps/search.h): enumeration completeness and uniqueness,
// plan-count reproduction, threshold pruning, reordering, parallel search, and find-first.
#include "src/caps/search.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/caps/cost_model.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

// Builds a linear chain query src -> mid... with the given parallelisms and simple uniform
// profiles, all-to-all edges.
LogicalGraph ChainGraph(const std::vector<int>& parallelisms) {
  LogicalGraph g("chain");
  OperatorProfile prof;
  prof.cpu_per_record = 1e-5;
  prof.io_bytes_per_record = 100;
  prof.out_bytes_per_record = 100;
  OperatorId prev = kInvalidId;
  for (size_t i = 0; i < parallelisms.size(); ++i) {
    OperatorKind kind = i == 0 ? OperatorKind::kSource
                               : (i + 1 == parallelisms.size() ? OperatorKind::kSink
                                                               : OperatorKind::kMap);
    OperatorId id = g.AddOperator("op" + std::to_string(i), kind, prof, parallelisms[i]);
    if (prev != kInvalidId) {
      g.AddEdge(prev, id, PartitionScheme::kHash);
    }
    prev = id;
  }
  return g;
}

CostModel MakeModel(const PhysicalGraph& graph, const Cluster& cluster, double rate = 1000.0) {
  auto rates = PropagateRates(graph.logical(), rate);
  return CostModel(graph, cluster, TaskDemands(graph, rates));
}

// Brute-force enumeration of all valid plans, deduplicated by canonical key. The reference
// for completeness/uniqueness checks.
int BruteForceDistinctPlans(const PhysicalGraph& graph, const Cluster& cluster) {
  int n = graph.num_tasks();
  int w = cluster.num_workers();
  std::set<std::string> keys;
  std::vector<WorkerId> assign(static_cast<size_t>(n), 0);
  while (true) {
    Placement plan(assign);
    if (plan.Validate(graph, cluster).empty()) {
      keys.insert(plan.CanonicalKey(graph, cluster));
    }
    // Increment the mixed-radix counter.
    int i = 0;
    for (; i < n; ++i) {
      if (++assign[static_cast<size_t>(i)] < w) {
        break;
      }
      assign[static_cast<size_t>(i)] = 0;
    }
    if (i == n) {
      break;
    }
  }
  return static_cast<int>(keys.size());
}

TEST(CapsSearchTest, MatchesBruteForceOnSmallInstances) {
  struct Case {
    std::vector<int> parallelisms;
    int workers;
    int slots;
  };
  std::vector<Case> cases = {
      {{1, 1}, 2, 2},  {{2, 1}, 2, 2},   {{2, 2}, 2, 3},
      {{2, 2}, 3, 2},  {{1, 2, 1}, 2, 2}, {{2, 2, 1}, 3, 2},
      {{3, 2}, 3, 2},  {{2, 3, 1}, 3, 3},
  };
  for (const auto& c : cases) {
    LogicalGraph logical = ChainGraph(c.parallelisms);
    PhysicalGraph graph = PhysicalGraph::Expand(logical);
    WorkerSpec spec;
    spec.slots = c.slots;
    Cluster cluster(c.workers, spec);
    if (cluster.total_slots() < graph.num_tasks()) {
      continue;
    }
    CostModel model = MakeModel(graph, cluster);
    auto plans = EnumerateAllPlans(model);
    int expected = BruteForceDistinctPlans(graph, cluster);
    EXPECT_EQ(static_cast<int>(plans.size()), expected)
        << "parallelisms size=" << c.parallelisms.size() << " workers=" << c.workers
        << " slots=" << c.slots;
    // Uniqueness: no two enumerated plans share a canonical key.
    std::set<std::string> keys;
    for (const auto& p : plans) {
      EXPECT_TRUE(keys.insert(p.placement.CanonicalKey(graph, cluster)).second);
      EXPECT_EQ(p.placement.Validate(graph, cluster), "");
    }
  }
}

TEST(CapsSearchTest, ReproducesPaperPlanCountFig4Example) {
  // Figure 4: operators S->T->I->K with parallelism 2,2,4,1 on 3 workers x 3 slots.
  LogicalGraph logical = ChainGraph({2, 2, 4, 1});
  PhysicalGraph graph = PhysicalGraph::Expand(logical);
  WorkerSpec spec;
  spec.slots = 3;
  Cluster cluster(3, spec);
  CostModel model = MakeModel(graph, cluster);
  EXPECT_EQ(EnumerateAllPlans(model).size(), 16u);
}

TEST(CapsSearchTest, ReproducesPaperPlanCountQ1Sliding) {
  // §3.2: Q1-sliding on the 4-worker, 16-slot cluster has 80 possible placement plans.
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  EXPECT_EQ(EnumerateAllPlans(model).size(), 80u);
}

TEST(CapsSearchTest, ReproducesPaperPlanCountQ2Join) {
  // §3.3: Q2-join has 665 possible plans on the same cluster.
  QuerySpec q = BuildQ2Join();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  EXPECT_EQ(EnumerateAllPlans(model).size(), 665u);
}

TEST(CapsSearchTest, ReproducesPaperPlanCountQ3Inf) {
  // §3.3: Q3-inf has 950 possible plans on the same cluster.
  QuerySpec q = BuildQ3Inf();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  EXPECT_EQ(EnumerateAllPlans(model).size(), 950u);
}

TEST(CapsSearchTest, ThresholdPruningReducesLeavesAndKeepsValidity) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));

  SearchOptions loose;
  loose.alpha = ResourceVector{1.0, 1.0, 1.0};
  SearchResult all = CapsSearch(model, loose).Run();
  ASSERT_TRUE(all.found);

  // Thresholds slightly above the optimum: the pruned search must find a satisfying plan
  // while cutting a large part of the tree.
  SearchOptions tight;
  tight.alpha.cpu = std::min(1.0, all.best.cost.cpu * 1.05 + 1e-6);
  tight.alpha.io = std::min(1.0, all.best.cost.io * 1.05 + 1e-6);
  tight.alpha.net = 1.0;
  SearchResult pruned = CapsSearch(model, tight).Run();
  EXPECT_GT(all.stats.leaves, pruned.stats.leaves);
  EXPECT_GT(pruned.stats.pruned, 0u);
  ASSERT_TRUE(pruned.found);
  EXPECT_LE(pruned.best.cost.cpu, tight.alpha.cpu + 1e-9);
  EXPECT_LE(pruned.best.cost.io, tight.alpha.io + 1e-9);
  // Every satisfying plan found under pruning must also exist in the full enumeration.
  EXPECT_EQ(pruned.best.placement.Validate(graph, cluster), "");
}

TEST(CapsSearchTest, IncrementalCostMatchesCostModelAtLeaves) {
  QuerySpec q = BuildQ3Inf();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  auto plans = EnumerateAllPlans(model);
  ASSERT_FALSE(plans.empty());
  for (size_t i = 0; i < plans.size(); i += 37) {  // sample
    ResourceVector direct = model.Cost(plans[i].placement);
    EXPECT_NEAR(plans[i].cost.cpu, direct.cpu, 1e-9);
    EXPECT_NEAR(plans[i].cost.io, direct.io, 1e-9);
    EXPECT_NEAR(plans[i].cost.net, direct.net, 1e-9);
  }
}

TEST(CapsSearchTest, ReorderingPreservesLeafCount) {
  QuerySpec q = BuildQ2Join();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));

  SearchOptions plain;
  plain.reorder = false;
  SearchOptions reordered;
  reordered.reorder = true;
  SearchResult a = CapsSearch(model, plain).Run();
  SearchResult b = CapsSearch(model, reordered).Run();
  EXPECT_EQ(a.stats.leaves, b.stats.leaves);
}

TEST(CapsSearchTest, ReorderingPrunesEarlier) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));

  SearchOptions plain;
  plain.reorder = false;
  plain.alpha = ResourceVector{0.1, 0.1, 1.0};
  SearchOptions reordered = plain;
  reordered.reorder = true;
  SearchResult a = CapsSearch(model, plain).Run();
  SearchResult b = CapsSearch(model, reordered).Run();
  EXPECT_EQ(a.stats.leaves, b.stats.leaves);
  // The heavy sliding-window operator is explored first, so infeasible branches die near
  // the root and the tree shrinks.
  EXPECT_LE(b.stats.nodes, a.stats.nodes);
}

TEST(CapsSearchTest, FindFirstStopsEarly) {
  QuerySpec q = BuildQ2Join();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));

  SearchOptions options;
  options.find_first = true;
  SearchResult r = CapsSearch(model, options).Run();
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.stats.leaves, 1u);
}

TEST(CapsSearchTest, ParallelSearchFindsSameLeafCount) {
  QuerySpec q = BuildQ3Inf();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));

  SearchOptions seq;
  SearchOptions par;
  par.num_threads = 4;
  SearchResult a = CapsSearch(model, seq).Run();
  SearchResult b = CapsSearch(model, par).Run();
  EXPECT_EQ(a.stats.leaves, b.stats.leaves);
  ASSERT_TRUE(b.found);
  // The parallel search may pick a different pareto-optimal plan, but its scalarized cost
  // must match the sequential optimum.
  EXPECT_NEAR(a.best.cost.Max(), b.best.cost.Max(), 1e-9);
}

TEST(CapsSearchTest, ParetoFrontIsMutuallyNonDominated) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  SearchResult r = CapsSearch(model, SearchOptions{}).Run();
  ASSERT_TRUE(r.found);
  for (size_t i = 0; i < r.pareto.size(); ++i) {
    for (size_t j = 0; j < r.pareto.size(); ++j) {
      if (i != j) {
        EXPECT_FALSE(r.pareto[i].cost.Dominates(r.pareto[j].cost));
      }
    }
  }
}

TEST(CapsSearchTest, TimeoutIsHonored) {
  // A large instance with a microscopic budget must stop quickly and report the timeout.
  QuerySpec q = BuildQ2Join();
  q.graph.SetParallelism({4, 4, 8, 8, 16});
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Cluster cluster(10, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  SearchOptions options;
  options.timeout_s = 1e-4;
  SearchResult r = CapsSearch(model, options).Run();
  EXPECT_TRUE(r.stats.timed_out);
  EXPECT_LT(r.stats.elapsed_s, 5.0);
}

}  // namespace
}  // namespace capsys
