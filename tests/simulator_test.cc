// Tests for the fluid simulator: steady-state throughput, backpressure emergence,
// conservation, metrics, and rate changes.
#include <gtest/gtest.h>

#include "src/caps/cost_model.h"
#include "src/caps/greedy.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

// A balanced placement computed greedily from the query's demands.
Placement BalancedPlacement(const QuerySpec& q, const PhysicalGraph& graph,
                            const Cluster& cluster) {
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  return GreedyBalancedPlacement(model);
}

TEST(FluidSimulatorTest, UnderloadedQueryReachesTargetWithoutBackpressure) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  FluidSimulator sim(graph, cluster, BalancedPlacement(q, graph, cluster));
  sim.SetAllSourceRates(5000.0);  // well below capacity
  QuerySummary s = sim.RunMeasured(30, 60);
  EXPECT_NEAR(s.throughput, 5000.0, 1.0);
  EXPECT_NEAR(s.backpressure, 0.0, 1e-6);
}

TEST(FluidSimulatorTest, OverloadedQueryShowsBackpressure) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  FluidSimulator sim(graph, cluster, BalancedPlacement(q, graph, cluster));
  sim.SetAllSourceRates(40000.0);  // ~2x the cluster's capacity for this query
  QuerySummary s = sim.RunMeasured(30, 60);
  EXPECT_LT(s.throughput, 30000.0);
  EXPECT_GT(s.backpressure, 0.1);
}

TEST(FluidSimulatorTest, SteadyStateConservation) {
  // At steady state, the sink rate must equal source rate times the product of
  // selectivities along the chain.
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  FluidSimulator sim(graph, cluster, BalancedPlacement(q, graph, cluster));
  sim.SetAllSourceRates(10000.0);
  QuerySummary s = sim.RunMeasured(60, 60);
  double expected_sink = 10000.0 * 0.9 * 0.05;  // map then window selectivity
  EXPECT_NEAR(s.sink_rate, expected_sink, expected_sink * 0.02);
}

TEST(FluidSimulatorTest, OperatorRatesFollowSelectivities) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  FluidSimulator sim(graph, cluster, BalancedPlacement(q, graph, cluster));
  sim.SetAllSourceRates(10000.0);
  sim.RunFor(90);
  double t = sim.time_s();
  EXPECT_NEAR(sim.OperatorInputRate(1, t - 30, t), 10000.0, 100.0);       // map
  EXPECT_NEAR(sim.OperatorInputRate(2, t - 30, t), 9000.0, 100.0);       // window
  EXPECT_NEAR(sim.OperatorOutputRate(2, t - 30, t), 450.0, 10.0);        // window out
}

TEST(FluidSimulatorTest, ColocatedPlanWorseThanBalancedPlan) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);

  // Pathological plan: all window tasks stacked on two workers.
  Placement bad(graph.num_tasks());
  int other = 0;
  for (const auto& task : graph.tasks()) {
    if (task.op == 2) {
      bad.Assign(task.id, task.index < 4 ? 0 : 1);
    } else {
      bad.Assign(task.id, 2 + (other++ % 2));
    }
  }
  ASSERT_EQ(bad.Validate(graph, cluster), "");

  FluidSimulator good_sim(graph, cluster, BalancedPlacement(q, graph, cluster));
  FluidSimulator bad_sim(graph, cluster, bad);
  good_sim.SetAllSourceRates(14000.0);
  bad_sim.SetAllSourceRates(14000.0);
  QuerySummary good = good_sim.RunMeasured(60, 60);
  QuerySummary worse = bad_sim.RunMeasured(60, 60);
  EXPECT_GT(good.throughput, worse.throughput * 1.2);
  EXPECT_LT(good.backpressure, worse.backpressure);
}

TEST(FluidSimulatorTest, RateChangeTakesEffect) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  FluidSimulator sim(graph, cluster, BalancedPlacement(q, graph, cluster));
  sim.SetAllSourceRates(4000.0);
  sim.RunFor(40);
  double t1 = sim.time_s();
  double thr1 = sim.Summarize(t1 - 20, t1).throughput;
  sim.SetAllSourceRates(8000.0);
  sim.RunFor(40);
  double t2 = sim.time_s();
  double thr2 = sim.Summarize(t2 - 20, t2).throughput;
  EXPECT_NEAR(thr1, 4000.0, 50.0);
  EXPECT_NEAR(thr2, 8000.0, 100.0);
}

TEST(FluidSimulatorTest, PerSourceRatesIndependent) {
  QuerySpec q = BuildQ2Join();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  FluidSimulator sim(graph, cluster, BalancedPlacement(q, graph, cluster));
  sim.SetSourceRate(0, 5000.0);
  sim.SetSourceRate(1, 20000.0);
  sim.RunFor(60);
  double t = sim.time_s();
  EXPECT_NEAR(sim.OperatorEmitRate(0, t - 30, t), 5000.0, 100.0);
  EXPECT_NEAR(sim.OperatorEmitRate(1, t - 30, t), 20000.0, 300.0);
}

TEST(FluidSimulatorTest, TrueRatePerTaskReflectsContention) {
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);

  // Inference (op 2) spread vs stacked.
  auto build = [&](bool stack) {
    Placement plan(graph.num_tasks());
    int spill = 1;
    for (const auto& task : graph.tasks()) {
      if (task.op == 2) {
        plan.Assign(task.id, stack ? 0 : task.index);
      } else {
        plan.Assign(task.id, spill++ % 4);
        if (stack && plan.WorkerOf(task.id) == 0) {
          plan.Assign(task.id, 1 + (spill % 3));
        }
      }
    }
    return plan;
  };
  Placement spread = build(false);
  Placement stacked = build(true);
  if (!spread.Validate(graph, cluster).empty() || !stacked.Validate(graph, cluster).empty()) {
    GTEST_SKIP() << "placement construction did not fit";
  }
  FluidSimulator a(graph, cluster, spread);
  FluidSimulator b(graph, cluster, stacked);
  for (auto* sim : {&a, &b}) {
    for (const auto& [op, r] : q.source_rates) {
      sim->SetSourceRate(op, r);
    }
    sim->RunFor(60);
  }
  double t = a.time_s();
  EXPECT_GT(a.OperatorTrueRatePerTask(2, t - 30, t),
            b.OperatorTrueRatePerTask(2, t - 30, t) * 1.1);
}

TEST(FluidSimulatorTest, WorkerMetricsRecorded) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  FluidSimulator sim(graph, cluster, BalancedPlacement(q, graph, cluster));
  sim.SetAllSourceRates(10000.0);
  sim.RunFor(20);
  for (WorkerId w = 0; w < 4; ++w) {
    EXPECT_NE(sim.metrics().Find(WorkerMetric(w, "cpu_util")), nullptr);
    EXPECT_NE(sim.metrics().Find(WorkerMetric(w, "io_util")), nullptr);
    EXPECT_NE(sim.metrics().Find(WorkerMetric(w, "net_util")), nullptr);
  }
  // Utilization in [0, 1].
  for (WorkerId w = 0; w < 4; ++w) {
    double u = sim.metrics().MeanSinceOr(WorkerMetric(w, "cpu_util"), 0, -1);
    EXPECT_GE(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(FluidSimulatorTest, QueuesStayWithinCapacity) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  // Deliberately overload so queues fill.
  FluidSimulator sim(graph, cluster, BalancedPlacement(q, graph, cluster));
  sim.SetAllSourceRates(50000.0);
  sim.RunFor(60);
  for (TaskId t = 0; t < graph.num_tasks(); ++t) {
    // Capacity is 0.5 s of per-task input + small epsilon.
    EXPECT_LT(sim.QueueLength(t), 50000.0);
  }
}

TEST(FluidSimulatorTest, NetworkCapThrottlesLargeRecords) {
  QuerySpec q = BuildQ3Inf();
  Cluster capped(4, WorkerSpec::R5dXlarge(4));
  capped.SetNetBandwidth(50e6);  // very tight NIC
  Cluster fast(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  Placement plan = BalancedPlacement(q, graph, fast);
  FluidSimulator slow_sim(graph, capped, plan);
  FluidSimulator fast_sim(graph, fast, plan);
  for (auto* sim : {&slow_sim, &fast_sim}) {
    for (const auto& [op, r] : q.source_rates) {
      sim->SetSourceRate(op, r);
    }
  }
  QuerySummary slow = slow_sim.RunMeasured(30, 60);
  QuerySummary quick = fast_sim.RunMeasured(30, 60);
  EXPECT_LT(slow.throughput, quick.throughput);
  EXPECT_GT(slow.backpressure, quick.backpressure);
}

TEST(FluidSimulatorTest, SummarizeWindowsAreDisjoint) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  FluidSimulator sim(graph, cluster, BalancedPlacement(q, graph, cluster));
  sim.SetAllSourceRates(2000.0);
  sim.RunFor(30);
  sim.SetAllSourceRates(6000.0);
  sim.RunFor(30);
  EXPECT_NEAR(sim.Summarize(5, 30).throughput, 2000.0, 100.0);
  EXPECT_NEAR(sim.Summarize(40, 60).throughput, 6000.0, 150.0);
}

TEST(MetricsTest, TimeSeriesMeanOverWindow) {
  TimeSeries ts;
  ts.Record(1.0, 10.0);
  ts.Record(2.0, 20.0);
  ts.Record(3.0, 30.0);
  EXPECT_EQ(ts.MeanOver(1.5, 3.0), 25.0);
  EXPECT_EQ(ts.Mean(), 20.0);
  EXPECT_EQ(ts.Last(), 30.0);
  EXPECT_EQ(ts.LastTime(), 3.0);
}

TEST(MetricsTest, RegistryLookupAndFallback) {
  MetricsRegistry reg;
  EXPECT_EQ(reg.Find("absent"), nullptr);
  EXPECT_EQ(reg.LastOr("absent", -1.0), -1.0);
  reg.Record("a.b", 1.0, 5.0);
  EXPECT_EQ(reg.LastOr("a.b", -1.0), 5.0);
  EXPECT_EQ(reg.Names().size(), 1u);
  reg.Clear();
  EXPECT_EQ(reg.Find("a.b"), nullptr);
}

TEST(MetricsTest, MetricNameBuilders) {
  EXPECT_EQ(TaskMetric(3, "true_rate"), "task.3.true_rate");
  EXPECT_EQ(WorkerMetric(1, "cpu_util"), "worker.1.cpu_util");
  EXPECT_EQ(OperatorMetric(2, "emit_rate"), "op.2.emit_rate");
  EXPECT_EQ(QueryMetric("q1", "throughput"), "query.q1.throughput");
}

}  // namespace
}  // namespace capsys
