// Tests for the record-level runtime: bounded queue semantics, operator correctness against
// reference implementations, pipeline parallelism, and backpressure without record loss.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <map>
#include <set>
#include <thread>

#include "src/nexmark/generator.h"
#include "src/runtime/bounded_queue.h"
#include "src/runtime/pipeline.h"

namespace capsys {
namespace {

// --- BoundedQueue ----------------------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> q(10);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(q.Push(i));
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(q.Pop(), i);
  }
}

TEST(BoundedQueueTest, CloseDrainsThenReturnsNullopt) {
  BoundedQueue<int> q(10);
  q.Push(1);
  q.Push(2);
  q.Close();
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_EQ(q.Pop(), 2);
  EXPECT_EQ(q.Pop(), std::nullopt);
  EXPECT_FALSE(q.Push(3));
}

TEST(BoundedQueueTest, FullQueueBlocksUntilConsumed) {
  BoundedQueue<int> q(2);
  q.Push(1);
  q.Push(2);
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    q.Push(3);
    pushed.store(true);
  });
  // Give the producer a chance to (wrongly) complete.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load());
  EXPECT_EQ(q.Pop(), 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
}

TEST(BoundedQueueTest, ConcurrentProducersConsumersLoseNothing) {
  BoundedQueue<int> q(16);
  constexpr int kPerProducer = 2000;
  std::atomic<long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < 3; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        q.Push(p * kPerProducer + i);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (auto v = q.Pop()) {
        sum.fetch_add(*v);
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  q.Close();
  for (auto& t : consumers) {
    t.join();
  }
  long expected = 0;
  for (int i = 0; i < 3 * kPerProducer; ++i) {
    expected += i;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(BoundedQueueTest, TryPushTimesOutOnFullQueueThenSucceedsAfterDrain) {
  BoundedQueue<int> q(1);
  ASSERT_TRUE(q.TryPush(1, std::chrono::milliseconds(10)));
  // Full: the deadline-bounded push gives up instead of blocking forever.
  EXPECT_FALSE(q.TryPush(2, std::chrono::milliseconds(20)));
  EXPECT_FALSE(q.closed());  // caller can tell timeout from close
  EXPECT_EQ(q.Pop(), 1);
  EXPECT_TRUE(q.TryPush(3, std::chrono::milliseconds(10)));
  q.Close();
  EXPECT_FALSE(q.TryPush(4, std::chrono::milliseconds(10)));
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, TryPopTimesOutOnEmptyQueueButDrainsAfterClose) {
  BoundedQueue<int> q(4);
  EXPECT_EQ(q.TryPop(std::chrono::milliseconds(20)), std::nullopt);  // timeout, not closed
  EXPECT_FALSE(q.closed());
  q.Push(7);
  EXPECT_EQ(q.TryPop(std::chrono::milliseconds(20)), 7);
  q.Push(8);
  q.Close();
  // Close-with-items: TryPop still drains before reporting exhaustion.
  EXPECT_EQ(q.TryPop(std::chrono::milliseconds(20)), 8);
  EXPECT_EQ(q.TryPop(std::chrono::milliseconds(20)), std::nullopt);
  EXPECT_TRUE(q.closed());
}

TEST(BoundedQueueTest, TryPopWakesWhenItemArrives) {
  BoundedQueue<int> q(4);
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    q.Push(42);
  });
  // The wait is bounded but not a busy spin: the push wakes it well before the deadline.
  EXPECT_EQ(q.TryPop(std::chrono::seconds(5)), 42);
  producer.join();
}

// --- Operators: reference semantics ----------------------------------------------------------

// Reference computation of sliding-window bid counts per (window start, auction).
std::map<std::pair<int64_t, int64_t>, int> ReferenceSlidingCounts(
    const std::vector<Event>& events, int64_t window_ms, int64_t slide_ms) {
  std::map<std::pair<int64_t, int64_t>, int> counts;
  for (const Event& e : events) {
    if (e.kind != Event::Kind::kBid) {
      continue;
    }
    int64_t last = e.timestamp_ms - (e.timestamp_ms % slide_ms);
    for (int64_t s = last; s > e.timestamp_ms - window_ms; s -= slide_ms) {
      if (s < 0) {
        break;
      }
      ++counts[{s, e.bid().auction}];
    }
  }
  return counts;
}

TEST(OperatorTest, SlidingCounterMatchesReferenceSingleTask) {
  NexmarkGenerator gen;
  std::vector<Event> events = gen.Take(5000);
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "count",
                             .parallelism = 1,
                             .factory = [](int) { return MakeSlidingBidCounter(4000, 1000); },
                             .key = nullptr});
  PipelineResult r = Pipeline(std::move(stages)).Run(events);

  auto reference = ReferenceSlidingCounts(events, 4000, 1000);
  std::map<std::pair<int64_t, int64_t>, int> got;
  for (const Record& rec : r.outputs) {
    const auto& agg = std::get<AggregateResult>(rec);
    got[{agg.window_start_ms, std::stoll(agg.key)}] = static_cast<int>(agg.value);
  }
  EXPECT_EQ(got, reference);
}

TEST(OperatorTest, SlidingCounterMatchesReferenceWithHashParallelism) {
  NexmarkGenerator gen;
  std::vector<Event> events = gen.Take(8000);
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "count",
                             .parallelism = 4,
                             .factory = [](int) { return MakeSlidingBidCounter(4000, 2000); },
                             .key = KeyByAuction});
  PipelineResult r = Pipeline(std::move(stages)).Run(events);
  auto reference = ReferenceSlidingCounts(events, 4000, 2000);
  std::map<std::pair<int64_t, int64_t>, int> got;
  for (const Record& rec : r.outputs) {
    const auto& agg = std::get<AggregateResult>(rec);
    got[{agg.window_start_ms, std::stoll(agg.key)}] = static_cast<int>(agg.value);
  }
  EXPECT_EQ(got, reference);
}

// Reference tumbling join: person.id == auction.seller within the same window.
std::set<std::pair<int64_t, int64_t>> ReferenceJoin(const std::vector<Event>& events,
                                                    int64_t window_ms) {
  std::map<int64_t, std::set<int64_t>> persons;   // window -> person ids
  std::map<int64_t, std::vector<std::pair<int64_t, int64_t>>> auctions;  // window -> (id, seller)
  for (const Event& e : events) {
    int64_t w = e.timestamp_ms - (e.timestamp_ms % window_ms);
    if (e.kind == Event::Kind::kPerson) {
      persons[w].insert(e.person().id);
    } else if (e.kind == Event::Kind::kAuction) {
      auctions[w].emplace_back(e.auction().id, e.auction().seller);
    }
  }
  std::set<std::pair<int64_t, int64_t>> result;
  for (const auto& [w, aucs] : auctions) {
    auto pit = persons.find(w);
    if (pit == persons.end()) {
      continue;
    }
    for (const auto& [id, seller] : aucs) {
      if (pit->second.count(seller) > 0) {
        result.insert({seller, id});
      }
    }
  }
  return result;
}

TEST(OperatorTest, TumblingJoinMatchesReference) {
  NexmarkGenerator gen;
  std::vector<Event> events = gen.Take(6000);
  std::vector<StageSpec> stages;
  stages.push_back(
      StageSpec{.name = "join",
                .parallelism = 3,
                .factory = [](int) { return MakeTumblingPersonAuctionJoin(5000); },
                .key = KeyByPersonOrSeller});
  PipelineResult r = Pipeline(std::move(stages)).Run(events);
  std::set<std::pair<int64_t, int64_t>> got;
  for (const Record& rec : r.outputs) {
    const auto& j = std::get<JoinResult>(rec);
    got.insert({j.left_id, j.right_id});
  }
  EXPECT_EQ(got, ReferenceJoin(events, 5000));
}

TEST(OperatorTest, BidFilterDropsNonBids) {
  NexmarkGenerator gen;
  std::vector<Event> events = gen.Take(1000);
  int bids = 0;
  for (const Event& e : events) {
    bids += e.kind == Event::Kind::kBid ? 1 : 0;
  }
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "filter",
                             .parallelism = 2,
                             .factory = [](int) { return MakeBidFilter(); },
                             .key = nullptr});
  PipelineResult r = Pipeline(std::move(stages)).Run(events);
  EXPECT_EQ(static_cast<int>(r.outputs.size()), bids);
}

// --- Pipeline behaviour ------------------------------------------------------------------------

TEST(PipelineTest, TinyQueuesBackpressureWithoutLoss) {
  NexmarkGenerator gen;
  std::vector<Event> events = gen.Take(5000);
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "filter",
                             .parallelism = 1,
                             .factory = [](int) { return MakeBidFilter(); },
                             .key = nullptr,
                             .queue_capacity = 2});  // extreme backpressure
  stages.push_back(StageSpec{.name = "count",
                             .parallelism = 2,
                             .factory = [](int) { return MakeSlidingBidCounter(4000, 2000); },
                             .key = KeyByAuction,
                             .queue_capacity = 2});
  PipelineResult r = Pipeline(std::move(stages)).Run(events);
  EXPECT_EQ(r.processed_per_stage[0], 5000u);
  EXPECT_EQ(r.processed_per_stage[1], 4600u);  // the bids
  auto reference = ReferenceSlidingCounts(events, 4000, 2000);
  EXPECT_EQ(r.outputs.size(), reference.size());
}

TEST(PipelineTest, StateStatsAggregated) {
  NexmarkGenerator gen;
  std::vector<Event> events = gen.Take(4000);
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "count",
                             .parallelism = 2,
                             .factory = [](int) { return MakeSlidingBidCounter(4000, 1000); },
                             .key = KeyByAuction});
  PipelineResult r = Pipeline(std::move(stages)).Run(events);
  EXPECT_GT(r.state_stats.user_bytes_written, 0u);
  EXPECT_GE(r.state_stats.bytes_written, r.state_stats.user_bytes_written);
}

TEST(PipelineTest, RoundRobinSpreadsWork) {
  NexmarkGenerator gen;
  std::vector<Event> events = gen.Take(3000);
  std::atomic<int> tasks_used{0};
  std::array<std::atomic<int>, 3> per_task{};
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{
      .name = "probe", .parallelism = 3, .factory = [&per_task, &tasks_used](int idx) {
        tasks_used.fetch_add(1);
        class Probe : public RecordOperator {
         public:
          Probe(std::atomic<int>* counter) : counter_(counter) {}
          void Process(const Record&, const EmitFn&) override { counter_->fetch_add(1); }

         private:
          std::atomic<int>* counter_;
        };
        return std::make_unique<Probe>(&per_task[static_cast<size_t>(idx)]);
      },
      .key = nullptr});
  Pipeline(std::move(stages)).Run(events);
  EXPECT_EQ(tasks_used.load(), 3);
  for (const auto& c : per_task) {
    EXPECT_EQ(c.load(), 1000);  // perfect round-robin
  }
}

TEST(PipelineTest, WedgedStageTripsStallProtectionInsteadOfHanging) {
  // The middle stage stalls hard on every record (simulating a stuck task). With tiny
  // queues and a short stall timeout, the deadline-bounded barrier pushes give up, flag
  // the run as wedged, and Run() returns instead of deadlocking in the drain.
  NexmarkGenerator gen;
  std::vector<Event> events = gen.Take(40);
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "filter",
                             .parallelism = 1,
                             .factory = [](int) { return MakeBidFilter(); },
                             .key = nullptr,
                             .queue_capacity = 2});
  stages.push_back(StageSpec{
      .name = "wedge", .parallelism = 1, .factory = [](int) {
        class Wedge : public RecordOperator {
         public:
          void Process(const Record& r, const EmitFn& emit) override {
            std::this_thread::sleep_for(std::chrono::milliseconds(300));
            emit(r);
          }
        };
        return std::make_unique<Wedge>();
      },
      .key = nullptr,
      .queue_capacity = 2});
  PipelineResult r = Pipeline(std::move(stages), /*stall_timeout_s=*/0.02).Run(events);
  EXPECT_TRUE(r.wedged);
  EXPECT_GT(r.dropped_records, 0u);
  // The wedged stage still consumed something — the pipeline degraded, it didn't deadlock.
  EXPECT_LT(r.processed_per_stage[1], r.processed_per_stage[0]);
}

TEST(PipelineTest, HealthyRunNeverTripsWedgeProtection) {
  NexmarkGenerator gen;
  std::vector<Event> events = gen.Take(3000);
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "filter",
                             .parallelism = 1,
                             .factory = [](int) { return MakeBidFilter(); },
                             .key = nullptr,
                             .queue_capacity = 2});
  stages.push_back(StageSpec{.name = "count",
                             .parallelism = 2,
                             .factory = [](int) { return MakeSlidingBidCounter(4000, 2000); },
                             .key = KeyByAuction,
                             .queue_capacity = 2});
  PipelineResult r = Pipeline(std::move(stages)).Run(events);
  EXPECT_FALSE(r.wedged);
  EXPECT_EQ(r.dropped_records, 0u);
  EXPECT_EQ(r.processed_per_stage[0], 3000u);
}

TEST(PipelineTest, EmptyInputFlushesCleanly) {
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "count",
                             .parallelism = 2,
                             .factory = [](int) { return MakeSlidingBidCounter(1000, 500); },
                             .key = KeyByAuction});
  PipelineResult r = Pipeline(std::move(stages)).Run({});
  EXPECT_TRUE(r.outputs.empty());
  EXPECT_EQ(r.processed_per_stage[0], 0u);
}

}  // namespace
}  // namespace capsys
