// Tests for the per-worker contention model (src/simulator/contention.h): proportional
// sharing, per-thread caps, compaction interference, GC collisions, and utilization
// accounting.
#include <gtest/gtest.h>

#include "src/simulator/contention.h"

namespace capsys {
namespace {

WorkerSpec Spec() {
  WorkerSpec spec;
  spec.slots = 4;
  spec.cpu_capacity = 4.0;
  spec.io_bandwidth_bps = 200e6;
  spec.net_bandwidth_bps = 1e9;
  return spec;
}

TaskLoad CpuTask(double cpu_per_record, double desired) {
  TaskLoad l;
  l.cpu_per_record = cpu_per_record;
  l.desired_rate = desired;
  return l;
}

TEST(ContentionTest, EmptyWorker) {
  WorkerAllocation a = SolveWorker(Spec(), ContentionParams{}, {});
  EXPECT_TRUE(a.rate.empty());
  EXPECT_EQ(a.utilization.cpu, 0.0);
}

TEST(ContentionTest, UncontendedTaskGetsDesiredRate) {
  std::vector<TaskLoad> loads = {CpuTask(1e-4, 1000.0)};  // 0.1 cores
  WorkerAllocation a = SolveWorker(Spec(), ContentionParams{}, loads);
  EXPECT_NEAR(a.rate[0], 1000.0, 1e-9);
  EXPECT_NEAR(a.utilization.cpu, 0.1 / 4.0, 1e-9);
}

TEST(ContentionTest, SingleThreadCapLimitsOneTask) {
  // Task wants 20k rec/s at 100 us/rec = 2 cores, but a slot is one thread (1 core).
  std::vector<TaskLoad> loads = {CpuTask(1e-4, 20000.0)};
  WorkerAllocation a = SolveWorker(Spec(), ContentionParams{}, loads);
  EXPECT_NEAR(a.rate[0], 10000.0, 1e-6);
  EXPECT_NEAR(a.capacity_rate[0], 10000.0, 1e-6);
}

TEST(ContentionTest, CpuProportionalSharingWhenSaturated) {
  // 6 tasks each demanding 1 core on a 4-core worker -> each gets 2/3.
  std::vector<TaskLoad> loads;
  WorkerSpec spec = Spec();
  spec.slots = 6;
  for (int i = 0; i < 6; ++i) {
    loads.push_back(CpuTask(1e-4, 10000.0));
  }
  WorkerAllocation a = SolveWorker(spec, ContentionParams{}, loads);
  for (int i = 0; i < 6; ++i) {
    EXPECT_NEAR(a.rate[static_cast<size_t>(i)], 10000.0 * 4.0 / 6.0, 1.0);
  }
  EXPECT_NEAR(a.utilization.cpu, 1.0, 1e-9);
}

TEST(ContentionTest, LightTaskUnaffectedByDimensionItDoesNotUse) {
  // A pure-CPU task and a pure-IO task do not contend with each other.
  TaskLoad cpu = CpuTask(1e-4, 10000.0);  // 1 core
  TaskLoad io;
  io.io_per_record = 20000;  // bytes/rec
  io.desired_rate = 10000.0;  // 200 MB/s = full disk
  io.stateful = true;
  WorkerAllocation a = SolveWorker(Spec(), ContentionParams{}, {cpu, io});
  EXPECT_NEAR(a.rate[0], 10000.0, 1e-6);
  EXPECT_NEAR(a.rate[1], 10000.0, 1e-6);
}

TEST(ContentionTest, IoInterferenceShrinksBandwidth) {
  ContentionParams params;
  params.beta_io = 0.25;
  TaskLoad io;
  io.io_per_record = 10000;
  io.desired_rate = 10000.0;  // 100 MB/s each
  io.stateful = true;
  // One stateful task: full 200 MB/s available.
  WorkerAllocation solo = SolveWorker(Spec(), params, {io});
  EXPECT_NEAR(solo.effective_io_bandwidth, 200e6, 1e-3);
  EXPECT_NEAR(solo.rate[0], 10000.0, 1e-6);
  // Three stateful tasks: effective bandwidth 200/(1+0.5) = 133 MB/s for 300 MB/s demand.
  WorkerAllocation three = SolveWorker(Spec(), params, {io, io, io});
  EXPECT_NEAR(three.effective_io_bandwidth, 200e6 / 1.5, 1e-3);
  double total = three.rate[0] + three.rate[1] + three.rate[2];
  EXPECT_NEAR(total * 10000, 200e6 / 1.5, 1e3);
}

TEST(ContentionTest, NonStatefulIoDoesNotTriggerInterference) {
  ContentionParams params;
  params.beta_io = 0.25;
  TaskLoad io;
  io.io_per_record = 10000;
  io.desired_rate = 1000.0;
  io.stateful = false;  // e.g. spill-free operator
  WorkerAllocation a = SolveWorker(Spec(), params, {io, io, io});
  EXPECT_NEAR(a.effective_io_bandwidth, 200e6, 1e-3);
}

TEST(ContentionTest, GcCollisionInflatesCpuCost) {
  ContentionParams params;
  params.gc_collide = 0.5;
  TaskLoad inf = CpuTask(2e-3, 1000.0);  // solo cap 500/s before GC
  inf.gc_fraction = 0.3;
  // Solo: multiplier 1 + 0.3 = 1.3 -> cap ~384.6.
  WorkerAllocation solo = SolveWorker(Spec(), params, {inf});
  EXPECT_NEAR(solo.rate[0], 1.0 / (2e-3 * 1.3), 1e-6);
  // Two co-located GC tasks: multiplier 1 + 0.3*(1 + 0.5) = 1.45 -> cap ~344.8 each.
  WorkerAllocation pair = SolveWorker(Spec(), params, {inf, inf});
  EXPECT_NEAR(pair.rate[0], 1.0 / (2e-3 * 1.45), 1e-6);
  EXPECT_LT(pair.rate[0], solo.rate[0]);
}

TEST(ContentionTest, GcMultiplierIsCapped) {
  ContentionParams params;
  params.gc_collide = 10.0;
  params.max_gc_multiplier = 2.0;
  TaskLoad inf = CpuTask(1e-3, 1e6);
  inf.gc_fraction = 0.9;
  WorkerAllocation a = SolveWorker(Spec(), params, {inf, inf, inf, inf});
  EXPECT_NEAR(a.rate[0], 1.0 / (1e-3 * 2.0), 1e-6);
}

TEST(ContentionTest, NetworkFairShare) {
  TaskLoad net;
  net.net_per_record = 100000;  // 100 KB per record cross-worker
  net.desired_rate = 10000.0;   // 1 GB/s each, NIC is 1 GB/s
  WorkerAllocation a = SolveWorker(Spec(), ContentionParams{}, {net, net});
  EXPECT_NEAR((a.rate[0] + a.rate[1]) * 100000, 1e9, 1e4);
  EXPECT_NEAR(a.utilization.net, 1.0, 1e-9);
}

TEST(ContentionTest, ZeroNetTaskUnaffectedByNicSaturation) {
  TaskLoad net;
  net.net_per_record = 200000;
  net.desired_rate = 10000.0;
  TaskLoad local = CpuTask(1e-5, 5000.0);
  WorkerAllocation a = SolveWorker(Spec(), ContentionParams{}, {net, local});
  EXPECT_NEAR(a.rate[1], 5000.0, 1e-6);
}

TEST(ContentionTest, CapacityRateAtLeastAllocatedRate) {
  ContentionParams params;
  std::vector<TaskLoad> loads;
  for (int i = 0; i < 4; ++i) {
    TaskLoad l = CpuTask(2e-4, 3000.0);
    l.io_per_record = 5000;
    l.stateful = true;
    loads.push_back(l);
  }
  WorkerAllocation a = SolveWorker(Spec(), params, loads);
  for (size_t i = 0; i < loads.size(); ++i) {
    EXPECT_GE(a.capacity_rate[i] + 1e-6, a.rate[i]);
  }
}

TEST(ContentionTest, UtilizationNeverExceedsOne) {
  ContentionParams params;
  std::vector<TaskLoad> loads;
  for (int i = 0; i < 8; ++i) {
    TaskLoad l = CpuTask(5e-4, 1e5);
    l.io_per_record = 50000;
    l.net_per_record = 100000;
    l.stateful = true;
    l.gc_fraction = 0.2;
    loads.push_back(l);
  }
  WorkerSpec spec = Spec();
  spec.slots = 8;
  WorkerAllocation a = SolveWorker(spec, params, loads);
  EXPECT_LE(a.utilization.cpu, 1.0 + 1e-9);
  EXPECT_LE(a.utilization.io, 1.0 + 1e-9);
  EXPECT_LE(a.utilization.net, 1.0 + 1e-9);
}

// Parameterized sweep: total allocated rate never exceeds any capacity dimension, and
// rates are monotone non-increasing in co-located task count.
class ContentionSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(ContentionSweepTest, FeasibilityAndMonotonicity) {
  int n = GetParam();
  ContentionParams params;
  WorkerSpec spec = Spec();
  spec.slots = n;
  TaskLoad l;
  l.cpu_per_record = 3e-4;
  l.io_per_record = 15000;
  l.net_per_record = 20000;
  l.desired_rate = 5000.0;
  l.stateful = true;
  l.gc_fraction = 0.1;
  std::vector<TaskLoad> loads(static_cast<size_t>(n), l);
  WorkerAllocation a = SolveWorker(spec, params, loads);
  double cpu = 0.0;
  double io = 0.0;
  double net = 0.0;
  for (double r : a.rate) {
    cpu += r * l.cpu_per_record;  // lower bound: GC inflation only increases usage
    io += r * l.io_per_record;
    net += r * l.net_per_record;
  }
  EXPECT_LE(cpu, spec.cpu_capacity + 1e-6);
  EXPECT_LE(io, a.effective_io_bandwidth + 1.0);
  EXPECT_LE(net, spec.net_bandwidth_bps + 1.0);
  if (n > 1) {
    std::vector<TaskLoad> fewer(static_cast<size_t>(n - 1), l);
    WorkerAllocation b = SolveWorker(spec, params, fewer);
    EXPECT_LE(a.rate[0], b.rate[0] + 1e-6);  // more co-location never speeds a task up
  }
}

INSTANTIATE_TEST_SUITE_P(TaskCounts, ContentionSweepTest, ::testing::Range(1, 9));

}  // namespace
}  // namespace capsys
