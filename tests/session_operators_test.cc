// Tests for the session-window and running-average runtime operators against reference
// implementations.
#include <gtest/gtest.h>

#include <map>

#include "src/nexmark/generator.h"
#include "src/runtime/pipeline.h"

namespace capsys {
namespace {

// Reference session computation: per bidder, sessions separated by > gap.
std::map<std::pair<int64_t, int64_t>, int64_t> ReferenceSessions(
    const std::vector<Event>& events, int64_t gap_ms) {
  struct Session {
    int64_t start;
    int64_t last;
    int64_t count;
  };
  std::map<int64_t, Session> open;
  std::map<std::pair<int64_t, int64_t>, int64_t> closed;  // (bidder, start) -> count
  for (const Event& e : events) {
    if (e.kind != Event::Kind::kBid) {
      continue;
    }
    int64_t bidder = e.bid().bidder;
    auto it = open.find(bidder);
    if (it != open.end() && e.timestamp_ms - it->second.last > gap_ms) {
      closed[{bidder, it->second.start}] = it->second.count;
      open.erase(it);
      it = open.end();
    }
    if (it == open.end()) {
      open[bidder] = Session{e.timestamp_ms, e.timestamp_ms, 1};
    } else {
      it->second.last = e.timestamp_ms;
      ++it->second.count;
    }
  }
  for (const auto& [bidder, s] : open) {
    closed[{bidder, s.start}] = s.count;
  }
  return closed;
}

TEST(SessionWindowTest, MatchesReferenceSingleTask) {
  GeneratorConfig config;
  config.events_per_second = 200;  // sparse stream so sessions actually close
  NexmarkGenerator gen(config);
  std::vector<Event> events = gen.Take(3000);
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "sessions",
                             .parallelism = 1,
                             .factory = [](int) { return MakeSessionBidCounter(2000); },
                             .key = nullptr});
  PipelineResult r = Pipeline(std::move(stages)).Run(events);
  std::map<std::pair<int64_t, int64_t>, int64_t> got;
  for (const Record& rec : r.outputs) {
    const auto& agg = std::get<AggregateResult>(rec);
    got[{std::stoll(agg.key), agg.window_start_ms}] = static_cast<int64_t>(agg.value);
  }
  EXPECT_EQ(got, ReferenceSessions(events, 2000));
}

TEST(SessionWindowTest, MatchesReferenceWithKeyedParallelism) {
  GeneratorConfig config;
  config.events_per_second = 500;
  NexmarkGenerator gen(config);
  std::vector<Event> events = gen.Take(6000);
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "sessions",
                             .parallelism = 4,
                             .factory = [](int) { return MakeSessionBidCounter(1500); },
                             .key = KeyByPersonOrSeller});  // bids key by bidder
  PipelineResult r = Pipeline(std::move(stages)).Run(events);
  std::map<std::pair<int64_t, int64_t>, int64_t> got;
  for (const Record& rec : r.outputs) {
    const auto& agg = std::get<AggregateResult>(rec);
    got[{std::stoll(agg.key), agg.window_start_ms}] = static_cast<int64_t>(agg.value);
  }
  EXPECT_EQ(got, ReferenceSessions(events, 1500));
}

TEST(SessionWindowTest, SingleBurstMakesOneSession) {
  std::vector<Event> events;
  for (int i = 0; i < 5; ++i) {
    Event e;
    e.kind = Event::Kind::kBid;
    Bid b;
    b.bidder = 42;
    b.auction = 1000;
    b.timestamp_ms = 100 * i;
    e.payload = b;
    e.timestamp_ms = b.timestamp_ms;
    events.push_back(e);
  }
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "sessions",
                             .parallelism = 1,
                             .factory = [](int) { return MakeSessionBidCounter(1000); },
                             .key = nullptr});
  PipelineResult r = Pipeline(std::move(stages)).Run(events);
  ASSERT_EQ(r.outputs.size(), 1u);
  const auto& agg = std::get<AggregateResult>(r.outputs[0]);
  EXPECT_EQ(agg.key, "42");
  EXPECT_EQ(agg.value, 5.0);
  EXPECT_EQ(agg.window_start_ms, 0);
}

TEST(AveragePriceTest, RunningAverageIsExact) {
  std::vector<Event> events;
  std::vector<int64_t> prices = {100, 200, 600};
  for (size_t i = 0; i < prices.size(); ++i) {
    Event e;
    e.kind = Event::Kind::kBid;
    Bid b;
    b.bidder = 1;
    b.auction = 7;
    b.price = prices[i];
    b.timestamp_ms = static_cast<int64_t>(i);
    e.payload = b;
    e.timestamp_ms = b.timestamp_ms;
    events.push_back(e);
  }
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "avg",
                             .parallelism = 1,
                             .factory = [](int) { return MakeAveragePricePerAuction(); },
                             .key = nullptr});
  PipelineResult r = Pipeline(std::move(stages)).Run(events);
  ASSERT_EQ(r.outputs.size(), 3u);
  EXPECT_EQ(std::get<AggregateResult>(r.outputs[0]).value, 100.0);
  EXPECT_EQ(std::get<AggregateResult>(r.outputs[1]).value, 150.0);
  EXPECT_EQ(std::get<AggregateResult>(r.outputs[2]).value, 300.0);
}

TEST(AveragePriceTest, PerAuctionIsolation) {
  NexmarkGenerator gen;
  std::vector<Event> events = gen.Take(4000);
  std::vector<StageSpec> stages;
  stages.push_back(StageSpec{.name = "avg",
                             .parallelism = 3,
                             .factory = [](int) { return MakeAveragePricePerAuction(); },
                             .key = KeyByAuction});
  PipelineResult r = Pipeline(std::move(stages)).Run(events);
  // Reference: final average per auction.
  std::map<int64_t, std::pair<int64_t, int64_t>> totals;  // auction -> (count, sum)
  for (const Event& e : events) {
    if (e.kind == Event::Kind::kBid) {
      auto& t = totals[e.bid().auction];
      ++t.first;
      t.second += e.bid().price;
    }
  }
  // The last emitted value per auction must equal the reference final average.
  std::map<int64_t, double> last;
  for (const Record& rec : r.outputs) {
    const auto& agg = std::get<AggregateResult>(rec);
    last[std::stoll(agg.key)] = agg.value;
  }
  ASSERT_EQ(last.size(), totals.size());
  for (const auto& [auction, t] : totals) {
    EXPECT_NEAR(last[auction], static_cast<double>(t.second) / t.first, 1e-9) << auction;
  }
}

}  // namespace
}  // namespace capsys
