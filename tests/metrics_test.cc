// Tests for the metrics layer: TimeSeries window math (binary-search MeanOver over the
// prefix sum), the monotonic-append invariant, counters, fixed-bucket histograms, and the
// Prometheus / JSON exporters built on top of them.
#include "src/metrics/metrics.h"

#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "src/obs/exporters.h"

namespace capsys {
namespace {

TEST(TimeSeries, EmptySeries) {
  TimeSeries ts;
  EXPECT_TRUE(ts.Empty());
  EXPECT_EQ(ts.Count(), 0u);
  EXPECT_DOUBLE_EQ(ts.MeanOver(0.0, 100.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.Mean(), 0.0);
}

TEST(TimeSeries, SinglePoint) {
  TimeSeries ts;
  ts.Record(5.0, 42.0);
  EXPECT_DOUBLE_EQ(ts.Last(), 42.0);
  EXPECT_DOUBLE_EQ(ts.LastTime(), 5.0);
  // Window containing the point.
  EXPECT_DOUBLE_EQ(ts.MeanOver(0.0, 10.0), 42.0);
  // Inclusive bounds on both ends.
  EXPECT_DOUBLE_EQ(ts.MeanOver(5.0, 5.0), 42.0);
  // Windows strictly before / strictly after the point.
  EXPECT_DOUBLE_EQ(ts.MeanOver(0.0, 4.9), 0.0);
  EXPECT_DOUBLE_EQ(ts.MeanOver(5.1, 10.0), 0.0);
}

TEST(TimeSeries, WindowedMeans) {
  TimeSeries ts;
  for (int i = 0; i < 10; ++i) {
    ts.Record(static_cast<double>(i), static_cast<double>(i * 10));  // v(t) = 10 t
  }
  EXPECT_DOUBLE_EQ(ts.Mean(), 45.0);
  EXPECT_DOUBLE_EQ(ts.MeanOver(0.0, 9.0), 45.0);
  EXPECT_DOUBLE_EQ(ts.MeanOver(2.0, 4.0), 30.0);   // samples at 2, 3, 4
  EXPECT_DOUBLE_EQ(ts.MeanOver(2.5, 4.5), 35.0);   // samples at 3, 4
  EXPECT_DOUBLE_EQ(ts.MeanOver(9.0, 100.0), 90.0); // last sample only
  EXPECT_DOUBLE_EQ(ts.MeanSince(8.0), 85.0);       // samples at 8, 9
  // Out-of-range and inverted windows are empty.
  EXPECT_DOUBLE_EQ(ts.MeanOver(100.0, 200.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.MeanOver(-50.0, -1.0), 0.0);
  EXPECT_DOUBLE_EQ(ts.MeanOver(4.0, 2.0), 0.0);
}

TEST(TimeSeries, MatchesNaiveMeanOnDenseSeries) {
  TimeSeries ts;
  std::vector<TimeSeries::Point> pts;
  double t = 0.0;
  for (int i = 0; i < 500; ++i) {
    t += 0.1 + 0.01 * (i % 7);  // uneven but increasing spacing
    double v = std::sin(i * 0.3) * 100.0;
    ts.Record(t, v);
    pts.push_back({t, v});
  }
  auto naive = [&](double from, double to) {
    double sum = 0.0;
    int n = 0;
    for (const auto& p : pts) {
      if (p.time_s >= from && p.time_s <= to) {
        sum += p.value;
        ++n;
      }
    }
    return n > 0 ? sum / n : 0.0;
  };
  for (double from = -1.0; from < t + 2.0; from += 3.7) {
    for (double span = 0.05; span < 20.0; span *= 3.0) {
      EXPECT_NEAR(ts.MeanOver(from, from + span), naive(from, from + span), 1e-9)
          << "window [" << from << ", " << from + span << "]";
    }
  }
}

TEST(TimeSeriesDeathTest, RejectsNonMonotonicAppend) {
  TimeSeries ts;
  ts.Record(10.0, 1.0);
  ts.Record(10.0, 2.0);  // equal time is allowed
  EXPECT_DEATH(ts.Record(9.0, 3.0), "");
}

TEST(MetricsRegistry, FindVersusSeries) {
  MetricsRegistry r;
  EXPECT_EQ(r.Find("task.0.rate"), nullptr);
  r.Series("task.0.rate");  // creates empty
  ASSERT_NE(r.Find("task.0.rate"), nullptr);
  EXPECT_TRUE(r.Find("task.0.rate")->Empty());
  r.Record("task.0.rate", 1.0, 5.0);
  EXPECT_EQ(r.Find("task.0.rate")->Count(), 1u);
  EXPECT_EQ(r.Names(), std::vector<std::string>{"task.0.rate"});
}

TEST(MetricsRegistry, LastOrAndMeanSinceOr) {
  MetricsRegistry r;
  EXPECT_DOUBLE_EQ(r.LastOr("missing", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(r.MeanSinceOr("missing", 0.0, -2.0), -2.0);
  r.Record("query.0.throughput", 1.0, 100.0);
  r.Record("query.0.throughput", 2.0, 200.0);
  EXPECT_DOUBLE_EQ(r.LastOr("query.0.throughput", -1.0), 200.0);
  EXPECT_DOUBLE_EQ(r.MeanSinceOr("query.0.throughput", 1.5, -1.0), 200.0);
  EXPECT_DOUBLE_EQ(r.MeanSinceOr("query.0.throughput", 0.0, -1.0), 150.0);
}

TEST(Counter, AccumulatesAndRegisters) {
  MetricsRegistry r;
  EXPECT_EQ(r.FindCounter("chaos.0.ticks"), nullptr);
  r.GetCounter("chaos.0.ticks").Add();
  r.GetCounter("chaos.0.ticks").Add(41);
  ASSERT_NE(r.FindCounter("chaos.0.ticks"), nullptr);
  EXPECT_EQ(r.FindCounter("chaos.0.ticks")->Value(), 42u);
  EXPECT_EQ(r.CounterNames(), std::vector<std::string>{"chaos.0.ticks"});
  // Counters and series live in separate namespaces.
  r.Record("chaos.0.ticks", 1.0, 7.0);
  EXPECT_EQ(r.FindCounter("chaos.0.ticks")->Value(), 42u);
}

TEST(Histogram, BucketsAndPercentiles) {
  Histogram h({1.0, 10.0, 100.0});
  for (int i = 1; i <= 100; ++i) {
    h.Observe(static_cast<double>(i));  // 1..100
  }
  EXPECT_EQ(h.Count(), 100u);
  EXPECT_DOUBLE_EQ(h.Sum(), 5050.0);
  EXPECT_DOUBLE_EQ(h.Mean(), 50.5);
  ASSERT_EQ(h.bounds().size(), 3u);
  ASSERT_EQ(h.bucket_counts().size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(h.bucket_counts()[0], 1u);      // <= 1
  EXPECT_EQ(h.bucket_counts()[1], 9u);      // (1, 10]
  EXPECT_EQ(h.bucket_counts()[2], 90u);     // (10, 100]
  EXPECT_EQ(h.bucket_counts()[3], 0u);      // > 100
  h.Observe(1e6);
  EXPECT_EQ(h.bucket_counts()[3], 1u);
  // Exact percentiles come from the retained sample distribution.
  EXPECT_NEAR(h.Percentile(50), 50.5, 1.0);
  EXPECT_NEAR(h.Percentile(95), 95.5, 1.5);
}

TEST(Histogram, RegistryKeepsCreationBounds) {
  MetricsRegistry r;
  Histogram& h = r.GetHistogram("chaos.0.replan_seconds", {0.5, 1.5});
  h.Observe(1.0);
  // Later Gets ignore the bounds argument and return the same instance.
  EXPECT_EQ(&r.GetHistogram("chaos.0.replan_seconds", {9.0}), &h);
  ASSERT_NE(r.FindHistogram("chaos.0.replan_seconds"), nullptr);
  EXPECT_EQ(r.FindHistogram("chaos.0.replan_seconds")->Count(), 1u);
  // Default buckets apply when no bounds are given.
  EXPECT_EQ(r.GetHistogram("other").bounds(), Histogram::DefaultBuckets());
}

// --- Exporters ------------------------------------------------------------------------------

// Minimal parser for the Prometheus text format: returns sample lines keyed by
// "name{labels}" and validates comment structure as it goes.
std::map<std::string, double> ParsePrometheus(const std::string& text) {
  std::map<std::string, double> samples;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# TYPE ", 0) == 0 || line.rfind("# HELP ", 0) == 0)
          << "bad comment: " << line;
      continue;
    }
    size_t space = line.rfind(' ');
    EXPECT_NE(space, std::string::npos) << "bad sample line: " << line;
    if (space == std::string::npos) {
      continue;
    }
    samples[line.substr(0, space)] = std::stod(line.substr(space + 1));
  }
  return samples;
}

TEST(Exporters, PrometheusTextRoundTrips) {
  MetricsRegistry r;
  r.Record("task.7.true_rate", 1.0, 100.0);
  r.Record("task.7.true_rate", 2.0, 300.0);  // gauge exports the last value
  r.Record("worker.2.cpu_util", 2.0, 0.5);
  r.GetCounter("sim.0.ticks").Add(1234);
  Histogram& h = r.GetHistogram("chaos.0.replan_seconds", {0.1, 1.0});
  h.Observe(0.05);
  h.Observe(0.5);
  h.Observe(5.0);

  std::string text = PrometheusText(r);
  auto samples = ParsePrometheus(text);

  EXPECT_DOUBLE_EQ(samples.at("capsys_task_true_rate{task=\"7\"}"), 300.0);
  EXPECT_DOUBLE_EQ(samples.at("capsys_worker_cpu_util{worker=\"2\"}"), 0.5);
  EXPECT_DOUBLE_EQ(samples.at("capsys_sim_ticks_total{sim=\"0\"}"), 1234.0);
  // Histogram: cumulative buckets, +Inf bucket equals _count, plus _sum.
  EXPECT_DOUBLE_EQ(samples.at("capsys_chaos_replan_seconds_bucket{chaos=\"0\",le=\"0.1\"}"),
                   1.0);
  EXPECT_DOUBLE_EQ(samples.at("capsys_chaos_replan_seconds_bucket{chaos=\"0\",le=\"1\"}"),
                   2.0);
  EXPECT_DOUBLE_EQ(samples.at("capsys_chaos_replan_seconds_bucket{chaos=\"0\",le=\"+Inf\"}"),
                   3.0);
  EXPECT_DOUBLE_EQ(samples.at("capsys_chaos_replan_seconds_count{chaos=\"0\"}"), 3.0);
  EXPECT_DOUBLE_EQ(samples.at("capsys_chaos_replan_seconds_sum{chaos=\"0\"}"), 5.55);
  // Exactly one TYPE header per family.
  EXPECT_NE(text.find("# TYPE capsys_task_true_rate gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE capsys_sim_ticks_total counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE capsys_chaos_replan_seconds histogram"), std::string::npos);
}

TEST(Exporters, PrometheusSanitizesNonConventionNames) {
  MetricsRegistry r;
  r.Record("weird name-with.dots", 0.0, 1.0);
  std::string text = PrometheusText(r);
  auto samples = ParsePrometheus(text);
  ASSERT_EQ(samples.size(), 1u);
  for (const auto& [key, value] : samples) {
    // Sanitized wholesale: metric chars only, no braces.
    EXPECT_EQ(key.find('{'), std::string::npos) << key;
    for (char c : key) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == ':') << key;
    }
    EXPECT_DOUBLE_EQ(value, 1.0);
  }
}

TEST(Exporters, MetricsJsonContainsEverything) {
  MetricsRegistry r;
  r.Record("op.1.emit_rate", 1.0, 10.0);
  r.Record("op.1.emit_rate", 2.0, 20.0);
  r.GetCounter("sim.0.flushes").Add(3);
  r.GetHistogram("query.0.latency", {0.5}).Observe(0.25);

  std::string json = MetricsJson(r);
  EXPECT_NE(json.find("\"op.1.emit_rate\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.0.flushes\""), std::string::npos);
  EXPECT_NE(json.find("\"query.0.latency\""), std::string::npos);
  EXPECT_NE(json.find("\"p50\""), std::string::npos);
  EXPECT_NE(json.find("\"p99\""), std::string::npos);
  // All series points are present, not just the last value.
  EXPECT_NE(json.find("1,"), std::string::npos);
}

TEST(MetricsRegistry, ClearDropsAllInstrumentKinds) {
  MetricsRegistry r;
  r.Record("a.0.x", 0.0, 1.0);
  r.GetCounter("b.0.y").Add();
  r.GetHistogram("c.0.z").Observe(1.0);
  r.Clear();
  EXPECT_TRUE(r.Names().empty());
  EXPECT_TRUE(r.CounterNames().empty());
  EXPECT_TRUE(r.HistogramNames().empty());
}

}  // namespace
}  // namespace capsys
