// Tests for heterogeneous-cluster support (an extension beyond the paper's homogeneous
// model): spec-restricted duplicate elimination, capacity-aware canonical keys, and
// end-to-end placement on mixed hardware.
#include <gtest/gtest.h>

#include <set>

#include "src/caps/cost_model.h"
#include "src/caps/greedy.h"
#include "src/caps/search.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

Cluster MixedCluster() {
  // Two big workers and two small ones.
  std::vector<WorkerSpec> specs = {WorkerSpec::M5d2xlarge(8), WorkerSpec::M5d2xlarge(8),
                                   WorkerSpec::R5dXlarge(4), WorkerSpec::R5dXlarge(4)};
  return Cluster(std::move(specs));
}

// Brute-force distinct plans on a (possibly heterogeneous) cluster via canonical keys.
int BruteForceDistinctPlans(const PhysicalGraph& graph, const Cluster& cluster) {
  int n = graph.num_tasks();
  int w = cluster.num_workers();
  std::set<std::string> keys;
  std::vector<WorkerId> assign(static_cast<size_t>(n), 0);
  while (true) {
    Placement plan(assign);
    if (plan.Validate(graph, cluster).empty()) {
      keys.insert(plan.CanonicalKey(graph, cluster));
    }
    int i = 0;
    for (; i < n; ++i) {
      if (++assign[static_cast<size_t>(i)] < w) {
        break;
      }
      assign[static_cast<size_t>(i)] = 0;
    }
    if (i == n) {
      break;
    }
  }
  return static_cast<int>(keys.size());
}

TEST(HeterogeneousClusterTest, BasicProperties) {
  Cluster c = MixedCluster();
  EXPECT_FALSE(c.IsHomogeneous());
  EXPECT_EQ(c.total_slots(), 24);
  EXPECT_EQ(c.slots_per_worker(), 8);  // largest worker
  EXPECT_TRUE(Cluster(3, WorkerSpec::R5dXlarge(4)).IsHomogeneous());
}

TEST(HeterogeneousClusterTest, SearchMatchesBruteForceOnMixedHardware) {
  // Small instance: 2-op chain on a 2-big + 1-small cluster.
  LogicalGraph g("hetero");
  OperatorProfile p;
  p.cpu_per_record = 1e-5;
  p.out_bytes_per_record = 100;
  OperatorId a = g.AddOperator("a", OperatorKind::kSource, p, 2);
  OperatorId b = g.AddOperator("b", OperatorKind::kSink, p, 3);
  g.AddEdge(a, b);
  PhysicalGraph graph = PhysicalGraph::Expand(g);
  std::vector<WorkerSpec> specs = {WorkerSpec::M5d2xlarge(3), WorkerSpec::M5d2xlarge(3),
                                   WorkerSpec::R5dXlarge(2)};
  Cluster cluster(std::move(specs));
  CostModel model(graph, cluster, TaskDemands(graph, PropagateRates(g, 1000.0)));
  auto plans = EnumerateAllPlans(model);
  int expected = BruteForceDistinctPlans(graph, cluster);
  EXPECT_EQ(static_cast<int>(plans.size()), expected);
  // No duplicates among enumerated plans.
  std::set<std::string> keys;
  for (const auto& plan : plans) {
    EXPECT_TRUE(keys.insert(plan.placement.CanonicalKey(graph, cluster)).second);
  }
}

TEST(HeterogeneousClusterTest, MoreDistinctPlansThanHomogeneousEquivalent) {
  // Breaking homogeneity reduces symmetry, so there are strictly more distinct plans.
  LogicalGraph g("hetero2");
  OperatorProfile p;
  p.cpu_per_record = 1e-5;
  p.out_bytes_per_record = 100;
  OperatorId a = g.AddOperator("a", OperatorKind::kSource, p, 2);
  OperatorId b = g.AddOperator("b", OperatorKind::kSink, p, 2);
  g.AddEdge(a, b);
  PhysicalGraph graph = PhysicalGraph::Expand(g);
  auto rates = PropagateRates(g, 1000.0);

  Cluster homo(3, WorkerSpec::R5dXlarge(2));
  CostModel homo_model(graph, homo, TaskDemands(graph, rates));
  size_t homo_plans = EnumerateAllPlans(homo_model).size();

  std::vector<WorkerSpec> specs = {WorkerSpec::R5dXlarge(2), WorkerSpec::R5dXlarge(2),
                                   WorkerSpec::M5d2xlarge(2)};
  Cluster hetero(std::move(specs));
  CostModel hetero_model(graph, hetero, TaskDemands(graph, rates));
  size_t hetero_plans = EnumerateAllPlans(hetero_model).size();
  EXPECT_GT(hetero_plans, homo_plans);
}

TEST(HeterogeneousClusterTest, GreedyAndSearchProduceValidPlans) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster = MixedCluster();
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  Placement greedy = GreedyBalancedPlacement(model);
  EXPECT_EQ(greedy.Validate(graph, cluster), "");
  SearchOptions options;
  options.find_first = true;
  SearchResult r = CapsSearch(model, options).Run();
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.best.placement.Validate(graph, cluster), "");
}

TEST(HeterogeneousClusterTest, SimulatorRespectsPerWorkerCapacities) {
  // One heavy CPU task on a small worker vs on a big worker.
  LogicalGraph g("cap");
  OperatorProfile heavy;
  heavy.cpu_per_record = 1e-3;  // solo thread cap: 1000 rec/s
  g.AddOperator("src", OperatorKind::kSource, heavy, 2);
  PhysicalGraph graph = PhysicalGraph::Expand(g);
  std::vector<WorkerSpec> specs = {WorkerSpec::C5d4xlarge(4), WorkerSpec::R5dXlarge(4)};
  Cluster cluster(std::move(specs));
  // Both tasks on the small (4-core) worker still fit (2 cores of demand at 1000/s each).
  Placement plan(std::vector<WorkerId>{1, 1});
  FluidSimulator sim(graph, cluster, plan);
  sim.SetAllSourceRates(1600.0);
  QuerySummary s = sim.RunMeasured(20, 40);
  EXPECT_NEAR(s.throughput, 1600.0, 20.0);
}

TEST(HeterogeneousClusterTest, CanonicalKeyDistinguishesSpecPlacement) {
  // Same task multiset on a big vs small worker must be distinct plans.
  LogicalGraph g("pair");
  OperatorProfile p;
  p.cpu_per_record = 1e-5;
  g.AddOperator("a", OperatorKind::kSource, p, 1);
  PhysicalGraph graph = PhysicalGraph::Expand(g);
  std::vector<WorkerSpec> specs = {WorkerSpec::M5d2xlarge(2), WorkerSpec::R5dXlarge(2)};
  Cluster cluster(std::move(specs));
  Placement on_big(std::vector<WorkerId>{0});
  Placement on_small(std::vector<WorkerId>{1});
  EXPECT_NE(on_big.CanonicalKey(graph, cluster), on_small.CanonicalKey(graph, cluster));
}

TEST(CapacityNormalizedModelTest, EqualsAbsoluteModelOnHomogeneousClusters) {
  // On homogeneous hardware, normalization divides all loads and both L bounds by the same
  // constants, so every plan's cost vector is identical in both models.
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto demands = TaskDemands(graph, PropagateRates(q.graph, q.source_rates));
  CostModel absolute(graph, cluster, demands);
  CostModelOptions options;
  options.normalize_by_capacity = true;
  CostModel normalized(graph, cluster, demands, options);
  auto plans = EnumerateAllPlans(absolute);
  for (size_t i = 0; i < plans.size(); i += 11) {
    ResourceVector a = absolute.Cost(plans[i].placement);
    ResourceVector b = normalized.Cost(plans[i].placement);
    EXPECT_NEAR(a.cpu, b.cpu, 1e-9);
    EXPECT_NEAR(a.io, b.io, 1e-9);
    EXPECT_NEAR(a.net, b.net, 1e-9);
  }
}

TEST(CapacityNormalizedModelTest, PrefersBigWorkersForHeavyTasks) {
  QuerySpec q = BuildQ1Sliding();
  q.graph.SetParallelism({2, 6, 10, 1});
  std::vector<WorkerSpec> specs = {WorkerSpec::M5d2xlarge(8), WorkerSpec::M5d2xlarge(8),
                                   WorkerSpec::R5dXlarge(4), WorkerSpec::R5dXlarge(4),
                                   WorkerSpec::R5dXlarge(4), WorkerSpec::R5dXlarge(4)};
  Cluster cluster(std::move(specs));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto demands = TaskDemands(graph, PropagateRates(q.graph, q.source_rates));
  CostModelOptions options;
  options.normalize_by_capacity = true;
  CostModel model(graph, cluster, demands, options);
  SearchResult r = CapsSearch(model, SearchOptions{}).Run();
  ASSERT_TRUE(r.found);
  // The big workers (2x the disk) should host more than their per-worker share of the 10
  // I/O-heavy window tasks.
  int on_big = 0;
  for (TaskId t : graph.TasksOf(2)) {
    on_big += r.best.placement.WorkerOf(t) < 2 ? 1 : 0;
  }
  EXPECT_GE(on_big, 4);  // 2 of 6 workers but >= 40% of the window tasks
}

TEST(CapacityNormalizedModelTest, SearchIncrementalCostsMatchModel) {
  QuerySpec q = BuildQ3Inf();
  std::vector<WorkerSpec> specs = {WorkerSpec::M5d2xlarge(6), WorkerSpec::R5dXlarge(4),
                                   WorkerSpec::R5dXlarge(4)};
  Cluster cluster(std::move(specs));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto demands = TaskDemands(graph, PropagateRates(q.graph, q.source_rates));
  CostModelOptions options;
  options.normalize_by_capacity = true;
  CostModel model(graph, cluster, demands, options);
  auto plans = EnumerateAllPlans(model);
  ASSERT_FALSE(plans.empty());
  for (size_t i = 0; i < plans.size(); i += 97) {
    ResourceVector direct = model.Cost(plans[i].placement);
    EXPECT_NEAR(plans[i].cost.cpu, direct.cpu, 1e-9);
    EXPECT_NEAR(plans[i].cost.io, direct.io, 1e-9);
    EXPECT_NEAR(plans[i].cost.net, direct.net, 1e-9);
  }
}

}  // namespace
}  // namespace capsys
