// Tests for the online multi-job placement service (src/scheduler): the versioned cluster
// view's optimistic commit protocol, the plan cache keys, and the full service under
// concurrent submitters, admission pressure, and crash storms. The concurrency tests are
// run under ASan and TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>
#include <thread>
#include <vector>

#include "src/dataflow/physical_graph.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/scheduler/cluster_view.h"
#include "src/scheduler/job.h"
#include "src/scheduler/placement_service.h"
#include "src/scheduler/plan_cache.h"

namespace capsys {
namespace {

// source -> map(p) -> sink pipeline: 2 + p tasks, all edges hash-partitioned (scalable).
JobSpec MakePipelineJob(const std::string& name, int map_parallelism, double rate) {
  JobSpec spec;
  spec.name = name;
  spec.graph = LogicalGraph(name);
  OperatorProfile src_profile;
  src_profile.cpu_per_record = 1e-6;
  OperatorProfile map_profile;
  map_profile.cpu_per_record = 5e-6;
  map_profile.io_bytes_per_record = 50;
  map_profile.stateful = true;
  OperatorProfile sink_profile;
  sink_profile.cpu_per_record = 1e-6;
  OperatorId src = spec.graph.AddOperator("src", OperatorKind::kSource, src_profile, 1);
  OperatorId map =
      spec.graph.AddOperator("map", OperatorKind::kMap, map_profile, map_parallelism);
  OperatorId sink = spec.graph.AddOperator("sink", OperatorKind::kSink, sink_profile, 1);
  spec.graph.AddEdge(src, map, PartitionScheme::kHash);
  spec.graph.AddEdge(map, sink, PartitionScheme::kHash);
  spec.source_rates[src] = rate;
  return spec;
}

SchedulerOptions FastOptions(int planner_threads = 2) {
  SchedulerOptions options;
  options.planner_threads = planner_threads;
  options.search_timeout_s = 0.25;
  options.autotune.timeout_s = 0.1;
  options.autotune.probe_timeout_s = 0.02;
  return options;
}

int SumReservation(const SlotReservation& r) {
  int total = 0;
  for (int slots : r) {
    total += slots;
  }
  return total;
}

// ---------------------------------------------------------------- ClusterView protocol --

TEST(ClusterViewTest, SnapshotCommitRelease) {
  ClusterView view(Cluster(2, WorkerSpec{.slots = 4}));
  ClusterSnapshot snap = view.Snapshot();
  EXPECT_EQ(snap.total_free, 8);
  EXPECT_EQ(view.TryCommit(1, snap.epoch, {3, 1}), CommitResult::kCommitted);
  EXPECT_EQ(view.TotalFreeSlots(), 4);
  EXPECT_EQ(SumReservation(view.ReservationOf(1)), 4);
  EXPECT_EQ(view.CheckInvariants(), "");
  EXPECT_TRUE(view.Release(1));
  EXPECT_EQ(view.TotalFreeSlots(), 8);
  EXPECT_FALSE(view.Release(1));
  EXPECT_EQ(view.CheckInvariants(), "");
}

// The textbook optimistic protocol: conflict on any epoch advance, retry from a fresh
// snapshot, eventual commit.
TEST(ClusterViewTest, StrictConflictRetryCommit) {
  ClusterView view(Cluster(2, WorkerSpec{.slots = 4}));
  ClusterSnapshot snap_a = view.Snapshot();
  ClusterSnapshot snap_b = view.Snapshot();
  EXPECT_EQ(view.TryCommit(1, snap_a.epoch, {2, 0}, /*allow_stale=*/false),
            CommitResult::kCommitted);
  // B's snapshot epoch is stale now: strict mode refuses even though {0, 2} would fit.
  EXPECT_EQ(view.TryCommit(2, snap_b.epoch, {0, 2}, /*allow_stale=*/false),
            CommitResult::kConflict);
  EXPECT_EQ(view.conflicts(), 1u);
  // Retry from a fresh snapshot succeeds.
  ClusterSnapshot retry = view.Snapshot();
  EXPECT_EQ(retry.total_free, 6);
  EXPECT_EQ(view.TryCommit(2, retry.epoch, {0, 2}, /*allow_stale=*/false),
            CommitResult::kCommitted);
  EXPECT_EQ(view.CheckInvariants(), "");
}

TEST(ClusterViewTest, StaleCommitRevalidates) {
  ClusterView view(Cluster(2, WorkerSpec{.slots = 4}));
  ClusterSnapshot snap_b = view.Snapshot();
  ASSERT_EQ(view.TryCommit(1, snap_b.epoch, {2, 0}), CommitResult::kCommitted);
  // Non-intersecting reservation still fits: committed as stale.
  EXPECT_EQ(view.TryCommit(2, snap_b.epoch, {0, 3}), CommitResult::kCommittedStale);
  EXPECT_EQ(view.stale_commits(), 1u);
  // Overlapping reservation that no longer fits: conflict, never a double-booking.
  EXPECT_EQ(view.TryCommit(3, snap_b.epoch, {3, 1}), CommitResult::kConflict);
  EXPECT_EQ(view.CheckInvariants(), "");
}

TEST(ClusterViewTest, MakeBeforeBreakSwap) {
  ClusterView view(Cluster(2, WorkerSpec{.slots = 4}));
  ASSERT_EQ(view.TryCommit(1, view.epoch(), {4, 0}), CommitResult::kCommitted);
  // The job's own slots count as free in its snapshot, so it can move 4 -> {2, 2}.
  ClusterSnapshot snap = view.SnapshotFor(1);
  EXPECT_EQ(snap.total_free, 8);
  EXPECT_EQ(view.TryCommit(1, snap.epoch, {2, 2}), CommitResult::kCommitted);
  EXPECT_EQ(view.TotalFreeSlots(), 4);
  EXPECT_EQ(view.CheckInvariants(), "");
}

TEST(ClusterViewTest, WorkerDeathDropsReservationsAndReportsAffected) {
  ClusterView view(Cluster(3, WorkerSpec{.slots = 4}));
  ASSERT_EQ(view.TryCommit(1, view.epoch(), {2, 2, 0}), CommitResult::kCommitted);
  ASSERT_EQ(view.TryCommit(2, view.epoch(), {0, 0, 3}), CommitResult::kCommitted);
  std::map<JobId, int> affected = view.MarkWorkerDown(1);
  ASSERT_EQ(affected.size(), 1u);
  EXPECT_EQ(affected[1], 2);
  EXPECT_FALSE(view.IsWorkerUsable(1));
  EXPECT_EQ(view.TotalSlots(), 8);
  EXPECT_EQ(SumReservation(view.ReservationOf(1)), 2);  // survivors only
  EXPECT_EQ(view.CheckInvariants(), "");
  // Commits touching the dead worker conflict until it is restored.
  EXPECT_EQ(view.TryCommit(3, view.epoch(), {0, 1, 0}), CommitResult::kConflict);
  view.MarkWorkerUp(1);
  EXPECT_EQ(view.TryCommit(3, view.epoch(), {0, 1, 0}), CommitResult::kCommitted);
  EXPECT_EQ(view.CheckInvariants(), "");
}

TEST(ClusterViewTest, ConcurrentCommittersNeverDoubleBook) {
  const int kWorkers = 4;
  const int kSlots = 4;
  const int kThreads = 8;
  ClusterView view(Cluster(kWorkers, WorkerSpec{.slots = kSlots}));
  std::atomic<int> committed{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&view, &committed, t] {
      // Each thread fights to reserve 2 slots somewhere, retrying on conflict.
      for (int attempt = 0; attempt < 200; ++attempt) {
        ClusterSnapshot snap = view.Snapshot();
        SlotReservation want(kWorkers, 0);
        int need = 2;
        for (int w = 0; w < kWorkers && need > 0; ++w) {
          int take = std::min(need, snap.free_slots[static_cast<size_t>(w)]);
          want[static_cast<size_t>(w)] = take;
          need -= take;
        }
        if (need > 0) {
          return;  // cluster full; this thread loses
        }
        if (view.TryCommit(t + 1, snap.epoch, want) != CommitResult::kConflict) {
          committed.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& t : threads) {
    t.join();
  }
  EXPECT_EQ(view.CheckInvariants(), "");
  EXPECT_EQ(committed.load(), kWorkers * kSlots / 2);  // exactly the slots available
  EXPECT_EQ(view.TotalFreeSlots(), 0);
}

// ---------------------------------------------------------------------- PlanCache keys --

TEST(PlanCacheTest, FingerprintInvariantUnderUniformRateScaling) {
  JobSpec a = MakePipelineJob("a", 3, 1e4);
  JobSpec b = MakePipelineJob("b", 3, 2e4);  // same shape, double the rate
  EXPECT_EQ(JobGraphFingerprint(a.graph, a.source_rates),
            JobGraphFingerprint(b.graph, b.source_rates));
  JobSpec c = MakePipelineJob("c", 4, 1e4);  // different parallelism
  EXPECT_NE(JobGraphFingerprint(a.graph, a.source_rates),
            JobGraphFingerprint(c.graph, c.source_rates));
}

TEST(PlanCacheTest, BottleneckSignatureScaleInvariantButShapeSensitive) {
  Cluster cluster(2, WorkerSpec{});
  std::vector<ResourceVector> demands = {{1.0, 2e6, 3e6}, {0.5, 1e6, 1e6}};
  std::vector<ResourceVector> doubled = {{2.0, 4e6, 6e6}, {1.0, 2e6, 2e6}};
  EXPECT_EQ(BottleneckSignature(demands, cluster), BottleneckSignature(doubled, cluster));
  std::vector<ResourceVector> io_heavy = {{0.1, 200e6, 1e6}};
  EXPECT_NE(BottleneckSignature(demands, cluster), BottleneckSignature(io_heavy, cluster));
}

TEST(PlanCacheTest, LruEvictionAndCounters) {
  PlanCache cache(2);
  cache.Insert("a", CachedPlan{Placement(1), {}, {}, 1});
  cache.Insert("b", CachedPlan{Placement(2), {}, {}, 2});
  EXPECT_TRUE(cache.Lookup("a").has_value());  // refresh a; b is now LRU
  cache.Insert("c", CachedPlan{Placement(3), {}, {}, 3});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_FALSE(cache.Lookup("b").has_value());
  EXPECT_TRUE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("c").has_value());
  EXPECT_EQ(cache.hits(), 3u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(PlanCacheTest, EvictOlderThanAndClear) {
  PlanCache cache(8);
  cache.Insert("a", CachedPlan{Placement(1), {}, {}, 1});
  cache.Insert("b", CachedPlan{Placement(1), {}, {}, 5});
  EXPECT_EQ(cache.EvictOlderThan(5), 1u);
  EXPECT_FALSE(cache.Lookup("a").has_value());
  EXPECT_TRUE(cache.Lookup("b").has_value());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
}

// ------------------------------------------------------------------- PlacementService --

TEST(PlacementServiceTest, SingleJobRunsWithValidPlacement) {
  Cluster cluster(4, WorkerSpec{.slots = 4});
  PlacementService service(cluster, FastOptions());
  JobId id = service.Submit(MakePipelineJob("single", 4, 1e4));
  ASSERT_TRUE(service.WaitIdle(20.0));
  JobStatus status = service.Status(id);
  EXPECT_EQ(status.state, JobState::kRunning);
  EXPECT_EQ(status.admission, AdmissionOutcome::kAdmitted);
  EXPECT_EQ(status.tasks, 6);
  EXPECT_GE(status.decision_latency_s, 0.0);
  // The committed placement satisfies the §4.1 constraints on the full cluster.
  JobSpec spec = MakePipelineJob("single", 4, 1e4);
  PhysicalGraph physical = PhysicalGraph::Expand(spec.graph);
  EXPECT_EQ(status.placement.Validate(physical, cluster), "");
  EXPECT_EQ(SumReservation(service.view().ReservationOf(id)), 6);
  EXPECT_EQ(service.view().CheckInvariants(), "");
}

TEST(PlacementServiceTest, ConcurrentSubmittersLoseNoJobs) {
  const int kThreads = 6;
  const int kJobsPerThread = 6;
  Cluster cluster(24, WorkerSpec{.slots = 8});
  PlacementService service(cluster, FastOptions(4));
  std::vector<std::vector<JobId>> ids(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&service, &ids, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        ids[static_cast<size_t>(t)].push_back(
            service.Submit(MakePipelineJob("job", 2, 5e3)));
      }
    });
  }
  for (auto& t : submitters) {
    t.join();
  }
  ASSERT_TRUE(service.WaitIdle(60.0));
  // No lost and no duplicated ids.
  std::set<JobId> unique;
  for (const auto& batch : ids) {
    for (JobId id : batch) {
      EXPECT_NE(id, kInvalidJobId);
      EXPECT_TRUE(unique.insert(id).second) << "duplicate job id " << id;
    }
  }
  EXPECT_EQ(unique.size(), static_cast<size_t>(kThreads * kJobsPerThread));
  std::vector<JobStatus> statuses = service.AllStatuses();
  EXPECT_EQ(statuses.size(), unique.size());
  int running = 0;
  for (const JobStatus& s : statuses) {
    EXPECT_TRUE(unique.count(s.id)) << "untracked job id " << s.id;
    if (s.state == JobState::kRunning) {
      ++running;
    }
  }
  // 36 jobs x 4 tasks = 144 tasks on 192 slots: everything runs.
  EXPECT_EQ(running, kThreads * kJobsPerThread);
  EXPECT_EQ(service.view().CheckInvariants(), "");
  SchedulerStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<uint64_t>(kThreads * kJobsPerThread));
  EXPECT_EQ(stats.plans_committed, static_cast<uint64_t>(running));
}

TEST(PlacementServiceTest, StrictEpochModeStillConverges) {
  // The textbook protocol under contention: every interleaved commit conflicts and
  // retries. All jobs must still land, with the slot accounting intact.
  const int kJobs = 12;
  Cluster cluster(12, WorkerSpec{.slots = 4});
  SchedulerOptions options = FastOptions(4);
  options.strict_epoch_commit = true;
  PlacementService service(cluster, options);
  std::vector<JobId> ids;
  ids.reserve(kJobs);
  for (int j = 0; j < kJobs; ++j) {
    ids.push_back(service.Submit(MakePipelineJob("strict", 2, 5e3)));
  }
  ASSERT_TRUE(service.WaitIdle(60.0));
  for (JobId id : ids) {
    EXPECT_EQ(service.Status(id).state, JobState::kRunning);
  }
  EXPECT_EQ(service.view().CheckInvariants(), "");
  EXPECT_EQ(service.stats().stale_commits, 0u);  // strict mode never commits stale
}

TEST(PlacementServiceTest, AdmissionRejectsOversizedJobStructurally) {
  Cluster cluster(2, WorkerSpec{.slots = 2});
  PlacementService service(cluster, FastOptions());
  // 8 tasks on a 4-slot cluster can never fit: structured rejection, no CHECK abort.
  JobId id = service.Submit(MakePipelineJob("too-big", 6, 1e3));
  ASSERT_TRUE(service.WaitIdle(20.0));
  JobStatus status = service.Status(id);
  EXPECT_EQ(status.state, JobState::kRejected);
  EXPECT_EQ(status.admission, AdmissionOutcome::kRejectedCapacity);
  EXPECT_EQ(service.stats().rejected, 1u);
}

TEST(PlacementServiceTest, AdmissionRejectsInvalidSpec) {
  PlacementService service(Cluster(2, WorkerSpec{.slots = 4}), FastOptions());
  JobSpec empty;
  empty.name = "empty";
  JobId id = service.Submit(std::move(empty));
  ASSERT_TRUE(service.WaitIdle(20.0));
  EXPECT_EQ(service.Status(id).state, JobState::kRejected);
  EXPECT_EQ(service.Status(id).admission, AdmissionOutcome::kRejectedInvalid);
}

TEST(PlacementServiceTest, QueuedJobAdmittedWhenCapacityFrees) {
  Cluster cluster(2, WorkerSpec{.slots = 2});
  PlacementService service(cluster, FastOptions());
  JobId first = service.Submit(MakePipelineJob("first", 2, 1e3));  // 4 tasks: fills it
  ASSERT_TRUE(service.WaitIdle(20.0));
  ASSERT_EQ(service.Status(first).state, JobState::kRunning);
  JobId second = service.Submit(MakePipelineJob("second", 1, 1e3));  // 3 tasks: must wait
  ASSERT_TRUE(service.WaitIdle(20.0));
  EXPECT_EQ(service.Status(second).state, JobState::kQueued);
  EXPECT_EQ(service.Status(second).admission, AdmissionOutcome::kQueuedCapacity);
  // Cancelling the resident job frees its slots and re-admits the queued one.
  service.Cancel(first);
  ASSERT_TRUE(service.WaitIdle(20.0));
  EXPECT_EQ(service.Status(first).state, JobState::kTerminated);
  EXPECT_EQ(service.Status(second).state, JobState::kRunning);
  EXPECT_EQ(SumReservation(service.view().ReservationOf(first)), 0);
  EXPECT_EQ(service.view().CheckInvariants(), "");
  SchedulerStats stats = service.stats();
  EXPECT_GE(stats.queued, 1u);
  EXPECT_EQ(stats.cancelled, 1u);
}

TEST(PlacementServiceTest, WorkerDeathTriggersDegradedRecovery) {
  Cluster cluster(2, WorkerSpec{.slots = 4});
  PlacementService service(cluster, FastOptions());
  JobId id = service.Submit(MakePipelineJob("degrade", 5, 1e3));  // 7 tasks on 8 slots
  ASSERT_TRUE(service.WaitIdle(20.0));
  ASSERT_EQ(service.Status(id).state, JobState::kRunning);
  service.OnWorkerDead(1);
  ASSERT_TRUE(service.WaitIdle(20.0));
  JobStatus status = service.Status(id);
  ASSERT_EQ(status.state, JobState::kRunning);
  EXPECT_TRUE(status.degraded);
  EXPECT_LE(status.tasks, 4);  // survivors expose 4 slots
  EXPECT_GE(status.recoveries, 1);
  EXPECT_GE(status.est_recovery_downtime_s, 0.0);  // checkpoint-model estimate recorded
  // Nothing may live on the dead worker.
  SlotReservation reservation = service.view().ReservationOf(id);
  EXPECT_EQ(reservation[1], 0);
  EXPECT_EQ(service.view().CheckInvariants(), "");
  SchedulerStats stats = service.stats();
  EXPECT_GE(stats.recoveries, 1u);
  EXPECT_GE(stats.downscales, 1u);
}

TEST(PlacementServiceTest, RecoveryQueuesWhenDegradationDisallowed) {
  Cluster cluster(2, WorkerSpec{.slots = 4});
  PlacementService service(cluster, FastOptions());
  JobSpec spec = MakePipelineJob("rigid", 5, 1e3);  // 7 tasks
  spec.allow_degraded_recovery = false;
  JobId id = service.Submit(std::move(spec));
  ASSERT_TRUE(service.WaitIdle(20.0));
  ASSERT_EQ(service.Status(id).state, JobState::kRunning);
  service.OnWorkerDead(0);
  ASSERT_TRUE(service.WaitIdle(20.0));
  // Cannot fit 7 tasks on 4 surviving slots and may not degrade: queued, not aborted.
  EXPECT_EQ(service.Status(id).state, JobState::kQueued);
  // The worker coming back re-admits and replans the job at full parallelism.
  service.OnWorkerRestored(0);
  ASSERT_TRUE(service.WaitIdle(20.0));
  JobStatus status = service.Status(id);
  EXPECT_EQ(status.state, JobState::kRunning);
  EXPECT_FALSE(status.degraded);
  EXPECT_EQ(status.tasks, 7);
  EXPECT_EQ(service.view().CheckInvariants(), "");
}

TEST(PlacementServiceTest, RescaleRecommitsAtNewParallelism) {
  Cluster cluster(4, WorkerSpec{.slots = 4});
  PlacementService service(cluster, FastOptions());
  JobId id = service.Submit(MakePipelineJob("rescale", 2, 1e4));
  ASSERT_TRUE(service.WaitIdle(20.0));
  ASSERT_EQ(service.Status(id).state, JobState::kRunning);
  service.ApplyScaleDecision(id, {1, 6, 1});
  ASSERT_TRUE(service.WaitIdle(20.0));
  JobStatus status = service.Status(id);
  EXPECT_EQ(status.state, JobState::kRunning);
  EXPECT_EQ(status.tasks, 8);
  ASSERT_EQ(status.parallelism.size(), 3u);
  EXPECT_EQ(status.parallelism[1], 6);
  EXPECT_EQ(SumReservation(service.view().ReservationOf(id)), 8);
  EXPECT_EQ(service.view().CheckInvariants(), "");
}

TEST(PlacementServiceTest, PlanCacheHitOnResubmitAndRateScale) {
  Cluster cluster(4, WorkerSpec{.slots = 4});
  PlacementService service(cluster, FastOptions());
  JobId first = service.Submit(MakePipelineJob("cacheable", 4, 1e4));
  ASSERT_TRUE(service.WaitIdle(20.0));
  ASSERT_EQ(service.Status(first).state, JobState::kRunning);
  EXPECT_FALSE(service.Status(first).plan_from_cache);
  service.Cancel(first);
  ASSERT_TRUE(service.WaitIdle(20.0));
  // Identical job on the restored capacity: same (fingerprint, signature, bottleneck) key.
  JobId second = service.Submit(MakePipelineJob("cacheable", 4, 1e4));
  ASSERT_TRUE(service.WaitIdle(20.0));
  ASSERT_EQ(service.Status(second).state, JobState::kRunning);
  EXPECT_TRUE(service.Status(second).plan_from_cache);
  service.Cancel(second);
  ASSERT_TRUE(service.WaitIdle(20.0));
  // Uniformly doubled rates keep the key (cost vectors are scale-invariant): still a hit.
  JobId third = service.Submit(MakePipelineJob("cacheable", 4, 2e4));
  ASSERT_TRUE(service.WaitIdle(20.0));
  ASSERT_EQ(service.Status(third).state, JobState::kRunning);
  EXPECT_TRUE(service.Status(third).plan_from_cache);
  SchedulerStats stats = service.stats();
  EXPECT_GE(stats.plans_from_cache, 2u);
  EXPECT_GE(stats.cache_hits, 2u);
  EXPECT_EQ(service.view().CheckInvariants(), "");
}

TEST(PlacementServiceTest, NexmarkQueryThroughService) {
  // One of the paper's evaluation queries end-to-end through the online service on the
  // 4x4 motivation cluster.
  Cluster cluster(4, WorkerSpec::R5dXlarge());
  PlacementService service(cluster, FastOptions());
  QuerySpec q1 = BuildQ1Sliding();
  JobSpec spec;
  spec.name = "q1-sliding";
  spec.graph = q1.graph;
  spec.source_rates = q1.source_rates;
  JobId id = service.Submit(std::move(spec));
  ASSERT_TRUE(service.WaitIdle(30.0));
  JobStatus status = service.Status(id);
  ASSERT_EQ(status.state, JobState::kRunning);
  PhysicalGraph physical = PhysicalGraph::Expand(q1.graph);
  EXPECT_EQ(status.placement.Validate(physical, cluster), "");
  EXPECT_EQ(service.view().CheckInvariants(), "");
}

TEST(PlacementServiceTest, CrashStormInterleavedWithSubmissions) {
  const int kThreads = 3;
  const int kJobsPerThread = 4;
  Cluster cluster(8, WorkerSpec{.slots = 4});
  PlacementService service(cluster, FastOptions(4));
  std::vector<std::vector<JobId>> ids(kThreads);
  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&service, &ids, t] {
      for (int j = 0; j < kJobsPerThread; ++j) {
        ids[static_cast<size_t>(t)].push_back(
            service.Submit(MakePipelineJob("storm", 2, 2e3)));
        std::this_thread::sleep_for(std::chrono::milliseconds(3));
      }
    });
  }
  // Crash storm racing the submissions: repeatedly kill and restore two workers.
  for (int round = 0; round < 4; ++round) {
    service.OnWorkerDead(round % 4);
    service.OnWorkerDead(4 + round % 4);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    service.OnWorkerRestored(round % 4);
    service.OnWorkerRestored(4 + round % 4);
  }
  for (auto& t : submitters) {
    t.join();
  }
  ASSERT_TRUE(service.WaitIdle(60.0));
  EXPECT_EQ(service.view().CheckInvariants(), "");
  // Zero lost jobs: every submission is tracked and reached a coherent state.
  std::vector<JobStatus> statuses = service.AllStatuses();
  EXPECT_EQ(statuses.size(), static_cast<size_t>(kThreads * kJobsPerThread));
  // 12 jobs x 4 tasks = 48 > 32 slots: some queue, the rest must be Running with a
  // committed reservation matching their task count, summing within worker slot limits.
  std::vector<int> per_worker(8, 0);
  for (const JobStatus& s : statuses) {
    ASSERT_TRUE(s.state == JobState::kRunning || s.state == JobState::kQueued)
        << s.ToString();
    if (s.state == JobState::kRunning) {
      SlotReservation r = service.view().ReservationOf(s.id);
      EXPECT_EQ(SumReservation(r), s.tasks) << s.ToString();
      for (size_t w = 0; w < r.size(); ++w) {
        per_worker[w] += r[w];
      }
    }
  }
  for (size_t w = 0; w < per_worker.size(); ++w) {
    EXPECT_LE(per_worker[w], 4) << "worker " << w << " double-booked";
  }
}

TEST(PlacementServiceTest, StatsAndStatusRenderings) {
  PlacementService service(Cluster(2, WorkerSpec{.slots = 4}), FastOptions());
  JobId id = service.Submit(MakePipelineJob("render", 2, 1e3));
  ASSERT_TRUE(service.WaitIdle(20.0));
  EXPECT_NE(service.Status(id).ToString().find("running"), std::string::npos);
  EXPECT_NE(service.stats().ToString().find("submitted=1"), std::string::npos);
  EXPECT_STREQ(JobStateName(JobState::kRecovering), "recovering");
  EXPECT_STREQ(AdmissionOutcomeName(AdmissionOutcome::kQueuedCapacity), "queued_capacity");
  EXPECT_STREQ(CommitResultName(CommitResult::kCommittedStale), "committed_stale");
}

}  // namespace
}  // namespace capsys
