// Tests for the CAPS cost model (Eq. 4-8 of the paper).
#include <gtest/gtest.h>

#include "src/caps/cost_model.h"
#include "src/caps/search.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

// Two-operator graph: src (p=2, cpu-only) -> sink (p=2, io-only), hash edge.
struct Fixture {
  LogicalGraph graph{"fixture"};
  Cluster cluster{2, WorkerSpec::R5dXlarge(4)};
  PhysicalGraph physical;
  std::vector<ResourceVector> demands;

  Fixture() {
    OperatorProfile src;
    src.cpu_per_record = 100e-6;
    src.out_bytes_per_record = 1000;
    OperatorProfile snk;
    snk.cpu_per_record = 0.0;  // pure-IO sink
    snk.io_bytes_per_record = 5000;
    snk.stateful = true;
    snk.out_bytes_per_record = 0;
    OperatorId a = graph.AddOperator("src", OperatorKind::kSource, src, 2);
    OperatorId b = graph.AddOperator("snk", OperatorKind::kSink, snk, 2);
    graph.AddEdge(a, b, PartitionScheme::kHash);
    physical = PhysicalGraph::Expand(graph);
    auto rates = PropagateRates(graph, 1000.0);  // 500 rec/s per src task
    demands = TaskDemands(physical, rates);
  }
};

TEST(CostModelTest, LminLmaxComputation) {
  Fixture f;
  CostModel model(f.physical, f.cluster, f.demands);
  // Total cpu = 1000 * 100us = 0.1 cores over 2 workers.
  EXPECT_NEAR(model.l_min().cpu, 0.05, 1e-12);
  // L_max cpu: top-4 tasks by cpu = both sources (sinks are 0) = 0.1.
  EXPECT_NEAR(model.l_max().cpu, 0.1, 1e-12);
  // io: total = 1000 * 5000 = 5 MB/s; min 2.5 MB/s; max = both sinks = 5 MB/s.
  EXPECT_NEAR(model.l_min().io, 2.5e6, 1e-6);
  EXPECT_NEAR(model.l_max().io, 5e6, 1e-6);
  // net: L_min = 0 by definition; L_max = top-4 U_net = both sources = 1 MB/s.
  EXPECT_EQ(model.l_min().net, 0.0);
  EXPECT_NEAR(model.l_max().net, 1e6, 1e-6);
}

TEST(CostModelTest, PerfectlyBalancedPlanHasZeroCpuIoCost) {
  Fixture f;
  CostModel model(f.physical, f.cluster, f.demands);
  // One src and one snk per worker.
  Placement plan(std::vector<WorkerId>{0, 1, 0, 1});
  ResourceVector c = model.Cost(plan);
  EXPECT_NEAR(c.cpu, 0.0, 1e-12);
  EXPECT_NEAR(c.io, 0.0, 1e-12);
  // Network: each src has 1 of 2 channels remote -> worker net load = 500*1000*0.5.
  // C_net = 0.25e6 / 1e6.
  EXPECT_NEAR(c.net, 0.25, 1e-9);
}

TEST(CostModelTest, WorstCasePlanHasUnitCost) {
  Fixture f;
  CostModel model(f.physical, f.cluster, f.demands);
  // Both sources on worker 0, both sinks on worker 1.
  Placement plan(std::vector<WorkerId>{0, 0, 1, 1});
  ResourceVector c = model.Cost(plan);
  EXPECT_NEAR(c.cpu, 1.0, 1e-9);
  EXPECT_NEAR(c.io, 1.0, 1e-9);
  // All channels remote: worker0 net = 2 * 500 * 1000 = 1e6 = L_max -> C_net = 1.
  EXPECT_NEAR(c.net, 1.0, 1e-9);
}

TEST(CostModelTest, FullyColocatedPlanHasZeroNetCost) {
  // One 4-slot worker cluster variant: everything local.
  LogicalGraph g("tiny");
  OperatorProfile p;
  p.cpu_per_record = 1e-5;
  p.out_bytes_per_record = 100;
  OperatorId a = g.AddOperator("a", OperatorKind::kSource, p, 2);
  OperatorId b = g.AddOperator("b", OperatorKind::kSink, p, 2);
  g.AddEdge(a, b);
  PhysicalGraph physical = PhysicalGraph::Expand(g);
  Cluster cluster(2, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(g, 1000.0);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  Placement plan(std::vector<WorkerId>{0, 0, 0, 0});
  EXPECT_NEAR(model.Cost(plan).net, 0.0, 1e-12);
}

TEST(CostModelTest, CostsAlwaysWithinUnitInterval) {
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  for (const auto& plan : EnumerateAllPlans(model)) {
    for (Resource r : kAllResources) {
      EXPECT_GE(plan.cost[r], -1e-9);
      EXPECT_LE(plan.cost[r], 1.0 + 1e-9);
    }
  }
}

TEST(CostModelTest, DegenerateSingleWorkerIsZeroCost) {
  LogicalGraph g("one");
  OperatorProfile p;
  p.cpu_per_record = 1e-5;
  p.io_bytes_per_record = 100;
  p.out_bytes_per_record = 100;
  OperatorId a = g.AddOperator("a", OperatorKind::kSource, p, 2);
  OperatorId b = g.AddOperator("b", OperatorKind::kSink, p, 2);
  g.AddEdge(a, b);
  PhysicalGraph physical = PhysicalGraph::Expand(g);
  Cluster cluster(1, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(g, 1000.0);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  Placement plan(std::vector<WorkerId>{0, 0, 0, 0});
  ResourceVector c = model.Cost(plan);
  EXPECT_EQ(c.cpu, 0.0);
  EXPECT_EQ(c.io, 0.0);
  EXPECT_EQ(c.net, 0.0);
}

TEST(CostModelTest, LoadBoundInvertsCostOfLoad) {
  Fixture f;
  CostModel model(f.physical, f.cluster, f.demands);
  ResourceVector alpha{0.3, 0.5, 0.7};
  ResourceVector bound = model.LoadBound(alpha);
  for (Resource r : kAllResources) {
    EXPECT_NEAR(model.CostOfLoad(r, bound[r]), alpha[r], 1e-9);
  }
  // alpha >= 1 disables the bound.
  ResourceVector loose = model.LoadBound(ResourceVector{1.0, 1.0, 1.0});
  EXPECT_GT(loose.cpu, 1e100);
}

TEST(CostModelTest, OperatorDemandAggregatesTasks) {
  Fixture f;
  CostModel model(f.physical, f.cluster, f.demands);
  ResourceVector src_demand = model.OperatorDemand(0);
  EXPECT_NEAR(src_demand.cpu, 0.1, 1e-12);  // 2 tasks x 500 rec/s x 100us
  ResourceVector snk_demand = model.OperatorDemand(1);
  EXPECT_NEAR(snk_demand.io, 5e6, 1e-6);
}

TEST(CostModelTest, BetterCostLexicographicOnMaxThenSum) {
  EXPECT_TRUE(BetterCost({0.1, 0.1, 0.1}, {0.2, 0.0, 0.0}));
  EXPECT_FALSE(BetterCost({0.2, 0.0, 0.0}, {0.1, 0.1, 0.1}));
  // Equal max: lower sum wins.
  EXPECT_TRUE(BetterCost({0.2, 0.0, 0.0}, {0.2, 0.1, 0.0}));
  EXPECT_FALSE(BetterCost({0.2, 0.1, 0.0}, {0.2, 0.1, 0.0}));  // equal is not better
}

TEST(CostModelTest, BalancedBeatsColocatedForHeavyOperator) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  auto plans = EnumerateAllPlans(model);
  // Find the min-io-cost plan; its window co-location degree must be minimal (2 on 4x4).
  size_t best = 0;
  for (size_t i = 1; i < plans.size(); ++i) {
    if (plans[i].cost.io < plans[best].cost.io) {
      best = i;
    }
  }
  EXPECT_EQ(plans[best].placement.ColocationDegree(physical, cluster, 2), 2);
}

}  // namespace
}  // namespace capsys
