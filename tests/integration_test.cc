// End-to-end integration sweep: every evaluation query under every placement policy runs
// the full pipeline (profiling -> DS2 sizing -> placement -> simulation) and CAPS never
// performs worse than the baselines (parameterized, the repo-level version of Fig. 7).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>

#include "src/controller/deployment.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

struct Outcome {
  double throughput = 0.0;
  double backpressure = 0.0;
};

Outcome RunOnce(const QuerySpec& q, const Cluster& cluster, PlacementPolicy policy,
                uint64_t seed) {
  DeployOptions options;
  options.policy = policy;
  options.use_ds2_sizing = true;
  options.seed = seed;
  CapsysController controller(cluster, options);
  Deployment d = controller.Deploy(q);
  FluidSimulator sim(d.physical, cluster, d.placement);
  for (const auto& [op, r] : d.source_rates) {
    sim.SetSourceRate(op, r);
  }
  QuerySummary s = sim.RunMeasured(45, 90);
  return Outcome{s.throughput, s.backpressure};
}

class QueryPolicySweep : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(QueryPolicySweep, CapsAtLeastMatchesBaseline) {
  auto [query_name, policy_int] = GetParam();
  PlacementPolicy baseline = static_cast<PlacementPolicy>(policy_int);
  Cluster cluster(4, WorkerSpec::M5d2xlarge(8));
  QuerySpec q = BuildQueryByName(query_name);
  q.ScaleRates(2.0);

  Outcome caps = RunOnce(q, cluster, PlacementPolicy::kCaps, 1);
  Outcome base = RunOnce(q, cluster, baseline, 1);
  EXPECT_GE(caps.throughput + 1.0, base.throughput)
      << query_name << " vs " << PolicyName(baseline);
  EXPECT_LE(caps.backpressure, base.backpressure + 1e-6);
}

TEST_P(QueryPolicySweep, CapsReachesTarget) {
  auto [query_name, policy_int] = GetParam();
  (void)policy_int;
  Cluster cluster(4, WorkerSpec::M5d2xlarge(8));
  QuerySpec q = BuildQueryByName(query_name);
  q.ScaleRates(2.0);
  Outcome caps = RunOnce(q, cluster, PlacementPolicy::kCaps, 1);
  EXPECT_GE(caps.throughput, 0.95 * q.TotalTargetRate()) << query_name;
}

INSTANTIATE_TEST_SUITE_P(
    AllQueriesAllBaselines, QueryPolicySweep,
    ::testing::Combine(::testing::Values("q1", "q2", "q3", "q4", "q5", "q6"),
                       ::testing::Values(static_cast<int>(PlacementPolicy::kFlinkDefault),
                                         static_cast<int>(PlacementPolicy::kFlinkEvenly))),
    [](const ::testing::TestParamInfo<QueryPolicySweep::ParamType>& info) {
      return std::get<0>(info.param) + "_vs_" +
             (std::get<1>(info.param) == static_cast<int>(PlacementPolicy::kFlinkDefault)
                  ? "default"
                  : "evenly");
    });

// Baseline policies remain stable across seeds in aggregate: their plans are random, but
// every plan they produce must still be valid and executable.
class BaselineSeedSweep : public ::testing::TestWithParam<int> {};

TEST_P(BaselineSeedSweep, BaselinePlansAlwaysExecutable) {
  int seed = GetParam();
  Cluster cluster(4, WorkerSpec::M5d2xlarge(8));
  QuerySpec q = BuildQ5Aggregate();
  q.ScaleRates(2.0);
  Outcome o = RunOnce(q, cluster, PlacementPolicy::kFlinkDefault,
                      static_cast<uint64_t>(seed));
  EXPECT_GT(o.throughput, 0.0);
  EXPECT_LE(o.backpressure, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, BaselineSeedSweep, ::testing::Range(1, 9));

}  // namespace
}  // namespace capsys
