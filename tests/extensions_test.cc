// Tests for the extension features: threshold cache (offline precomputation), online cost
// profiling, and the search ablation switches.
#include <gtest/gtest.h>

#include "src/caps/greedy.h"
#include "src/caps/threshold_cache.h"
#include "src/controller/deployment.h"
#include "src/controller/profiler.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

// --- ThresholdCache ---------------------------------------------------------------------------

TEST(ThresholdCacheTest, PrecomputeAndLookup) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  std::vector<std::vector<int>> scenarios = {{2, 5, 8, 1}, {1, 3, 4, 1}};
  ThresholdCache cache;
  cache.Precompute(q.graph, q.source_rates, cluster, scenarios);
  EXPECT_EQ(cache.size(), 2u);
  auto alpha = cache.Lookup({2, 5, 8, 1});
  ASSERT_TRUE(alpha.has_value());
  EXPECT_GT(alpha->cpu, 0.0);
  EXPECT_LE(alpha->cpu, 1.0);
  EXPECT_FALSE(cache.Lookup({9, 9, 9, 9}).has_value());
}

TEST(ThresholdCacheTest, SkipsScenariosThatDoNotFit) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(2, WorkerSpec::R5dXlarge(4));  // 8 slots
  ThresholdCache cache;
  cache.Precompute(q.graph, q.source_rates, cluster, {{4, 4, 8, 4}});  // 20 tasks
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ThresholdCacheTest, SerializeRoundTrip) {
  ThresholdCache cache;
  cache.Insert({1, 2, 3}, ResourceVector{0.1, 0.2, 0.3});
  cache.Insert({4, 5, 6}, ResourceVector{0.4, 0.5, 0.6});
  std::string text = cache.Serialize();
  ThresholdCache restored;
  ASSERT_TRUE(restored.Deserialize(text));
  EXPECT_EQ(restored.size(), 2u);
  auto alpha = restored.Lookup({1, 2, 3});
  ASSERT_TRUE(alpha.has_value());
  EXPECT_NEAR(alpha->io, 0.2, 1e-15);
}

TEST(ThresholdCacheTest, DeserializeRejectsGarbage) {
  ThresholdCache cache;
  EXPECT_FALSE(cache.Deserialize("not,numbers x y z\n"));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ThresholdCacheTest, RevalidateKeepsEntriesForIdenticalCapacity) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  ThresholdCache cache;
  cache.Precompute(q.graph, q.source_rates, cluster, {{2, 5, 8, 1}});
  ASSERT_EQ(cache.size(), 1u);
  // An equal-shaped cluster object (e.g. after a scheduler epoch bump: reservations change
  // slot occupancy, never capacity) must not evict anything.
  Cluster same_shape(4, WorkerSpec::R5dXlarge(4));
  EXPECT_TRUE(cache.Revalidate(same_shape));
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_TRUE(cache.Lookup({2, 5, 8, 1}).has_value());
}

TEST(ThresholdCacheTest, RevalidateEvictsOnWorkerCountChange) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  ThresholdCache cache;
  cache.Precompute(q.graph, q.source_rates, cluster, {{2, 5, 8, 1}});
  ASSERT_EQ(cache.size(), 1u);
  Cluster shrunk(3, WorkerSpec::R5dXlarge(4));  // a worker died: capacity shape changed
  EXPECT_FALSE(cache.Revalidate(shrunk));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup({2, 5, 8, 1}).has_value());
  // The cache rebinds to the new shape: revalidating against it again is a no-op.
  EXPECT_TRUE(cache.Revalidate(shrunk));
}

TEST(ThresholdCacheTest, RevalidateEvictsOnSpecChange) {
  ThresholdCache cache;
  Cluster small(2, WorkerSpec::R5dXlarge(4));
  cache.Revalidate(small);  // bind
  cache.Insert({1, 1}, ResourceVector{0.5, 0.5, 0.5});
  // Same worker count and slots but a bigger instance type: alphas are capacity fractions,
  // so they are stale.
  Cluster bigger(2, WorkerSpec::C5d4xlarge(4));
  EXPECT_FALSE(cache.Revalidate(bigger));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(ThresholdCacheTest, PrecomputeOnChangedClusterDropsStaleEntries) {
  QuerySpec q = BuildQ1Sliding();
  ThresholdCache cache;
  Cluster old_cluster(4, WorkerSpec::R5dXlarge(4));
  cache.Precompute(q.graph, q.source_rates, old_cluster, {{2, 5, 8, 1}});
  ASSERT_EQ(cache.size(), 1u);
  ResourceVector old_alpha = *cache.Lookup({2, 5, 8, 1});
  // Precompute against a differently-shaped cluster must not leave the old entry mixed in:
  // the stale scenario is evicted and only the freshly tuned ones survive.
  Cluster new_cluster(8, WorkerSpec::M5d2xlarge(8));
  cache.Precompute(q.graph, q.source_rates, new_cluster, {{1, 3, 4, 1}});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Lookup({2, 5, 8, 1}).has_value());
  EXPECT_TRUE(cache.Lookup({1, 3, 4, 1}).has_value());
  // And re-tuning the evicted scenario on the new shape yields a fresh (generally
  // different) alpha rather than resurrecting the stale one.
  cache.Precompute(q.graph, q.source_rates, new_cluster, {{2, 5, 8, 1}});
  auto fresh = cache.Lookup({2, 5, 8, 1});
  ASSERT_TRUE(fresh.has_value());
  (void)old_alpha;  // alphas may coincide numerically; the guarantee is re-tuning, not value
}

TEST(ThresholdCacheTest, ClearResetsEntriesAndBinding) {
  ThresholdCache cache;
  Cluster cluster(2, WorkerSpec::R5dXlarge(4));
  cache.Revalidate(cluster);
  cache.Insert({1, 1}, ResourceVector{0.5, 0.5, 0.5});
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_TRUE(cache.cluster_signature().empty());
  // After Clear the cache is unbound: the next Revalidate binds without evicting.
  Cluster other(5, WorkerSpec::M5d2xlarge(8));
  EXPECT_TRUE(cache.Revalidate(other));
}

TEST(ThresholdCacheTest, ScalingScenarioEnumeration) {
  QuerySpec q = BuildQ3Inf();
  auto scenarios = EnumerateScalingScenarios(q.graph, q.source_rates,
                                             WorkerSpec::R5dXlarge(4), {0.5, 1.0, 2.0, 4.0});
  EXPECT_GE(scenarios.size(), 2u);  // different rates need different parallelism
  for (const auto& s : scenarios) {
    EXPECT_EQ(s.size(), 4u);
    for (int p : s) {
      EXPECT_GE(p, 1);
    }
  }
  // Higher rates require at least as much total parallelism: scenarios are deduplicated and
  // sorted lexicographically, so just check min and max totals differ.
  int min_total = 1 << 30;
  int max_total = 0;
  for (const auto& s : scenarios) {
    int total = 0;
    for (int p : s) {
      total += p;
    }
    min_total = std::min(min_total, total);
    max_total = std::max(max_total, total);
  }
  EXPECT_LT(min_total, max_total);
}

TEST(ThresholdCacheTest, DeploymentUsesCachedThresholds) {
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  // Cache an entry for the query's default parallelism with a recognizable alpha.
  ThresholdCache cache;
  cache.Insert({2, 5, 8, 1}, ResourceVector{0.37, 0.41, 0.93});
  DeployOptions options;
  options.policy = PlacementPolicy::kCaps;
  options.use_ds2_sizing = false;  // keep the default parallelism so the cache key matches
  options.threshold_cache = &cache;
  CapsysController controller(cluster, options);
  Deployment d = controller.Deploy(q);
  EXPECT_NEAR(d.alpha.cpu, 0.37, 1e-12);
  EXPECT_NEAR(d.alpha.net, 0.93, 1e-12);
}

// --- Online profiling ---------------------------------------------------------------------------

TEST(OnlineProfilerTest, EstimatesMatchDeclaredCostsOnRunningQuery) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  FluidSimulator sim(physical, cluster, GreedyBalancedPlacement(model));
  sim.SetAllSourceRates(10000.0);  // below saturation
  sim.RunFor(90);

  std::vector<MeasuredCost> previous(4);
  auto costs = EstimateCostsOnline(sim, 30.0, sim.time_s(), previous);
  EXPECT_NEAR(costs[1].cpu_per_record, 40e-6, 8e-6);       // map
  EXPECT_NEAR(costs[1].selectivity, 0.9, 0.02);
  EXPECT_NEAR(costs[2].io_bytes_per_record, 35000, 3500);  // window
  EXPECT_NEAR(costs[2].selectivity, 0.05, 0.005);
}

TEST(OnlineProfilerTest, KeepsPreviousEstimateWhenNoTraffic) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  FluidSimulator sim(physical, cluster, GreedyBalancedPlacement(model));
  sim.SetAllSourceRates(0.0);  // idle query
  sim.RunFor(30);
  std::vector<MeasuredCost> previous(4);
  previous[1].cpu_per_record = 123e-6;
  auto costs = EstimateCostsOnline(sim, 0.0, sim.time_s(), previous);
  EXPECT_EQ(costs[1].cpu_per_record, 123e-6);
}

TEST(OnlineProfilerTest, TracksRateChanges) {
  // Unit costs must be rate-invariant: estimates at two different rates agree.
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  FluidSimulator sim(physical, cluster, GreedyBalancedPlacement(model));
  std::vector<MeasuredCost> previous(4);
  sim.SetAllSourceRates(4000.0);
  sim.RunFor(60);
  auto low = EstimateCostsOnline(sim, 30.0, sim.time_s(), previous);
  double mark = sim.time_s();
  sim.SetAllSourceRates(10000.0);
  sim.RunFor(60);
  auto high = EstimateCostsOnline(sim, mark + 30.0, sim.time_s(), previous);
  EXPECT_NEAR(low[2].io_bytes_per_record, high[2].io_bytes_per_record,
              0.05 * low[2].io_bytes_per_record);
}

// --- Search ablation switches ---------------------------------------------------------------------

TEST(SearchAblationTest, DisablingDedupMultipliesLeavesBySymmetryFactor) {
  // 1 op with 2 tasks on 3 workers: 2 distinct plans (co-located / split), but without
  // symmetry breaking: 3 co-located + 3 split = 9 assignments... per-task enumeration
  // counts ordered assignments: 3 (both same) + 6 (ordered pairs) = 9.
  LogicalGraph g("tiny");
  OperatorProfile p;
  p.cpu_per_record = 1e-5;
  g.AddOperator("a", OperatorKind::kSource, p, 2);
  PhysicalGraph physical = PhysicalGraph::Expand(g);
  Cluster cluster(3, WorkerSpec::R5dXlarge(2));
  CostModel model(physical, cluster,
                  TaskDemands(physical, PropagateRates(g, 100.0)));
  SearchOptions with;
  SearchOptions without;
  without.eliminate_duplicates = false;
  SearchResult a = CapsSearch(model, with).Run();
  SearchResult b = CapsSearch(model, without).Run();
  EXPECT_EQ(a.stats.leaves, 2u);
  EXPECT_GT(b.stats.leaves, a.stats.leaves);
}

TEST(SearchAblationTest, ValueOrderingPreservesLeafCount) {
  QuerySpec q = BuildQ2Join();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  SearchOptions on;
  SearchOptions off;
  off.value_ordering = false;
  SearchResult a = CapsSearch(model, on).Run();
  SearchResult b = CapsSearch(model, off).Run();
  EXPECT_EQ(a.stats.leaves, b.stats.leaves);
  EXPECT_EQ(a.stats.leaves, 665u);
}

TEST(SearchAblationTest, ValueOrderingFindsBalancedPlanFirst) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  SearchOptions options;
  options.find_first = true;  // alpha = 1: any plan satisfies; ordering decides which
  SearchResult r = CapsSearch(model, options).Run();
  ASSERT_TRUE(r.found);
  // The first plan must spread the window tasks evenly (2 per worker).
  EXPECT_EQ(r.best.placement.ColocationDegree(physical, cluster, 2), 2);
}

}  // namespace
}  // namespace capsys
