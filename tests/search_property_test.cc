// Randomized property tests for the CAPS search: enumeration completeness/uniqueness vs
// brute force, pruning soundness AND completeness, threshold monotonicity, and pareto-front
// correctness, across randomly generated instances.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "src/caps/cost_model.h"
#include "src/caps/search.h"
#include "src/common/rng.h"
#include "src/dataflow/rates.h"

namespace capsys {
namespace {

struct Instance {
  LogicalGraph graph{"random"};
  Cluster cluster;
  PhysicalGraph physical;
  std::vector<ResourceVector> demands;
};

// Generates a random valid instance whose brute-force space (W^T) stays tractable.
Instance RandomInstance(uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  int num_ops = static_cast<int>(rng.UniformInt(2, 4));
  for (int i = 0; i < num_ops; ++i) {
    OperatorProfile p;
    p.cpu_per_record = rng.Uniform(1e-6, 2e-4);
    p.io_bytes_per_record = rng.Bernoulli(0.5) ? rng.Uniform(100, 20000) : 0.0;
    p.out_bytes_per_record = rng.Uniform(50, 5000);
    p.selectivity = rng.Uniform(0.1, 1.5);
    p.stateful = p.io_bytes_per_record > 0;
    inst.graph.AddOperator("op" + std::to_string(i),
                           i == 0 ? OperatorKind::kSource : OperatorKind::kMap, p,
                           static_cast<int>(rng.UniformInt(1, 3)));
  }
  for (int i = 0; i < num_ops; ++i) {
    for (int j = i + 1; j < num_ops; ++j) {
      if (rng.Bernoulli(0.5)) {
        inst.graph.AddEdge(i, j, PartitionScheme::kHash);
      }
    }
  }
  int tasks = inst.graph.total_parallelism();
  int workers = static_cast<int>(rng.UniformInt(2, 3));
  int slots = (tasks + workers - 1) / workers + static_cast<int>(rng.UniformInt(0, 1));
  WorkerSpec spec = WorkerSpec::R5dXlarge(slots);
  inst.cluster = Cluster(workers, spec);
  inst.physical = PhysicalGraph::Expand(inst.graph);
  inst.demands = TaskDemands(inst.physical, PropagateRates(inst.graph, rng.Uniform(100, 5000)));
  return inst;
}

// All distinct plans by brute force, keyed canonically, with their cost vectors.
std::map<std::string, ResourceVector> BruteForcePlans(const Instance& inst,
                                                      const CostModel& model) {
  std::map<std::string, ResourceVector> plans;
  int n = inst.physical.num_tasks();
  int w = inst.cluster.num_workers();
  std::vector<WorkerId> assign(static_cast<size_t>(n), 0);
  while (true) {
    Placement plan(assign);
    if (plan.Validate(inst.physical, inst.cluster).empty()) {
      plans.emplace(plan.CanonicalKey(inst.physical, inst.cluster), model.Cost(plan));
    }
    int i = 0;
    for (; i < n; ++i) {
      if (++assign[static_cast<size_t>(i)] < w) {
        break;
      }
      assign[static_cast<size_t>(i)] = 0;
    }
    if (i == n) {
      break;
    }
  }
  return plans;
}

class RandomInstanceSweep : public ::testing::TestWithParam<int> {};

TEST_P(RandomInstanceSweep, EnumerationMatchesBruteForceExactly) {
  Instance inst = RandomInstance(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  CostModel model(inst.physical, inst.cluster, inst.demands);
  auto reference = BruteForcePlans(inst, model);
  auto plans = EnumerateAllPlans(model);
  ASSERT_EQ(plans.size(), reference.size());
  for (const auto& plan : plans) {
    auto it = reference.find(plan.placement.CanonicalKey(inst.physical, inst.cluster));
    ASSERT_NE(it, reference.end());
    EXPECT_NEAR(plan.cost.cpu, it->second.cpu, 1e-9);
    EXPECT_NEAR(plan.cost.io, it->second.io, 1e-9);
    EXPECT_NEAR(plan.cost.net, it->second.net, 1e-9);
  }
}

TEST_P(RandomInstanceSweep, PruningIsSoundAndComplete) {
  Instance inst = RandomInstance(static_cast<uint64_t>(GetParam()) * 104729 + 7);
  CostModel model(inst.physical, inst.cluster, inst.demands);
  auto reference = BruteForcePlans(inst, model);
  // Use the median cost of the full space as the threshold so both sides are non-trivial.
  std::vector<double> maxima;
  for (const auto& [key, cost] : reference) {
    maxima.push_back(std::max({cost.cpu, cost.io, cost.net}));
  }
  std::sort(maxima.begin(), maxima.end());
  double a = maxima[maxima.size() / 2] + 1e-9;
  ResourceVector alpha{a, a, a};

  SearchOptions options;
  options.alpha = alpha;
  options.collect_plans = true;
  SearchResult result = CapsSearch(model, options).Run();

  std::set<std::string> found;
  for (const auto& plan : result.collected) {
    // Soundness: every returned plan satisfies the thresholds.
    EXPECT_LE(plan.cost.cpu, alpha.cpu + 1e-9);
    EXPECT_LE(plan.cost.io, alpha.io + 1e-9);
    EXPECT_LE(plan.cost.net, alpha.net + 1e-9);
    found.insert(plan.placement.CanonicalKey(inst.physical, inst.cluster));
  }
  // Completeness: every satisfying plan of the full space was found.
  size_t expected = 0;
  for (const auto& [key, cost] : reference) {
    if (cost.cpu <= alpha.cpu + 1e-9 && cost.io <= alpha.io + 1e-9 &&
        cost.net <= alpha.net + 1e-9) {
      ++expected;
      EXPECT_TRUE(found.count(key) > 0);
    }
  }
  EXPECT_EQ(found.size(), expected);
}

TEST_P(RandomInstanceSweep, LeafCountMonotoneInAlpha) {
  Instance inst = RandomInstance(static_cast<uint64_t>(GetParam()) * 31 + 997);
  CostModel model(inst.physical, inst.cluster, inst.demands);
  uint64_t prev = 0;
  for (double a : {0.1, 0.3, 0.6, 1.0}) {
    SearchOptions options;
    options.alpha = ResourceVector{a, a, a};
    SearchResult r = CapsSearch(model, options).Run();
    EXPECT_GE(r.stats.leaves, prev);
    prev = r.stats.leaves;
  }
}

TEST_P(RandomInstanceSweep, ParetoFrontMatchesFullSpace) {
  Instance inst = RandomInstance(static_cast<uint64_t>(GetParam()) * 53 + 11);
  CostModel model(inst.physical, inst.cluster, inst.demands);
  auto reference = BruteForcePlans(inst, model);
  SearchResult r = CapsSearch(model, SearchOptions{}).Run();
  ASSERT_TRUE(r.found);
  // No reference plan may *strictly* dominate any pareto member (epsilon-aware: the search
  // tracks costs incrementally, so recomputed reference costs differ by float rounding).
  auto strictly_dominates = [](const ResourceVector& a, const ResourceVector& b) {
    bool all_leq = true;
    bool some_less = false;
    for (Resource res : kAllResources) {
      if (a[res] > b[res] + 1e-9) {
        all_leq = false;
      }
      if (a[res] < b[res] - 1e-6) {
        some_less = true;
      }
    }
    return all_leq && some_less;
  };
  for (const auto& member : r.pareto) {
    for (const auto& [key, cost] : reference) {
      EXPECT_FALSE(strictly_dominates(cost, member.cost))
          << "pareto member " << member.cost.ToString() << " dominated by "
          << cost.ToString();
    }
  }
  // The best plan's scalarized cost equals the brute-force optimum.
  double best = 1e300;
  for (const auto& [key, cost] : reference) {
    best = std::min(best, std::max({cost.cpu, cost.io, cost.net}));
  }
  EXPECT_NEAR(r.best.cost.Max(), best, 1e-9);
}

TEST_P(RandomInstanceSweep, ReorderingAndValueOrderingPreserveLeafCount) {
  Instance inst = RandomInstance(static_cast<uint64_t>(GetParam()) * 67 + 3);
  CostModel model(inst.physical, inst.cluster, inst.demands);
  uint64_t counts[4];
  int i = 0;
  for (bool reorder : {false, true}) {
    for (bool value : {false, true}) {
      SearchOptions options;
      options.reorder = reorder;
      options.value_ordering = value;
      counts[i++] = CapsSearch(model, options).Run().stats.leaves;
    }
  }
  EXPECT_EQ(counts[0], counts[1]);
  EXPECT_EQ(counts[1], counts[2]);
  EXPECT_EQ(counts[2], counts[3]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomInstanceSweep, ::testing::Range(0, 12));

}  // namespace
}  // namespace capsys
