// Tests for the checkpoint & restore subsystem: coordinator lifecycle (interval,
// retention, timeout expiry, failure storms), the recovery-time model with exactly-once /
// at-least-once accounting, and the chaos-level contract that a crash mid-checkpoint
// recovers from the last *completed* checkpoint with zero lost state.
#include <gtest/gtest.h>

#include <cmath>

#include "src/checkpoint/checkpoint.h"
#include "src/checkpoint/recovery_model.h"
#include "src/controller/chaos_experiments.h"
#include "src/faults/fault_injector.h"
#include "src/faults/fault_schedule.h"
#include "src/nexmark/queries.h"
#include "src/obs/events.h"

namespace capsys {
namespace {

constexpr double kRate = 1000.0;  // records/s the model tests feed the coordinator

CheckpointOptions FastCheckpoint() {
  CheckpointOptions o;
  o.interval_s = 10.0;
  o.min_pause_s = 1.0;
  o.timeout_s = 60.0;
  o.retained = 2;
  o.alignment_s = 0.5;
  o.write_bandwidth_bps = 60e6;
  return o;
}

StateGrowthModel SmallState() {
  StateGrowthModel m;
  m.bytes_per_record = 64.0;
  m.max_bytes = 256ull << 20;
  return m;
}

// Advances the coordinator in 1 s ticks with the sources at `rate` records/s.
void RunTo(CheckpointCoordinator& c, double to_s, double rate = kRate) {
  double from = 0.0;
  for (double t = from + 1.0; t <= to_s + 1e-9; t += 1.0) {
    c.AdvanceTo(t, rate * t);
  }
}

// --- Coordinator lifecycle -------------------------------------------------------------------

TEST(CheckpointCoordinatorTest, TriggersOnIntervalAndBoundsRetention) {
  CheckpointCoordinator c(FastCheckpoint(), SmallState());
  RunTo(c, 65.0);
  // Interval 10 s, sub-second uploads: roughly one checkpoint per interval.
  EXPECT_GE(c.completed(), 5);
  EXPECT_EQ(c.failed(), 0);
  EXPECT_EQ(c.expired(), 0);
  // Retention window holds only the newest `retained` checkpoints...
  ASSERT_EQ(static_cast<int>(c.retained().size()), 2);
  EXPECT_LT(c.retained().front().id, c.retained().back().id);
  // ...but history keeps every attempt, in trigger order.
  ASSERT_EQ(static_cast<int>(c.history().size()), c.completed());
  for (size_t i = 1; i < c.history().size(); ++i) {
    EXPECT_LT(c.history()[i - 1].id, c.history()[i].id);
    EXPECT_LT(c.history()[i - 1].trigger_time_s, c.history()[i].trigger_time_s);
  }
  const CheckpointRecord* last = c.LastCompleted();
  ASSERT_NE(last, nullptr);
  EXPECT_EQ(last->id, c.retained().back().id);
  // The barrier captured the source position at the trigger.
  EXPECT_DOUBLE_EQ(last->source_records, kRate * last->trigger_time_s);
}

TEST(CheckpointCoordinatorTest, IncrementalShipsOnlyTheDelta) {
  CheckpointCoordinator inc(FastCheckpoint(), SmallState());
  RunTo(inc, 25.0);
  ASSERT_GE(inc.completed(), 2);
  const CheckpointRecord& second = inc.history()[1];
  EXPECT_LT(second.delta_bytes, second.full_bytes);
  // Delta covers exactly the records since the previous completed barrier.
  const CheckpointRecord& first = inc.history()[0];
  EXPECT_EQ(second.delta_bytes,
            static_cast<uint64_t>(SmallState().bytes_per_record *
                                  (second.source_records - first.source_records)));

  CheckpointOptions full_opts = FastCheckpoint();
  full_opts.incremental = false;
  CheckpointCoordinator full(full_opts, SmallState());
  RunTo(full, 25.0);
  ASSERT_GE(full.completed(), 2);
  EXPECT_EQ(full.history()[1].delta_bytes, full.history()[1].full_bytes);
}

TEST(CheckpointCoordinatorTest, SlowUploadExpiresAtTimeout) {
  CheckpointOptions o = FastCheckpoint();
  o.timeout_s = 5.0;
  o.write_bandwidth_bps = 1.0;  // an upload that can never finish in time
  CheckpointCoordinator c(o, SmallState());
  RunTo(c, 40.0);
  EXPECT_GE(c.expired(), 1);
  EXPECT_EQ(c.completed(), 0);
  EXPECT_EQ(c.LastCompleted(), nullptr);
  // The expired record ends exactly at trigger + timeout.
  const CheckpointRecord& e = c.history()[0];
  EXPECT_EQ(e.state, CheckpointState::kExpired);
  EXPECT_NEAR(e.end_time_s - e.trigger_time_s, o.timeout_s, 1e-9);
}

TEST(CheckpointCoordinatorTest, FailureStormFailsEveryAttemptUntilItLifts) {
  CheckpointCoordinator c(FastCheckpoint(), SmallState());
  RunTo(c, 15.0);
  ASSERT_GE(c.completed(), 1);
  const uint64_t safe_id = c.LastCompleted()->id;

  c.SetForceFail(true);  // storm: durable storage unavailable
  for (double t = 16.0; t <= 45.0; t += 1.0) {
    c.AdvanceTo(t, kRate * t);
  }
  EXPECT_GE(c.failed(), 1);
  // The storm never disturbs the last completed checkpoint.
  ASSERT_NE(c.LastCompleted(), nullptr);
  EXPECT_EQ(c.LastCompleted()->id, safe_id);

  c.SetForceFail(false);
  for (double t = 46.0; t <= 70.0; t += 1.0) {
    c.AdvanceTo(t, kRate * t);
  }
  EXPECT_GT(c.LastCompleted()->id, safe_id);
}

TEST(CheckpointCoordinatorTest, InFlightUploadChargesIoBandwidth) {
  CheckpointOptions o = FastCheckpoint();
  o.write_bandwidth_bps = 10e3;  // slow enough to observe mid-flight
  CheckpointCoordinator c(o, SmallState());
  RunTo(c, 11.0);
  ASSERT_TRUE(c.InFlight());
  // Upload rate ~= delta / upload window, bounded by the configured bandwidth.
  EXPECT_GT(c.InFlightIoBps(), 0.0);
  EXPECT_LE(c.InFlightIoBps(), o.write_bandwidth_bps * 1.01);
  c.FailInFlight(12.0, "test");
  EXPECT_FALSE(c.InFlight());
  EXPECT_DOUBLE_EQ(c.InFlightIoBps(), 0.0);
}

// --- Recovery-time model ---------------------------------------------------------------------

TEST(RecoveryModelTest, CrashMidCheckpointRestoresLastCompletedWithZeroLoss) {
  CheckpointCoordinator c(FastCheckpoint(), SmallState());
  RunTo(c, 19.0);
  ASSERT_GE(c.completed(), 1);
  const CheckpointRecord completed = *c.LastCompleted();
  c.AdvanceTo(20.0, kRate * 20.0);  // triggers checkpoint #2...
  ASSERT_TRUE(c.InFlight());
  c.FailInFlight(20.4, "participant_crash");  // ...which dies mid-flight

  RecoveryModelOptions rm;
  rm.exactly_once = true;
  const double now = 21.0;
  RecoveryEstimate est = EstimateRecovery(&c, now, kRate * now, kRate, 100e6, rm);
  // Recovery restores the last *completed* checkpoint, never the failed attempt.
  EXPECT_FALSE(est.used_fallback);
  EXPECT_EQ(est.checkpoint_id, completed.id);
  EXPECT_EQ(est.restored_bytes, completed.full_bytes);
  // Exactly-once: the backlog since the barrier replays inside the blackout; nothing is
  // lost and nothing is delivered twice.
  EXPECT_DOUBLE_EQ(est.lost_records, 0.0);
  EXPECT_DOUBLE_EQ(est.duplicate_records, 0.0);
  EXPECT_NEAR(est.replayed_records, kRate * now - completed.source_records, 1e-6);
  EXPECT_NEAR(est.replay_s, est.replayed_records / kRate, 1e-9);
  EXPECT_NEAR(est.downtime_s, est.restore_s + est.replay_s, 1e-9);

  // At-least-once: shorter blackout, but every replayed record is a duplicate.
  rm.exactly_once = false;
  RecoveryEstimate alo = EstimateRecovery(&c, now, kRate * now, kRate, 100e6, rm);
  EXPECT_DOUBLE_EQ(alo.lost_records, 0.0);
  EXPECT_DOUBLE_EQ(alo.duplicate_records, alo.replayed_records);
  EXPECT_LT(alo.downtime_s, est.downtime_s);
  EXPECT_NEAR(alo.downtime_s, alo.restore_s, 1e-9);
}

TEST(RecoveryModelTest, FallsBackToFixedBlackoutWithoutCheckpoints) {
  RecoveryModelOptions rm;
  rm.fallback_downtime_s = 5.0;
  // Checkpointing disabled entirely: the legacy fixed blackout, no loss accounting.
  RecoveryEstimate off = EstimateRecovery(nullptr, 100.0, 1e5, kRate, 100e6, rm);
  EXPECT_TRUE(off.used_fallback);
  EXPECT_DOUBLE_EQ(off.downtime_s, 5.0);
  EXPECT_DOUBLE_EQ(off.lost_records, 0.0);
  // Checkpointing on but nothing ever completed: restart empty — the state is gone.
  CheckpointCoordinator c(FastCheckpoint(), SmallState());
  c.AdvanceTo(5.0, kRate * 5.0);  // before the first trigger
  RecoveryEstimate none = EstimateRecovery(&c, 5.0, kRate * 5.0, kRate, 100e6, rm);
  EXPECT_TRUE(none.used_fallback);
  EXPECT_DOUBLE_EQ(none.downtime_s, 5.0);
  EXPECT_DOUBLE_EQ(none.lost_records, kRate * 5.0);
}

TEST(RecoveryModelTest, DowntimeGrowsWithStateSizeAndBacklog) {
  CheckpointOptions o = FastCheckpoint();
  StateGrowthModel small = SmallState();
  StateGrowthModel large = SmallState();
  large.bytes_per_record = 64.0 * 16;
  CheckpointCoordinator cs(o, small);
  CheckpointCoordinator cl(o, large);
  RunTo(cs, 35.0);
  RunTo(cl, 35.0);
  RecoveryModelOptions rm;
  RecoveryEstimate es = EstimateRecovery(&cs, 40.0, kRate * 40.0, kRate, 20e6, rm);
  RecoveryEstimate el = EstimateRecovery(&cl, 40.0, kRate * 40.0, kRate, 20e6, rm);
  EXPECT_GT(el.restored_bytes, es.restored_bytes);
  EXPECT_GT(el.restore_s, es.restore_s);
  EXPECT_GT(el.downtime_s, es.downtime_s);
  // A later failure point means a longer backlog since the same barrier.
  RecoveryEstimate later = EstimateRecovery(&cs, 44.0, kRate * 44.0, kRate, 20e6, rm);
  EXPECT_GT(later.replayed_records, es.replayed_records);
  EXPECT_GT(later.downtime_s, es.downtime_s);
}

// --- Checkpoint-failure storms as scheduled faults -------------------------------------------

TEST(CheckpointFaultTest, StormToggleExpandsAndDrivesInjector) {
  FaultSchedule s;
  s.CheckpointFailureStorm(30.0, 20.0);
  auto prims = s.Expand();
  ASSERT_EQ(prims.size(), 2u);
  EXPECT_EQ(prims[0].kind, PrimitiveFault::Kind::kSetCheckpointFail);
  EXPECT_DOUBLE_EQ(prims[0].value, 1.0);
  EXPECT_DOUBLE_EQ(prims[1].time_s, 50.0);
  EXPECT_DOUBLE_EQ(prims[1].value, 0.0);

  FaultInjector injector(s, 2, 1);
  injector.AdvanceTo(10.0, nullptr);
  EXPECT_FALSE(injector.CheckpointsFailing());
  injector.AdvanceTo(35.0, nullptr);
  EXPECT_TRUE(injector.CheckpointsFailing());
  injector.AdvanceTo(55.0, nullptr);
  EXPECT_FALSE(injector.CheckpointsFailing());
}

// --- End-to-end: chaos runs with checkpointing -----------------------------------------------

ChaosExperimentOptions CheckpointedChaos() {
  ChaosExperimentOptions o;
  o.policy = PlacementPolicy::kFlinkEvenly;
  o.run_s = 180.0;
  o.seed = 11;
  o.upscale_cooldown_s = 20.0;
  o.use_checkpointing = true;
  o.checkpoint.interval_s = 15.0;
  o.checkpoint.min_pause_s = 1.0;
  o.exactly_once = true;
  return o;
}

TEST(ChaosCheckpointTest, CrashRecoveryReplaysFromLastBarrierWithZeroLoss) {
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  FaultSchedule s;
  s.Crash(60.0, 1).Restore(140.0, 1);
  ChaosRun run = RunChaosExperiment(q, cluster, s, CheckpointedChaos());
  // Checkpoints completed before the crash, so recovery restored one and replayed the
  // backlog — no state or records were lost under exactly-once.
  EXPECT_GE(run.checkpoints_completed, 1);
  EXPECT_GE(run.reconfigurations, 1);
  EXPECT_GT(run.replayed_records, 0.0);
  EXPECT_DOUBLE_EQ(run.lost_records, 0.0);
  EXPECT_DOUBLE_EQ(run.duplicate_records, 0.0);
  EXPECT_GT(run.restore_downtime_s, 0.0);
  // Replayed-record counts per reconfiguration land in the run telemetry.
  const TimeSeries* replayed = run.telemetry.Find("chaos.0.replayed_records");
  ASSERT_NE(replayed, nullptr);
  EXPECT_EQ(replayed->points().size(), static_cast<size_t>(run.reconfigurations));
}

TEST(ChaosCheckpointTest, AtLeastOnceTradesDuplicatesForShorterBlackout) {
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  FaultSchedule s;
  s.Crash(60.0, 1).Restore(140.0, 1);
  ChaosExperimentOptions eo = CheckpointedChaos();
  ChaosExperimentOptions alo = CheckpointedChaos();
  alo.exactly_once = false;
  ChaosRun run_eo = RunChaosExperiment(q, cluster, s, eo);
  ChaosRun run_alo = RunChaosExperiment(q, cluster, s, alo);
  ASSERT_GE(run_eo.reconfigurations, 1);
  ASSERT_GE(run_alo.reconfigurations, 1);
  EXPECT_DOUBLE_EQ(run_eo.duplicate_records, 0.0);
  EXPECT_GT(run_alo.duplicate_records, 0.0);
  EXPECT_LT(run_alo.restore_downtime_s, run_eo.restore_downtime_s);
}

TEST(ChaosCheckpointTest, FailureStormForcesOlderRestorePoint) {
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  // The storm covers [40, 100): every checkpoint in that window fails. The crash at 90
  // must restore a barrier from before the storm — a longer replay than without it.
  FaultSchedule with_storm;
  with_storm.CheckpointFailureStorm(40.0, 60.0);
  with_storm.Crash(90.0, 1).Restore(150.0, 1);
  FaultSchedule without_storm;
  without_storm.Crash(90.0, 1).Restore(150.0, 1);
  ChaosRun storm = RunChaosExperiment(q, cluster, with_storm, CheckpointedChaos());
  ChaosRun clean = RunChaosExperiment(q, cluster, without_storm, CheckpointedChaos());
  EXPECT_GE(storm.checkpoints_failed, 1);
  ASSERT_GE(storm.reconfigurations, 1);
  ASSERT_GE(clean.reconfigurations, 1);
  // Still zero loss — the pre-storm checkpoint covers the state — but more to replay.
  EXPECT_DOUBLE_EQ(storm.lost_records, 0.0);
  EXPECT_GT(storm.replayed_records, clean.replayed_records);
}

}  // namespace
}  // namespace capsys
