// Equivalence pins for the zero-allocation hot-path refactor.
//
// The incremental search state (per-operator placed totals, host lists, bound-violation
// count, suffix slot capacities) and the simulator's arena-based tick are pure
// restructurings: they must not change a single bit of any result. These tests pin
// hexfloat goldens captured from the pre-refactor implementation — search stats, best and
// pareto-front costs on the three NEXMark queries (including the exact orbit counts
// 80/665/950), and full QuerySummary values — plus multi-thread-vs-single-thread
// determinism for both subsystems.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "src/caps/cost_model.h"
#include "src/caps/greedy.h"
#include "src/caps/search.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

struct Fixture {
  explicit Fixture(const QuerySpec& query)
      : q(query),
        graph(PhysicalGraph::Expand(q.graph)),
        cluster(4, WorkerSpec::R5dXlarge(4)),
        model(graph, cluster, TaskDemands(graph, PropagateRates(q.graph, q.source_rates))) {}

  QuerySpec q;
  PhysicalGraph graph;
  Cluster cluster;
  CostModel model;
};

SearchResult RunSearch(const Fixture& f, ResourceVector alpha, int num_threads = 1) {
  SearchOptions options;
  options.alpha = alpha;
  options.num_threads = num_threads;
  CapsSearch search(f.model, options);
  return search.Run();
}

std::vector<ResourceVector> SortedParetoCosts(const SearchResult& r) {
  std::vector<ResourceVector> pf;
  for (const auto& p : r.pareto) {
    pf.push_back(p.cost);
  }
  std::sort(pf.begin(), pf.end(), [](const ResourceVector& a, const ResourceVector& b) {
    if (a.cpu != b.cpu) return a.cpu < b.cpu;
    if (a.io != b.io) return a.io < b.io;
    return a.net < b.net;
  });
  return pf;
}

// EXPECT_EQ on doubles is deliberate throughout: the refactor contract is bit-identity.
void ExpectCost(const ResourceVector& got, double cpu, double io, double net) {
  EXPECT_EQ(got.cpu, cpu);
  EXPECT_EQ(got.io, io);
  EXPECT_EQ(got.net, net);
}

TEST(SearchEquivalence, Q1SlidingGolden) {
  Fixture f(BuildQ1Sliding());
  SearchResult r = RunSearch(f, {1.0, 1.0, 1.0});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.stats.nodes, 872u);
  EXPECT_EQ(r.stats.leaves, 80u);  // Q1 orbit count (paper Fig. 2)
  EXPECT_EQ(r.stats.pruned, 0u);
  ExpectCost(r.best.cost, 0x1.bd5a27c833a9cp-2, 0x0p+0, 0x1.9e1e1e1e1e1e2p-2);
  auto pf = SortedParetoCosts(r);
  ASSERT_EQ(pf.size(), 3u);
  ExpectCost(pf[0], 0x1.415b304e87e1p-2, 0x1p-1, 0x1.d4b4b4b4b4b4bp-2);
  ExpectCost(pf[1], 0x1.bd5a27c833a9cp-2, 0x0p+0, 0x1.9e1e1e1e1e1e2p-2);
  ExpectCost(pf[2], 0x1.c20084432a1bap-1, 0x1p-1, 0x1.8969696969697p-2);
}

TEST(SearchEquivalence, Q2JoinGolden) {
  Fixture f(BuildQ2Join());
  SearchResult r = RunSearch(f, {1.0, 1.0, 1.0});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.stats.nodes, 3417u);
  EXPECT_EQ(r.stats.leaves, 665u);  // Q2 orbit count
  EXPECT_EQ(r.stats.pruned, 0u);
  ExpectCost(r.best.cost, 0x1.077c41df106f4p-4, 0x1.5555555555555p-2, 0x1.70586722fe288p-2);
  auto pf = SortedParetoCosts(r);
  ASSERT_EQ(pf.size(), 11u);
  ExpectCost(pf[0], 0x1.6f485bd216ed8p-5, 0x1.5555555555555p-2, 0x1.d77b654b82c34p-2);
  ExpectCost(pf[5], 0x1.c71c71c71c71dp-2, 0x0p+0, 0x1.4f31ba03aef6dp-2);
  ExpectCost(pf[10], 0x1.d31674c59d30ep-1, 0x0p+0, 0x1.8dd01d77b654cp-3);
}

TEST(SearchEquivalence, Q3InfGolden) {
  Fixture f(BuildQ3Inf());
  SearchResult r = RunSearch(f, {1.0, 1.0, 1.0});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.stats.nodes, 5051u);
  EXPECT_EQ(r.stats.leaves, 950u);  // Q3 orbit count
  EXPECT_EQ(r.stats.pruned, 0u);
  ExpectCost(r.best.cost, 0x1.7333edfcb19f2p-4, 0x0p+0, 0x1.8p-2);
  auto pf = SortedParetoCosts(r);
  ASSERT_EQ(pf.size(), 3u);
  ExpectCost(pf[0], 0x1.525e82c3bf794p-4, 0x0p+0, 0x1.81c71c71c71c7p-2);
  ExpectCost(pf[1], 0x1.7333edfcb19f2p-4, 0x0p+0, 0x1.8p-2);
  ExpectCost(pf[2], 0x1.ef035cf8c2b8dp-2, 0x0p+0, 0x1.7e6b74f032915p-2);
}

// Tight thresholds exercise the incremental bound-violation counter on the pruning path.
TEST(SearchEquivalence, Q2TightThresholdGolden) {
  Fixture f(BuildQ2Join());
  SearchResult r = RunSearch(f, {0.5, 0.35, 0.7});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.stats.nodes, 1129u);
  EXPECT_EQ(r.stats.leaves, 178u);
  EXPECT_EQ(r.stats.pruned, 149u);
  ExpectCost(r.best.cost, 0x1.077c41df106f4p-4, 0x1.5555555555555p-2, 0x1.70586722fe288p-2);
  EXPECT_EQ(SortedParetoCosts(r).size(), 5u);
}

TEST(SearchEquivalence, Q3TightThresholdGolden) {
  Fixture f(BuildQ3Inf());
  SearchResult r = RunSearch(f, {0.5, 0.5, 0.8});
  EXPECT_TRUE(r.found);
  EXPECT_EQ(r.stats.nodes, 2789u);
  EXPECT_EQ(r.stats.leaves, 524u);
  EXPECT_EQ(r.stats.pruned, 30u);
  ExpectCost(r.best.cost, 0x1.7333edfcb19f2p-4, 0x0p+0, 0x1.8p-2);
}

// Parallel subtree exploration must land on a best plan of the same BetterCost rank and
// the same exact leaf/pruned counts as the deterministic single-threaded run (the
// enumeration and threshold pruning are exact under any work interleaving; only the visit
// order changes). The cost RANK is compared to a few ulps, not bit-exactly: loads are
// maintained incrementally (`+=` on apply, `-=` on undo), and that pair does not cancel
// bitwise in floating point, so a leaf's low bits depend on the entire visit history.
// An offloaded subtree starts from a forked context copy whose history differs from the
// sequential one, shifting costs by ~1 ulp (this predates the incremental-state refactor;
// single-threaded order is deterministic, which is what the goldens above pin bit-exactly).
TEST(SearchEquivalence, MultiThreadMatchesSingleThread) {
  Fixture f(BuildQ2Join());
  SearchResult st = RunSearch(f, {0.5, 0.35, 0.7}, 1);
  SearchResult mt = RunSearch(f, {0.5, 0.35, 0.7}, 4);
  EXPECT_NEAR(mt.best.cost.Max(), st.best.cost.Max(), 1e-12);
  EXPECT_NEAR(mt.best.cost.Sum(), st.best.cost.Sum(), 1e-12);
  EXPECT_EQ(mt.stats.leaves, st.stats.leaves);
  EXPECT_EQ(mt.stats.pruned, st.stats.pruned);
}

QuerySummary RunSim(const QuerySpec& q, int num_threads = 1) {
  Fixture f(q);
  SimConfig cfg;
  cfg.num_threads = num_threads;
  FluidSimulator sim(f.graph, f.cluster, GreedyBalancedPlacement(f.model), cfg);
  sim.SetAllSourceRates(q.TotalTargetRate());
  return sim.RunMeasured(30, 60);
}

void ExpectSummary(const QuerySummary& s, double throughput, double bp, double latency,
                   double sink, double ucpu, double uio, double unet) {
  EXPECT_EQ(s.throughput, throughput);
  EXPECT_EQ(s.backpressure, bp);
  EXPECT_EQ(s.latency_s, latency);
  EXPECT_EQ(s.sink_rate, sink);
  EXPECT_EQ(s.max_worker_utilization.cpu, ucpu);
  EXPECT_EQ(s.max_worker_utilization.io, uio);
  EXPECT_EQ(s.max_worker_utilization.net, unet);
}

TEST(SimulatorEquivalence, Q1SummaryGolden) {
  ExpectSummary(RunSim(BuildQ1Sliding()), 0x1.b58p+13, 0x0p+0, 0x1.8e56041893742p-3,
                0x1.3b00000000001p+9, 0x1.6666666666664p-3, 0x1.32c8590b21641p-1,
                0x1.e4712e40852bep-11);
}

TEST(SimulatorEquivalence, Q2SummaryGolden) {
  ExpectSummary(RunSim(BuildQ2Join()), 0x1.388p+17, 0x1.1745d1745d176p-2,
                0x1.d0a3d70a3d702p-2, 0x1.c52p+16, 0x1.f33333333333cp-2,
                0x1.1c0c7751798bap-2, 0x1.cd5f99c38b042p-7);
}

TEST(SimulatorEquivalence, Q3SummaryGolden) {
  ExpectSummary(RunSim(BuildQ3Inf()), 0x1.9000000000001p+10, 0x0p+0, 0x1.1eb851eb851e6p-2,
                0x1.68p+10, 0x1.72b020c49ba5fp-2, 0x0p+0, 0x1.fff79c842fa4cp-5);
}

// The parallel per-worker contention solve writes disjoint state, so any thread count must
// reproduce the single-threaded run bit for bit — including under backpressure (Q2).
TEST(SimulatorEquivalence, MultiThreadTickMatchesSingleThread) {
  QuerySummary st = RunSim(BuildQ2Join(), 1);
  QuerySummary mt = RunSim(BuildQ2Join(), 4);
  ExpectSummary(mt, st.throughput, st.backpressure, st.latency_s, st.sink_rate,
                st.max_worker_utilization.cpu, st.max_worker_utilization.io,
                st.max_worker_utilization.net);
}

// The per-task source-rate precomputation must not weaken the API contract: setting a rate
// on a non-source operator still fails loudly.
TEST(SimulatorEquivalence, SetSourceRateOnNonSourceDies) {
  Fixture f(BuildQ1Sliding());
  FluidSimulator sim(f.graph, f.cluster, GreedyBalancedPlacement(f.model));
  OperatorId non_source = kInvalidId;
  for (const auto& op : f.q.graph.operators()) {
    if (op.kind != OperatorKind::kSource) {
      non_source = op.id;
      break;
    }
  }
  ASSERT_NE(non_source, kInvalidId);
  EXPECT_DEATH(sim.SetSourceRate(non_source, 1000.0), "not a source operator");
}

}  // namespace
}  // namespace capsys
