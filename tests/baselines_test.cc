// Tests for the Flink baseline placement strategies and the ODRP optimizer.
#include <gtest/gtest.h>

#include <algorithm>

#include "src/baselines/flink_strategies.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/odrp/odrp.h"

namespace capsys {
namespace {

// --- Flink strategies --------------------------------------------------------------------------

TEST(FlinkStrategiesTest, DefaultFillsWorkersSequentially) {
  QuerySpec q = BuildQ1Sliding();  // 16 tasks
  PhysicalGraph p = PhysicalGraph::Expand(q.graph);
  Cluster cluster(8, WorkerSpec::R5dXlarge(4));  // 32 slots
  Rng rng(5);
  Placement plan = FlinkDefaultPlacement(p, cluster, rng);
  EXPECT_EQ(plan.Validate(p, cluster), "");
  auto load = plan.LoadByWorker(cluster);
  // 16 tasks fill exactly the first 4 workers.
  EXPECT_EQ(load, (std::vector<int>{4, 4, 4, 4, 0, 0, 0, 0}));
}

TEST(FlinkStrategiesTest, EvenlyBalancesTaskCounts) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph p = PhysicalGraph::Expand(q.graph);
  Cluster cluster(8, WorkerSpec::R5dXlarge(4));
  Rng rng(5);
  Placement plan = FlinkEvenlyPlacement(p, cluster, rng);
  EXPECT_EQ(plan.Validate(p, cluster), "");
  auto load = plan.LoadByWorker(cluster);
  for (int l : load) {
    EXPECT_EQ(l, 2);  // 16 tasks on 8 workers
  }
}

TEST(FlinkStrategiesTest, RandomTaskOrderVariesAcrossSeeds) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph p = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  Rng rng1(1);
  Rng rng2(2);
  Placement a = FlinkDefaultPlacement(p, cluster, rng1);
  Placement b = FlinkDefaultPlacement(p, cluster, rng2);
  EXPECT_FALSE(a == b);
}

TEST(FlinkStrategiesTest, ExactFitUsesEverySlot) {
  QuerySpec q = BuildQ1Sliding();
  PhysicalGraph p = PhysicalGraph::Expand(q.graph);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));  // exactly 16 slots
  Rng rng(7);
  for (auto* strategy : {&FlinkDefaultPlacement, &FlinkEvenlyPlacement}) {
    Placement plan = (*strategy)(p, cluster, rng);
    EXPECT_EQ(plan.Validate(p, cluster), "");
    for (int l : plan.LoadByWorker(cluster)) {
      EXPECT_EQ(l, 4);
    }
  }
}

// --- ODRP ----------------------------------------------------------------------------------------

OdrpOptions FastOdrp() {
  OdrpOptions options;
  options.max_parallelism = 4;
  options.timeout_s = 10.0;
  options.break_symmetry = true;  // keep unit tests quick
  return options;
}

TEST(OdrpTest, FindsValidJointSolution) {
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  OdrpResult r = SolveOdrp(q.graph, cluster, q.source_rates, FastOdrp());
  ASSERT_TRUE(r.found);
  ASSERT_EQ(r.parallelism.size(), 4u);
  LogicalGraph sized = q.graph;
  sized.SetParallelism(r.parallelism);
  PhysicalGraph physical = PhysicalGraph::Expand(sized);
  EXPECT_EQ(r.placement.Validate(physical, cluster), "");
  EXPECT_EQ(r.slots_used, sized.total_parallelism());
  EXPECT_GT(r.nodes, 0u);
}

TEST(OdrpTest, SourceAndSinkParallelismFixed) {
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  OdrpResult r = SolveOdrp(q.graph, cluster, q.source_rates, FastOdrp());
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.parallelism[0], q.graph.op(0).parallelism);  // source
  EXPECT_EQ(r.parallelism[3], q.graph.op(3).parallelism);  // sink
}

TEST(OdrpTest, LatencyConfigProvisionsMoreThanDefault) {
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  OdrpOptions default_opts = FastOdrp();
  default_opts.weights = OdrpWeights::Default();
  OdrpOptions latency_opts = FastOdrp();
  latency_opts.weights = OdrpWeights::Latency();
  OdrpResult d = SolveOdrp(q.graph, cluster, q.source_rates, default_opts);
  OdrpResult l = SolveOdrp(q.graph, cluster, q.source_rates, latency_opts);
  ASSERT_TRUE(d.found);
  ASSERT_TRUE(l.found);
  // Latency-only ignores resource cost, so it provisions at least as many slots.
  EXPECT_GE(l.slots_used, d.slots_used);
}

TEST(OdrpTest, DefaultConfigUnderProvisionsAgainstSustainRequirement) {
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  OdrpOptions options = FastOdrp();
  options.weights = OdrpWeights::Default();
  OdrpResult r = SolveOdrp(q.graph, cluster, q.source_rates, options);
  ASSERT_TRUE(r.found);
  // The inference stage needs ~4-5 tasks to sustain the target; base ODRP has no sustain
  // objective, so it picks fewer (the paper's §6.3 finding).
  EXPECT_LT(r.parallelism[2], 4);
}

TEST(OdrpTest, BudgetExhaustionReportsBestSoFar) {
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(4, WorkerSpec::R5dXlarge(8));
  OdrpOptions options;
  options.max_parallelism = 8;
  options.break_symmetry = false;  // ILP-faithful, huge tree
  options.weights = OdrpWeights::Latency();  // weak bounds keep the tree large
  options.max_nodes = 20000;
  OdrpResult r = SolveOdrp(q.graph, cluster, q.source_rates, options);
  EXPECT_TRUE(r.budget_exhausted);
  EXPECT_LT(r.decision_time_s, 5.0);
  if (r.found) {
    LogicalGraph sized = q.graph;
    sized.SetParallelism(r.parallelism);
    PhysicalGraph physical = PhysicalGraph::Expand(sized);
    EXPECT_EQ(r.placement.Validate(physical, cluster), "");
  }
}

TEST(OdrpTest, SymmetryBreakingPreservesObjective) {
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  OdrpOptions sym = FastOdrp();
  OdrpOptions full = FastOdrp();
  full.break_symmetry = false;
  full.timeout_s = 30.0;
  OdrpResult a = SolveOdrp(q.graph, cluster, q.source_rates, sym);
  OdrpResult b = SolveOdrp(q.graph, cluster, q.source_rates, full);
  ASSERT_TRUE(a.found);
  ASSERT_TRUE(b.found);
  if (!a.budget_exhausted && !b.budget_exhausted) {
    EXPECT_NEAR(a.objective, b.objective, 1e-9);
    EXPECT_GT(b.nodes, a.nodes);  // symmetry breaking explores strictly less
  }
}

}  // namespace
}  // namespace capsys
