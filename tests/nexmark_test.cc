// Tests for the Nexmark event generator and the six evaluation queries.
#include <gtest/gtest.h>

#include <map>

#include "src/nexmark/generator.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

TEST(GeneratorTest, DeterministicForSameSeed) {
  NexmarkGenerator a;
  NexmarkGenerator b;
  for (int i = 0; i < 500; ++i) {
    Event ea = a.Next();
    Event eb = b.Next();
    EXPECT_EQ(ea.kind, eb.kind);
    EXPECT_EQ(ea.timestamp_ms, eb.timestamp_ms);
    if (ea.kind == Event::Kind::kBid) {
      EXPECT_EQ(ea.bid().auction, eb.bid().auction);
      EXPECT_EQ(ea.bid().price, eb.bid().price);
    }
  }
}

TEST(GeneratorTest, ProportionsMatchConfig) {
  NexmarkGenerator gen;
  std::map<Event::Kind, int> counts;
  for (const Event& e : gen.Take(5000)) {
    ++counts[e.kind];
  }
  EXPECT_EQ(counts[Event::Kind::kPerson], 100);
  EXPECT_EQ(counts[Event::Kind::kAuction], 300);
  EXPECT_EQ(counts[Event::Kind::kBid], 4600);
}

TEST(GeneratorTest, TimestampsMonotoneAtConfiguredRate) {
  GeneratorConfig config;
  config.events_per_second = 2000;
  NexmarkGenerator gen(config);
  int64_t prev = -1;
  for (const Event& e : gen.Take(4000)) {
    EXPECT_GE(e.timestamp_ms, prev);
    prev = e.timestamp_ms;
  }
  EXPECT_NEAR(static_cast<double>(prev), 2000.0, 5.0);  // 4000 events at 2k/s ~ 2s
}

TEST(GeneratorTest, BidsReferenceExistingAuctions) {
  NexmarkGenerator gen;
  for (const Event& e : gen.Take(2000)) {
    if (e.kind == Event::Kind::kBid) {
      EXPECT_GE(e.bid().auction, 1000);
      EXPECT_LT(e.bid().auction, gen.next_auction_id());
    }
  }
}

TEST(GeneratorTest, HotBidSkewConcentratesAuctions) {
  GeneratorConfig hot;
  hot.hot_bid_fraction = 0.9;
  hot.hot_auctions = 2;
  NexmarkGenerator gen(hot);
  gen.Take(1000);  // warm up the auction id space
  // A bid is "hot" relative to the auctions that existed when it was generated, so track
  // the max auction id as the stream progresses.
  int64_t max_auction = gen.next_auction_id() - 1;
  int hot_count = 0;
  int bids = 0;
  for (const Event& e : gen.Take(2000)) {
    if (e.kind == Event::Kind::kAuction) {
      max_auction = e.auction().id;
    } else if (e.kind == Event::Kind::kBid) {
      ++bids;
      if (e.bid().auction >= max_auction - 4) {
        ++hot_count;
      }
    }
  }
  EXPECT_GT(static_cast<double>(hot_count) / bids, 0.5);

  // Without skew the same window captures only a tiny fraction.
  NexmarkGenerator uniform;
  uniform.Take(1000);
  max_auction = uniform.next_auction_id() - 1;
  int uniform_hot = 0;
  bids = 0;
  for (const Event& e : uniform.Take(2000)) {
    if (e.kind == Event::Kind::kAuction) {
      max_auction = e.auction().id;
    } else if (e.kind == Event::Kind::kBid) {
      ++bids;
      if (e.bid().auction >= max_auction - 4) {
        ++uniform_hot;
      }
    }
  }
  EXPECT_LT(static_cast<double>(uniform_hot) / bids, 0.2);
}

TEST(GeneratorTest, PersonsHaveCredibleFields) {
  NexmarkGenerator gen;
  for (const Event& e : gen.Take(500)) {
    if (e.kind == Event::Kind::kPerson) {
      EXPECT_FALSE(e.person().name.empty());
      EXPECT_NE(e.person().email.find('@'), std::string::npos);
    }
  }
}

// --- Queries ---------------------------------------------------------------------------------

TEST(QueriesTest, AllQueriesValidate) {
  for (const QuerySpec& q : BuildAllQueries()) {
    EXPECT_EQ(q.graph.Validate(), "") << q.graph.name();
    EXPECT_FALSE(q.source_rates.empty()) << q.graph.name();
    EXPECT_GT(q.TotalTargetRate(), 0.0) << q.graph.name();
    // Every configured source rate refers to an actual source operator.
    auto sources = q.graph.SourceIds();
    for (const auto& [op, r] : q.source_rates) {
      EXPECT_NE(std::find(sources.begin(), sources.end(), op), sources.end());
    }
  }
}

TEST(QueriesTest, MotivationClusterParallelismsFit) {
  // Q1-Q3 defaults must fit the 4-worker x 4-slot motivation cluster.
  EXPECT_LE(BuildQ1Sliding().graph.total_parallelism(), 16);
  EXPECT_LE(BuildQ2Join().graph.total_parallelism(), 16);
  EXPECT_LE(BuildQ3Inf().graph.total_parallelism(), 16);
}

TEST(QueriesTest, StatefulOperatorsMarked) {
  QuerySpec q1 = BuildQ1Sliding();
  EXPECT_TRUE(q1.graph.op(2).profile.stateful);  // sliding window
  QuerySpec q2 = BuildQ2Join();
  EXPECT_TRUE(q2.graph.op(4).profile.stateful);  // window join
  QuerySpec q6 = BuildQ6Session();
  EXPECT_TRUE(q6.graph.op(2).profile.stateful);  // session window
}

TEST(QueriesTest, InferenceIsComputeAndGcHeavy) {
  QuerySpec q = BuildQ3Inf();
  const auto& inf = q.graph.op(2).profile;
  EXPECT_GT(inf.cpu_per_record, 1e-3);
  EXPECT_GT(inf.gc_spike_fraction, 0.0);
  // Decode moves large records (network-intensive under capped NICs).
  EXPECT_GT(q.graph.op(1).profile.out_bytes_per_record, 50000.0);
}

TEST(QueriesTest, ScaleRatesMultipliesAllSources) {
  QuerySpec q = BuildQ2Join();
  double before = q.TotalTargetRate();
  q.ScaleRates(2.5);
  EXPECT_NEAR(q.TotalTargetRate(), before * 2.5, 1e-6);
}

TEST(QueriesTest, BuildByNameAliases) {
  EXPECT_EQ(BuildQueryByName("q1").graph.name(), "q1-sliding");
  EXPECT_EQ(BuildQueryByName("q3-inf").graph.name(), "q3-inf");
  EXPECT_EQ(BuildQueryByName("q5").graph.name(), "q5-aggregate");
}

TEST(QueriesTest, BuildByNameUnknownDies) {
  EXPECT_DEATH(BuildQueryByName("q99"), "unknown query");
}

TEST(QueriesTest, OperatorKindNamesCovered) {
  EXPECT_STREQ(OperatorKindName(OperatorKind::kSource), "source");
  EXPECT_STREQ(OperatorKindName(OperatorKind::kInference), "inference");
  EXPECT_STREQ(OperatorKindName(OperatorKind::kSessionWindow), "session_window");
  EXPECT_STREQ(PartitionSchemeName(PartitionScheme::kHash), "hash");
}

}  // namespace
}  // namespace capsys
