// Tests for the variable-workload scaling experiment driver (Table 4 / Figure 9 machinery)
// and the placement-group utility.
#include <gtest/gtest.h>

#include "src/caps/cost_model.h"
#include "src/caps/placement_groups.h"
#include "src/caps/search.h"
#include "src/controller/scaling_experiments.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

ScalingExperimentOptions FastOptions(PlacementPolicy policy) {
  ScalingExperimentOptions options;
  options.policy = policy;
  options.step_duration_s = 240.0;
  options.activation_time_s = 90.0;  // the paper's DS2 activation time
  options.seed = 3;
  return options;
}

TEST(ScalingExperimentTest, CapsMeetsTargetsWithoutOverprovisioning) {
  Cluster cluster(8, WorkerSpec::R5dXlarge(8));
  QuerySpec q = BuildQ3Inf();
  ScalingRun run = RunScalingExperiment(q, cluster, {720, 1440, 720},
                                        FastOptions(PlacementPolicy::kCaps));
  ASSERT_EQ(run.steps.size(), 3u);
  for (size_t s = 1; s < run.steps.size(); ++s) {
    EXPECT_TRUE(run.steps[s].met_target) << "step " << s;
    EXPECT_FALSE(run.steps[s].overprovisioned) << "step " << s;
  }
}

TEST(ScalingExperimentTest, CapsConvergesInOneDecisionPerRateChange) {
  Cluster cluster(8, WorkerSpec::R5dXlarge(8));
  QuerySpec q = BuildQ3Inf();
  ScalingExperimentOptions options = FastOptions(PlacementPolicy::kCaps);
  options.start_optimal = false;
  ScalingRun run = RunScalingExperiment(q, cluster, {800, 2400, 800}, options);
  // The paper's claim is convergence *within the step* after each rate change: at most a
  // couple of decisions per step, and the target reached by the end of every step.
  EXPECT_LE(run.total_decisions, 2 * static_cast<int>(run.steps.size()));
  for (size_t s = 0; s < run.steps.size(); ++s) {
    EXPECT_TRUE(run.steps[s].met_target) << "step " << s;
  }
}

TEST(ScalingExperimentTest, DefaultPolicyTakesAtLeastAsManyDecisions) {
  Cluster cluster(8, WorkerSpec::R5dXlarge(8));
  QuerySpec q = BuildQ3Inf();
  ScalingExperimentOptions caps = FastOptions(PlacementPolicy::kCaps);
  caps.start_optimal = false;
  ScalingExperimentOptions def = FastOptions(PlacementPolicy::kFlinkDefault);
  def.start_optimal = false;
  ScalingRun caps_run = RunScalingExperiment(q, cluster, {800, 2400, 800}, caps);
  ScalingRun def_run = RunScalingExperiment(q, cluster, {800, 2400, 800}, def);
  EXPECT_GE(def_run.total_decisions, caps_run.total_decisions);
}

TEST(ScalingExperimentTest, TimelineIsMonotoneAndCoversAllSteps) {
  Cluster cluster(8, WorkerSpec::R5dXlarge(8));
  QuerySpec q = BuildQ3Inf();
  ScalingRun run = RunScalingExperiment(q, cluster, {720, 1440},
                                        FastOptions(PlacementPolicy::kCaps));
  ASSERT_FALSE(run.timeline.empty());
  double prev = -1.0;
  for (const auto& p : run.timeline) {
    EXPECT_GT(p.time_s, prev);
    prev = p.time_s;
    EXPECT_GE(p.slots, q.graph.num_operators());  // at least one task per operator
  }
  // Both target levels appear in the timeline.
  bool saw_low = false;
  bool saw_high = false;
  for (const auto& p : run.timeline) {
    saw_low |= p.target_rate == 720;
    saw_high |= p.target_rate == 1440;
  }
  EXPECT_TRUE(saw_low);
  EXPECT_TRUE(saw_high);
}

TEST(ScalingExperimentTest, DecisionsHaveTimestampsWithinRun) {
  Cluster cluster(8, WorkerSpec::R5dXlarge(8));
  QuerySpec q = BuildQ3Inf();
  ScalingRun run = RunScalingExperiment(q, cluster, {720, 1440},
                                        FastOptions(PlacementPolicy::kCaps));
  EXPECT_EQ(static_cast<int>(run.decision_times_s.size()), run.total_decisions);
  for (double t : run.decision_times_s) {
    EXPECT_GE(t, 0.0);
    EXPECT_LE(t, run.timeline.back().time_s + 60.0);
  }
}

// --- Placement groups ----------------------------------------------------------------------------

TEST(PlacementGroupsTest, SplitPreservesStructure) {
  QuerySpec q = BuildQ1Sliding();
  // Split the window operator (p=8) into a hot group of 2 double-weight tasks and a cold
  // group of 6 regular tasks.
  std::vector<GroupSpec> groups = {{2, 2.0}, {6, 1.0}};
  LogicalGraph split = SplitIntoPlacementGroups(q.graph, 2, groups);
  EXPECT_EQ(split.num_operators(), q.graph.num_operators() + 1);
  EXPECT_EQ(split.total_parallelism(), q.graph.total_parallelism());
  EXPECT_EQ(split.Validate(), "");
  // Hot group's per-record costs are scaled.
  const auto& hot = split.op(2);
  const auto& cold = split.op(3);
  EXPECT_NEAR(hot.profile.io_bytes_per_record, 2.0 * cold.profile.io_bytes_per_record, 1e-9);
  // Group operators inherit both the upstream and downstream edges.
  EXPECT_EQ(split.Upstreams(2).size(), 1u);
  EXPECT_EQ(split.Downstreams(2).size(), 1u);
  EXPECT_EQ(split.Upstreams(3).size(), 1u);
}

TEST(PlacementGroupsTest, GroupParallelismMustSum) {
  QuerySpec q = BuildQ1Sliding();
  std::vector<GroupSpec> bad = {{2, 1.0}, {3, 1.0}};  // 5 != 8
  EXPECT_DEATH(SplitIntoPlacementGroups(q.graph, 2, bad), "sum");
}

TEST(PlacementGroupsTest, SearchHandlesGroupsAsOuterLayers) {
  QuerySpec q = BuildQ1Sliding();
  std::vector<GroupSpec> groups = {{4, 1.5}, {4, 0.5}};
  LogicalGraph split = SplitIntoPlacementGroups(q.graph, 2, groups);
  PhysicalGraph physical = PhysicalGraph::Expand(split);
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  auto rates = PropagateRates(split, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  SearchResult r = CapsSearch(model, SearchOptions{}).Run();
  ASSERT_TRUE(r.found);
  EXPECT_EQ(r.best.placement.Validate(physical, cluster), "");
  // The heavy group should not be stacked: its two heaviest-task workers differ.
  EXPECT_LE(r.best.placement.ColocationDegree(physical, cluster, 2), 2);
}

}  // namespace
}  // namespace capsys
