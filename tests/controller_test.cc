// Tests for the controller layer: DS2 scaling, cost profiling, deployment policies, and the
// threshold auto-tuner / greedy placement helpers.
#include <gtest/gtest.h>

#include "src/caps/auto_tuner.h"
#include "src/caps/greedy.h"
#include "src/controller/deployment.h"
#include "src/controller/ds2.h"
#include "src/controller/profiler.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

// --- DS2 -------------------------------------------------------------------------------------

TEST(Ds2Test, SizesOperatorsToCeilOfRateRatio) {
  QuerySpec q = BuildQ1Sliding();
  std::vector<Ds2Observation> obs(4);
  obs[0].true_rate_per_task = 10000;  // source: 14000 target -> p=2
  obs[1].true_rate_per_task = 5000;   // map: in 14000 -> p=3
  obs[2].true_rate_per_task = 2000;   // window: in 12600 -> p=7
  obs[3].true_rate_per_task = 100000; // sink: in 630 -> p=1
  Ds2Decision d = Ds2Scale(q.graph, q.source_rates, obs);
  EXPECT_EQ(d.parallelism, (std::vector<int>{2, 3, 7, 1}));
  EXPECT_TRUE(d.changed);
}

TEST(Ds2Test, UsesObservedSelectivityOverDeclared) {
  QuerySpec q = BuildQ1Sliding();
  std::vector<Ds2Observation> obs(4);
  for (auto& o : obs) {
    o.true_rate_per_task = 10000;
  }
  // Map observed selectivity 0.5 instead of the declared 0.9 -> window input halves.
  obs[1].observed_input_rate = 1000;
  obs[1].observed_output_rate = 500;
  Ds2Decision d = Ds2Scale(q.graph, q.source_rates, obs);
  // window in = 14000 * 0.5 = 7000 -> p=1 at rate 10000.
  EXPECT_EQ(d.parallelism[2], 1);
}

TEST(Ds2Test, NoChangeWhenCurrentParallelismOptimal) {
  QuerySpec q = BuildQ1Sliding();
  q.graph.SetParallelism({2, 2, 2, 1});
  std::vector<Ds2Observation> obs(4);
  obs[0].true_rate_per_task = 7000;   // 14000/7000 = 2
  obs[1].true_rate_per_task = 7000;   // 14000/7000 = 2
  obs[2].true_rate_per_task = 6300;   // 12600/6300 = 2
  obs[3].true_rate_per_task = 1000;   // 630/1000 -> 1
  Ds2Decision d = Ds2Scale(q.graph, q.source_rates, obs);
  EXPECT_FALSE(d.changed);
}

TEST(Ds2Test, ClampsToBounds) {
  QuerySpec q = BuildQ1Sliding();
  std::vector<Ds2Observation> obs(4);
  for (auto& o : obs) {
    o.true_rate_per_task = 1.0;  // would need absurd parallelism
  }
  Ds2Options options;
  options.max_parallelism = 6;
  Ds2Decision d = Ds2Scale(q.graph, q.source_rates, obs, options);
  for (int p : d.parallelism) {
    EXPECT_LE(p, 6);
    EXPECT_GE(p, 1);
  }
}

TEST(Ds2Test, ZeroTrueRateKeepsCurrentParallelism) {
  QuerySpec q = BuildQ1Sliding();
  std::vector<Ds2Observation> obs(4);  // all true rates 0 (no data)
  Ds2Decision d = Ds2Scale(q.graph, q.source_rates, obs);
  EXPECT_FALSE(d.changed);
}

// --- Profiler ---------------------------------------------------------------------------------

TEST(ProfilerTest, MeasuredCostsApproximateGroundTruth) {
  QuerySpec q = BuildQ1Sliding();
  auto costs = ProfileOperators(q.graph, q.source_rates, WorkerSpec::R5dXlarge(4));
  ASSERT_EQ(costs.size(), 4u);
  // Map: pure CPU, no GC, no state -> measurement should be close to the declared profile.
  EXPECT_NEAR(costs[1].cpu_per_record, 40e-6, 8e-6);
  EXPECT_NEAR(costs[1].selectivity, 0.9, 0.05);
  EXPECT_LT(costs[1].io_bytes_per_record, 1.0);
  // Window: io-heavy.
  EXPECT_NEAR(costs[2].io_bytes_per_record, 35000, 7000);
  EXPECT_NEAR(costs[2].selectivity, 0.05, 0.01);
}

TEST(ProfilerTest, DemandsFromMeasuredCostsScaleWithRate) {
  QuerySpec q = BuildQ1Sliding();
  auto costs = ProfileOperators(q.graph, q.source_rates, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates_lo = PropagateRates(q.graph, 7000.0);
  auto rates_hi = PropagateRates(q.graph, 14000.0);
  auto d_lo = DemandsFromMeasuredCosts(physical, costs, rates_lo);
  auto d_hi = DemandsFromMeasuredCosts(physical, costs, rates_hi);
  for (size_t i = 0; i < d_lo.size(); ++i) {
    EXPECT_NEAR(d_hi[i].cpu, 2.0 * d_lo[i].cpu, 1e-9);
    EXPECT_NEAR(d_hi[i].io, 2.0 * d_lo[i].io, 1e-6);
  }
}

// --- Auto-tuner --------------------------------------------------------------------------------

TEST(AutoTunerTest, ResultIsFeasible) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  AutoTuneResult r = AutoTuneThresholds(model);
  ASSERT_TRUE(r.feasible);
  // The returned alpha must admit at least one plan.
  SearchOptions options;
  options.alpha = r.alpha;
  options.find_first = true;
  EXPECT_TRUE(CapsSearch(model, options).Run().found);
}

TEST(AutoTunerTest, ResultAdmitsNearOptimalPlans) {
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  AutoTuneResult tuned = AutoTuneThresholds(model);
  ASSERT_TRUE(tuned.feasible);
  SearchOptions options;
  options.alpha = tuned.alpha;
  SearchResult constrained = CapsSearch(model, options).Run();
  SearchResult full = CapsSearch(model, SearchOptions{}).Run();
  ASSERT_TRUE(constrained.found);
  // The constrained optimum is within a modest factor of the global optimum.
  EXPECT_LE(constrained.best.cost.Max(), full.best.cost.Max() * 2.0 + 0.1);
}

TEST(AutoTunerTest, HonorsTimeout) {
  QuerySpec q = BuildQ2Join();
  q.graph.SetParallelism({4, 4, 8, 8, 24});
  Cluster cluster(16, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  AutoTuneOptions options;
  options.timeout_s = 0.05;
  options.probe_timeout_s = 0.01;
  AutoTuneResult r = AutoTuneThresholds(model, options);
  EXPECT_LT(r.elapsed_s, 2.0);
}

// --- Greedy ------------------------------------------------------------------------------------

TEST(GreedyTest, ProducesValidPlacement) {
  QuerySpec q = BuildQ5Aggregate();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  Placement plan = GreedyBalancedPlacement(model);
  EXPECT_EQ(plan.Validate(physical, cluster), "");
}

TEST(GreedyTest, NearBalancedForHeavyOperators) {
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  Placement plan = GreedyBalancedPlacement(model);
  // The 8 window tasks must be spread 2 per worker.
  EXPECT_EQ(plan.ColocationDegree(physical, cluster, 2), 2);
}

TEST(GreedyTest, CostWithinRangeOfExhaustiveOptimum) {
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(physical, cluster, TaskDemands(physical, rates));
  Placement greedy = GreedyBalancedPlacement(model);
  SearchResult best = CapsSearch(model, SearchOptions{}).Run();
  ASSERT_TRUE(best.found);
  // Greedy is not optimal but must be in the same ballpark on the dominant dimension.
  EXPECT_LE(model.Cost(greedy).Max(), best.best.cost.Max() * 3.0 + 0.15);
}

// --- Deployment ---------------------------------------------------------------------------------

TEST(DeploymentTest, CapsDeploymentIsValidAndBeatsBaselinesOnCost) {
  Cluster cluster(4, WorkerSpec::M5d2xlarge(8));
  QuerySpec q = BuildQ1Sliding();
  q.ScaleRates(2.0);

  DeployOptions caps_options;
  caps_options.policy = PlacementPolicy::kCaps;
  caps_options.use_ds2_sizing = true;
  CapsysController caps(cluster, caps_options);
  Deployment d = caps.Deploy(q);
  EXPECT_EQ(d.placement.Validate(d.physical, cluster), "");
  EXPECT_GT(d.physical.num_tasks(), 0);
  EXPECT_GE(d.decision_time_s, 0.0);

  auto op_rates = PropagateRates(d.graph, d.source_rates);
  auto demands = DemandsFromMeasuredCosts(d.physical, d.costs, op_rates);
  CostModel model(d.physical, cluster, demands);
  ResourceVector caps_cost = model.Cost(d.placement);

  for (PlacementPolicy policy :
       {PlacementPolicy::kFlinkDefault, PlacementPolicy::kFlinkEvenly}) {
    DeployOptions options = caps_options;
    options.policy = policy;
    CapsysController controller(cluster, options);
    Placement p = controller.Place(d.physical, demands, nullptr);
    EXPECT_EQ(p.Validate(d.physical, cluster), "");
    ResourceVector cost = model.Cost(p);
    EXPECT_LE(caps_cost.Max(), cost.Max() + 1e-9)
        << "CAPS cost should not exceed " << PolicyName(policy);
  }
}

TEST(DeploymentTest, Ds2SizingFitsCluster) {
  Cluster cluster(4, WorkerSpec::M5d2xlarge(8));
  for (QuerySpec& q : BuildAllQueries()) {
    q.ScaleRates(2.0);
    DeployOptions options;
    options.use_ds2_sizing = true;
    CapsysController controller(cluster, options);
    Deployment d = controller.Deploy(q);
    EXPECT_LE(d.physical.num_tasks(), cluster.total_slots()) << q.graph.name();
    EXPECT_EQ(d.placement.Validate(d.physical, cluster), "") << q.graph.name();
  }
}

TEST(DeploymentTest, BaselinePoliciesVaryWithSeed) {
  Cluster cluster(4, WorkerSpec::M5d2xlarge(8));
  QuerySpec q = BuildQ1Sliding();
  q.ScaleRates(2.0);
  DeployOptions options;
  options.policy = PlacementPolicy::kFlinkEvenly;
  options.use_ds2_sizing = true;
  options.seed = 1;
  Deployment d1 = CapsysController(cluster, options).Deploy(q);
  options.seed = 2;
  Deployment d2 = CapsysController(cluster, options).Deploy(q);
  EXPECT_FALSE(d1.placement == d2.placement);
}

TEST(DeploymentTest, StandaloneTaskRateUsesBindingResource) {
  MeasuredCost cost;
  cost.cpu_per_record = 1e-4;       // cap 10k
  cost.io_bytes_per_record = 46000;  // cap 230e6/46000 = 5k  <- binding
  cost.out_bytes_per_record = 10;
  cost.selectivity = 1.0;
  double rate = CapsysController::StandaloneTaskRate(cost, WorkerSpec::R5dXlarge(4));
  EXPECT_NEAR(rate, 5000.0, 1.0);
}

TEST(DeploymentTest, PolicyNames) {
  EXPECT_STREQ(PolicyName(PlacementPolicy::kCaps), "capsys");
  EXPECT_STREQ(PolicyName(PlacementPolicy::kFlinkDefault), "default");
  EXPECT_STREQ(PolicyName(PlacementPolicy::kFlinkEvenly), "evenly");
}

}  // namespace
}  // namespace capsys
