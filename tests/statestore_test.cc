// Tests for the log-structured state store: CRUD semantics, scans, flush/compaction
// behaviour, byte accounting, and a randomized differential test against std::map.
#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/common/rng.h"
#include "src/statestore/state_store.h"

namespace capsys {
namespace {

TEST(StateStoreTest, PutGetRoundTrip) {
  StateStore store;
  store.Put("k1", "v1");
  store.Put("k2", "v2");
  EXPECT_EQ(store.Get("k1"), "v1");
  EXPECT_EQ(store.Get("k2"), "v2");
  EXPECT_EQ(store.Get("missing"), std::nullopt);
}

TEST(StateStoreTest, OverwriteKeepsLatest) {
  StateStore store;
  store.Put("k", "old");
  store.Put("k", "new");
  EXPECT_EQ(store.Get("k"), "new");
}

TEST(StateStoreTest, DeleteHidesKey) {
  StateStore store;
  store.Put("k", "v");
  store.Delete("k");
  EXPECT_EQ(store.Get("k"), std::nullopt);
}

TEST(StateStoreTest, DeleteThenReinsert) {
  StateStore store;
  store.Put("k", "v1");
  store.Delete("k");
  store.Put("k", "v2");
  EXPECT_EQ(store.Get("k"), "v2");
}

TEST(StateStoreTest, FlushTriggersAtThreshold) {
  StateStoreOptions options;
  options.memtable_flush_bytes = 100;
  StateStore store(options);
  EXPECT_EQ(store.stats().flushes, 0u);
  for (int i = 0; i < 20; ++i) {
    store.Put("key" + std::to_string(i), std::string(20, 'x'));
  }
  EXPECT_GT(store.stats().flushes, 0u);
  EXPECT_GE(store.run_count(), 1);
}

TEST(StateStoreTest, ValuesSurviveFlush) {
  StateStoreOptions options;
  options.memtable_flush_bytes = 64;
  StateStore store(options);
  for (int i = 0; i < 50; ++i) {
    store.Put("key" + std::to_string(i), "value" + std::to_string(i));
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(store.Get("key" + std::to_string(i)), "value" + std::to_string(i));
  }
}

TEST(StateStoreTest, CompactionBoundsRunCount) {
  StateStoreOptions options;
  options.memtable_flush_bytes = 64;
  options.max_runs = 3;
  StateStore store(options);
  for (int i = 0; i < 300; ++i) {
    store.Put("key" + std::to_string(i % 40), std::string(16, 'a' + i % 26));
  }
  EXPECT_LE(store.run_count(), 4);  // at most max_runs + 1 freshly flushed
  EXPECT_GT(store.stats().compactions, 0u);
}

TEST(StateStoreTest, CompactionDropsTombstones) {
  StateStoreOptions options;
  options.memtable_flush_bytes = 32;
  options.max_runs = 1;
  StateStore store(options);
  for (int i = 0; i < 30; ++i) {
    store.Put("k" + std::to_string(i), "vvvvvvvv");
  }
  for (int i = 0; i < 30; ++i) {
    store.Delete("k" + std::to_string(i));
  }
  for (int i = 0; i < 30; ++i) {
    store.Put("x" + std::to_string(i), "vvvvvvvv");  // force more flush/compaction cycles
  }
  for (int i = 0; i < 30; ++i) {
    EXPECT_EQ(store.Get("k" + std::to_string(i)), std::nullopt);
  }
  EXPECT_EQ(store.LiveKeyCount(), 30u);
}

TEST(StateStoreTest, ScanRangeAndOrder) {
  StateStore store;
  store.Put("b", "2");
  store.Put("a", "1");
  store.Put("d", "4");
  store.Put("c", "3");
  std::vector<std::string> keys;
  store.Scan("a", "d", [&](const std::string& k, const std::string&) { keys.push_back(k); });
  EXPECT_EQ(keys, (std::vector<std::string>{"a", "b", "c"}));  // half-open [a, d)
}

TEST(StateStoreTest, ScanSeesNewestVersionAcrossRuns) {
  StateStoreOptions options;
  options.memtable_flush_bytes = 32;
  StateStore store(options);
  store.Put("k", "old");
  for (int i = 0; i < 10; ++i) {
    store.Put("pad" + std::to_string(i), "xxxxxxxxxx");  // force flushes
  }
  store.Put("k", "new");
  std::string seen;
  store.Scan("k", "k\xff", [&](const std::string&, const std::string& v) { seen = v; });
  EXPECT_EQ(seen, "new");
}

TEST(StateStoreTest, ScanSkipsTombstones) {
  StateStore store;
  store.Put("a", "1");
  store.Put("b", "2");
  store.Delete("a");
  int count = 0;
  store.Scan("", "zzz", [&](const std::string&, const std::string&) { ++count; });
  EXPECT_EQ(count, 1);
}

TEST(StateStoreTest, WriteAmplificationAboveOneAfterCompaction) {
  StateStoreOptions options;
  options.memtable_flush_bytes = 128;
  options.max_runs = 2;
  StateStore store(options);
  for (int i = 0; i < 500; ++i) {
    store.Put("key" + std::to_string(i % 50), std::string(32, 'y'));
  }
  EXPECT_GT(store.stats().WriteAmplification(), 1.0);
  EXPECT_GT(store.stats().user_bytes_written, 0u);
  EXPECT_GE(store.stats().bytes_written, store.stats().user_bytes_written);
}

TEST(StateStoreTest, ClearRemovesDataKeepsStats) {
  StateStore store;
  store.Put("k", "v");
  uint64_t written = store.stats().bytes_written;
  store.Clear();
  EXPECT_EQ(store.Get("k"), std::nullopt);
  EXPECT_EQ(store.stats().bytes_written, written);
}

// Differential test: random operations must agree with a std::map reference model.
TEST(StateStoreTest, RandomOpsMatchReferenceModel) {
  Rng rng(404);
  StateStoreOptions options;
  options.memtable_flush_bytes = 96;  // force frequent flushes/compactions
  options.max_runs = 2;
  StateStore store(options);
  std::map<std::string, std::string> reference;

  for (int i = 0; i < 3000; ++i) {
    std::string key = "k" + std::to_string(rng.NextBounded(120));
    int action = static_cast<int>(rng.NextBounded(10));
    if (action < 5) {
      std::string value = "v" + std::to_string(rng.NextBounded(100000));
      store.Put(key, value);
      reference[key] = value;
    } else if (action < 7) {
      store.Delete(key);
      reference.erase(key);
    } else {
      auto got = store.Get(key);
      auto it = reference.find(key);
      if (it == reference.end()) {
        EXPECT_EQ(got, std::nullopt) << key;
      } else {
        ASSERT_TRUE(got.has_value()) << key;
        EXPECT_EQ(*got, it->second);
      }
    }
  }
  // Full scan must equal the reference exactly.
  std::map<std::string, std::string> scanned;
  store.Scan("", "\x7f", [&](const std::string& k, const std::string& v) { scanned[k] = v; });
  EXPECT_EQ(scanned, reference);
  EXPECT_EQ(store.LiveKeyCount(), reference.size());
}

// --- Snapshot & restore ----------------------------------------------------------------------

// Captures the live key→value map via a full scan.
std::map<std::string, std::string> Contents(StateStore& store) {
  std::map<std::string, std::string> out;
  store.Scan("", "\x7f", [&](const std::string& k, const std::string& v) { out[k] = v; });
  return out;
}

TEST(StateStoreSnapshotTest, SnapshotRestoreRoundTripsExactLiveKeySet) {
  StateStoreOptions options;
  options.memtable_flush_bytes = 96;
  options.max_runs = 2;
  StateStore store(options);
  for (int i = 0; i < 200; ++i) {
    store.Put("k" + std::to_string(i % 60), "v" + std::to_string(i));
  }
  store.Delete("k3");
  std::map<std::string, std::string> before = Contents(store);

  StateStore::StateSnapshot snap = store.Snapshot();
  // Mutations after the snapshot — including compaction churn — must not leak into it.
  for (int i = 0; i < 400; ++i) {
    store.Put("post" + std::to_string(i % 80), std::string(24, 'z'));
  }
  store.Delete("k1");
  EXPECT_NE(Contents(store), before);

  store.Restore(snap);
  EXPECT_EQ(Contents(store), before);
  EXPECT_EQ(store.LiveKeyCount(), before.size());
  EXPECT_EQ(store.stats().snapshots, 1u);
  EXPECT_EQ(store.stats().restores, 1u);
}

TEST(StateStoreSnapshotTest, SnapshotMidCompactionChurnIsConsistent) {
  // Tiny thresholds so Puts continuously flush and compact: snapshots land mid-flush and
  // mid-compaction, and every one must capture the exact pre-snapshot live-key set.
  StateStoreOptions options;
  options.memtable_flush_bytes = 48;
  options.max_runs = 1;
  StateStore store(options);
  std::map<std::string, std::string> reference;
  std::vector<StateStore::StateSnapshot> snaps;
  std::vector<std::map<std::string, std::string>> expected;
  Rng rng(777);
  for (int i = 0; i < 600; ++i) {
    std::string key = "k" + std::to_string(rng.NextBounded(50));
    if (rng.NextBounded(5) == 0) {
      store.Delete(key);
      reference.erase(key);
    } else {
      std::string value = "v" + std::to_string(i);
      store.Put(key, value);
      reference[key] = value;
    }
    if (i % 97 == 0) {
      snaps.push_back(store.Snapshot(snaps.empty() ? nullptr : &snaps.back()));
      expected.push_back(reference);
    }
  }
  ASSERT_FALSE(snaps.empty());
  for (size_t i = 0; i < snaps.size(); ++i) {
    store.Restore(snaps[i]);
    EXPECT_EQ(Contents(store), expected[i]) << "snapshot " << i;
  }
}

TEST(StateStoreSnapshotTest, IncrementalSnapshotShipsOnlyNewRuns) {
  StateStoreOptions options;
  options.memtable_flush_bytes = 64;
  options.max_runs = 100;  // no compaction: run ids persist across snapshots
  StateStore store(options);
  for (int i = 0; i < 100; ++i) {
    store.Put("a" + std::to_string(i), "vvvvvvvv");
  }
  StateStore::StateSnapshot first = store.Snapshot();
  EXPECT_EQ(first.shipped_bytes, first.total_bytes);  // nothing to base on: full upload
  uint64_t shipped_before = store.stats().checkpoint_bytes_shipped;

  for (int i = 0; i < 20; ++i) {
    store.Put("b" + std::to_string(i), "vvvvvvvv");
  }
  StateStore::StateSnapshot second = store.Snapshot(&first);
  // Only runs absent from the base manifest ship; the old runs are already uploaded.
  EXPECT_LT(second.shipped_bytes, second.total_bytes);
  EXPECT_GT(second.shipped_bytes, 0u);
  for (const auto& run : first.runs) {
    EXPECT_TRUE(second.ContainsRun(run->id));
  }
  // Every shipped byte is charged into the store's I/O accounting (§3.3 contention).
  EXPECT_EQ(store.stats().checkpoint_bytes_shipped - shipped_before, second.shipped_bytes);
}

TEST(StateStoreSnapshotTest, RestoreChargesBytesAsWrites) {
  StateStore store;
  for (int i = 0; i < 50; ++i) {
    store.Put("k" + std::to_string(i), std::string(32, 'w'));
  }
  StateStore::StateSnapshot snap = store.Snapshot();
  uint64_t written_before = store.stats().bytes_written;
  store.Restore(snap);
  EXPECT_EQ(store.stats().bytes_written - written_before, snap.total_bytes);
  EXPECT_EQ(store.stats().restore_bytes, snap.total_bytes);
}

// Parameterized: store behaviour holds across flush-threshold configurations.
class StateStoreParamTest : public ::testing::TestWithParam<size_t> {};

TEST_P(StateStoreParamTest, HundredKeysRoundTrip) {
  StateStoreOptions options;
  options.memtable_flush_bytes = GetParam();
  StateStore store(options);
  for (int i = 0; i < 100; ++i) {
    store.Put("key" + std::to_string(i), "value" + std::to_string(i * 7));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(store.Get("key" + std::to_string(i)), "value" + std::to_string(i * 7));
  }
  EXPECT_EQ(store.LiveKeyCount(), 100u);
}

INSTANTIATE_TEST_SUITE_P(FlushThresholds, StateStoreParamTest,
                         ::testing::Values(16, 64, 256, 1024, 1 << 20));

}  // namespace
}  // namespace capsys
