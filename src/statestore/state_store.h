// Embedded log-structured key-value state store.
//
// Stands in for RocksDB as the task-local state backend: a write-absorbing memtable is
// flushed into sorted immutable runs, and runs are merged by a compaction pass. The store
// accounts every byte read and written — including compaction traffic — because the paper's
// I/O cost U_io(t) is exactly the state backend's read+write byte rate, and the superlinear
// penalty of co-locating stateful tasks comes from compaction interference (§3.3).
//
// Checkpoint support: Snapshot() freezes the memtable into a run and returns an immutable
// view (a manifest of shared, id-tagged runs — the RocksDB "column family snapshot +
// SST manifest" analogue). Passing the previous snapshot makes the checkpoint incremental:
// only runs absent from the base manifest are shipped, and exactly those bytes are charged
// to the store's I/O accounting, so checkpoint traffic contends with compaction in U_io
// exactly as on a real state backend. Restore() replaces the live state with a snapshot's
// manifest, charging the restored bytes as writes (re-materializing local disk).
#ifndef SRC_STATESTORE_STATE_STORE_H_
#define SRC_STATESTORE_STATE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace capsys {

struct StateStoreOptions {
  // Memtable is flushed to a run once its byte size reaches this threshold.
  size_t memtable_flush_bytes = 64 * 1024;
  // Compaction merges all runs into one when the run count exceeds this.
  int max_runs = 4;
};

struct StateStoreStats {
  uint64_t bytes_written = 0;     // user writes + flush + compaction + restore writes
  uint64_t bytes_read = 0;        // user reads + compaction + checkpoint-upload reads
  uint64_t user_bytes_written = 0;
  uint64_t user_bytes_read = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;
  uint64_t snapshots = 0;
  uint64_t restores = 0;
  // Bytes shipped by snapshots (full for the first / non-incremental, delta otherwise).
  uint64_t checkpoint_bytes_shipped = 0;
  uint64_t restore_bytes = 0;

  // Write amplification: total bytes written per user byte written.
  double WriteAmplification() const {
    return user_bytes_written > 0
               ? static_cast<double>(bytes_written) / static_cast<double>(user_bytes_written)
               : 0.0;
  }
};

class StateStore {
 public:
  struct Entry {
    std::string key;
    std::string value;
    bool tombstone = false;
  };
  using Run = std::vector<Entry>;  // sorted by key, unique keys

  // One immutable, id-tagged run. Snapshots share ownership, so compaction replacing the
  // live run set never invalidates a snapshot taken before it.
  struct RunData {
    uint64_t id = 0;
    uint64_t bytes = 0;
    Run entries;
  };

  // Immutable snapshot view: the manifest of runs that made up the store at snapshot time.
  struct StateSnapshot {
    uint64_t snapshot_id = 0;
    std::vector<std::shared_ptr<const RunData>> runs;  // oldest first
    uint64_t total_bytes = 0;    // sum of all manifest runs
    uint64_t shipped_bytes = 0;  // bytes not covered by the base manifest (delta)

    bool ContainsRun(uint64_t run_id) const;
  };

  explicit StateStore(StateStoreOptions options = {});

  // Inserts or overwrites `key`.
  void Put(const std::string& key, const std::string& value);
  // Returns the current value, or nullopt if absent/deleted.
  std::optional<std::string> Get(const std::string& key);
  // Removes `key` (writes a tombstone into the log structure).
  void Delete(const std::string& key);

  // Invokes `fn(key, value)` for every live key in [from, to) in ascending key order.
  // Used by window operators to fire a key range.
  void Scan(const std::string& from, const std::string& to,
            const std::function<void(const std::string&, const std::string&)>& fn);

  // Number of live (non-deleted) keys. O(n); intended for tests and examples.
  size_t LiveKeyCount();

  // Takes an aligned snapshot: the memtable is frozen (flushed to a run, so the view is a
  // pure run manifest) and the current run set is captured. When `base` is non-null the
  // snapshot is incremental relative to it — only runs absent from `base` count as shipped.
  // Shipped bytes are charged as reads (uploading a run reads it from local disk).
  StateSnapshot Snapshot(const StateSnapshot* base = nullptr);

  // Replaces the live state with `snapshot`'s manifest (memtable cleared). Restored bytes
  // are charged as writes (re-materializing local disk from the checkpoint).
  void Restore(const StateSnapshot& snapshot);

  // Drops all data and resets structural state (stats are retained).
  void Clear();

  const StateStoreStats& stats() const { return stats_; }
  int run_count() const { return static_cast<int>(runs_.size()); }

 private:
  void MaybeFlush();
  void Flush();
  void MaybeCompact();
  void Compact();
  // Looks `key` up in runs only (newest first). Returns the entry or nullptr.
  const Entry* FindInRuns(const std::string& key) const;

  StateStoreOptions options_;
  StateStoreStats stats_;
  // Memtable value: (value, tombstone).
  std::map<std::string, std::pair<std::string, bool>> memtable_;
  size_t memtable_bytes_ = 0;
  std::vector<std::shared_ptr<const RunData>> runs_;  // oldest first
  uint64_t next_run_id_ = 1;
  uint64_t next_snapshot_id_ = 1;
};

}  // namespace capsys

#endif  // SRC_STATESTORE_STATE_STORE_H_
