// Embedded log-structured key-value state store.
//
// Stands in for RocksDB as the task-local state backend: a write-absorbing memtable is
// flushed into sorted immutable runs, and runs are merged by a compaction pass. The store
// accounts every byte read and written — including compaction traffic — because the paper's
// I/O cost U_io(t) is exactly the state backend's read+write byte rate, and the superlinear
// penalty of co-locating stateful tasks comes from compaction interference (§3.3).
#ifndef SRC_STATESTORE_STATE_STORE_H_
#define SRC_STATESTORE_STATE_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace capsys {

struct StateStoreOptions {
  // Memtable is flushed to a run once its byte size reaches this threshold.
  size_t memtable_flush_bytes = 64 * 1024;
  // Compaction merges all runs into one when the run count exceeds this.
  int max_runs = 4;
};

struct StateStoreStats {
  uint64_t bytes_written = 0;     // user writes + flush + compaction writes
  uint64_t bytes_read = 0;        // user reads + compaction reads
  uint64_t user_bytes_written = 0;
  uint64_t user_bytes_read = 0;
  uint64_t flushes = 0;
  uint64_t compactions = 0;

  // Write amplification: total bytes written per user byte written.
  double WriteAmplification() const {
    return user_bytes_written > 0
               ? static_cast<double>(bytes_written) / static_cast<double>(user_bytes_written)
               : 0.0;
  }
};

class StateStore {
 public:
  explicit StateStore(StateStoreOptions options = {});

  // Inserts or overwrites `key`.
  void Put(const std::string& key, const std::string& value);
  // Returns the current value, or nullopt if absent/deleted.
  std::optional<std::string> Get(const std::string& key);
  // Removes `key` (writes a tombstone into the log structure).
  void Delete(const std::string& key);

  // Invokes `fn(key, value)` for every live key in [from, to) in ascending key order.
  // Used by window operators to fire a key range.
  void Scan(const std::string& from, const std::string& to,
            const std::function<void(const std::string&, const std::string&)>& fn);

  // Number of live (non-deleted) keys. O(n); intended for tests and examples.
  size_t LiveKeyCount();

  // Drops all data and resets structural state (stats are retained).
  void Clear();

  const StateStoreStats& stats() const { return stats_; }
  int run_count() const { return static_cast<int>(runs_.size()); }

 private:
  struct Entry {
    std::string key;
    std::string value;
    bool tombstone = false;
  };
  using Run = std::vector<Entry>;  // sorted by key, unique keys

  void MaybeFlush();
  void Flush();
  void MaybeCompact();
  void Compact();
  // Looks `key` up in runs only (newest first). Returns the entry or nullptr.
  const Entry* FindInRuns(const std::string& key) const;

  StateStoreOptions options_;
  StateStoreStats stats_;
  // Memtable value: (value, tombstone).
  std::map<std::string, std::pair<std::string, bool>> memtable_;
  size_t memtable_bytes_ = 0;
  std::vector<Run> runs_;  // oldest first
};

}  // namespace capsys

#endif  // SRC_STATESTORE_STATE_STORE_H_
