#include "src/statestore/state_store.h"

#include <algorithm>

#include "src/common/logging.h"

namespace capsys {
namespace {

size_t EntryBytes(const std::string& key, const std::string& value) {
  return key.size() + value.size();
}

}  // namespace

bool StateStore::StateSnapshot::ContainsRun(uint64_t run_id) const {
  for (const auto& run : runs) {
    if (run->id == run_id) {
      return true;
    }
  }
  return false;
}

StateStore::StateStore(StateStoreOptions options) : options_(options) {
  CAPSYS_CHECK(options_.memtable_flush_bytes > 0);
  CAPSYS_CHECK(options_.max_runs >= 1);
}

void StateStore::Put(const std::string& key, const std::string& value) {
  size_t bytes = EntryBytes(key, value);
  stats_.user_bytes_written += bytes;
  stats_.bytes_written += bytes;
  auto [it, inserted] = memtable_.insert_or_assign(key, std::make_pair(value, false));
  (void)it;
  (void)inserted;
  memtable_bytes_ += bytes;
  MaybeFlush();
}

std::optional<std::string> StateStore::Get(const std::string& key) {
  auto mit = memtable_.find(key);
  if (mit != memtable_.end()) {
    if (mit->second.second) {
      return std::nullopt;
    }
    stats_.user_bytes_read += EntryBytes(key, mit->second.first);
    stats_.bytes_read += EntryBytes(key, mit->second.first);
    return mit->second.first;
  }
  const Entry* e = FindInRuns(key);
  if (e == nullptr || e->tombstone) {
    return std::nullopt;
  }
  stats_.user_bytes_read += EntryBytes(e->key, e->value);
  stats_.bytes_read += EntryBytes(e->key, e->value);
  return e->value;
}

void StateStore::Delete(const std::string& key) {
  size_t bytes = key.size();
  stats_.user_bytes_written += bytes;
  stats_.bytes_written += bytes;
  memtable_.insert_or_assign(key, std::make_pair(std::string(), true));
  memtable_bytes_ += bytes;
  MaybeFlush();
}

void StateStore::Scan(const std::string& from, const std::string& to,
                      const std::function<void(const std::string&, const std::string&)>& fn) {
  // Merge memtable and runs; newest wins. Collect into an ordered map for simplicity —
  // scan ranges in the workloads are small (one window pane / session).
  std::map<std::string, std::pair<std::string, bool>> merged;
  for (const auto& run : runs_) {  // oldest first, later inserts overwrite
    auto lo = std::lower_bound(run->entries.begin(), run->entries.end(), from,
                               [](const Entry& e, const std::string& k) { return e.key < k; });
    for (auto it = lo; it != run->entries.end() && it->key < to; ++it) {
      merged[it->key] = {it->value, it->tombstone};
    }
  }
  for (auto it = memtable_.lower_bound(from); it != memtable_.end() && it->first < to; ++it) {
    merged[it->first] = it->second;
  }
  for (const auto& [key, vt] : merged) {
    if (!vt.second) {
      stats_.user_bytes_read += EntryBytes(key, vt.first);
      stats_.bytes_read += EntryBytes(key, vt.first);
      fn(key, vt.first);
    }
  }
}

size_t StateStore::LiveKeyCount() {
  size_t count = 0;
  Scan("", "\xff\xff\xff\xff", [&count](const std::string&, const std::string&) { ++count; });
  return count;
}

StateStore::StateSnapshot StateStore::Snapshot(const StateSnapshot* base) {
  // Freeze the memtable: an explicit flush makes the snapshot a pure run manifest, which
  // is what keeps it immutable under later writes, flushes, and compactions.
  Flush();
  StateSnapshot snap;
  snap.snapshot_id = next_snapshot_id_++;
  snap.runs = runs_;
  for (const auto& run : runs_) {
    snap.total_bytes += run->bytes;
    if (base == nullptr || !base->ContainsRun(run->id)) {
      snap.shipped_bytes += run->bytes;
    }
  }
  // Uploading a run reads it from local disk; the checkpoint traffic lands in the same
  // U_io dimension compaction competes in.
  stats_.bytes_read += snap.shipped_bytes;
  stats_.checkpoint_bytes_shipped += snap.shipped_bytes;
  ++stats_.snapshots;
  return snap;
}

void StateStore::Restore(const StateSnapshot& snapshot) {
  memtable_.clear();
  memtable_bytes_ = 0;
  runs_ = snapshot.runs;
  stats_.bytes_written += snapshot.total_bytes;
  stats_.restore_bytes += snapshot.total_bytes;
  ++stats_.restores;
}

void StateStore::Clear() {
  memtable_.clear();
  memtable_bytes_ = 0;
  runs_.clear();
}

void StateStore::MaybeFlush() {
  if (memtable_bytes_ >= options_.memtable_flush_bytes) {
    Flush();
    MaybeCompact();
  }
}

void StateStore::Flush() {
  if (memtable_.empty()) {
    return;
  }
  auto run = std::make_shared<RunData>();
  run->id = next_run_id_++;
  run->entries.reserve(memtable_.size());
  for (const auto& [key, vt] : memtable_) {
    run->entries.push_back(Entry{.key = key, .value = vt.first, .tombstone = vt.second});
    size_t bytes = EntryBytes(key, vt.first);
    run->bytes += bytes;
    stats_.bytes_written += bytes;
  }
  runs_.push_back(std::move(run));
  memtable_.clear();
  memtable_bytes_ = 0;
  ++stats_.flushes;
}

void StateStore::MaybeCompact() {
  if (static_cast<int>(runs_.size()) > options_.max_runs) {
    Compact();
  }
}

void StateStore::Compact() {
  if (runs_.size() <= 1) {
    return;
  }
  // Account compaction I/O: every surviving byte is read and rewritten. Snapshots taken
  // before this point keep the pre-compaction runs alive through their shared manifests.
  std::map<std::string, Entry> merged;
  for (const auto& run : runs_) {
    for (const auto& e : run->entries) {
      stats_.bytes_read += EntryBytes(e.key, e.value);
      merged[e.key] = e;
    }
  }
  auto out = std::make_shared<RunData>();
  out->id = next_run_id_++;
  out->entries.reserve(merged.size());
  for (auto& [key, e] : merged) {
    if (!e.tombstone) {  // compaction to a single run drops tombstones
      size_t bytes = EntryBytes(key, e.value);
      out->bytes += bytes;
      stats_.bytes_written += bytes;
      out->entries.push_back(std::move(e));
    }
  }
  runs_.clear();
  runs_.push_back(std::move(out));
  ++stats_.compactions;
}

const StateStore::Entry* StateStore::FindInRuns(const std::string& key) const {
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {  // newest run first
    const Run& run = (*rit)->entries;
    auto it = std::lower_bound(run.begin(), run.end(), key,
                               [](const Entry& e, const std::string& k) { return e.key < k; });
    if (it != run.end() && it->key == key) {
      return &*it;
    }
  }
  return nullptr;
}

}  // namespace capsys
