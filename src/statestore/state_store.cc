#include "src/statestore/state_store.h"

#include <algorithm>

#include "src/common/logging.h"

namespace capsys {
namespace {

size_t EntryBytes(const std::string& key, const std::string& value) {
  return key.size() + value.size();
}

}  // namespace

StateStore::StateStore(StateStoreOptions options) : options_(options) {
  CAPSYS_CHECK(options_.memtable_flush_bytes > 0);
  CAPSYS_CHECK(options_.max_runs >= 1);
}

void StateStore::Put(const std::string& key, const std::string& value) {
  size_t bytes = EntryBytes(key, value);
  stats_.user_bytes_written += bytes;
  stats_.bytes_written += bytes;
  auto [it, inserted] = memtable_.insert_or_assign(key, std::make_pair(value, false));
  (void)it;
  (void)inserted;
  memtable_bytes_ += bytes;
  MaybeFlush();
}

std::optional<std::string> StateStore::Get(const std::string& key) {
  auto mit = memtable_.find(key);
  if (mit != memtable_.end()) {
    if (mit->second.second) {
      return std::nullopt;
    }
    stats_.user_bytes_read += EntryBytes(key, mit->second.first);
    stats_.bytes_read += EntryBytes(key, mit->second.first);
    return mit->second.first;
  }
  const Entry* e = FindInRuns(key);
  if (e == nullptr || e->tombstone) {
    return std::nullopt;
  }
  stats_.user_bytes_read += EntryBytes(e->key, e->value);
  stats_.bytes_read += EntryBytes(e->key, e->value);
  return e->value;
}

void StateStore::Delete(const std::string& key) {
  size_t bytes = key.size();
  stats_.user_bytes_written += bytes;
  stats_.bytes_written += bytes;
  memtable_.insert_or_assign(key, std::make_pair(std::string(), true));
  memtable_bytes_ += bytes;
  MaybeFlush();
}

void StateStore::Scan(const std::string& from, const std::string& to,
                      const std::function<void(const std::string&, const std::string&)>& fn) {
  // Merge memtable and runs; newest wins. Collect into an ordered map for simplicity —
  // scan ranges in the workloads are small (one window pane / session).
  std::map<std::string, std::pair<std::string, bool>> merged;
  for (const auto& run : runs_) {  // oldest first, later inserts overwrite
    auto lo = std::lower_bound(run.begin(), run.end(), from,
                               [](const Entry& e, const std::string& k) { return e.key < k; });
    for (auto it = lo; it != run.end() && it->key < to; ++it) {
      merged[it->key] = {it->value, it->tombstone};
    }
  }
  for (auto it = memtable_.lower_bound(from); it != memtable_.end() && it->first < to; ++it) {
    merged[it->first] = it->second;
  }
  for (const auto& [key, vt] : merged) {
    if (!vt.second) {
      stats_.user_bytes_read += EntryBytes(key, vt.first);
      stats_.bytes_read += EntryBytes(key, vt.first);
      fn(key, vt.first);
    }
  }
}

size_t StateStore::LiveKeyCount() {
  size_t count = 0;
  Scan("", "\xff\xff\xff\xff", [&count](const std::string&, const std::string&) { ++count; });
  return count;
}

void StateStore::Clear() {
  memtable_.clear();
  memtable_bytes_ = 0;
  runs_.clear();
}

void StateStore::MaybeFlush() {
  if (memtable_bytes_ >= options_.memtable_flush_bytes) {
    Flush();
    MaybeCompact();
  }
}

void StateStore::Flush() {
  if (memtable_.empty()) {
    return;
  }
  Run run;
  run.reserve(memtable_.size());
  for (const auto& [key, vt] : memtable_) {
    run.push_back(Entry{.key = key, .value = vt.first, .tombstone = vt.second});
    stats_.bytes_written += EntryBytes(key, vt.first);
  }
  runs_.push_back(std::move(run));
  memtable_.clear();
  memtable_bytes_ = 0;
  ++stats_.flushes;
}

void StateStore::MaybeCompact() {
  if (static_cast<int>(runs_.size()) > options_.max_runs) {
    Compact();
  }
}

void StateStore::Compact() {
  if (runs_.size() <= 1) {
    return;
  }
  // Account compaction I/O: every surviving byte is read and rewritten.
  std::map<std::string, Entry> merged;
  for (const auto& run : runs_) {
    for (const auto& e : run) {
      stats_.bytes_read += EntryBytes(e.key, e.value);
      merged[e.key] = e;
    }
  }
  Run out;
  out.reserve(merged.size());
  for (auto& [key, e] : merged) {
    if (!e.tombstone) {  // compaction to a single run drops tombstones
      stats_.bytes_written += EntryBytes(key, e.value);
      out.push_back(std::move(e));
    }
  }
  runs_.clear();
  runs_.push_back(std::move(out));
  ++stats_.compactions;
}

const StateStore::Entry* StateStore::FindInRuns(const std::string& key) const {
  for (auto rit = runs_.rbegin(); rit != runs_.rend(); ++rit) {  // newest run first
    const Run& run = *rit;
    auto it = std::lower_bound(run.begin(), run.end(), key,
                               [](const Entry& e, const std::string& k) { return e.key < k; });
    if (it != run.end() && it->key == key) {
      return &*it;
    }
  }
  return nullptr;
}

}  // namespace capsys
