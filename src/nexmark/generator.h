// Deterministic Nexmark event generator. Follows the standard Nexmark proportions
// (1 person : 3 auctions : 46 bids per 50 events) with monotonically increasing event
// timestamps at a configurable rate.
#ifndef SRC_NEXMARK_GENERATOR_H_
#define SRC_NEXMARK_GENERATOR_H_

#include <cstdint>
#include <vector>

#include "src/common/rng.h"
#include "src/nexmark/events.h"

namespace capsys {

struct GeneratorConfig {
  uint64_t seed = 42;
  double events_per_second = 1000.0;
  // Standard Nexmark mix out of every `person + auction + bid` events.
  int person_proportion = 1;
  int auction_proportion = 3;
  int bid_proportion = 46;
  // Hot-key skew: fraction of bids that target one of the `hot_auctions` most recent
  // auctions. 0 disables skew.
  double hot_bid_fraction = 0.0;
  int hot_auctions = 4;
};

class NexmarkGenerator {
 public:
  explicit NexmarkGenerator(GeneratorConfig config = {});

  // Produces the next event, advancing the virtual clock by 1/events_per_second.
  Event Next();

  // Produces `n` consecutive events.
  std::vector<Event> Take(int n);

  int64_t next_person_id() const { return next_person_id_; }
  int64_t next_auction_id() const { return next_auction_id_; }
  int64_t events_generated() const { return count_; }

 private:
  Person MakePerson();
  Auction MakeAuction();
  Bid MakeBid();

  GeneratorConfig config_;
  Rng rng_;
  int64_t count_ = 0;
  int64_t next_person_id_ = 1000;
  int64_t next_auction_id_ = 1000;
  double time_ms_ = 0.0;
};

}  // namespace capsys

#endif  // SRC_NEXMARK_GENERATOR_H_
