// Nexmark auction-site event model (Tucker et al., the benchmark the paper's evaluation
// queries Q1/Q2/Q4/Q5/Q6 are drawn from via Apache Beam).
#ifndef SRC_NEXMARK_EVENTS_H_
#define SRC_NEXMARK_EVENTS_H_

#include <cstdint>
#include <string>
#include <variant>

namespace capsys {

struct Person {
  int64_t id = 0;
  std::string name;
  std::string email;
  std::string city;
  std::string state;
  int64_t timestamp_ms = 0;
};

struct Auction {
  int64_t id = 0;
  int64_t seller = 0;
  int64_t category = 0;
  int64_t initial_bid = 0;
  int64_t reserve = 0;
  int64_t expires_ms = 0;
  std::string item_name;
  int64_t timestamp_ms = 0;
};

struct Bid {
  int64_t auction = 0;
  int64_t bidder = 0;
  int64_t price = 0;
  int64_t timestamp_ms = 0;
};

// A generated event: exactly one of the three entity kinds.
struct Event {
  enum class Kind : int { kPerson = 0, kAuction = 1, kBid = 2 };

  Kind kind = Kind::kBid;
  std::variant<Person, Auction, Bid> payload;
  int64_t timestamp_ms = 0;

  const Person& person() const { return std::get<Person>(payload); }
  const Auction& auction() const { return std::get<Auction>(payload); }
  const Bid& bid() const { return std::get<Bid>(payload); }
};

}  // namespace capsys

#endif  // SRC_NEXMARK_EVENTS_H_
