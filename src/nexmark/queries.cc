#include "src/nexmark/queries.h"

#include "src/common/logging.h"

namespace capsys {
namespace {

// Shorthand for building profiles. Costs: CPU-seconds, state bytes, output bytes per record.
OperatorProfile Profile(double cpu_us, double io_bytes, double out_bytes, double selectivity,
                        bool stateful = false, double gc = 0.0) {
  OperatorProfile p;
  p.cpu_per_record = cpu_us * 1e-6;
  p.io_bytes_per_record = io_bytes;
  p.out_bytes_per_record = out_bytes;
  p.selectivity = selectivity;
  p.stateful = stateful;
  p.gc_spike_fraction = gc;
  return p;
}

}  // namespace

QuerySpec BuildQ1Sliding() {
  QuerySpec q;
  q.graph.set_name("q1-sliding");
  // Nexmark Q5: hot items — count bids per auction over a sliding window. The sliding
  // window writes every record into multiple overlapping panes, which is what makes it the
  // most I/O-intensive operator of the query (35 KB of state traffic per record including
  // RocksDB write amplification).
  OperatorId src = q.graph.AddOperator("source", OperatorKind::kSource,
                                       Profile(30, 0, 150, 1.0), /*parallelism=*/2);
  OperatorId map = q.graph.AddOperator("map", OperatorKind::kMap,
                                       Profile(40, 0, 150, 0.9), /*parallelism=*/5);
  OperatorId win = q.graph.AddOperator("sliding-window", OperatorKind::kSlidingWindow,
                                       Profile(120, 35000, 200, 0.05, /*stateful=*/true),
                                       /*parallelism=*/8);
  OperatorId sink = q.graph.AddOperator("sink", OperatorKind::kSink, Profile(10, 0, 0, 1.0),
                                        /*parallelism=*/1);
  q.graph.AddEdge(src, map, PartitionScheme::kRebalance);
  q.graph.AddEdge(map, win, PartitionScheme::kHash);
  q.graph.AddEdge(win, sink, PartitionScheme::kRebalance);
  q.source_rates[src] = 14000;
  return q;
}

QuerySpec BuildQ2Join() {
  QuerySpec q;
  q.graph.set_name("q2-join");
  // Nexmark Q8: monitor new users — tumbling window join of persons and auctions. The join
  // buffers both inputs in the state backend and scans them when the window fires.
  OperatorId src_p = q.graph.AddOperator("source-persons", OperatorKind::kSource,
                                         Profile(8, 0, 200, 1.0), 1);
  OperatorId src_a = q.graph.AddOperator("source-auctions", OperatorKind::kSource,
                                         Profile(8, 0, 160, 1.0), 1);
  OperatorId map_p = q.graph.AddOperator("map-persons", OperatorKind::kMap,
                                         Profile(20, 0, 180, 1.0), 1);
  OperatorId map_a = q.graph.AddOperator("map-auctions", OperatorKind::kMap,
                                         Profile(15, 0, 150, 0.6), 2);
  OperatorId join = q.graph.AddOperator(
      "window-join", OperatorKind::kTumblingWindowJoin,
      Profile(25, 2200, 250, 0.2, /*stateful=*/true), 4);
  q.graph.AddEdge(src_p, map_p, PartitionScheme::kRebalance);
  q.graph.AddEdge(src_a, map_a, PartitionScheme::kRebalance);
  q.graph.AddEdge(map_p, join, PartitionScheme::kHash);
  q.graph.AddEdge(map_a, join, PartitionScheme::kHash);
  q.source_rates[src_p] = 30000;
  q.source_rates[src_a] = 80000;
  return q;
}

QuerySpec BuildQ3Inf() {
  QuerySpec q;
  q.graph.set_name("q3-inf");
  // Image-processing + model-inference pipeline (Crayfish-style). Sources and the decode
  // stage move large records (images), so the query is network-intensive; inference is
  // compute-bound and triggers GC-induced CPU spikes (§3.3).
  OperatorId src = q.graph.AddOperator("source", OperatorKind::kSource,
                                       Profile(100, 0, 60000, 1.0), 3);
  OperatorId decode = q.graph.AddOperator("decode", OperatorKind::kMap,
                                          Profile(800, 0, 180000, 0.9), 5);
  OperatorId inf = q.graph.AddOperator("inference", OperatorKind::kInference,
                                       Profile(2000, 0, 1000, 1.0, false, 0.3), 4);
  OperatorId sink = q.graph.AddOperator("sink", OperatorKind::kSink, Profile(10, 0, 0, 1.0), 1);
  q.graph.AddEdge(src, decode, PartitionScheme::kRebalance);
  q.graph.AddEdge(decode, inf, PartitionScheme::kRebalance);
  q.graph.AddEdge(inf, sink, PartitionScheme::kRebalance);
  q.source_rates[src] = 1600;
  return q;
}

QuerySpec BuildQ4Join() {
  QuerySpec q;
  q.graph.set_name("q4-join");
  // Nexmark Q3: local item suggestions — filter persons, incrementally join with auctions
  // by seller. The incremental join keeps both relations in state.
  OperatorId src_a = q.graph.AddOperator("source-auctions", OperatorKind::kSource,
                                         Profile(8, 0, 160, 1.0), 2);
  OperatorId src_p = q.graph.AddOperator("source-persons", OperatorKind::kSource,
                                         Profile(8, 0, 200, 1.0), 1);
  OperatorId filter = q.graph.AddOperator("filter-persons", OperatorKind::kFilter,
                                          Profile(12, 0, 200, 0.3), 1);
  OperatorId join = q.graph.AddOperator(
      "incremental-join", OperatorKind::kIncrementalJoin,
      Profile(30, 8000, 220, 0.5, /*stateful=*/true), 6);
  OperatorId sink = q.graph.AddOperator("sink", OperatorKind::kSink, Profile(5, 0, 0, 1.0), 1);
  q.graph.AddEdge(src_a, join, PartitionScheme::kHash);
  q.graph.AddEdge(src_p, filter, PartitionScheme::kRebalance);
  q.graph.AddEdge(filter, join, PartitionScheme::kHash);
  q.graph.AddEdge(join, sink, PartitionScheme::kRebalance);
  q.source_rates[src_a] = 45000;
  q.source_rates[src_p] = 15000;
  return q;
}

QuerySpec BuildQ5Aggregate() {
  QuerySpec q;
  q.graph.set_name("q5-aggregate");
  // Nexmark Q6: average selling price by seller — stateful join of bids with auctions
  // followed by a stateful process function maintaining per-seller aggregates. Two
  // I/O-intensive operators make this the query with the widest placement-quality gap
  // in the paper's Figure 7 (up to 6x).
  OperatorId src_b = q.graph.AddOperator("source-bids", OperatorKind::kSource,
                                         Profile(8, 0, 150, 1.0), 2);
  OperatorId src_a = q.graph.AddOperator("source-auctions", OperatorKind::kSource,
                                         Profile(8, 0, 160, 1.0), 1);
  OperatorId join = q.graph.AddOperator("winning-bids-join", OperatorKind::kTumblingWindowJoin,
                                        Profile(35, 6000, 200, 0.4, /*stateful=*/true), 8);
  OperatorId process =
      q.graph.AddOperator("seller-average", OperatorKind::kProcessFunction,
                          Profile(50, 4000, 180, 0.5, /*stateful=*/true), 4);
  OperatorId sink = q.graph.AddOperator("sink", OperatorKind::kSink, Profile(5, 0, 0, 1.0), 1);
  q.graph.AddEdge(src_b, join, PartitionScheme::kHash);
  q.graph.AddEdge(src_a, join, PartitionScheme::kHash);
  q.graph.AddEdge(join, process, PartitionScheme::kHash);
  q.graph.AddEdge(process, sink, PartitionScheme::kRebalance);
  q.source_rates[src_b] = 35000;
  q.source_rates[src_a] = 5000;
  return q;
}

QuerySpec BuildQ6Session() {
  QuerySpec q;
  q.graph.set_name("q6-session");
  // Nexmark Q11: user sessions — session window over bids per bidder, potentially
  // accumulating large state while sessions stay open.
  OperatorId src = q.graph.AddOperator("source", OperatorKind::kSource,
                                       Profile(8, 0, 150, 1.0), 2);
  OperatorId map = q.graph.AddOperator("map", OperatorKind::kMap, Profile(15, 0, 150, 1.0), 2);
  OperatorId win = q.graph.AddOperator("session-window", OperatorKind::kSessionWindow,
                                       Profile(80, 12000, 300, 0.02, /*stateful=*/true), 8);
  OperatorId sink = q.graph.AddOperator("sink", OperatorKind::kSink, Profile(5, 0, 0, 1.0), 1);
  q.graph.AddEdge(src, map, PartitionScheme::kRebalance);
  q.graph.AddEdge(map, win, PartitionScheme::kHash);
  q.graph.AddEdge(win, sink, PartitionScheme::kRebalance);
  q.source_rates[src] = 25000;
  return q;
}

std::vector<QuerySpec> BuildAllQueries() {
  return {BuildQ1Sliding(), BuildQ2Join(),      BuildQ3Inf(),
          BuildQ4Join(),    BuildQ5Aggregate(), BuildQ6Session()};
}

QuerySpec BuildQueryByName(const std::string& name) {
  if (name == "q1" || name == "q1-sliding") {
    return BuildQ1Sliding();
  }
  if (name == "q2" || name == "q2-join") {
    return BuildQ2Join();
  }
  if (name == "q3" || name == "q3-inf") {
    return BuildQ3Inf();
  }
  if (name == "q4" || name == "q4-join") {
    return BuildQ4Join();
  }
  if (name == "q5" || name == "q5-aggregate") {
    return BuildQ5Aggregate();
  }
  if (name == "q6" || name == "q6-session") {
    return BuildQ6Session();
  }
  CAPSYS_CHECK_MSG(false, "unknown query: " + name);
  return {};
}

}  // namespace capsys
