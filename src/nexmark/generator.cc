#include "src/nexmark/generator.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {
namespace {

const char* const kFirstNames[] = {"peter", "paul",  "luke", "john",  "saul",
                                   "vicky", "kate",  "julie", "sarah", "deiter"};
const char* const kLastNames[] = {"shultz", "abrams", "spencer", "white", "bartels",
                                  "walton", "smith",  "jones",   "noris"};
const char* const kCities[] = {"phoenix", "seattle", "boston", "portland", "kent",
                               "bend",    "bellevue"};
const char* const kStates[] = {"az", "wa", "ma", "or", "id", "ca"};
const char* const kItems[] = {"rusty bike", "used laptop", "vintage lamp", "rare vinyl",
                              "old camera", "antique desk"};

template <typename T, size_t N>
const T& Pick(Rng& rng, const T (&arr)[N]) {
  return arr[rng.NextBounded(N)];
}

}  // namespace

NexmarkGenerator::NexmarkGenerator(GeneratorConfig config)
    : config_(config), rng_(config.seed) {
  CAPSYS_CHECK(config_.events_per_second > 0);
  CAPSYS_CHECK(config_.person_proportion >= 1);
  CAPSYS_CHECK(config_.auction_proportion >= 1);
  CAPSYS_CHECK(config_.bid_proportion >= 1);
}

Event NexmarkGenerator::Next() {
  int total =
      config_.person_proportion + config_.auction_proportion + config_.bid_proportion;
  int64_t slot = count_ % total;
  time_ms_ += 1000.0 / config_.events_per_second;
  ++count_;

  Event e;
  e.timestamp_ms = static_cast<int64_t>(time_ms_);
  if (slot < config_.person_proportion) {
    e.kind = Event::Kind::kPerson;
    e.payload = MakePerson();
  } else if (slot < config_.person_proportion + config_.auction_proportion) {
    e.kind = Event::Kind::kAuction;
    e.payload = MakeAuction();
  } else {
    e.kind = Event::Kind::kBid;
    e.payload = MakeBid();
  }
  std::visit([&e](auto& p) { p.timestamp_ms = e.timestamp_ms; }, e.payload);
  return e;
}

std::vector<Event> NexmarkGenerator::Take(int n) {
  std::vector<Event> events;
  events.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    events.push_back(Next());
  }
  return events;
}

Person NexmarkGenerator::MakePerson() {
  Person p;
  p.id = next_person_id_++;
  p.name = std::string(Pick(rng_, kFirstNames)) + " " + Pick(rng_, kLastNames);
  p.email = Sprintf("%s@example.com", p.name.substr(0, p.name.find(' ')).c_str());
  p.city = Pick(rng_, kCities);
  p.state = Pick(rng_, kStates);
  return p;
}

Auction NexmarkGenerator::MakeAuction() {
  Auction a;
  a.id = next_auction_id_++;
  a.seller = rng_.UniformInt(1000, std::max<int64_t>(1000, next_person_id_ - 1));
  a.category = rng_.UniformInt(0, 9);
  a.initial_bid = rng_.UniformInt(1, 100);
  a.reserve = a.initial_bid + rng_.UniformInt(0, 200);
  a.expires_ms = static_cast<int64_t>(time_ms_) + rng_.UniformInt(10'000, 600'000);
  a.item_name = Pick(rng_, kItems);
  return a;
}

Bid NexmarkGenerator::MakeBid() {
  Bid b;
  int64_t max_auction = std::max<int64_t>(1000, next_auction_id_ - 1);
  if (config_.hot_bid_fraction > 0 && rng_.Bernoulli(config_.hot_bid_fraction)) {
    int64_t lo = std::max<int64_t>(1000, max_auction - config_.hot_auctions + 1);
    b.auction = rng_.UniformInt(lo, max_auction);
  } else {
    b.auction = rng_.UniformInt(1000, max_auction);
  }
  b.bidder = rng_.UniformInt(1000, std::max<int64_t>(1000, next_person_id_ - 1));
  b.price = rng_.UniformInt(1, 10'000);
  return b;
}

}  // namespace capsys
