// The six evaluation queries (paper §3.1, §6.1) as logical dataflow graphs with calibrated
// per-record resource profiles.
//
//   Q1-sliding   (Nexmark Q5)  map -> sliding window; stateful, I/O-heavy window
//   Q2-join      (Nexmark Q8)  two sources, two maps, tumbling window join; large state
//   Q3-inf       (Crayfish)    image decode + model inference; compute- & network-heavy
//   Q4-join      (Nexmark Q3)  filter + incremental join
//   Q5-aggregate (Nexmark Q6)  stateful join + process function
//   Q6-session   (Nexmark Q11) session window accumulating large state
//
// Default parallelisms target the 4-worker x 4-slot motivation cluster and were chosen so
// the distinct-plan counts match the paper's reported search-space sizes (80 plans for
// Q1-sliding, 665 for Q2-join, 950 for Q3-inf). Default target rates saturate that cluster
// the way §3.1 describes ("configure the target input rate to match the capacity of the
// resource cluster"). Profiles are per-record unit costs; the cost profiler re-derives them
// empirically at deployment time.
#ifndef SRC_NEXMARK_QUERIES_H_
#define SRC_NEXMARK_QUERIES_H_

#include <map>
#include <string>
#include <vector>

#include "src/dataflow/logical_graph.h"

namespace capsys {

// A query plus the experiment defaults the paper associates with it.
struct QuerySpec {
  LogicalGraph graph;
  // Target generation rate per source operator (records/s).
  std::map<OperatorId, double> source_rates;

  double TotalTargetRate() const {
    double total = 0.0;
    for (const auto& [op, r] : source_rates) {
      total += r;
    }
    return total;
  }
  // Scales every source target rate by `factor` (used when deploying on larger clusters).
  void ScaleRates(double factor) {
    for (auto& [op, r] : source_rates) {
      r *= factor;
    }
  }
};

QuerySpec BuildQ1Sliding();
QuerySpec BuildQ2Join();
QuerySpec BuildQ3Inf();
QuerySpec BuildQ4Join();
QuerySpec BuildQ5Aggregate();
QuerySpec BuildQ6Session();

// All six queries in paper order.
std::vector<QuerySpec> BuildAllQueries();

// Query by short name ("q1".."q6"); CHECK-fails on unknown names.
QuerySpec BuildQueryByName(const std::string& name);

}  // namespace capsys

#endif  // SRC_NEXMARK_QUERIES_H_
