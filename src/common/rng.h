// Deterministic random number generation. All randomness in capsys flows from these
// generators so experiments are reproducible given a seed.
#ifndef SRC_COMMON_RNG_H_
#define SRC_COMMON_RNG_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace capsys {

// SplitMix64: used to seed Xoshiro and as a cheap standalone generator.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

// Xoshiro256**: fast, high-quality PRNG; the workhorse generator.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x5eed5eed5eedULL);

  uint64_t NextU64();

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller (cached second value).
  double Normal(double mean = 0.0, double stddev = 1.0);

  // Exponential with given rate.
  double Exponential(double rate);

  bool Bernoulli(double p) { return UniformDouble() < p; }

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = NextBounded(i);
      std::swap(v[i - 1], v[j]);
    }
  }

  // Returns a new Rng derived from this one (for spawning independent streams).
  Rng Split();

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace capsys

#endif  // SRC_COMMON_RNG_H_
