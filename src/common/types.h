// Core identifier and resource-vector types shared by every capsys module.
#ifndef SRC_COMMON_TYPES_H_
#define SRC_COMMON_TYPES_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

namespace capsys {

// Index-style identifiers. These are plain integers rather than strong types because they
// index directly into contiguous vectors everywhere in the codebase; the distinct aliases
// keep signatures self-documenting.
using OperatorId = int32_t;
using TaskId = int32_t;
using WorkerId = int32_t;
using ChannelId = int32_t;

inline constexpr int32_t kInvalidId = -1;

// The three resource dimensions the CAPS cost model tracks (paper §4.2).
enum class Resource : int { kCpu = 0, kIo = 1, kNet = 2 };

inline constexpr int kNumResources = 3;
inline constexpr std::array<Resource, kNumResources> kAllResources = {
    Resource::kCpu, Resource::kIo, Resource::kNet};

inline const char* ResourceName(Resource r) {
  switch (r) {
    case Resource::kCpu:
      return "cpu";
    case Resource::kIo:
      return "io";
    case Resource::kNet:
      return "net";
  }
  return "?";
}

// A value per resource dimension. Used for task demands, worker loads, cost vectors
// (C_cpu, C_io, C_net) and pruning thresholds (alpha vector).
struct ResourceVector {
  double cpu = 0.0;
  double io = 0.0;
  double net = 0.0;

  double& operator[](Resource r) {
    switch (r) {
      case Resource::kCpu:
        return cpu;
      case Resource::kIo:
        return io;
      case Resource::kNet:
        return net;
    }
    return cpu;
  }
  double operator[](Resource r) const {
    switch (r) {
      case Resource::kCpu:
        return cpu;
      case Resource::kIo:
        return io;
      case Resource::kNet:
        return net;
    }
    return cpu;
  }

  ResourceVector& operator+=(const ResourceVector& o) {
    cpu += o.cpu;
    io += o.io;
    net += o.net;
    return *this;
  }
  ResourceVector& operator-=(const ResourceVector& o) {
    cpu -= o.cpu;
    io -= o.io;
    net -= o.net;
    return *this;
  }
  ResourceVector& operator*=(double s) {
    cpu *= s;
    io *= s;
    net *= s;
    return *this;
  }
  friend ResourceVector operator+(ResourceVector a, const ResourceVector& b) { return a += b; }
  friend ResourceVector operator-(ResourceVector a, const ResourceVector& b) { return a -= b; }
  friend ResourceVector operator*(ResourceVector a, double s) { return a *= s; }
  friend ResourceVector operator*(double s, ResourceVector a) { return a *= s; }
  friend bool operator==(const ResourceVector& a, const ResourceVector& b) {
    return a.cpu == b.cpu && a.io == b.io && a.net == b.net;
  }

  // True when every component of this vector is <= the corresponding component of `o`.
  bool AllLeq(const ResourceVector& o) const { return cpu <= o.cpu && io <= o.io && net <= o.net; }

  // Pareto dominance: <= in all dimensions and < in at least one.
  bool Dominates(const ResourceVector& o) const {
    return AllLeq(o) && (cpu < o.cpu || io < o.io || net < o.net);
  }

  double Max() const { return cpu > io ? (cpu > net ? cpu : net) : (io > net ? io : net); }
  double Sum() const { return cpu + io + net; }

  std::string ToString() const;
};

}  // namespace capsys

#endif  // SRC_COMMON_TYPES_H_
