#include "src/common/thread_pool.h"

#include "src/common/logging.h"

namespace capsys {

ThreadPool::ThreadPool(int num_threads) {
  CAPSYS_CHECK(num_threads > 0);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& t : threads_) {
    t.join();
  }
}

void ThreadPool::Submit(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

bool ThreadPool::HasIdleThread() const {
  std::lock_guard<std::mutex> lock(mu_);
  return idle_ > 0 && queue_.empty();
}

void ThreadPool::WorkerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    ++idle_;
    work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
    --idle_;
    if (stop_ && queue_.empty()) {
      return;
    }
    auto fn = std::move(queue_.front());
    queue_.pop_front();
    ++active_;
    lock.unlock();
    fn();
    lock.lock();
    --active_;
    if (queue_.empty() && active_ == 0) {
      done_cv_.notify_all();
    }
  }
}

}  // namespace capsys
