#include "src/common/stats.h"

#include <algorithm>
#include <cmath>

#include "src/common/str.h"

namespace capsys {

void RunningStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

void RunningStats::Merge(const RunningStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  double delta = other.mean_ - mean_;
  size_t total = count_ + other.count_;
  double nf = static_cast<double>(count_);
  double mf = static_cast<double>(other.count_);
  mean_ += delta * mf / static_cast<double>(total);
  m2_ += other.m2_ + delta * delta * nf * mf / static_cast<double>(total);
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
  count_ = total;
}

void RunningStats::Reset() { *this = RunningStats(); }

double RunningStats::Variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::Stddev() const { return std::sqrt(Variance()); }

std::string RunningStats::ToString() const {
  return Sprintf("n=%zu mean=%.4g sd=%.4g min=%.4g max=%.4g", count_, Mean(), Stddev(), Min(),
                 Max());
}

void Distribution::EnsureSorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double Distribution::Mean() const {
  if (samples_.empty()) {
    return 0.0;
  }
  double sum = 0.0;
  for (double s : samples_) {
    sum += s;
  }
  return sum / static_cast<double>(samples_.size());
}

double Distribution::Percentile(double q) const {
  if (samples_.empty()) {
    return 0.0;
  }
  EnsureSorted();
  if (q <= 0.0) {
    return samples_.front();
  }
  if (q >= 100.0) {
    return samples_.back();
  }
  double pos = q / 100.0 * static_cast<double>(samples_.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  double frac = pos - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) {
    return samples_.back();
  }
  return samples_[lo] * (1.0 - frac) + samples_[lo + 1] * frac;
}

BoxSummary Summarize(const std::vector<double>& values) {
  Distribution d;
  for (double v : values) {
    d.Add(v);
  }
  BoxSummary s;
  s.min = d.Percentile(0);
  s.p25 = d.Percentile(25);
  s.median = d.Percentile(50);
  s.p75 = d.Percentile(75);
  s.max = d.Percentile(100);
  s.mean = d.Mean();
  return s;
}

std::string BoxSummary::ToString() const {
  return Sprintf("min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g mean=%.4g", min, p25, median, p75,
                 max, mean);
}

}  // namespace capsys
