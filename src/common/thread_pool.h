// Fixed-size thread pool with a shared work queue. The CAPS parallel search uses this to
// spread subtree exploration across threads (paper §5.1: "CAPS parallelizes the search by
// leveraging a configurable thread pool ... threads can dynamically offload work").
#ifndef SRC_COMMON_THREAD_POOL_H_
#define SRC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace capsys {

class ThreadPool {
 public:
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a task. Safe to call from worker threads (tasks may spawn tasks).
  void Submit(std::function<void()> fn);

  // Blocks until all submitted tasks (including ones spawned by tasks) have finished.
  void Wait();

  // True when the queue is non-empty is NOT what this reports; it reports whether some
  // thread is currently idle, which CAPS uses to decide whether offloading a subtree is
  // worthwhile.
  bool HasIdleThread() const;

  int num_threads() const { return static_cast<int>(threads_.size()); }

 private:
  void WorkerLoop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> threads_;
  int active_ = 0;
  int idle_ = 0;
  bool stop_ = false;
};

}  // namespace capsys

#endif  // SRC_COMMON_THREAD_POOL_H_
