#include "src/common/str.h"

#include <cstdio>

#include "src/common/types.h"

namespace capsys {

std::string Sprintf(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string Join(const std::vector<std::string>& parts, const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

std::string Humanize(double value, int digits) {
  std::string s = Sprintf("%.*f", digits, value);
  // Trim trailing zeros (but keep at least one digit after the point).
  while (s.size() > 1 && s.back() == '0' && s[s.size() - 2] != '.') {
    s.pop_back();
  }
  return s;
}

std::string ResourceVector::ToString() const {
  return Sprintf("[cpu=%.4g io=%.4g net=%.4g]", cpu, io, net);
}

}  // namespace capsys
