// Streaming statistics and summary helpers used by metrics, the simulator, and benches.
#ifndef SRC_COMMON_STATS_H_
#define SRC_COMMON_STATS_H_

#include <cstddef>
#include <string>
#include <vector>

namespace capsys {

// Welford-style running mean/variance with min/max tracking.
class RunningStats {
 public:
  void Add(double x);
  void Merge(const RunningStats& other);
  void Reset();

  size_t Count() const { return count_; }
  double Mean() const { return count_ > 0 ? mean_ : 0.0; }
  double Variance() const;
  double Stddev() const;
  double Min() const { return count_ > 0 ? min_ : 0.0; }
  double Max() const { return count_ > 0 ? max_ : 0.0; }
  double Sum() const { return mean_ * static_cast<double>(count_); }

  std::string ToString() const;

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

// Exact percentile over a retained sample vector. Suitable for the experiment scales here
// (at most a few hundred thousand samples per series).
class Distribution {
 public:
  void Add(double x) { samples_.push_back(x); }
  void Reserve(size_t n) { samples_.reserve(n); }

  size_t Count() const { return samples_.size(); }
  double Mean() const;
  // Linear-interpolated percentile, q in [0, 100].
  double Percentile(double q) const;
  double Median() const { return Percentile(50.0); }
  double Min() const { return Percentile(0.0); }
  double Max() const { return Percentile(100.0); }

  const std::vector<double>& samples() const { return samples_; }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void EnsureSorted() const;
};

// Five-number summary of a batch of run results — what the paper's box plots show.
struct BoxSummary {
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double max = 0.0;
  double mean = 0.0;

  std::string ToString() const;
};

BoxSummary Summarize(const std::vector<double>& values);

}  // namespace capsys

#endif  // SRC_COMMON_STATS_H_
