#include "src/common/rng.h"

#include <cmath>

namespace capsys {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : s_) {
    s = sm.Next();
  }
}

uint64_t Rng::NextU64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::NextBounded(uint64_t bound) {
  // Lemire's nearly-divisionless bounded generation (rejection for uniformity).
  uint64_t x = NextU64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t l = static_cast<uint64_t>(m);
  if (l < bound) {
    uint64_t t = -bound % bound;
    while (l < t) {
      x = NextU64();
      m = static_cast<__uint128_t>(x) * bound;
      l = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  return lo + static_cast<int64_t>(NextBounded(static_cast<uint64_t>(hi - lo + 1)));
}

double Rng::UniformDouble() { return static_cast<double>(NextU64() >> 11) * 0x1.0p-53; }

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * UniformDouble(); }

double Rng::Normal(double mean, double stddev) {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return mean + stddev * cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = UniformDouble();
  } while (u1 <= 1e-300);
  double u2 = UniformDouble();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return mean + stddev * r * std::cos(theta);
}

double Rng::Exponential(double rate) {
  double u = 0.0;
  do {
    u = UniformDouble();
  } while (u <= 1e-300);
  return -std::log(u) / rate;
}

Rng Rng::Split() { return Rng(NextU64()); }

}  // namespace capsys
