// printf-style string formatting helpers (libstdc++ 12 lacks <format>).
#ifndef SRC_COMMON_STR_H_
#define SRC_COMMON_STR_H_

#include <cstdarg>
#include <string>
#include <vector>

namespace capsys {

// Returns a std::string built from a printf format string. Attribute-checked.
std::string Sprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

// Joins the elements of `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

// Formats a double with `digits` significant decimals, trimming trailing zeros.
std::string Humanize(double value, int digits = 3);

}  // namespace capsys

#endif  // SRC_COMMON_STR_H_
