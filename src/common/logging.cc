#include "src/common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

namespace capsys {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, const std::string& module, const std::string& msg) {
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s %s: %s\n", LevelTag(level), module.c_str(), msg.c_str());
}

void CheckFailed(const char* file, int line, const char* expr, const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr, msg.c_str());
  std::abort();
}

}  // namespace capsys
