#include "src/common/logging.h"

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <ctime>
#include <mutex>
#include <string>

namespace capsys {
namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kWarn)};
std::mutex g_log_mutex;
std::once_flag g_env_once;
std::atomic<int> g_next_thread_id{0};
thread_local int tls_thread_id = -1;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarn:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

void InitLevelFromEnv() {
  const char* env = std::getenv("CAPSYS_LOG_LEVEL");
  if (env == nullptr || env[0] == '\0') {
    return;
  }
  std::string v;
  for (const char* p = env; *p != '\0'; ++p) {
    v += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
  }
  int level = -1;
  if (v == "debug" || v == "0") {
    level = static_cast<int>(LogLevel::kDebug);
  } else if (v == "info" || v == "1") {
    level = static_cast<int>(LogLevel::kInfo);
  } else if (v == "warn" || v == "warning" || v == "2") {
    level = static_cast<int>(LogLevel::kWarn);
  } else if (v == "error" || v == "3") {
    level = static_cast<int>(LogLevel::kError);
  } else if (v == "off" || v == "none" || v == "4") {
    level = static_cast<int>(LogLevel::kOff);
  } else {
    std::fprintf(stderr, "W logging: unrecognized CAPSYS_LOG_LEVEL=\"%s\" ignored\n", env);
    return;
  }
  g_level.store(level);
}

void EnsureEnvApplied() { std::call_once(g_env_once, InitLevelFromEnv); }

int ThisThreadId() {
  if (tls_thread_id < 0) {
    tls_thread_id = g_next_thread_id.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_thread_id;
}

}  // namespace

void InitLoggingFromEnv() { EnsureEnvApplied(); }

void SetLogLevel(LogLevel level) {
  EnsureEnvApplied();  // an explicit call must win over the environment, not race with it
  g_level.store(static_cast<int>(level));
}

LogLevel GetLogLevel() {
  EnsureEnvApplied();
  return static_cast<LogLevel>(g_level.load());
}

void LogMessage(LogLevel level, const std::string& module, const std::string& msg) {
  EnsureEnvApplied();
  if (static_cast<int>(level) < g_level.load(std::memory_order_relaxed)) {
    return;
  }
  auto now = std::chrono::system_clock::now();
  std::time_t secs = std::chrono::system_clock::to_time_t(now);
  int millis = static_cast<int>(
      std::chrono::duration_cast<std::chrono::milliseconds>(now.time_since_epoch()).count() %
      1000);
  std::tm tm_buf{};
  localtime_r(&secs, &tm_buf);
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "%s %02d:%02d:%02d.%03d [t%d] %s: %s\n", LevelTag(level), tm_buf.tm_hour,
               tm_buf.tm_min, tm_buf.tm_sec, millis, ThisThreadId(), module.c_str(),
               msg.c_str());
}

void CheckFailed(const char* file, int line, const char* expr, const std::string& msg) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s %s\n", file, line, expr, msg.c_str());
  std::abort();
}

}  // namespace capsys
