// Minimal leveled logger. Writes to stderr; level settable globally.
#ifndef SRC_COMMON_LOGGING_H_
#define SRC_COMMON_LOGGING_H_

#include <string>

namespace capsys {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// The initial level is kWarn, overridable at startup via the CAPSYS_LOG_LEVEL environment
// variable ("debug"/"info"/"warn"/"error"/"off", case-insensitive, or the numeric value) —
// so bench/CI runs can raise verbosity without code edits. SetLogLevel overrides both.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Applies CAPSYS_LOG_LEVEL now. Every logging call applies it lazily on first use anyway;
// calling this at the top of main() makes the ordering explicit (the env wins over the
// default even if the first log statement races process startup) and is what the bench
// binaries do.
void InitLoggingFromEnv();

// Emits one log line "L HH:MM:SS.mmm [tN] <module>: <msg>" if `level` >= the global level,
// where HH:MM:SS.mmm is local wall-clock time and tN a stable per-thread logical id.
void LogMessage(LogLevel level, const std::string& module, const std::string& msg);

#define CAPSYS_LOG_DEBUG(mod, msg) ::capsys::LogMessage(::capsys::LogLevel::kDebug, (mod), (msg))
#define CAPSYS_LOG_INFO(mod, msg) ::capsys::LogMessage(::capsys::LogLevel::kInfo, (mod), (msg))
#define CAPSYS_LOG_WARN(mod, msg) ::capsys::LogMessage(::capsys::LogLevel::kWarn, (mod), (msg))
#define CAPSYS_LOG_ERROR(mod, msg) ::capsys::LogMessage(::capsys::LogLevel::kError, (mod), (msg))

// Invariant check that aborts with a message. Used for programming errors, not user input.
void CheckFailed(const char* file, int line, const char* expr, const std::string& msg);

#define CAPSYS_CHECK(expr)                                         \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::capsys::CheckFailed(__FILE__, __LINE__, #expr, "");        \
    }                                                              \
  } while (0)

#define CAPSYS_CHECK_MSG(expr, msg)                                \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::capsys::CheckFailed(__FILE__, __LINE__, #expr, (msg));     \
    }                                                              \
  } while (0)

}  // namespace capsys

#endif  // SRC_COMMON_LOGGING_H_
