// Flink's built-in task placement strategies (paper §2.2), used as evaluation baselines.
//
// Both assume task homogeneity: they balance the *number* of tasks rather than actual
// resource load, and the task order is randomized, so placement quality varies across runs
// of the same query (the variance Figures 7 and 8 show).
#ifndef SRC_BASELINES_FLINK_STRATEGIES_H_
#define SRC_BASELINES_FLINK_STRATEGIES_H_

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/dataflow/placement.h"

namespace capsys {

// Flink's default policy: iterate over workers, filling all of a worker's slots before
// moving to the next; tasks are selected in random order.
Placement FlinkDefaultPlacement(const PhysicalGraph& graph, const Cluster& cluster, Rng& rng);

// Flink's `cluster.evenly-spread-out-slots` policy: assign each task (in random order) to
// the worker with the fewest assigned tasks.
Placement FlinkEvenlyPlacement(const PhysicalGraph& graph, const Cluster& cluster, Rng& rng);

}  // namespace capsys

#endif  // SRC_BASELINES_FLINK_STRATEGIES_H_
