#include "src/baselines/flink_strategies.h"

#include <numeric>

#include "src/common/logging.h"

namespace capsys {
namespace {

std::vector<TaskId> ShuffledTasks(const PhysicalGraph& graph, Rng& rng) {
  std::vector<TaskId> tasks(static_cast<size_t>(graph.num_tasks()));
  std::iota(tasks.begin(), tasks.end(), 0);
  rng.Shuffle(tasks);
  return tasks;
}

}  // namespace

Placement FlinkDefaultPlacement(const PhysicalGraph& graph, const Cluster& cluster, Rng& rng) {
  CAPSYS_CHECK(cluster.total_slots() >= graph.num_tasks());
  Placement plan(graph.num_tasks());
  std::vector<int> used(static_cast<size_t>(cluster.num_workers()), 0);
  WorkerId w = 0;
  for (TaskId t : ShuffledTasks(graph, rng)) {
    while (used[static_cast<size_t>(w)] >= cluster.worker(w).spec.slots) {
      ++w;
      CAPSYS_CHECK(w < cluster.num_workers());
    }
    plan.Assign(t, w);
    ++used[static_cast<size_t>(w)];
  }
  return plan;
}

Placement FlinkEvenlyPlacement(const PhysicalGraph& graph, const Cluster& cluster, Rng& rng) {
  CAPSYS_CHECK(cluster.total_slots() >= graph.num_tasks());
  Placement plan(graph.num_tasks());
  std::vector<int> used(static_cast<size_t>(cluster.num_workers()), 0);
  for (TaskId t : ShuffledTasks(graph, rng)) {
    WorkerId best = kInvalidId;
    for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
      if (used[static_cast<size_t>(w)] >= cluster.worker(w).spec.slots) {
        continue;
      }
      if (best == kInvalidId || used[static_cast<size_t>(w)] < used[static_cast<size_t>(best)]) {
        best = w;
      }
    }
    CAPSYS_CHECK(best != kInvalidId);
    plan.Assign(t, best);
    ++used[static_cast<size_t>(best)];
  }
  return plan;
}

}  // namespace capsys
