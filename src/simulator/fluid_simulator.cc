#include "src/simulator/fluid_simulator.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/obs/events.h"
#include "src/obs/trace.h"

namespace capsys {
namespace {

constexpr double kEps = 1e-12;

}  // namespace

std::string QuerySummary::ToString() const {
  return Sprintf("throughput=%.1f rec/s bp=%.1f%% latency=%.3fs sink=%.1f rec/s util=%s",
                 throughput, backpressure * 100.0, latency_s, sink_rate,
                 max_worker_utilization.ToString().c_str());
}

FluidSimulator::FluidSimulator(const PhysicalGraph& graph, const Cluster& cluster,
                               const Placement& placement, SimConfig config)
    : graph_(graph), cluster_(cluster), placement_(placement), config_(config) {
  std::string err = placement_.Validate(graph_, cluster_);
  CAPSYS_CHECK_MSG(err.empty(), err);
  size_t n = static_cast<size_t>(graph_.num_tasks());
  queue_.assign(n, 0.0);
  is_source_.assign(n, false);
  for (const auto& t : graph_.tasks()) {
    if (graph_.logical().op(t.op).kind == OperatorKind::kSource) {
      is_source_[static_cast<size_t>(t.id)] = true;
    }
  }
  for (OperatorId s : graph_.logical().SourceIds()) {
    source_rates_[s] = 0.0;
  }
  failed_.assign(static_cast<size_t>(cluster_.num_workers()), false);
  degrade_.assign(static_cast<size_t>(cluster_.num_workers()), 1.0);
  checkpoint_io_bps_.assign(static_cast<size_t>(cluster_.num_workers()), 0.0);
  task_true_rate_.resize(n);
  task_observed_rate_.resize(n);
  op_emit_rate_.resize(static_cast<size_t>(graph_.num_operators()));
  op_backpressure_.resize(static_cast<size_t>(graph_.num_operators()));
  op_in_rate_.resize(static_cast<size_t>(graph_.num_operators()));
  op_out_rate_.resize(static_cast<size_t>(graph_.num_operators()));
  op_in_sum_.assign(static_cast<size_t>(graph_.num_operators()), 0.0);
  op_out_sum_.assign(static_cast<size_t>(graph_.num_operators()), 0.0);
  op_emit_sum_.assign(static_cast<size_t>(graph_.num_operators()), 0.0);
  op_bp_sum_.assign(static_cast<size_t>(graph_.num_operators()), 0.0);
  op_source_tasks_.assign(static_cast<size_t>(graph_.num_operators()), 0);
  op_cpu_used_.resize(static_cast<size_t>(graph_.num_operators()));
  op_io_bps_.resize(static_cast<size_t>(graph_.num_operators()));
  op_net_bps_.resize(static_cast<size_t>(graph_.num_operators()));
  for (const auto& t : graph_.tasks()) {
    if (is_source_[static_cast<size_t>(t.id)]) {
      ++op_source_tasks_[static_cast<size_t>(t.op)];
    }
  }
  size_t w = static_cast<size_t>(cluster_.num_workers());
  worker_cpu_util_.resize(w);
  worker_io_util_.resize(w);
  worker_net_util_.resize(w);
  worker_cpu_used_.resize(w);
  worker_io_bps_.resize(w);
  worker_net_bps_.resize(w);
  if (config_.num_threads > 1) {
    pool_ = std::make_unique<ThreadPool>(config_.num_threads);
  }
  RebuildStatics();
}

void FluidSimulator::RebuildStatics() {
  size_t n = static_cast<size_t>(graph_.num_tasks());
  down_tasks_.assign(n, {});
  remote_fraction_.assign(n, 0.0);
  for (const auto& t : graph_.tasks()) {
    for (ChannelId c : graph_.DownstreamChannels(t.id)) {
      down_tasks_[static_cast<size_t>(t.id)].push_back(graph_.channel(c).to);
    }
    remote_fraction_[static_cast<size_t>(t.id)] = placement_.RemoteFraction(graph_, t.id);
  }
  worker_tasks_.assign(static_cast<size_t>(cluster_.num_workers()), {});
  for (const auto& t : graph_.tasks()) {
    worker_tasks_[static_cast<size_t>(placement_.WorkerOf(t.id))].push_back(
        static_cast<size_t>(t.id));
  }
  // Queue capacities from target rates (buffer-debloating stand-in).
  auto rates = PropagateRates(graph_.logical(), source_rates_);
  queue_capacity_.assign(n, config_.min_queue_records);
  for (const auto& t : graph_.tasks()) {
    const auto& op = graph_.logical().op(t.op);
    double per_task_in = rates[static_cast<size_t>(t.op)].input_rate / op.parallelism;
    queue_capacity_[static_cast<size_t>(t.id)] =
        std::max(config_.min_queue_records, per_task_in * config_.buffer_seconds);
  }
  // Static per-task costs (constant between calls to this function).
  task_op_.assign(n, 0);
  task_selectivity_.assign(n, 0.0);
  task_io_cost_.assign(n, 0.0);
  task_net_cost_.assign(n, 0.0);
  task_out_cost_.assign(n, 0.0);
  source_task_rate_.assign(n, 0.0);
  num_source_tasks_ = 0;
  for (const auto& t : graph_.tasks()) {
    size_t i = static_cast<size_t>(t.id);
    const auto& op = graph_.logical().op(t.op);
    task_op_[i] = t.op;
    task_selectivity_[i] = op.profile.selectivity;
    task_io_cost_[i] = op.profile.io_bytes_per_record;
    task_out_cost_[i] = op.profile.selectivity * op.profile.out_bytes_per_record;
    task_net_cost_[i] = task_out_cost_[i] * remote_fraction_[i];
    if (is_source_[i]) {
      source_task_rate_[i] = source_rates_.at(t.op) / op.parallelism;
      ++num_source_tasks_;
    }
  }
  total_target_rate_ = 0.0;
  for (const auto& [op, r] : source_rates_) {
    total_target_rate_ += r;
  }
  // Per-worker solver arenas: everything but desired_rate is fixed until the next rebuild.
  size_t num_workers = static_cast<size_t>(cluster_.num_workers());
  worker_loads_.assign(num_workers, {});
  for (size_t w = 0; w < num_workers; ++w) {
    for (size_t i : worker_tasks_[w]) {
      TaskLoad l;
      const auto& prof = graph_.logical().op(task_op_[i]).profile;
      l.task = static_cast<TaskId>(i);
      l.cpu_per_record = prof.cpu_per_record;
      l.io_per_record = task_io_cost_[i];
      l.net_per_record = task_net_cost_[i];
      l.stateful = prof.stateful;
      l.gc_fraction = prof.gc_spike_fraction;
      worker_loads_[w].push_back(l);
    }
  }
  worker_alloc_.resize(num_workers);
  worker_scratch_.resize(num_workers);
  // Size the per-tick scratch once so Step() only overwrites in place.
  desired_.assign(n, 0.0);
  rate_cap_.assign(n, 0.0);
  true_rate_.assign(n, 0.0);
  eff_cpu_cost_.assign(n, 0.0);
  eff_io_bw_.assign(num_workers, 0.0);
  proc_raw_.assign(n, 0.0);
  claim_total_.assign(n, 0.0);
  accept_.assign(n, 1.0);
  emit_factor_.assign(n, 1.0);
  enqueue_.assign(n, 0.0);
  processed_rate_.assign(n, 0.0);
  op_cpu_scratch_.assign(op_cpu_used_.size(), 0.0);
  op_io_scratch_.assign(op_cpu_used_.size(), 0.0);
  op_net_scratch_.assign(op_cpu_used_.size(), 0.0);
}

void FluidSimulator::FailWorker(WorkerId w) {
  CAPSYS_CHECK(w >= 0 && w < cluster_.num_workers());
  failed_[static_cast<size_t>(w)] = true;
}

void FluidSimulator::RestoreWorker(WorkerId w) {
  CAPSYS_CHECK(w >= 0 && w < cluster_.num_workers());
  failed_[static_cast<size_t>(w)] = false;
}

void FluidSimulator::DegradeWorker(WorkerId w, double factor) {
  CAPSYS_CHECK(w >= 0 && w < cluster_.num_workers());
  CAPSYS_CHECK_MSG(factor > 0.0 && factor <= 1.0, "degrade factor must be in (0, 1]");
  degrade_[static_cast<size_t>(w)] = factor;
}

void FluidSimulator::SetWorkerCheckpointIoBps(WorkerId w, double bps) {
  CAPSYS_CHECK(w >= 0 && w < cluster_.num_workers());
  CAPSYS_CHECK_MSG(bps >= 0.0, "checkpoint io must be non-negative");
  checkpoint_io_bps_[static_cast<size_t>(w)] = bps;
}

void FluidSimulator::ClearCheckpointIo() {
  std::fill(checkpoint_io_bps_.begin(), checkpoint_io_bps_.end(), 0.0);
}

void FluidSimulator::SetMetricCorruption(const MetricCorruption& corruption, uint64_t seed) {
  corruption_ = corruption;
  corruption_rng_ = Rng(seed);
}

void FluidSimulator::SetSourceRate(OperatorId source_op, double records_per_s) {
  CAPSYS_CHECK_MSG(source_rates_.count(source_op) == 1, "not a source operator");
  source_rates_[source_op] = records_per_s;
  RebuildStatics();
}

void FluidSimulator::SetAllSourceRates(double records_per_s) {
  for (auto& [op, rate] : source_rates_) {
    rate = records_per_s;
  }
  RebuildStatics();
}

void FluidSimulator::Step() {
  const double dt = config_.tick_s;
  const size_t n = static_cast<size_t>(graph_.num_tasks());

  // --- 1. Desired processing rates -------------------------------------------------------
  for (size_t i = 0; i < n; ++i) {
    desired_[i] = is_source_[i] ? source_task_rate_[i] : queue_[i] / dt;
  }

  // --- 2. Per-worker contention solve -----------------------------------------------------
  // Workers are solved independently and each writes only its own allocation arena plus its
  // own tasks' slices of the scattered arrays, so the parallel path is bit-identical to the
  // sequential one.
  const WorkerId num_workers = cluster_.num_workers();
  auto solve_one = [this](WorkerId w) {
    size_t wi = static_cast<size_t>(w);
    const auto& idxs = worker_tasks_[wi];
    std::vector<TaskLoad>& loads = worker_loads_[wi];
    for (size_t k = 0; k < idxs.size(); ++k) {
      loads[k].desired_rate = desired_[idxs[k]];
    }
    WorkerAllocation& alloc = worker_alloc_[wi];
    if (double ckpt_bps = checkpoint_io_bps_[wi]; ckpt_bps > 0.0) {
      // Snapshot upload competes for the disk: the tasks contend for what remains (floored
      // so a misconfigured coordinator cannot starve the worker outright).
      WorkerSpec spec = cluster_.worker(w).spec;
      spec.io_bandwidth_bps = std::max(0.1 * spec.io_bandwidth_bps,
                                       spec.io_bandwidth_bps - ckpt_bps);
      SolveWorkerInPlace(spec, config_.contention, loads, worker_scratch_[wi], alloc);
    } else {
      SolveWorkerInPlace(cluster_.worker(w).spec, config_.contention, loads,
                         worker_scratch_[wi], alloc);
    }
    if (failed_[wi]) {
      std::fill(alloc.rate.begin(), alloc.rate.end(), 0.0);
      std::fill(alloc.capacity_rate.begin(), alloc.capacity_rate.end(), 0.0);
    } else if (double degrade = degrade_[wi]; degrade < 1.0) {
      // Transient slowdown: the whole worker runs at a fraction of its solved capacity.
      for (double& r : alloc.rate) {
        r *= degrade;
      }
      for (double& r : alloc.capacity_rate) {
        r *= degrade;
      }
    }
    eff_io_bw_[wi] = alloc.effective_io_bandwidth;
    for (size_t k = 0; k < idxs.size(); ++k) {
      rate_cap_[idxs[k]] = alloc.rate[k];
      true_rate_[idxs[k]] = alloc.capacity_rate[k];
      eff_cpu_cost_[idxs[k]] = alloc.effective_cpu_per_record[k];
    }
  };
  if (pool_ != nullptr) {
    for (WorkerId w = 0; w < num_workers; ++w) {
      pool_->Submit([&solve_one, w] { solve_one(w); });
    }
    pool_->Wait();
  } else {
    for (WorkerId w = 0; w < num_workers; ++w) {
      solve_one(w);
    }
  }

  // --- 3. Raw processing amounts and downstream claims ------------------------------------
  for (size_t i = 0; i < n; ++i) {
    if (is_source_[i]) {
      proc_raw_[i] = std::min(rate_cap_[i], desired_[i]) * dt;
    } else {
      proc_raw_[i] = std::min(queue_[i], rate_cap_[i] * dt);
    }
  }
  // Free space per downstream task (conservative: no credit for this tick's drain).
  claim_total_.assign(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    const auto& downs = down_tasks_[i];
    if (downs.empty()) {
      continue;
    }
    double out = proc_raw_[i] * task_selectivity_[i];
    double share = out / static_cast<double>(downs.size());
    for (TaskId d : downs) {
      claim_total_[static_cast<size_t>(d)] += share;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    accept_[i] = 1.0;
    if (claim_total_[i] > kEps) {
      double free = std::max(0.0, queue_capacity_[i] - queue_[i]);
      accept_[i] = std::min(1.0, free / claim_total_[i]);
    }
  }

  // --- 4. Emit factors: one blocked channel blocks the whole task (Flink semantics) -------
  for (size_t i = 0; i < n; ++i) {
    double f = 1.0;
    for (TaskId d : down_tasks_[i]) {
      f = std::min(f, accept_[static_cast<size_t>(d)]);
    }
    emit_factor_[i] = f;
  }

  // --- 5. Apply transfers -----------------------------------------------------------------
  enqueue_.assign(n, 0.0);
  double source_emitted = 0.0;
  double sink_arrivals = 0.0;
  for (size_t i = 0; i < n; ++i) {
    double processed = proc_raw_[i] * emit_factor_[i];
    processed_rate_[i] = processed / dt;
    size_t o = static_cast<size_t>(task_op_[i]);
    if (!is_source_[i]) {
      queue_[i] -= processed;
      if (queue_[i] < 0.0) {
        queue_[i] = 0.0;
      }
    } else {
      source_emitted += processed;
    }
    const auto& downs = down_tasks_[i];
    if (!downs.empty()) {
      double out = processed * task_selectivity_[i];
      double share = out / static_cast<double>(downs.size());
      for (TaskId d : downs) {
        enqueue_[static_cast<size_t>(d)] += share;
      }
    }
    if (downs.empty() && !is_source_[i]) {
      sink_arrivals += processed;  // records leaving the pipeline at sinks
    }
    // Per-task metric accumulation.
    task_true_rate_[i].Add(std::min(true_rate_[i], 1e15));
    task_observed_rate_[i].Add(processed / dt);
    // Per-operator aggregates (summed over the operator's tasks per tick).
    if (is_source_[i]) {
      op_emit_sum_[o] += processed / dt;
      op_bp_sum_[o] += 1.0 - emit_factor_[i];
    }
    op_in_sum_[o] += processed / dt;
    op_out_sum_[o] += processed * task_selectivity_[i] / dt;
  }
  for (size_t o = 0; o < op_in_rate_.size(); ++o) {
    op_in_rate_[o].Add(op_in_sum_[o]);
    op_out_rate_[o].Add(op_out_sum_[o]);
    op_in_sum_[o] = 0.0;
    op_out_sum_[o] = 0.0;
    if (op_source_tasks_[o] > 0) {
      op_emit_rate_[o].Add(op_emit_sum_[o]);  // total records/s emitted by the operator
      op_backpressure_[o].Add(op_bp_sum_[o] / op_source_tasks_[o]);  // mean blocked share
      op_emit_sum_[o] = 0.0;
      op_bp_sum_[o] = 0.0;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    queue_[i] = std::min(queue_[i] + enqueue_[i], queue_capacity_[i] + 1.0);
  }

  // --- 5b. Resource usage from the work actually performed ---------------------------------
  op_cpu_scratch_.assign(op_cpu_used_.size(), 0.0);
  op_io_scratch_.assign(op_cpu_used_.size(), 0.0);
  op_net_scratch_.assign(op_cpu_used_.size(), 0.0);
  for (size_t i = 0; i < n; ++i) {
    size_t o = static_cast<size_t>(task_op_[i]);
    op_cpu_scratch_[o] += processed_rate_[i] * eff_cpu_cost_[i];
    op_io_scratch_[o] += processed_rate_[i] * task_io_cost_[i];
    op_net_scratch_[o] += processed_rate_[i] * task_out_cost_[i];  // full bytes (observable)
  }
  for (size_t o = 0; o < op_cpu_scratch_.size(); ++o) {
    op_cpu_used_[o].Add(op_cpu_scratch_[o]);
    op_io_bps_[o].Add(op_io_scratch_[o]);
    op_net_bps_[o].Add(op_net_scratch_[o]);
  }
  for (WorkerId w = 0; w < num_workers; ++w) {
    const auto& spec = cluster_.worker(w).spec;
    double cpu_used = 0.0;
    double io_used = 0.0;
    double net_used = 0.0;
    for (size_t i : worker_tasks_[static_cast<size_t>(w)]) {
      cpu_used += processed_rate_[i] * eff_cpu_cost_[i];
      io_used += processed_rate_[i] * task_io_cost_[i];
      net_used += processed_rate_[i] * task_net_cost_[i];
    }
    double io_bw = eff_io_bw_[static_cast<size_t>(w)];
    worker_cpu_util_[static_cast<size_t>(w)].Add(
        spec.cpu_capacity > 0 ? cpu_used / spec.cpu_capacity : 0.0);
    worker_io_util_[static_cast<size_t>(w)].Add(io_bw > 0 ? io_used / io_bw : 0.0);
    worker_net_util_[static_cast<size_t>(w)].Add(
        spec.net_bandwidth_bps > 0 ? net_used / spec.net_bandwidth_bps : 0.0);
    worker_cpu_used_[static_cast<size_t>(w)].Add(cpu_used);
    worker_io_bps_[static_cast<size_t>(w)].Add(io_used);
    worker_net_bps_[static_cast<size_t>(w)].Add(net_used);
  }

  // --- 6. Query-level accumulators ---------------------------------------------------------
  double in_flight = 0.0;
  for (size_t i = 0; i < n; ++i) {
    in_flight += queue_[i];
  }
  double emit_rate = source_emitted / dt;
  total_throughput_.Add(emit_rate);
  double bp = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (is_source_[i]) {
      bp += 1.0 - emit_factor_[i];
    }
  }
  total_backpressure_.Add(num_source_tasks_ > 0 ? bp / num_source_tasks_ : 0.0);
  latency_.Add(in_flight /
               std::max(emit_rate, std::max(total_target_rate_ * 0.01, 1.0)));
  sink_rate_.Add(sink_arrivals / dt);

  time_s_ += dt;
  if (time_s_ - last_flush_s_ >= config_.metrics_interval_s - kEps) {
    FlushMetrics();
  }
}

void FluidSimulator::FlushMetrics() {
  if (total_throughput_.count == 0) {
    return;  // nothing accumulated since the last flush (e.g. double flush)
  }
  last_flush_s_ = time_s_;
  metrics_.GetCounter("sim.0.flushes").Add();
  if (pending_dropouts_ > 0) {
    metrics_.GetCounter("sim.0.metric_dropouts").Add(pending_dropouts_);
    pending_dropouts_ = 0;
  }
  // Backpressure episode tracking: one onset event when the mean source backpressure
  // crosses the threshold, one cleared event when it drops back below.
  {
    double bp = total_backpressure_.count > 0 ? total_backpressure_.sum /
                                                    total_backpressure_.count
                                              : 0.0;
    bool above = bp >= config_.backpressure_onset_threshold;
    if (above && !backpressure_episode_) {
      EmitBackpressureOnset(telemetry_offset_s_ + time_s_, bp);
    } else if (!above && backpressure_episode_) {
      EmitBackpressureCleared(telemetry_offset_s_ + time_s_, bp);
    }
    backpressure_episode_ = above;
  }
  for (size_t i = 0; i < task_true_rate_.size(); ++i) {
    metrics_.Record(TaskMetric(static_cast<int>(i), "true_rate"), time_s_,
                    task_true_rate_[i].MeanAndReset());
    metrics_.Record(TaskMetric(static_cast<int>(i), "observed_rate"), time_s_,
                    task_observed_rate_[i].MeanAndReset());
  }
  for (size_t o = 0; o < op_emit_rate_.size(); ++o) {
    if (op_emit_rate_[o].count > 0) {
      metrics_.Record(OperatorMetric(static_cast<int>(o), "emit_rate"), time_s_,
                      op_emit_rate_[o].MeanAndReset());
      metrics_.Record(OperatorMetric(static_cast<int>(o), "backpressure"), time_s_,
                      op_backpressure_[o].MeanAndReset());
    }
    metrics_.Record(OperatorMetric(static_cast<int>(o), "in_rate"), time_s_,
                    op_in_rate_[o].MeanAndReset());
    metrics_.Record(OperatorMetric(static_cast<int>(o), "out_rate"), time_s_,
                    op_out_rate_[o].MeanAndReset());
    metrics_.Record(OperatorMetric(static_cast<int>(o), "cpu_used"), time_s_,
                    op_cpu_used_[o].MeanAndReset());
    metrics_.Record(OperatorMetric(static_cast<int>(o), "io_bps"), time_s_,
                    op_io_bps_[o].MeanAndReset());
    metrics_.Record(OperatorMetric(static_cast<int>(o), "net_bps"), time_s_,
                    op_net_bps_[o].MeanAndReset());
  }
  for (size_t w = 0; w < worker_cpu_util_.size(); ++w) {
    metrics_.Record(WorkerMetric(static_cast<int>(w), "cpu_util"), time_s_,
                    worker_cpu_util_[w].MeanAndReset());
    metrics_.Record(WorkerMetric(static_cast<int>(w), "io_util"), time_s_,
                    worker_io_util_[w].MeanAndReset());
    metrics_.Record(WorkerMetric(static_cast<int>(w), "net_util"), time_s_,
                    worker_net_util_[w].MeanAndReset());
    metrics_.Record(WorkerMetric(static_cast<int>(w), "cpu_used"), time_s_,
                    worker_cpu_used_[w].MeanAndReset());
    metrics_.Record(WorkerMetric(static_cast<int>(w), "io_bps"), time_s_,
                    worker_io_bps_[w].MeanAndReset());
    metrics_.Record(WorkerMetric(static_cast<int>(w), "net_bps"), time_s_,
                    worker_net_bps_[w].MeanAndReset());
  }
  metrics_.Record("query.throughput", time_s_, total_throughput_.MeanAndReset());
  metrics_.Record("query.backpressure", time_s_, total_backpressure_.MeanAndReset());
  metrics_.Record("query.latency", time_s_, latency_.MeanAndReset());
  metrics_.Record("query.sink_rate", time_s_, sink_rate_.MeanAndReset());
}

void FluidSimulator::RunFor(double seconds) {
  Span span("sim.run_for");
  int steps = static_cast<int>(std::llround(seconds / config_.tick_s));
  if (span.active()) {
    span.AddAttr("seconds", seconds);
    span.AddAttr("ticks", steps);
    span.AddAttr("sim_time_s", time_s_);
  }
  metrics_.GetCounter("sim.0.ticks").Add(static_cast<uint64_t>(std::max(steps, 0)));
  for (int i = 0; i < steps; ++i) {
    Step();
  }
}

QuerySummary FluidSimulator::RunMeasured(double warmup_s, double measure_s) {
  RunFor(warmup_s);
  double from = time_s_;
  RunFor(measure_s);
  FlushMetrics();
  return Summarize(from, time_s_);
}

QuerySummary FluidSimulator::Summarize(double from_s, double to_s) const {
  QuerySummary s;
  const TimeSeries* th = metrics_.Find("query.throughput");
  const TimeSeries* bp = metrics_.Find("query.backpressure");
  const TimeSeries* lat = metrics_.Find("query.latency");
  const TimeSeries* sink = metrics_.Find("query.sink_rate");
  if (th != nullptr) {
    s.throughput = th->MeanOver(from_s, to_s);
  }
  if (bp != nullptr) {
    s.backpressure = bp->MeanOver(from_s, to_s);
  }
  if (lat != nullptr) {
    s.latency_s = lat->MeanOver(from_s, to_s);
  }
  if (sink != nullptr) {
    s.sink_rate = sink->MeanOver(from_s, to_s);
  }
  for (WorkerId w = 0; w < cluster_.num_workers(); ++w) {
    ResourceVector util;
    util.cpu = metrics_.MeanSinceOr(WorkerMetric(w, "cpu_util"), from_s, 0.0);
    util.io = metrics_.MeanSinceOr(WorkerMetric(w, "io_util"), from_s, 0.0);
    util.net = metrics_.MeanSinceOr(WorkerMetric(w, "net_util"), from_s, 0.0);
    s.max_worker_utilization.cpu = std::max(s.max_worker_utilization.cpu, util.cpu);
    s.max_worker_utilization.io = std::max(s.max_worker_utilization.io, util.io);
    s.max_worker_utilization.net = std::max(s.max_worker_utilization.net, util.net);
  }
  return s;
}

double FluidSimulator::CorruptedMean(const std::string& name, const TimeSeries* ts,
                                     double from_s, double to_s) const {
  if (ts == nullptr) {
    return 0.0;
  }
  if (!corruption_.Active()) {
    return ts->MeanOver(from_s, to_s);
  }
  // Corrupted reads used to degrade silently; the structured events below put every
  // dropped/shifted window on the audit trail of what the controller actually saw.
  double event_t = telemetry_offset_s_ + time_s_;
  double shift = corruption_.staleness_s;
  if (shift > 0.0) {
    EmitMetricStale(event_t, name, shift);
  }
  if (corruption_.dropout_p > 0.0 && corruption_rng_.Bernoulli(corruption_.dropout_p)) {
    // The fresh window was lost; the read falls back to the previous flush interval.
    shift += config_.metrics_interval_s;
    ++pending_dropouts_;  // registry counter updated at the next flush (this path is const)
    EmitMetricDropout(event_t, name, shift);
  }
  double v = ts->MeanOver(from_s - shift, to_s - shift);
  if (corruption_.noise_frac > 0.0) {
    v *= std::max(0.0, 1.0 + corruption_rng_.Normal(0.0, corruption_.noise_frac));
  }
  return v;
}

double FluidSimulator::OperatorEmitRate(OperatorId op, double from_s, double to_s) const {
  std::string name = OperatorMetric(op, "emit_rate");
  return CorruptedMean(name, metrics_.Find(name), from_s, to_s);
}

double FluidSimulator::OperatorBackpressure(OperatorId op, double from_s, double to_s) const {
  std::string name = OperatorMetric(op, "backpressure");
  return CorruptedMean(name, metrics_.Find(name), from_s, to_s);
}

double FluidSimulator::OperatorInputRate(OperatorId op, double from_s, double to_s) const {
  std::string name = OperatorMetric(op, "in_rate");
  return CorruptedMean(name, metrics_.Find(name), from_s, to_s);
}

double FluidSimulator::OperatorOutputRate(OperatorId op, double from_s, double to_s) const {
  std::string name = OperatorMetric(op, "out_rate");
  return CorruptedMean(name, metrics_.Find(name), from_s, to_s);
}

double FluidSimulator::OperatorTrueRatePerTask(OperatorId op, double from_s, double to_s) const {
  double sum = 0.0;
  int n = 0;
  for (TaskId t : graph_.TasksOf(op)) {
    std::string name = TaskMetric(t, "true_rate");
    const TimeSeries* ts = metrics_.Find(name);
    if (ts != nullptr) {
      sum += CorruptedMean(name, ts, from_s, to_s);
      ++n;
    }
  }
  return n > 0 ? sum / n : 0.0;
}

}  // namespace capsys
