// Per-worker resource contention model.
//
// Given the tasks co-located on one worker and their desired processing rates, computes the
// rate each task can actually sustain this instant. Captures the three contention effects
// the paper's §3 study isolates:
//   - CPU: each task runs on one slot thread (<= 1 core); when aggregate CPU demand exceeds
//     the worker's cores, tasks share proportionally (OS processor sharing). Tasks with
//     GC-prone workloads (model inference) additionally interfere with each other when
//     co-located (§3.3 "co-locating compute-intensive tasks").
//   - Disk I/O: stateful tasks share the disk; co-locating k stateful tasks degrades the
//     effective bandwidth superlinearly due to compaction interference in the state backend
//     (§3.3 "co-locating I/O-intensive tasks").
//   - Network: only cross-worker traffic consumes the NIC; tasks share outbound bandwidth
//     proportionally when it saturates (§3.3 "co-locating network-intensive tasks").
#ifndef SRC_SIMULATOR_CONTENTION_H_
#define SRC_SIMULATOR_CONTENTION_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/types.h"

namespace capsys {

// Calibration constants of the contention model. Defaults were tuned so the §3 motivation
// experiments show the same relative gaps the paper reports.
struct ContentionParams {
  // Max CPU cores one slot thread can use.
  double cores_per_task = 1.0;
  // Compaction interference: effective disk bandwidth = B / (1 + beta_io * (k_stateful-1)).
  double beta_io = 0.25;
  // GC collision: co-located GC-prone tasks inflate each other's CPU cost.
  double gc_collide = 0.6;
  // Upper bound on the GC-induced CPU cost multiplier.
  double max_gc_multiplier = 2.5;
};

// Resource demand of one task on a worker, per processed record, plus how fast it wants to
// run right now.
struct TaskLoad {
  TaskId task = kInvalidId;
  double cpu_per_record = 0.0;      // CPU-seconds per input record
  double io_per_record = 0.0;       // state bytes per input record
  double net_per_record = 0.0;      // outbound *cross-worker* bytes per input record
  double desired_rate = 0.0;        // records/s the task wants to process this tick
  bool stateful = false;
  double gc_fraction = 0.0;         // GC-prone share of CPU work (0 for most operators)
};

// Result of the per-worker solve.
struct WorkerAllocation {
  // rate[i] <= loads[i].desired_rate: achievable processing rate for each task.
  std::vector<double> rate;
  // capacity_rate[i]: the rate task i could sustain if it demanded infinitely much, given
  // the other tasks' demands — the "true processing rate" DS2 consumes.
  std::vector<double> capacity_rate;
  // Effective CPU cost per record after GC-collision inflation (used to attribute actual
  // CPU usage to the records really processed).
  std::vector<double> effective_cpu_per_record;
  // Post-contention utilization of each resource dimension, in [0, 1].
  ResourceVector utilization;
  // Effective disk bandwidth after compaction interference.
  double effective_io_bandwidth = 0.0;
};

// Reusable scratch for SolveWorkerInPlace. Holding one per worker (or per thread) lets the
// simulator run the contention solve every tick with zero heap allocations once the
// vectors have grown to the worker's task count.
struct WorkerScratch {
  std::vector<double> cap;       // standalone per-task rate caps
  std::vector<double> io_cost;   // per-record disk bytes (copied for contiguous access)
  std::vector<double> net_cost;  // per-record cross-worker bytes
};

// Solves the proportional-share allocation for one worker. `loads` lists all tasks placed
// on the worker. Runs in O(|loads|) per resource.
WorkerAllocation SolveWorker(const WorkerSpec& spec, const ContentionParams& params,
                             const std::vector<TaskLoad>& loads);

// Arena variant: identical arithmetic, but writes into `out` and `scratch`, reusing their
// vectors instead of allocating. The per-tick hot path of FluidSimulator::Step.
void SolveWorkerInPlace(const WorkerSpec& spec, const ContentionParams& params,
                        const std::vector<TaskLoad>& loads, WorkerScratch& scratch,
                        WorkerAllocation& out);

}  // namespace capsys

#endif  // SRC_SIMULATOR_CONTENTION_H_
