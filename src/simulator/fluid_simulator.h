// Discrete-time fluid simulator of a placed streaming dataflow.
//
// Substitutes for the paper's Flink-on-EC2 testbed (see DESIGN.md). The engine advances in
// fixed ticks; each tick it (1) solves the per-worker contention allocation (contention.h),
// (2) moves records through bounded per-task input queues, and (3) throttles producers whose
// downstream queues are full — which is exactly how Flink's credit-based backpressure
// manifests at the measurement granularity of the paper (5 s samples).
//
// Reported metrics mirror the paper's: source throughput, backpressure fraction at the
// source, end-to-end latency estimate, per-worker utilization, and the per-task true/observed
// processing rates DS2 consumes.
#ifndef SRC_SIMULATOR_FLUID_SIMULATOR_H_
#define SRC_SIMULATOR_FLUID_SIMULATOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/common/thread_pool.h"
#include "src/dataflow/placement.h"
#include "src/dataflow/rates.h"
#include "src/metrics/metrics.h"
#include "src/simulator/contention.h"

namespace capsys {

// Corruption applied to the *controller-facing* metric reads (the Operator* accessors DS2
// and the recovery planner consume). Ground-truth summaries (Summarize/RunMeasured) are
// never corrupted — experiments still measure what actually happened. All fields off (0)
// means reads are exact.
struct MetricCorruption {
  double dropout_p = 0.0;    // a read loses its window w.p. dropout_p and sees an older one
  double staleness_s = 0.0;  // every read sees the window shifted this far into the past
  double noise_frac = 0.0;   // multiplicative noise: value *= max(0, 1 + N(0, noise_frac))

  bool Active() const { return dropout_p > 0.0 || staleness_s > 0.0 || noise_frac > 0.0; }
};

struct SimConfig {
  double tick_s = 0.1;
  // Buffer debloating stand-in: per-task queue capacity is `buffer_seconds` worth of the
  // task's target input rate, floored at `min_queue_records`.
  double buffer_seconds = 0.5;
  double min_queue_records = 64.0;
  // Interval at which metrics are flushed into the registry (paper records every 5 s).
  double metrics_interval_s = 5.0;
  // Mean source backpressure at flush time at/above which a BackpressureOnset event is
  // emitted (and below which a following BackpressureCleared is).
  double backpressure_onset_threshold = 0.5;
  // Threads for the per-worker contention solve (stage 2 of Step). Workers are solved
  // independently and each writes only its own slice of the per-task arrays, so any thread
  // count produces bit-identical results; 1 runs inline and is the zero-heap-allocation
  // steady-state mode (the pool hand-off itself allocates).
  int num_threads = 1;
  ContentionParams contention;
};

// Aggregate measurements over a time window (what Figures 2/3/7/8 plot per run).
struct QuerySummary {
  double throughput = 0.0;       // records/s emitted by all sources, mean over window
  double backpressure = 0.0;     // mean fraction of time sources were blocked, [0, 1]
  double latency_s = 0.0;        // mean end-to-end latency estimate
  double sink_rate = 0.0;        // records/s arriving at sinks
  ResourceVector max_worker_utilization;  // max over workers of mean utilization

  std::string ToString() const;
};

class FluidSimulator {
 public:
  FluidSimulator(const PhysicalGraph& graph, const Cluster& cluster, const Placement& placement,
                 SimConfig config = {});

  // Sets the target generation rate (records/s, aggregate over the operator's tasks) of one
  // source operator. Takes effect at the next tick.
  void SetSourceRate(OperatorId source_op, double records_per_s);
  // Sets the same target rate on every source operator.
  void SetAllSourceRates(double records_per_s);

  // Fault injection: a failed worker stops processing entirely (its tasks' queues freeze
  // and backpressure propagates to the sources, as when a TaskManager dies mid-run).
  void FailWorker(WorkerId w);
  void RestoreWorker(WorkerId w);
  bool IsWorkerFailed(WorkerId w) const { return failed_[static_cast<size_t>(w)]; }

  // Fault injection: a degraded worker processes at `factor` (0 < factor <= 1) of its
  // normal capacity — a transient slowdown/straggler (CPU throttling, noisy neighbour,
  // compaction storm). factor = 1 restores full speed.
  void DegradeWorker(WorkerId w, double factor);
  double WorkerDegradeFactor(WorkerId w) const { return degrade_[static_cast<size_t>(w)]; }

  // Checkpoint traffic: `bps` bytes/s of snapshot upload charged against the worker's disk
  // bandwidth — the tasks placed there see a smaller effective I/O budget while a
  // checkpoint is in flight, so checkpointing contends with compaction exactly as in the
  // paper's §3.3 I/O-contention study. 0 clears the charge.
  void SetWorkerCheckpointIoBps(WorkerId w, double bps);
  void ClearCheckpointIo();
  double WorkerCheckpointIoBps(WorkerId w) const {
    return checkpoint_io_bps_[static_cast<size_t>(w)];
  }

  // Fault injection: corrupts subsequent controller-facing metric reads (the Operator*
  // accessors below). `seed` makes dropout/noise deterministic.
  void SetMetricCorruption(const MetricCorruption& corruption, uint64_t seed);
  void ClearMetricCorruption() { corruption_ = MetricCorruption{}; }
  const MetricCorruption& metric_corruption() const { return corruption_; }

  // Advances the simulation.
  void Step();
  void RunFor(double seconds);

  // Offset added to this simulator's local clock when stamping telemetry (structured
  // events): a driver that replaces the runtime mid-run keeps event timestamps on its own
  // global timeline by passing global_time - local_time here.
  void SetTelemetryTimeOffset(double offset_s) { telemetry_offset_s_ = offset_s; }

  // Convenience: runs `warmup_s` unmeasured, then `measure_s`, and summarizes the
  // measurement window.
  QuerySummary RunMeasured(double warmup_s, double measure_s);

  // Summarizes the window [from_s, to_s] from recorded metrics.
  QuerySummary Summarize(double from_s, double to_s) const;

  // Mean emitted records/s of one operator's tasks over [from_s, to_s]. For source
  // operators this is the per-query throughput used by the multi-tenant experiment.
  double OperatorEmitRate(OperatorId op, double from_s, double to_s) const;
  // Mean backpressure of one source operator over [from_s, to_s].
  double OperatorBackpressure(OperatorId op, double from_s, double to_s) const;
  // Mean records/s processed (input) and emitted (output) by an operator over the window.
  double OperatorInputRate(OperatorId op, double from_s, double to_s) const;
  double OperatorOutputRate(OperatorId op, double from_s, double to_s) const;
  // Mean per-task true processing rate (capacity under current contention) of an
  // operator's tasks over the window — the metric DS2 consumes.
  double OperatorTrueRatePerTask(OperatorId op, double from_s, double to_s) const;

  double time_s() const { return time_s_; }
  const MetricsRegistry& metrics() const { return metrics_; }
  const PhysicalGraph& graph() const { return graph_; }
  const Cluster& cluster() const { return cluster_; }
  const Placement& placement() const { return placement_; }

  // Current queue length (records) of a task; exposed for tests.
  double QueueLength(TaskId t) const { return queue_[static_cast<size_t>(t)]; }

 private:
  void RebuildStatics();
  void FlushMetrics();
  // Applies the active metric corruption to a controller-facing windowed read of the named
  // series, emitting MetricDropout/MetricStale events so chaos runs can audit what the
  // controller actually saw.
  double CorruptedMean(const std::string& name, const TimeSeries* ts, double from_s,
                       double to_s) const;

  PhysicalGraph graph_;
  Cluster cluster_;
  Placement placement_;
  SimConfig config_;
  MetricsRegistry metrics_;

  double time_s_ = 0.0;
  std::map<OperatorId, double> source_rates_;

  // Per-task dynamic state.
  std::vector<double> queue_;           // records waiting
  std::vector<double> queue_capacity_;  // records
  std::vector<uint8_t> is_source_;      // byte-sized: read in every per-task tick loop
  std::vector<bool> failed_;            // per worker
  std::vector<double> degrade_;         // per worker capacity factor, 1.0 = healthy
  std::vector<double> checkpoint_io_bps_;  // per worker snapshot-upload traffic
  MetricCorruption corruption_;
  mutable Rng corruption_rng_{0};       // consumed only while corruption is active
  mutable uint64_t pending_dropouts_ = 0;  // dropouts hit since the last flush

  // Per-task static routing info.
  std::vector<std::vector<TaskId>> down_tasks_;  // distinct downstream tasks (via channels)
  std::vector<double> remote_fraction_;          // |Dr|/|D| under placement_
  std::vector<std::vector<size_t>> worker_tasks_;  // task indices per worker

  // Static per-task costs, rebuilt by RebuildStatics(). Step() reads these arrays instead
  // of chasing graph_.logical().op(...) records every tick.
  std::vector<OperatorId> task_op_;
  std::vector<double> task_selectivity_;
  std::vector<double> task_io_cost_;    // state bytes per processed record
  std::vector<double> task_net_cost_;   // cross-worker bytes per record under placement_
  std::vector<double> task_out_cost_;   // full emitted bytes per record
  std::vector<double> source_task_rate_;  // per-task target rate; 0 for non-source tasks
  double total_target_rate_ = 0.0;        // sum of source_rates_
  int num_source_tasks_ = 0;

  // Per-worker solver arenas: loads_ carries the static TaskLoad fields (only desired_rate
  // changes per tick); alloc_/scratch_ are reused by SolveWorkerInPlace. Together with the
  // per-tick scratch below, a warmed Step() performs no heap allocation.
  std::vector<std::vector<TaskLoad>> worker_loads_;
  std::vector<WorkerAllocation> worker_alloc_;
  std::vector<WorkerScratch> worker_scratch_;
  std::unique_ptr<ThreadPool> pool_;  // created only when config_.num_threads > 1

  // Per-tick scratch, sized once in RebuildStatics().
  std::vector<double> desired_;
  std::vector<double> rate_cap_;       // achievable processing rate this tick
  std::vector<double> true_rate_;      // capacity under current contention
  std::vector<double> eff_cpu_cost_;   // post-GC CPU-seconds per record
  std::vector<double> eff_io_bw_;      // per worker
  std::vector<double> proc_raw_;
  std::vector<double> claim_total_;
  std::vector<double> accept_;
  std::vector<double> emit_factor_;
  std::vector<double> enqueue_;
  std::vector<double> processed_rate_;
  std::vector<double> op_cpu_scratch_;
  std::vector<double> op_io_scratch_;
  std::vector<double> op_net_scratch_;

  // Metric accumulators between flushes.
  struct Accum {
    double sum = 0.0;
    double count = 0.0;
    void Add(double v) {
      sum += v;
      ++count;
    }
    double MeanAndReset() {
      double m = count > 0 ? sum / count : 0.0;
      sum = 0.0;
      count = 0.0;
      return m;
    }
  };
  std::vector<Accum> task_true_rate_;
  std::vector<Accum> task_observed_rate_;
  std::vector<Accum> op_emit_rate_;
  std::vector<Accum> op_backpressure_;
  std::vector<Accum> op_in_rate_;   // records/s processed by the operator's tasks
  std::vector<Accum> op_out_rate_;  // records/s emitted by the operator's tasks
  std::vector<double> op_in_sum_;    // per-tick scratch
  std::vector<double> op_out_sum_;   // per-tick scratch
  std::vector<double> op_emit_sum_;  // per-tick scratch (source ops)
  std::vector<double> op_bp_sum_;    // per-tick scratch (source ops)
  // Per-operator resource usage (CPU-seconds/s, bytes/s) — enables online cost profiling.
  std::vector<Accum> op_cpu_used_;
  std::vector<Accum> op_io_bps_;
  std::vector<Accum> op_net_bps_;
  std::vector<int> op_source_tasks_;  // number of source tasks per op (0 for non-sources)
  std::vector<Accum> worker_cpu_util_;
  std::vector<Accum> worker_io_util_;
  std::vector<Accum> worker_net_util_;
  // Absolute usage (CPU-seconds/s, bytes/s) — what the cost profiler normalizes by rate.
  std::vector<Accum> worker_cpu_used_;
  std::vector<Accum> worker_io_bps_;
  std::vector<Accum> worker_net_bps_;
  Accum total_throughput_;
  Accum total_backpressure_;
  Accum latency_;
  Accum sink_rate_;
  double last_flush_s_ = 0.0;
  double telemetry_offset_s_ = 0.0;
  bool backpressure_episode_ = false;  // currently above the onset threshold
};

}  // namespace capsys

#endif  // SRC_SIMULATOR_FLUID_SIMULATOR_H_
