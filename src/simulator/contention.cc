#include "src/simulator/contention.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"

namespace capsys {
namespace {

constexpr double kEps = 1e-12;

}  // namespace

void SolveWorkerInPlace(const WorkerSpec& spec, const ContentionParams& params,
                        const std::vector<TaskLoad>& loads, WorkerScratch& scratch,
                        WorkerAllocation& out) {
  size_t n = loads.size();
  // Every element is overwritten below, so resize (no zero-fill) is enough.
  out.rate.resize(n);
  out.capacity_rate.resize(n);
  out.effective_cpu_per_record.resize(n);
  out.utilization = ResourceVector{};
  if (n == 0) {
    out.effective_io_bandwidth = spec.io_bandwidth_bps;
    return;
  }

  // --- Interference pre-pass -------------------------------------------------------------
  int num_stateful = 0;
  int num_gc = 0;
  for (const auto& l : loads) {
    if (l.stateful && l.io_per_record > 0.0) {
      ++num_stateful;
    }
    if (l.gc_fraction > 0.0) {
      ++num_gc;
    }
  }
  // Compaction interference shrinks the disk bandwidth every stateful task shares.
  double io_bandwidth =
      spec.io_bandwidth_bps / (1.0 + params.beta_io * std::max(0, num_stateful - 1));
  out.effective_io_bandwidth = io_bandwidth;

  // GC collisions inflate the CPU cost of GC-prone tasks when several share the worker.
  std::vector<double>& cpu_per_record = out.effective_cpu_per_record;
  for (size_t i = 0; i < n; ++i) {
    double mult = 1.0;
    if (loads[i].gc_fraction > 0.0) {
      mult = 1.0 + loads[i].gc_fraction * (1.0 + params.gc_collide * (num_gc - 1));
      mult = std::min(mult, params.max_gc_multiplier);
    }
    cpu_per_record[i] = loads[i].cpu_per_record * mult;
  }

  // --- Standalone per-task caps (one slot == one thread) ---------------------------------
  std::vector<double>& cap = scratch.cap;
  cap.resize(n);
  for (size_t i = 0; i < n; ++i) {
    double c = loads[i].desired_rate;
    if (cpu_per_record[i] > kEps) {
      c = std::min(c, params.cores_per_task / cpu_per_record[i]);
    }
    if (loads[i].io_per_record > kEps) {
      c = std::min(c, io_bandwidth / loads[i].io_per_record);
    }
    if (loads[i].net_per_record > kEps) {
      c = std::min(c, spec.net_bandwidth_bps / loads[i].net_per_record);
    }
    cap[i] = std::max(0.0, c);
  }

  // --- Proportional-share scaling, one pass per resource ---------------------------------
  // Scaling down only ever reduces the other resources' totals, so a single sequential pass
  // yields a feasible allocation.
  struct Dim {
    double capacity;
    const double* cost;  // per-record cost array (indexed like loads)
  };
  std::vector<double>& io_cost = scratch.io_cost;
  std::vector<double>& net_cost = scratch.net_cost;
  io_cost.resize(n);
  net_cost.resize(n);
  for (size_t i = 0; i < n; ++i) {
    io_cost[i] = loads[i].io_per_record;
    net_cost[i] = loads[i].net_per_record;
  }
  const Dim dims[3] = {
      {spec.cpu_capacity, cpu_per_record.data()},
      {io_bandwidth, io_cost.data()},
      {spec.net_bandwidth_bps, net_cost.data()},
  };

  std::vector<double>& rate = out.rate;
  rate = cap;  // same sizes: element-wise copy, no reallocation
  double factors[3] = {1.0, 1.0, 1.0};
  for (int d = 0; d < 3; ++d) {
    double total = 0.0;
    for (size_t i = 0; i < n; ++i) {
      total += rate[i] * dims[d].cost[i];
    }
    if (total > dims[d].capacity + kEps) {
      double factor = dims[d].capacity / total;
      factors[d] = factor;
      for (size_t i = 0; i < n; ++i) {
        if (dims[d].cost[i] > kEps) {
          rate[i] *= factor;
        }
      }
    }
  }

  // --- Capacity rates ("true rate" under current contention) -----------------------------
  // A task demanding infinite work would get its standalone cap times the contention scale
  // factors of the resources it actually uses.
  for (size_t i = 0; i < n; ++i) {
    double c = 1e18;
    if (cpu_per_record[i] > kEps) {
      c = std::min(c, params.cores_per_task / cpu_per_record[i] * factors[0]);
    }
    if (io_cost[i] > kEps) {
      c = std::min(c, io_bandwidth / io_cost[i] * factors[1]);
    }
    if (net_cost[i] > kEps) {
      c = std::min(c, spec.net_bandwidth_bps / net_cost[i] * factors[2]);
    }
    if (c >= 1e18) {  // zero-cost task: unbounded
      c = 1e18;
    }
    out.capacity_rate[i] = c;
  }

  // --- Utilization (from allocated rates; callers with actual processed amounts should
  // recompute usage via effective_cpu_per_record) ------------------------------------------
  double used[3] = {0.0, 0.0, 0.0};
  for (size_t i = 0; i < n; ++i) {
    used[0] += rate[i] * cpu_per_record[i];
    used[1] += rate[i] * io_cost[i];
    used[2] += rate[i] * net_cost[i];
  }
  out.utilization.cpu = spec.cpu_capacity > kEps ? used[0] / spec.cpu_capacity : 0.0;
  out.utilization.io = io_bandwidth > kEps ? used[1] / io_bandwidth : 0.0;
  out.utilization.net = spec.net_bandwidth_bps > kEps ? used[2] / spec.net_bandwidth_bps : 0.0;
}

WorkerAllocation SolveWorker(const WorkerSpec& spec, const ContentionParams& params,
                             const std::vector<TaskLoad>& loads) {
  WorkerScratch scratch;
  WorkerAllocation out;
  SolveWorkerInPlace(spec, params, loads, scratch, out);
  return out;
}

}  // namespace capsys
