// Versioned cluster view shared by the online placement service (scheduler subsystem).
//
// The view owns the authoritative slot accounting of one shared cluster while several
// planner threads compute placements concurrently. Planners never lock the view for the
// duration of a search: they take an immutable Snapshot (epoch + per-worker free slots +
// usable mask), plan against it, and then commit their reservation optimistically:
//
//   - kCommitted        epoch unchanged since the snapshot — the plan's assumptions hold
//                       verbatim and the reservation is applied; the epoch is bumped.
//   - kCommittedStale   the epoch moved, but re-validation under the lock shows the
//                       reservation still fits the current free slots of usable workers
//                       (another job's commit did not intersect ours). Applied; epoch
//                       bumped. Enabled by default; strict-epoch mode turns it off.
//   - kConflict         the reservation no longer fits — the planner must take a fresh
//                       snapshot and re-plan (with backoff; see PlacementService).
//
// Every mutation (commit, release, worker death/restore, spec change) bumps the epoch, so
// an epoch value uniquely identifies one slot-accounting state. Two epochs with identical
// CapacitySignature() are interchangeable for planning purposes — the plan cache keys on
// the signature for exactly that reason.
#ifndef SRC_SCHEDULER_CLUSTER_VIEW_H_
#define SRC_SCHEDULER_CLUSTER_VIEW_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/types.h"

namespace capsys {

using JobId = int64_t;
inline constexpr JobId kInvalidJobId = -1;

// Slots reserved on each worker by one job: reservation[w] = tasks of the job on worker w.
using SlotReservation = std::vector<int>;

// Immutable view of the slot accounting at one epoch.
struct ClusterSnapshot {
  uint64_t epoch = 0;
  std::vector<int> free_slots;   // per worker; 0 for unusable workers
  std::vector<bool> usable;      // worker up and not excluded
  int total_free = 0;

  // Residual cluster for planning: same workers (same global WorkerIds and capacities),
  // slots clamped to the free count. Unusable workers keep 0 slots.
  Cluster ResidualCluster(const Cluster& full) const;

  // Canonical free/usable string ("f3u f0d ..."): equal signatures mean planners see
  // interchangeable clusters. The plan cache keys on this.
  std::string Signature() const;
};

enum class CommitResult : int {
  kCommitted = 0,     // epoch matched; reservation applied
  kCommittedStale,    // epoch moved but the reservation re-validated; applied
  kConflict,          // reservation no longer fits; re-plan required
};

const char* CommitResultName(CommitResult result);

class ClusterView {
 public:
  explicit ClusterView(Cluster cluster);

  const Cluster& cluster() const { return cluster_; }
  int num_workers() const { return cluster_.num_workers(); }

  uint64_t epoch() const;
  ClusterSnapshot Snapshot() const;
  // Snapshot as seen by `job`'s planner: the job's own held slots count as free (the
  // commit is a make-before-break swap, so a rescale/recovery replan may reuse them).
  ClusterSnapshot SnapshotFor(JobId job) const;

  // Commits `reservation` for `job`, releasing whatever the job had reserved before
  // (make-before-break swap, so rescales and recovery replans are atomic). When
  // `allow_stale` is false, any epoch advance since `snapshot_epoch` is a kConflict even if
  // the reservation would still fit (strict optimistic concurrency).
  CommitResult TryCommit(JobId job, uint64_t snapshot_epoch, const SlotReservation& reservation,
                         bool allow_stale = true);

  // Releases everything `job` has reserved. No-op (returns false) when nothing is held.
  bool Release(JobId job);

  // Marks a worker unusable. The per-job slots reserved on that worker are dropped from the
  // accounting (the tasks are gone with the worker); returns job -> slots lost on `w` for
  // the jobs that were touching it, so the caller can drive their recovery.
  std::map<JobId, int> MarkWorkerDown(WorkerId w);
  // Marks a worker usable again, making its slots available to planners.
  void MarkWorkerUp(WorkerId w);
  bool IsWorkerUsable(WorkerId w) const;

  // Aggregate capacity of usable workers minus nothing (specs are static): the admission
  // ceiling. free variant subtracts committed reservations' slot counts only; resource
  // demand accounting lives in the PlacementService (it knows per-job demand vectors).
  int TotalSlots() const;        // usable workers only
  int TotalFreeSlots() const;
  ResourceVector TotalCapacity() const;  // cpu cores / io bps / net bps of usable workers

  // Reservation currently held by `job` (empty vector if none).
  SlotReservation ReservationOf(JobId job) const;

  // Signature of the current state (Snapshot().Signature()).
  std::string CapacitySignature() const;

  // Checks the internal invariants: per-worker reserved slots equal the sum of job
  // reservations, no worker over its slot count, no reservation on an unusable worker.
  // Returns an error description or "" when consistent.
  std::string CheckInvariants() const;

  uint64_t commits() const;
  uint64_t stale_commits() const;
  uint64_t conflicts() const;

 private:
  // Requires mu_ held.
  bool FitsLocked(const SlotReservation& reservation, JobId ignore_job) const;

  Cluster cluster_;
  mutable std::mutex mu_;
  uint64_t epoch_ = 1;
  std::vector<int> reserved_;  // per worker, summed over jobs
  std::vector<bool> usable_;
  std::map<JobId, SlotReservation> by_job_;
  uint64_t commits_ = 0;
  uint64_t stale_commits_ = 0;
  uint64_t conflicts_ = 0;
};

}  // namespace capsys

#endif  // SRC_SCHEDULER_CLUSTER_VIEW_H_
