#include "src/scheduler/plan_cache.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "src/common/str.h"

namespace capsys {

namespace {

inline void HashMix(uint64_t& h, uint64_t v) {
  // FNV-1a over the 8 bytes of v.
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xff;
    h *= 1099511628211ULL;
  }
}

inline void HashDouble(uint64_t& h, double v) {
  // Quantize to ~9 significant digits so bit-level noise in profiled costs does not split
  // otherwise-identical jobs across cache entries.
  double q = v == 0.0 ? 0.0 : std::round(v * 1e9) / 1e9;
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(q));
  std::memcpy(&bits, &q, sizeof(bits));
  HashMix(h, bits);
}

}  // namespace

uint64_t JobGraphFingerprint(const LogicalGraph& graph,
                             const std::map<OperatorId, double>& source_rates) {
  uint64_t h = 1469598103934665603ULL;  // FNV offset basis
  HashMix(h, static_cast<uint64_t>(graph.num_operators()));
  for (const auto& op : graph.operators()) {
    HashMix(h, static_cast<uint64_t>(op.kind));
    HashMix(h, static_cast<uint64_t>(op.parallelism));
    HashDouble(h, op.profile.cpu_per_record);
    HashDouble(h, op.profile.io_bytes_per_record);
    HashDouble(h, op.profile.out_bytes_per_record);
    HashDouble(h, op.profile.selectivity);
    HashDouble(h, op.profile.gc_spike_fraction);
    HashMix(h, op.profile.stateful ? 1 : 0);
  }
  for (const auto& e : graph.edges()) {
    HashMix(h, static_cast<uint64_t>(e.from));
    HashMix(h, static_cast<uint64_t>(e.to));
    HashMix(h, static_cast<uint64_t>(e.scheme));
  }
  // Relative rates only: normalize by the largest source rate so uniformly scaled
  // submissions share a fingerprint (cost vectors are scale-invariant).
  double max_rate = 0.0;
  for (const auto& [op, r] : source_rates) {
    max_rate = std::max(max_rate, r);
  }
  for (const auto& [op, r] : source_rates) {
    HashMix(h, static_cast<uint64_t>(op));
    HashDouble(h, max_rate > 0.0 ? r / max_rate : 0.0);
  }
  return h;
}

std::string BottleneckSignature(const std::vector<ResourceVector>& demands,
                                const Cluster& reference) {
  ResourceVector total;
  for (const auto& d : demands) {
    total += d;
  }
  const WorkerSpec& spec = reference.num_workers() > 0 ? reference.worker(0).spec
                                                       : WorkerSpec{};
  ResourceVector util{total.cpu / std::max(1e-12, spec.cpu_capacity),
                      total.io / std::max(1e-12, spec.io_bandwidth_bps),
                      total.net / std::max(1e-12, spec.net_bandwidth_bps)};
  double max_util = std::max(1e-12, util.Max());
  // Three decimal places is coarse enough for profiling noise, fine enough to separate
  // genuinely different load shapes.
  return Sprintf("cpu=%.3f io=%.3f net=%.3f", util.cpu / max_util, util.io / max_util,
                 util.net / max_util);
}

std::string PlanCache::MakeKey(uint64_t fingerprint, const std::string& capacity_signature,
                               const std::string& bottleneck_signature) {
  return Sprintf("%016llx|%s|%s", static_cast<unsigned long long>(fingerprint),
                 capacity_signature.c_str(), bottleneck_signature.c_str());
}

std::optional<CachedPlan> PlanCache::Lookup(const std::string& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.erase(it->second.lru_it);
  lru_.push_front(key);
  it->second.lru_it = lru_.begin();
  return it->second.plan;
}

void PlanCache::Insert(const std::string& key, CachedPlan plan) {
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    it->second.plan = std::move(plan);
    lru_.erase(it->second.lru_it);
    lru_.push_front(key);
    it->second.lru_it = lru_.begin();
    return;
  }
  while (entries_.size() >= capacity_ && !lru_.empty()) {
    entries_.erase(lru_.back());
    lru_.pop_back();
  }
  lru_.push_front(key);
  entries_[key] = Entry{std::move(plan), lru_.begin()};
}

void PlanCache::Clear() {
  entries_.clear();
  lru_.clear();
}

size_t PlanCache::EvictOlderThan(uint64_t epoch) {
  size_t evicted = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->second.plan.epoch < epoch) {
      lru_.erase(it->second.lru_it);
      it = entries_.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  return evicted;
}

}  // namespace capsys
