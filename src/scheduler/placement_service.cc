#include "src/scheduler/placement_service.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <utility>

#include "src/caps/greedy.h"
#include "src/caps/search.h"
#include "src/checkpoint/recovery_model.h"
#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/dataflow/rates.h"
#include "src/obs/events.h"
#include "src/obs/trace.h"

namespace capsys {

namespace {

// Predicted bottleneck utilization of a plan (same scalarization the batch controller uses
// to pick among pareto-optimal plans; see controller/deployment.cc).
double MaxUtilization(const CostModel& model, const Cluster& cluster, const Placement& plan) {
  auto loads = model.WorkerLoads(plan);
  double worst = 0.0;
  for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
    const auto& spec = cluster.worker(w).spec;
    const auto& l = loads[static_cast<size_t>(w)];
    worst = std::max({worst, l.cpu / std::max(1e-12, spec.cpu_capacity),
                      l.io / std::max(1e-12, spec.io_bandwidth_bps),
                      l.net / std::max(1e-12, spec.net_bandwidth_bps)});
  }
  return worst;
}

SlotReservation ReservationFromPlacement(const Placement& plan, int num_workers) {
  SlotReservation counts(static_cast<size_t>(num_workers), 0);
  for (TaskId t = 0; t < plan.num_tasks(); ++t) {
    ++counts[static_cast<size_t>(plan.WorkerOf(t))];
  }
  return counts;
}

// Shrinks parallelism until the graph fits `free_slots` total slots, leaving operators
// that touch forward edges untouched (CAPS requires forward endpoints at parallelism 1,
// so they are already minimal). Largest operator first, so degradation spreads evenly.
// Returns false when even the floor does not fit.
bool DownscaleToFit(LogicalGraph& graph, int free_slots, int* reductions) {
  std::vector<bool> scalable(static_cast<size_t>(graph.num_operators()), true);
  for (const auto& e : graph.edges()) {
    if (e.scheme == PartitionScheme::kForward) {
      scalable[static_cast<size_t>(e.from)] = false;
      scalable[static_cast<size_t>(e.to)] = false;
    }
  }
  while (graph.total_parallelism() > free_slots) {
    OperatorId widest = kInvalidId;
    int widest_p = 1;
    for (const auto& op : graph.operators()) {
      if (scalable[static_cast<size_t>(op.id)] && op.parallelism > widest_p) {
        widest = op.id;
        widest_p = op.parallelism;
      }
    }
    if (widest == kInvalidId) {
      return false;  // everything at the floor and it still does not fit
    }
    graph.SetParallelism(widest, widest_p - 1);
    ++(*reductions);
  }
  return true;
}

}  // namespace

// One queue entry. Client calls and planner completions use the same queue, so every job
// mutation is serialized through the dispatcher.
struct PlacementService::EventItem {
  enum class Kind : int {
    kSubmit = 0,
    kCancel,
    kRescale,
    kWorkerDead,
    kWorkerRestored,
    kPlanCommitted,
    kPlanFailed,
  };
  Kind kind = Kind::kSubmit;
  JobId job = kInvalidJobId;
  WorkerId worker = kInvalidId;
  std::vector<int> parallelism;               // kRescale
  std::unique_ptr<PlanOutcome> plan;          // kPlanCommitted / kPlanFailed
};

// Everything a planner produced, posted back to the dispatcher.
struct PlacementService::PlanOutcome {
  enum class Fail : int { kNone = 0, kNoCapacity, kCancelled };
  Fail fail = Fail::kNone;
  Placement placement;
  SlotReservation reservation;
  std::vector<int> parallelism;
  ResourceVector alpha;
  ResourceVector plan_cost;
  bool from_cache = false;
  bool degraded = false;
  bool recovering = false;
  int attempts = 0;
  int conflicts = 0;
  int downscale_steps = 0;
  double planning_time_s = 0.0;
  CommitResult commit = CommitResult::kCommitted;
};

// Immutable inputs a planner task works from (copied at spawn time so the dispatcher can
// keep mutating the job record without racing the planner).
struct PlacementService::PlanRequest {
  JobId job = kInvalidJobId;
  LogicalGraph graph;
  std::map<OperatorId, double> source_rates;
  bool recovering = false;
  bool allow_degraded = false;
  std::atomic<bool>* cancelled = nullptr;  // owned by the JobRecord, never destroyed early
};

struct PlacementService::JobRecord {
  JobId id = kInvalidJobId;
  JobSpec spec;
  LogicalGraph graph;  // current (possibly rescaled/degraded) parallelism
  JobState state = JobState::kSubmitted;
  AdmissionOutcome admission = AdmissionOutcome::kAdmitted;
  ResourceVector demand;
  bool demand_accounted = false;  // counted in admitted_demand_
  int tasks = 0;
  std::atomic<bool> cancelled{false};
  JobStatus status;  // placement/alpha/cost + counters; state fields mirrored on read
};

std::string SchedulerStats::ToString() const {
  return Sprintf(
      "submitted=%llu admitted=%llu queued=%llu rejected=%llu cancelled=%llu "
      "plans=%llu cached=%llu conflicts=%llu stale=%llu recoveries=%llu downscales=%llu "
      "cache=%llu/%llu epoch=%llu",
      static_cast<unsigned long long>(submitted), static_cast<unsigned long long>(admitted),
      static_cast<unsigned long long>(queued), static_cast<unsigned long long>(rejected),
      static_cast<unsigned long long>(cancelled),
      static_cast<unsigned long long>(plans_committed),
      static_cast<unsigned long long>(plans_from_cache),
      static_cast<unsigned long long>(commit_conflicts),
      static_cast<unsigned long long>(stale_commits),
      static_cast<unsigned long long>(recoveries),
      static_cast<unsigned long long>(downscales), static_cast<unsigned long long>(cache_hits),
      static_cast<unsigned long long>(cache_misses), static_cast<unsigned long long>(epoch));
}

PlacementService::PlacementService(Cluster cluster, SchedulerOptions options)
    : cluster_(std::move(cluster)),
      options_(options),
      view_(cluster_),
      cache_(options.plan_cache_capacity),
      planner_pool_(std::make_unique<ThreadPool>(std::max(1, options.planner_threads))),
      start_(std::chrono::steady_clock::now()) {
  dispatcher_ = std::thread([this] { DispatcherLoop(); });
}

PlacementService::~PlacementService() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  // Let in-flight planners finish and post their results (they only enqueue; they never
  // wait on the dispatcher), then drain the queue and stop.
  planner_pool_->Wait();
  queue_cv_.notify_all();
  if (dispatcher_.joinable()) {
    dispatcher_.join();
  }
  planner_pool_.reset();
}

double PlacementService::NowS() const {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
}

void PlacementService::Enqueue(EventItem item) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(item));
  }
  queue_cv_.notify_one();
}

JobId PlacementService::Submit(JobSpec spec) {
  EventItem ev;
  ev.kind = EventItem::Kind::kSubmit;
  JobId id = kInvalidJobId;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) {
      return kInvalidJobId;
    }
    id = next_job_id_++;
    auto rec = std::make_unique<JobRecord>();
    rec->id = id;
    rec->spec = std::move(spec);
    rec->graph = rec->spec.graph;
    rec->status.id = id;
    rec->status.name = rec->spec.name;
    rec->status.submit_time_s = NowS();
    jobs_[id] = std::move(rec);
    ++stats_.submitted;
    ev.job = id;
    queue_.push_back(std::move(ev));
  }
  queue_cv_.notify_one();
  return id;
}

void PlacementService::Cancel(JobId job) {
  EventItem ev;
  ev.kind = EventItem::Kind::kCancel;
  ev.job = job;
  Enqueue(std::move(ev));
}

void PlacementService::Rescale(JobId job, std::vector<int> parallelism) {
  EventItem ev;
  ev.kind = EventItem::Kind::kRescale;
  ev.job = job;
  ev.parallelism = std::move(parallelism);
  Enqueue(std::move(ev));
}

void PlacementService::OnWorkerDead(WorkerId w) {
  EventItem ev;
  ev.kind = EventItem::Kind::kWorkerDead;
  ev.worker = w;
  Enqueue(std::move(ev));
}

void PlacementService::OnWorkerRestored(WorkerId w) {
  EventItem ev;
  ev.kind = EventItem::Kind::kWorkerRestored;
  ev.worker = w;
  Enqueue(std::move(ev));
}

void PlacementService::OnFailureDetectorVerdicts(const std::vector<WorkerId>& newly_dead) {
  for (WorkerId w : newly_dead) {
    OnWorkerDead(w);
  }
}

void PlacementService::DispatcherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (true) {
    queue_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
    if (queue_.empty()) {
      if (stopping_ && planners_in_flight_ == 0) {
        break;
      }
      if (stopping_) {
        // Planners still running will post results; wait for them.
        queue_cv_.wait_for(lock, std::chrono::milliseconds(5));
      }
      continue;
    }
    EventItem ev = std::move(queue_.front());
    queue_.pop_front();
    switch (ev.kind) {
      case EventItem::Kind::kSubmit:
        HandleSubmit(ev.job);
        break;
      case EventItem::Kind::kCancel:
        HandleCancel(ev.job);
        break;
      case EventItem::Kind::kRescale:
        HandleRescale(ev.job, std::move(ev.parallelism));
        break;
      case EventItem::Kind::kWorkerDead:
        HandleWorkerDead(ev.worker);
        break;
      case EventItem::Kind::kWorkerRestored:
        HandleWorkerRestored(ev.worker);
        break;
      case EventItem::Kind::kPlanCommitted:
        HandlePlanCommitted(ev.job, std::move(*ev.plan));
        break;
      case EventItem::Kind::kPlanFailed:
        HandlePlanFailed(ev.job, std::move(*ev.plan));
        break;
    }
    idle_cv_.notify_all();
  }
}

void PlacementService::Transition(JobRecord& rec, JobState to, const std::string& detail) {
  JobState from = rec.state;
  rec.state = to;
  rec.status.state = to;
  rec.status.detail = detail;
  EmitJobStateChanged(EventLog::Global().now(), rec.id, JobStateName(from), JobStateName(to),
                      detail);
  CAPSYS_LOG_DEBUG("scheduler", Sprintf("job %lld %s -> %s: %s",
                                        static_cast<long long>(rec.id), JobStateName(from),
                                        JobStateName(to), detail.c_str()));
}

AdmissionOutcome PlacementService::AdmitLocked(JobRecord& rec) {
  ResourceVector ceiling = view_.TotalCapacity() * options_.admission_headroom;
  if (rec.tasks > view_.TotalSlots() || !rec.demand.AllLeq(ceiling)) {
    return AdmissionOutcome::kRejectedCapacity;
  }
  if (rec.tasks > view_.TotalFreeSlots() ||
      !(admitted_demand_ + rec.demand).AllLeq(ceiling)) {
    return AdmissionOutcome::kQueuedCapacity;
  }
  return AdmissionOutcome::kAdmitted;
}

void PlacementService::HandleSubmit(JobId job) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return;
  }
  JobRecord& rec = *it->second;
  if (rec.cancelled.load()) {
    Transition(rec, JobState::kTerminated, "cancelled before admission");
    return;
  }
  std::string graph_error =
      rec.graph.num_operators() == 0 ? "empty graph" : rec.graph.Validate();
  if (!graph_error.empty()) {
    rec.admission = AdmissionOutcome::kRejectedInvalid;
    rec.status.admission = rec.admission;
    ++stats_.rejected;
    EmitAdmissionDecision(EventLog::Global().now(), job,
                          AdmissionOutcomeName(rec.admission), 0, view_.TotalFreeSlots());
    Transition(rec, JobState::kRejected, "invalid spec: " + graph_error);
    return;
  }
  // Demand estimate from the cost model's task demands (Table 1 of the paper): aggregate
  // cpu-seconds/s, io bytes/s, net bytes/s at the declared profiles and target rates.
  PhysicalGraph physical = PhysicalGraph::Expand(rec.graph);
  auto rates = PropagateRates(rec.graph, rec.spec.source_rates);
  auto demands = TaskDemands(physical, rates);
  rec.demand = ResourceVector{};
  for (const auto& d : demands) {
    rec.demand += d;
  }
  rec.tasks = physical.num_tasks();
  rec.status.demand = rec.demand;
  rec.status.tasks = rec.tasks;

  AdmissionOutcome verdict = AdmitLocked(rec);
  if (verdict == AdmissionOutcome::kQueuedCapacity &&
      admission_queue_.size() >= static_cast<size_t>(options_.max_queued_jobs)) {
    verdict = AdmissionOutcome::kRejectedCapacity;
  }
  rec.admission = verdict;
  rec.status.admission = verdict;
  EmitAdmissionDecision(EventLog::Global().now(), job, AdmissionOutcomeName(verdict),
                        rec.tasks, view_.TotalFreeSlots());
  switch (verdict) {
    case AdmissionOutcome::kAdmitted:
      ++stats_.admitted;
      admitted_demand_ += rec.demand;
      rec.demand_accounted = true;
      Transition(rec, JobState::kPlanning, "admitted");
      SpawnPlanner(rec, /*recovering=*/false);
      break;
    case AdmissionOutcome::kQueuedCapacity:
      ++stats_.queued;
      admission_queue_.push_back(job);
      Transition(rec, JobState::kQueued,
                 Sprintf("%d tasks > %d free slots", rec.tasks, view_.TotalFreeSlots()));
      break;
    case AdmissionOutcome::kRejectedCapacity:
      ++stats_.rejected;
      Transition(rec, JobState::kRejected,
                 Sprintf("needs %d tasks / %s, cluster has %d usable slots", rec.tasks,
                         rec.demand.ToString().c_str(), view_.TotalSlots()));
      break;
    case AdmissionOutcome::kRejectedInvalid:
      ++stats_.rejected;
      Transition(rec, JobState::kRejected, "invalid spec");
      break;
  }
}

void PlacementService::HandleCancel(JobId job) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return;
  }
  JobRecord& rec = *it->second;
  if (rec.state == JobState::kTerminated || rec.state == JobState::kRejected) {
    return;
  }
  rec.cancelled.store(true);
  ++stats_.cancelled;
  if (rec.state == JobState::kQueued) {
    admission_queue_.erase(
        std::remove(admission_queue_.begin(), admission_queue_.end(), job),
        admission_queue_.end());
  }
  if (rec.demand_accounted) {
    admitted_demand_ -= rec.demand;
    rec.demand_accounted = false;
  }
  view_.Release(job);
  Transition(rec, JobState::kTerminated, "cancelled");
  ReleaseQueuedLocked();
}

void PlacementService::HandleRescale(JobId job, std::vector<int> parallelism) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return;
  }
  JobRecord& rec = *it->second;
  if (rec.state != JobState::kRunning) {
    CAPSYS_LOG_WARN("scheduler", Sprintf("rescale of job %lld ignored in state %s",
                                         static_cast<long long>(job),
                                         JobStateName(rec.state)));
    return;
  }
  if (parallelism.size() != static_cast<size_t>(rec.graph.num_operators()) ||
      std::any_of(parallelism.begin(), parallelism.end(), [](int p) { return p < 1; })) {
    CAPSYS_LOG_WARN("scheduler", Sprintf("rescale of job %lld ignored: bad parallelism",
                                         static_cast<long long>(job)));
    return;
  }
  int slots_before = rec.graph.total_parallelism();
  rec.graph.SetParallelism(parallelism);
  // Demand totals change only through rounding (per-task demand is total/p), but the task
  // count does; refresh both for admission accounting.
  PhysicalGraph physical = PhysicalGraph::Expand(rec.graph);
  auto rates = PropagateRates(rec.graph, rec.spec.source_rates);
  auto demands = TaskDemands(physical, rates);
  ResourceVector new_demand;
  for (const auto& d : demands) {
    new_demand += d;
  }
  if (rec.demand_accounted) {
    admitted_demand_ -= rec.demand;
    admitted_demand_ += new_demand;
  }
  rec.demand = new_demand;
  rec.tasks = physical.num_tasks();
  rec.status.demand = new_demand;
  std::string parallelism_str;
  for (int p : parallelism) {
    parallelism_str += Sprintf("%d ", p);
  }
  EmitScaleDecision(EventLog::Global().now(), "scheduler_rescale", slots_before,
                    rec.graph.total_parallelism(), parallelism_str);
  Transition(rec, JobState::kRescaling,
             Sprintf("%d -> %d slots", slots_before, rec.graph.total_parallelism()));
  SpawnPlanner(rec, /*recovering=*/false);
}

void PlacementService::HandleWorkerDead(WorkerId w) {
  std::map<JobId, int> affected = view_.MarkWorkerDown(w);
  CAPSYS_LOG_INFO("scheduler", Sprintf("worker %d down; %zu jobs affected", w,
                                       affected.size()));
  for (const auto& [job, lost_slots] : affected) {
    auto it = jobs_.find(job);
    if (it == jobs_.end()) {
      continue;
    }
    JobRecord& rec = *it->second;
    if (rec.state != JobState::kRunning && rec.state != JobState::kDeploying) {
      // A planner is already in flight (Planning/Rescaling/Recovering): its commit will
      // re-validate against the new view and replan on conflict; nothing to do here.
      continue;
    }
    ++stats_.recoveries;
    ++rec.status.recoveries;
    // Checkpoint-model estimate of the blackout this recovery will incur (fed to the
    // Recovering state; the fixed fallback applies when the job has no coordinator).
    double total_rate = 0.0;
    for (const auto& [op, r] : rec.spec.source_rates) {
      total_rate += r;
    }
    double domain_now = EventLog::Global().now();
    RecoveryEstimate est = EstimateRecovery(
        rec.spec.checkpoint, domain_now, total_rate * domain_now,
        std::max(1.0, total_rate), std::max(1e6, view_.TotalCapacity().io),
        RecoveryModelOptions{});
    rec.status.est_recovery_downtime_s = est.downtime_s;
    Transition(rec, JobState::kRecovering,
               Sprintf("worker %d died (lost %d slots, est blackout %.2fs)", w, lost_slots,
                       est.downtime_s));
    SpawnPlanner(rec, /*recovering=*/true);
  }
}

void PlacementService::HandleWorkerRestored(WorkerId w) {
  view_.MarkWorkerUp(w);
  CAPSYS_LOG_INFO("scheduler", Sprintf("worker %d restored", w));
  ReleaseQueuedLocked();
}

void PlacementService::ReleaseQueuedLocked() {
  // FIFO with fit-based bypass: older jobs get the first look, but a small job behind a
  // large blocked one may start (documented head-of-line tradeoff; see DESIGN.md §9).
  std::vector<JobId> queued(admission_queue_.begin(), admission_queue_.end());
  for (JobId job : queued) {
    auto it = jobs_.find(job);
    if (it == jobs_.end()) {
      continue;
    }
    JobRecord& rec = *it->second;
    if (AdmitLocked(rec) != AdmissionOutcome::kAdmitted) {
      continue;
    }
    admission_queue_.erase(
        std::remove(admission_queue_.begin(), admission_queue_.end(), job),
        admission_queue_.end());
    ++stats_.admitted;
    rec.admission = AdmissionOutcome::kAdmitted;
    rec.status.admission = rec.admission;
    admitted_demand_ += rec.demand;
    rec.demand_accounted = true;
    EmitAdmissionDecision(EventLog::Global().now(), job, "readmitted", rec.tasks,
                          view_.TotalFreeSlots());
    Transition(rec, JobState::kPlanning, "capacity freed; re-admitted");
    SpawnPlanner(rec, /*recovering=*/false);
  }
}

void PlacementService::SpawnPlanner(JobRecord& rec, bool recovering) {
  if (stopping_) {
    return;
  }
  PlanRequest req;
  req.job = rec.id;
  req.graph = rec.graph;
  req.source_rates = rec.spec.source_rates;
  req.recovering = recovering;
  req.allow_degraded = rec.spec.allow_degraded_recovery;
  req.cancelled = &rec.cancelled;
  ++planners_in_flight_;
  planner_pool_->Submit([this, req = std::move(req)]() mutable { RunPlanner(std::move(req)); });
}

void PlacementService::RunPlanner(PlanRequest req) {
  Span span("scheduler.plan");
  span.AddAttr("job", static_cast<int>(req.job));
  auto t0 = std::chrono::steady_clock::now();
  auto outcome = std::make_unique<PlanOutcome>();
  outcome->recovering = req.recovering;
  EventItem ev;
  ev.job = req.job;
  ev.kind = EventItem::Kind::kPlanFailed;

  LogicalGraph graph = req.graph;
  // Tuned thresholds depend on the job's demand shape, not on which slots happen to be
  // free, so one auto-tune per planning session is enough: conflict retries reuse it and
  // pay only for the (much cheaper) re-search. Re-tuned only when degradation changes the
  // graph.
  ResourceVector tuned_alpha{1.0, 1.0, 1.0};
  bool have_alpha = false;
  while (outcome->attempts < options_.max_plan_attempts) {
    ++outcome->attempts;
    if (req.cancelled->load()) {
      outcome->fail = PlanOutcome::Fail::kCancelled;
      break;
    }
    ClusterSnapshot snap = view_.SnapshotFor(req.job);
    if (graph.total_parallelism() > snap.total_free) {
      if (req.recovering && req.allow_degraded) {
        LogicalGraph shrunk = req.graph;  // re-derive from the requested parallelism
        int steps = 0;
        if (DownscaleToFit(shrunk, snap.total_free, &steps)) {
          graph = std::move(shrunk);
          outcome->degraded = steps > 0;
          outcome->downscale_steps = steps;
          have_alpha = false;  // parallelism changed; thresholds must be re-tuned
        } else {
          outcome->fail = PlanOutcome::Fail::kNoCapacity;
          break;
        }
      } else {
        outcome->fail = PlanOutcome::Fail::kNoCapacity;
        break;
      }
    }
    PhysicalGraph physical = PhysicalGraph::Expand(graph);
    auto rates = PropagateRates(graph, req.source_rates);
    auto demands = TaskDemands(physical, rates);
    std::string key;
    bool hit = false;
    Placement placement;
    ResourceVector alpha{1.0, 1.0, 1.0};
    ResourceVector plan_cost;
    if (options_.enable_plan_cache) {
      key = PlanCache::MakeKey(JobGraphFingerprint(graph, req.source_rates),
                               snap.Signature(), BottleneckSignature(demands, cluster_));
      std::lock_guard<std::mutex> lock(cache_mu_);
      auto cached = cache_.Lookup(key);
      if (cached.has_value() && cached->placement.num_tasks() == physical.num_tasks()) {
        placement = cached->placement;
        alpha = cached->alpha;
        plan_cost = cached->plan_cost;
        hit = true;
      }
    }
    if (!hit) {
      Span search_span("scheduler.search");
      Cluster residual = snap.ResidualCluster(cluster_);
      CostModel model(physical, residual, demands);
      if (!have_alpha) {
        AutoTuneOptions tune = options_.autotune;
        tune.num_threads = options_.search_threads;
        AutoTuneResult tuned = AutoTuneThresholds(model, tune);
        tuned_alpha = tuned.feasible ? tuned.alpha : ResourceVector{1.0, 1.0, 1.0};
        have_alpha = true;
      }
      alpha = tuned_alpha;
      SearchOptions search_options;
      search_options.alpha = alpha;
      search_options.num_threads = options_.search_threads;
      search_options.timeout_s = options_.search_timeout_s;
      search_options.find_first = physical.num_tasks() > options_.find_first_above_tasks;
      SearchResult result = CapsSearch(model, search_options).Run();
      std::vector<ScoredPlan> candidates = std::move(result.pareto);
      Placement greedy = GreedyBalancedPlacement(model);
      candidates.push_back(ScoredPlan{greedy, model.Cost(greedy)});
      size_t best = 0;
      double best_util = 1e300;
      for (size_t i = 0; i < candidates.size(); ++i) {
        double util = MaxUtilization(model, residual, candidates[i].placement);
        if (util < best_util - 1e-9 ||
            (util < best_util + 1e-9 &&
             BetterCost(candidates[i].cost, candidates[best].cost))) {
          best = i;
          best_util = util;
        }
      }
      placement = candidates[best].placement;
      plan_cost = candidates[best].cost;
    }
    SlotReservation reservation = ReservationFromPlacement(placement, cluster_.num_workers());
    CommitResult cr = view_.TryCommit(req.job, snap.epoch, reservation,
                                      !options_.strict_epoch_commit);
    if (cr == CommitResult::kConflict) {
      ++outcome->conflicts;
      double backoff = std::min(options_.backoff_max_s,
                                options_.backoff_base_s *
                                    std::pow(2.0, outcome->conflicts - 1));
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff));
      continue;
    }
    if (!hit && options_.enable_plan_cache) {
      std::lock_guard<std::mutex> lock(cache_mu_);
      cache_.Insert(key, CachedPlan{placement, alpha, plan_cost, snap.epoch});
    }
    outcome->fail = PlanOutcome::Fail::kNone;
    outcome->commit = cr;
    outcome->placement = std::move(placement);
    outcome->reservation = std::move(reservation);
    outcome->alpha = alpha;
    outcome->plan_cost = plan_cost;
    outcome->from_cache = hit;
    std::vector<int> parallelism;
    for (const auto& op : graph.operators()) {
      parallelism.push_back(op.parallelism);
    }
    outcome->parallelism = std::move(parallelism);
    ev.kind = EventItem::Kind::kPlanCommitted;
    break;
  }
  if (ev.kind == EventItem::Kind::kPlanFailed &&
      outcome->fail == PlanOutcome::Fail::kNone) {
    outcome->fail = PlanOutcome::Fail::kNoCapacity;  // attempts exhausted on conflicts
  }
  outcome->planning_time_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  span.AddAttr("attempts", outcome->attempts);
  ev.plan = std::move(outcome);
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(ev));
    --planners_in_flight_;
  }
  queue_cv_.notify_one();
  idle_cv_.notify_all();
}

void PlacementService::HandlePlanCommitted(JobId job, PlanOutcome outcome) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    view_.Release(job);
    return;
  }
  JobRecord& rec = *it->second;
  stats_.commit_conflicts += static_cast<uint64_t>(outcome.conflicts);
  rec.status.plan_attempts += outcome.attempts;
  rec.status.commit_conflicts += outcome.conflicts;
  rec.status.planning_time_s += outcome.planning_time_s;
  if (rec.cancelled.load() || rec.state == JobState::kTerminated ||
      rec.state == JobState::kRejected) {
    // Lost the race with a cancel: the commit went through, take it back.
    view_.Release(job);
    return;
  }
  ++stats_.plans_committed;
  if (outcome.from_cache) {
    ++stats_.plans_from_cache;
  }
  if (outcome.commit == CommitResult::kCommittedStale) {
    ++stats_.stale_commits;
  }
  if (outcome.degraded) {
    stats_.downscales += static_cast<uint64_t>(outcome.downscale_steps);
  }
  rec.graph.SetParallelism(outcome.parallelism);
  rec.tasks = outcome.placement.num_tasks();
  rec.status.tasks = rec.tasks;
  rec.status.parallelism = outcome.parallelism;
  rec.status.placement = outcome.placement;
  rec.status.alpha = outcome.alpha;
  rec.status.plan_cost = outcome.plan_cost;
  rec.status.degraded = outcome.degraded;
  rec.status.plan_from_cache = outcome.from_cache;
  EmitPlacementDecision(EventLog::Global().now(), "scheduler", rec.tasks,
                        cluster_.num_workers(), outcome.alpha, outcome.plan_cost,
                        outcome.planning_time_s);
  Transition(rec, JobState::kDeploying,
             Sprintf("%s commit (%d attempts%s)", CommitResultName(outcome.commit),
                     outcome.attempts, outcome.from_cache ? ", cached plan" : ""));
  // The runtime hand-off is immediate in this reproduction (the simulator-side runtime is
  // attached out-of-band); the two transitions are kept distinct for the state machine.
  Transition(rec, JobState::kRunning,
             outcome.degraded ? "running degraded" : "running");
  if (rec.status.running_time_s < 0.0) {
    rec.status.running_time_s = NowS();
    rec.status.decision_latency_s = rec.status.running_time_s - rec.status.submit_time_s;
  }
  if (outcome.recovering) {
    EmitRecoveryVerdict(EventLog::Global().now(),
                        outcome.degraded ? "recovered_degraded" : "recovered_full",
                        view_.TotalSlots() / std::max(1, cluster_.slots_per_worker()));
  }
  // A downscale or a rescale to fewer slots frees capacity for queued jobs.
  ReleaseQueuedLocked();
}

void PlacementService::HandlePlanFailed(JobId job, PlanOutcome outcome) {
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return;
  }
  JobRecord& rec = *it->second;
  stats_.commit_conflicts += static_cast<uint64_t>(outcome.conflicts);
  rec.status.plan_attempts += outcome.attempts;
  rec.status.commit_conflicts += outcome.conflicts;
  rec.status.planning_time_s += outcome.planning_time_s;
  view_.Release(job);
  if (rec.demand_accounted) {
    admitted_demand_ -= rec.demand;
    rec.demand_accounted = false;
  }
  if (outcome.fail == PlanOutcome::Fail::kCancelled || rec.cancelled.load() ||
      rec.state == JobState::kTerminated || rec.state == JobState::kRejected) {
    if (rec.state != JobState::kTerminated && rec.state != JobState::kRejected) {
      Transition(rec, JobState::kTerminated, "cancelled while planning");
    }
    ReleaseQueuedLocked();
    return;
  }
  // No capacity at plan time (or conflict retries exhausted): back to the admission queue
  // until capacity frees. Structured — never a CHECK abort.
  ++stats_.queued;
  rec.admission = AdmissionOutcome::kQueuedCapacity;
  rec.status.admission = rec.admission;
  admission_queue_.push_back(job);
  if (outcome.recovering) {
    EmitRecoveryVerdict(EventLog::Global().now(), "unplaceable",
                        view_.TotalSlots() / std::max(1, cluster_.slots_per_worker()));
  }
  Transition(rec, JobState::kQueued,
             outcome.recovering ? "recovery unplaceable; queued for capacity"
                                : "no capacity at plan time; queued");
  ReleaseQueuedLocked();
}

JobStatus PlacementService::Status(JobId job) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(job);
  if (it == jobs_.end()) {
    return JobStatus{};
  }
  return it->second->status;
}

std::vector<JobStatus> PlacementService::AllStatuses() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobStatus> out;
  out.reserve(jobs_.size());
  for (const auto& [id, rec] : jobs_) {
    out.push_back(rec->status);
  }
  return out;
}

SchedulerStats PlacementService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  SchedulerStats s = stats_;
  s.stale_commits = view_.stale_commits();
  s.epoch = view_.epoch();
  {
    std::lock_guard<std::mutex> cache_lock(cache_mu_);
    s.cache_hits = cache_.hits();
    s.cache_misses = cache_.misses();
  }
  return s;
}

bool PlacementService::WaitIdle(double timeout_s) {
  auto deadline =
      std::chrono::steady_clock::now() + std::chrono::duration<double>(timeout_s);
  std::unique_lock<std::mutex> lock(mu_);
  return idle_cv_.wait_until(lock, deadline, [this] {
    if (!queue_.empty() || planners_in_flight_ > 0) {
      return false;
    }
    for (const auto& [id, rec] : jobs_) {
      switch (rec->state) {
        case JobState::kSubmitted:
        case JobState::kPlanning:
        case JobState::kDeploying:
        case JobState::kRescaling:
        case JobState::kRecovering:
          return false;
        default:
          break;
      }
    }
    return true;
  });
}

}  // namespace capsys
