#include "src/scheduler/cluster_view.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {

const char* CommitResultName(CommitResult result) {
  switch (result) {
    case CommitResult::kCommitted:
      return "committed";
    case CommitResult::kCommittedStale:
      return "committed_stale";
    case CommitResult::kConflict:
      return "conflict";
  }
  return "?";
}

Cluster ClusterSnapshot::ResidualCluster(const Cluster& full) const {
  std::vector<WorkerSpec> specs;
  specs.reserve(static_cast<size_t>(full.num_workers()));
  for (WorkerId w = 0; w < full.num_workers(); ++w) {
    WorkerSpec spec = full.worker(w).spec;
    spec.slots = free_slots[static_cast<size_t>(w)];
    specs.push_back(spec);
  }
  return Cluster(std::move(specs));
}

ClusterView::ClusterView(Cluster cluster)
    : cluster_(std::move(cluster)),
      reserved_(static_cast<size_t>(cluster_.num_workers()), 0),
      usable_(static_cast<size_t>(cluster_.num_workers()), true) {}

uint64_t ClusterView::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

ClusterSnapshot ClusterView::Snapshot() const { return SnapshotFor(kInvalidJobId); }

ClusterSnapshot ClusterView::SnapshotFor(JobId job) const {
  std::lock_guard<std::mutex> lock(mu_);
  ClusterSnapshot snap;
  snap.epoch = epoch_;
  snap.usable = usable_;
  snap.free_slots.resize(reserved_.size());
  const SlotReservation* own = nullptr;
  auto it = by_job_.find(job);
  if (it != by_job_.end()) {
    own = &it->second;
  }
  for (size_t w = 0; w < reserved_.size(); ++w) {
    int held = own != nullptr ? (*own)[w] : 0;
    int free = usable_[w]
                   ? cluster_.worker(static_cast<WorkerId>(w)).spec.slots - reserved_[w] + held
                   : 0;
    snap.free_slots[w] = std::max(0, free);
    snap.total_free += snap.free_slots[w];
  }
  return snap;
}

bool ClusterView::FitsLocked(const SlotReservation& reservation, JobId ignore_job) const {
  const SlotReservation* own = nullptr;
  auto it = by_job_.find(ignore_job);
  if (it != by_job_.end()) {
    own = &it->second;
  }
  for (size_t w = 0; w < reservation.size(); ++w) {
    if (reservation[w] <= 0) {
      continue;
    }
    if (!usable_[w]) {
      return false;
    }
    int held = own != nullptr ? (*own)[w] : 0;
    int free = cluster_.worker(static_cast<WorkerId>(w)).spec.slots - reserved_[w] + held;
    if (reservation[w] > free) {
      return false;
    }
  }
  return true;
}

CommitResult ClusterView::TryCommit(JobId job, uint64_t snapshot_epoch,
                                    const SlotReservation& reservation, bool allow_stale) {
  CAPSYS_CHECK(reservation.size() == reserved_.size());
  std::lock_guard<std::mutex> lock(mu_);
  bool stale = epoch_ != snapshot_epoch;
  if (stale && !allow_stale) {
    ++conflicts_;
    return CommitResult::kConflict;
  }
  // Even an epoch-exact commit re-validates: the snapshot the *plan* was computed against
  // may be older than the snapshot the caller compares to (paranoia is cheap here, and it
  // makes double-booking structurally impossible).
  if (!FitsLocked(reservation, job)) {
    ++conflicts_;
    return CommitResult::kConflict;
  }
  auto it = by_job_.find(job);
  if (it != by_job_.end()) {
    for (size_t w = 0; w < it->second.size(); ++w) {
      reserved_[w] -= it->second[w];
    }
  }
  for (size_t w = 0; w < reservation.size(); ++w) {
    reserved_[w] += reservation[w];
  }
  by_job_[job] = reservation;
  ++epoch_;
  if (stale) {
    ++stale_commits_;
  } else {
    ++commits_;
  }
  return stale ? CommitResult::kCommittedStale : CommitResult::kCommitted;
}

bool ClusterView::Release(JobId job) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_job_.find(job);
  if (it == by_job_.end()) {
    return false;
  }
  for (size_t w = 0; w < it->second.size(); ++w) {
    reserved_[w] -= it->second[w];
  }
  by_job_.erase(it);
  ++epoch_;
  return true;
}

std::map<JobId, int> ClusterView::MarkWorkerDown(WorkerId w) {
  std::lock_guard<std::mutex> lock(mu_);
  std::map<JobId, int> affected;
  size_t wi = static_cast<size_t>(w);
  if (!usable_[wi]) {
    return affected;
  }
  usable_[wi] = false;
  for (auto& [job, reservation] : by_job_) {
    if (reservation[wi] > 0) {
      affected[job] = reservation[wi];
      reserved_[wi] -= reservation[wi];
      reservation[wi] = 0;
    }
  }
  ++epoch_;
  return affected;
}

void ClusterView::MarkWorkerUp(WorkerId w) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t wi = static_cast<size_t>(w);
  if (usable_[wi]) {
    return;
  }
  usable_[wi] = true;
  ++epoch_;
}

bool ClusterView::IsWorkerUsable(WorkerId w) const {
  std::lock_guard<std::mutex> lock(mu_);
  return usable_[static_cast<size_t>(w)];
}

int ClusterView::TotalSlots() const {
  std::lock_guard<std::mutex> lock(mu_);
  int total = 0;
  for (WorkerId w = 0; w < cluster_.num_workers(); ++w) {
    if (usable_[static_cast<size_t>(w)]) {
      total += cluster_.worker(w).spec.slots;
    }
  }
  return total;
}

int ClusterView::TotalFreeSlots() const {
  std::lock_guard<std::mutex> lock(mu_);
  int total = 0;
  for (WorkerId w = 0; w < cluster_.num_workers(); ++w) {
    if (usable_[static_cast<size_t>(w)]) {
      total += cluster_.worker(w).spec.slots - reserved_[static_cast<size_t>(w)];
    }
  }
  return total;
}

ResourceVector ClusterView::TotalCapacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  ResourceVector cap;
  for (WorkerId w = 0; w < cluster_.num_workers(); ++w) {
    if (!usable_[static_cast<size_t>(w)]) {
      continue;
    }
    const WorkerSpec& spec = cluster_.worker(w).spec;
    cap.cpu += spec.cpu_capacity;
    cap.io += spec.io_bandwidth_bps;
    cap.net += spec.net_bandwidth_bps;
  }
  return cap;
}

SlotReservation ClusterView::ReservationOf(JobId job) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = by_job_.find(job);
  if (it == by_job_.end()) {
    return {};
  }
  return it->second;
}

std::string ClusterSnapshot::Signature() const {
  std::string sig;
  for (size_t w = 0; w < free_slots.size(); ++w) {
    sig += Sprintf("f%d%c ", free_slots[w], usable[w] ? 'u' : 'd');
  }
  return sig;
}

std::string ClusterView::CapacitySignature() const { return Snapshot().Signature(); }

std::string ClusterView::CheckInvariants() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<int> summed(reserved_.size(), 0);
  for (const auto& [job, reservation] : by_job_) {
    if (reservation.size() != reserved_.size()) {
      return Sprintf("job %lld reservation has %zu workers, cluster has %zu",
                     static_cast<long long>(job), reservation.size(), reserved_.size());
    }
    for (size_t w = 0; w < reservation.size(); ++w) {
      if (reservation[w] < 0) {
        return Sprintf("job %lld holds negative slots on worker %zu",
                       static_cast<long long>(job), w);
      }
      if (reservation[w] > 0 && !usable_[w]) {
        return Sprintf("job %lld holds %d slots on unusable worker %zu",
                       static_cast<long long>(job), reservation[w], w);
      }
      summed[w] += reservation[w];
    }
  }
  for (size_t w = 0; w < reserved_.size(); ++w) {
    if (summed[w] != reserved_[w]) {
      return Sprintf("worker %zu accounting mismatch: reserved %d but jobs hold %d", w,
                     reserved_[w], summed[w]);
    }
    int slots = cluster_.worker(static_cast<WorkerId>(w)).spec.slots;
    if (reserved_[w] > slots) {
      return Sprintf("worker %zu double-booked: %d reserved for %d slots", w, reserved_[w],
                     slots);
    }
  }
  return "";
}

uint64_t ClusterView::commits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return commits_;
}

uint64_t ClusterView::stale_commits() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stale_commits_;
}

uint64_t ClusterView::conflicts() const {
  std::lock_guard<std::mutex> lock(mu_);
  return conflicts_;
}

}  // namespace capsys
