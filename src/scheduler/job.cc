#include "src/scheduler/job.h"

#include "src/common/str.h"

namespace capsys {

const char* JobStateName(JobState state) {
  switch (state) {
    case JobState::kSubmitted:
      return "submitted";
    case JobState::kQueued:
      return "queued";
    case JobState::kPlanning:
      return "planning";
    case JobState::kDeploying:
      return "deploying";
    case JobState::kRunning:
      return "running";
    case JobState::kRescaling:
      return "rescaling";
    case JobState::kRecovering:
      return "recovering";
    case JobState::kTerminated:
      return "terminated";
    case JobState::kRejected:
      return "rejected";
  }
  return "?";
}

const char* AdmissionOutcomeName(AdmissionOutcome outcome) {
  switch (outcome) {
    case AdmissionOutcome::kAdmitted:
      return "admitted";
    case AdmissionOutcome::kQueuedCapacity:
      return "queued_capacity";
    case AdmissionOutcome::kRejectedCapacity:
      return "rejected_capacity";
    case AdmissionOutcome::kRejectedInvalid:
      return "rejected_invalid";
  }
  return "?";
}

std::string JobStatus::ToString() const {
  return Sprintf("job %lld '%s' %s (%s) tasks=%d attempts=%d conflicts=%d recoveries=%d "
                 "latency=%.3fs%s%s %s",
                 static_cast<long long>(id), name.c_str(), JobStateName(state),
                 AdmissionOutcomeName(admission), tasks, plan_attempts, commit_conflicts,
                 recoveries, decision_latency_s, degraded ? " degraded" : "",
                 plan_from_cache ? " cached-plan" : "", detail.c_str());
}

}  // namespace capsys
