// Per-job lifecycle model of the online placement service.
//
// State machine (driven exclusively by the service's serialized event dispatcher):
//
//   Submitted --admit--> Planning --commit--> Deploying --> Running
//       |                   |  ^                               |  |
//       |  (no capacity     |  |(capacity freed /              |  +--rescale--> Rescaling
//       |   now)            |  | conflict replan)              |                    |
//       +----> Queued ------+  |                               v                    |
//       |        |             +--------------------------- Recovering <--worker death
//       |        +--cancel/impossible--+                       |
//       +----> Rejected                +---> Terminated <---cancel/complete
//
// Rejected and Terminated are terminal. Queued jobs hold no reservation; Recovering jobs
// may hold a partial reservation (their slots on surviving workers) until the replan
// commits a fresh one.
#ifndef SRC_SCHEDULER_JOB_H_
#define SRC_SCHEDULER_JOB_H_

#include <map>
#include <string>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/common/types.h"
#include "src/dataflow/logical_graph.h"
#include "src/dataflow/placement.h"
#include "src/scheduler/cluster_view.h"

namespace capsys {

enum class JobState : int {
  kSubmitted = 0,  // accepted into the event queue, admission pending
  kQueued,         // admission deferred: does not fit now, waiting for capacity
  kPlanning,       // a planner thread is computing / committing a placement
  kDeploying,      // reservation committed, plan handed to the runtime
  kRunning,        // live
  kRescaling,      // re-planning at a new parallelism (DS2 / user rescale)
  kRecovering,     // lost workers; re-planning onto the survivors
  kTerminated,     // cancelled or completed; reservation released
  kRejected,       // admission refused (kRejectedCapacity) or invalid spec
};

const char* JobStateName(JobState state);

// Structured admission verdicts (never a CHECK abort).
enum class AdmissionOutcome : int {
  kAdmitted = 0,        // fits the current free capacity; proceed to Planning
  kQueuedCapacity,      // fits the cluster, not the current free capacity; wait
  kRejectedCapacity,    // cannot fit the cluster even when empty
  kRejectedInvalid,     // malformed spec (bad graph, empty, oversized queue)
};

const char* AdmissionOutcomeName(AdmissionOutcome outcome);

// What a client submits. The graph carries per-operator profiles (the cost model's unit
// costs); the service derives demands analytically from them — profiled costs can be baked
// into the profiles by the caller when available.
struct JobSpec {
  std::string name;
  LogicalGraph graph;
  std::map<OperatorId, double> source_rates;
  // Optional checkpoint coordinator of the job's runtime (not owned; may be null). When
  // present, recovery estimates restore from its last completed checkpoint instead of the
  // fixed fallback blackout.
  const CheckpointCoordinator* checkpoint = nullptr;
  // Allow the recovery path to down-scale parallelism when the survivors cannot host the
  // job at full parallelism (graceful degradation); off = queue until capacity returns.
  bool allow_degraded_recovery = true;
};

// Read-only status snapshot returned to clients.
struct JobStatus {
  JobId id = kInvalidJobId;
  std::string name;
  JobState state = JobState::kSubmitted;
  AdmissionOutcome admission = AdmissionOutcome::kAdmitted;
  Placement placement;            // valid from Deploying onward
  std::vector<int> parallelism;   // current (possibly degraded) parallelism
  ResourceVector alpha;           // thresholds the plan satisfied
  ResourceVector plan_cost;       // cost vector of the committed plan
  ResourceVector demand;          // aggregate cpu/io/net demand (admission accounting)
  int tasks = 0;                  // total tasks of the committed plan
  bool degraded = false;          // running below submitted parallelism
  bool plan_from_cache = false;   // last committed plan was a plan-cache hit
  int plan_attempts = 0;          // planning rounds incl. conflict retries
  int commit_conflicts = 0;       // reservation commits that had to retry
  int recoveries = 0;             // worker-death replans
  double submit_time_s = 0.0;     // service wall clock, seconds since service start
  double running_time_s = -1.0;   // first entered Running (-1 = never)
  double decision_latency_s = -1.0;  // submit -> first Running
  double planning_time_s = 0.0;      // cumulative planner time (search + tuning)
  double est_recovery_downtime_s = -1.0;  // checkpoint-model estimate of the last recovery
  std::string detail;             // human-readable last transition reason

  std::string ToString() const;
};

}  // namespace capsys

#endif  // SRC_SCHEDULER_JOB_H_
