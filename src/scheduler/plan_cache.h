// Plan cache for the online placement service (generalizes caps/threshold_cache from
// "thresholds per parallelism vector on a fixed cluster" to "complete plan per job x
// cluster-state x load-shape").
//
// Key = (job-graph fingerprint, cluster capacity signature, bottleneck signature):
//   - fingerprint: structural hash of the logical graph — operators (kind, parallelism,
//     per-record profile), edges (endpoints, partition scheme), and *relative* source rates
//     (normalized by the largest source). Absolute rate scale is excluded on purpose: CAPS
//     cost vectors are invariant under uniform rate scaling (see threshold_cache.h), so a
//     job resubmitted at 2x the rate reuses the cached plan and thresholds.
//   - capacity signature: the ClusterView free/usable state the plan was computed against
//     (a canonicalized epoch — two epochs with equal signatures are interchangeable for
//     planning; raw epoch values would defeat the cache after every commit/release pair).
//   - bottleneck signature: aggregate task demand per dimension, capacity-normalized and
//     quantized — which resource the job actually stresses. Jobs whose profiles drift
//     enough to move the bottleneck re-plan instead of reusing a stale shape.
//
// Entries are only ever *hints*: the service re-validates every cached placement against
// the live ClusterView at commit time, so a stale hit degrades to a conflict, never to a
// double-booked slot.
#ifndef SRC_SCHEDULER_PLAN_CACHE_H_
#define SRC_SCHEDULER_PLAN_CACHE_H_

#include <cstdint>
#include <list>
#include <map>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/types.h"
#include "src/dataflow/logical_graph.h"
#include "src/dataflow/placement.h"

namespace capsys {

// Structural hash of the job graph + relative rates (FNV-1a over a canonical encoding).
uint64_t JobGraphFingerprint(const LogicalGraph& graph,
                             const std::map<OperatorId, double>& source_rates);

// Quantized capacity-normalized aggregate demand: "cpu=0.312 io=1.000 net=0.087"-style,
// largest dimension pinned to 1. `demands` is per task; `reference` supplies per-worker
// capacities (worker 0's spec; the signature only needs a consistent normalizer).
std::string BottleneckSignature(const std::vector<ResourceVector>& demands,
                                const Cluster& reference);

struct CachedPlan {
  Placement placement;       // global WorkerIds over the full cluster
  ResourceVector alpha;      // auto-tuned thresholds the plan satisfied
  ResourceVector plan_cost;  // its cost vector at cache time
  uint64_t epoch = 0;        // ClusterView epoch the plan was computed at (bookkeeping)
};

// Bounded LRU keyed by the composite key above. Thread-safe use is the caller's concern:
// the PlacementService only touches it from planner threads under its own mutex.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 512) : capacity_(capacity) {}

  static std::string MakeKey(uint64_t fingerprint, const std::string& capacity_signature,
                             const std::string& bottleneck_signature);

  std::optional<CachedPlan> Lookup(const std::string& key);
  void Insert(const std::string& key, CachedPlan plan);

  // Drops every entry (e.g. after a cluster-spec change that invalidates capacities).
  void Clear();
  // Drops entries whose plan was computed at an epoch < `epoch`. The capacity signature
  // already fences correctness; this exists to shed entries that can no longer hit after
  // permanent topology changes, and returns how many were evicted.
  size_t EvictOlderThan(uint64_t epoch);

  size_t size() const { return entries_.size(); }
  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }

 private:
  struct Entry {
    CachedPlan plan;
    std::list<std::string>::iterator lru_it;
  };

  size_t capacity_;
  std::list<std::string> lru_;  // front = most recent
  std::unordered_map<std::string, Entry> entries_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

}  // namespace capsys

#endif  // SRC_SCHEDULER_PLAN_CACHE_H_
