// Online multi-job placement service (scheduler subsystem; see DESIGN.md §9).
//
// An always-on, multi-threaded front-end to the CAPS placement machinery that owns one
// shared cluster and serves concurrent job submissions, cancels, rescales, and
// failure-triggered replans:
//
//   - One *dispatcher* thread drains a single serialized event queue (client requests,
//     FailureDetector verdicts, DS2 scale decisions, and planner completions all flow
//     through the same queue) and drives the per-job state machines in job.h. All job
//     bookkeeping happens on this thread, so the lifecycle logic needs no per-job locks.
//   - A planner ThreadPool runs CAPS searches concurrently. Planners work against
//     immutable ClusterView snapshots and commit slot reservations optimistically (epoch
//     check; retry with exponential backoff on conflict) — see cluster_view.h.
//   - Admission control estimates a job's aggregate CPU/IO/net demand from the cost model
//     and either admits, queues (fits the cluster but not the current free capacity), or
//     rejects it with a structured kRejectedCapacity — never a CHECK abort. Queued jobs
//     are re-examined whenever capacity frees (cancel, restore, down-scale).
//   - A PlanCache keyed by (job fingerprint, capacity signature, bottleneck signature)
//     lets repeated submissions and failure-replans of an unchanged job skip the search.
//
// The service is additive: the single-job batch drivers (fig benches, chaos/scaling
// drivers) do not go through it and are byte-identical to their pre-service behaviour.
#ifndef SRC_SCHEDULER_PLACEMENT_SERVICE_H_
#define SRC_SCHEDULER_PLACEMENT_SERVICE_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/caps/auto_tuner.h"
#include "src/common/thread_pool.h"
#include "src/scheduler/cluster_view.h"
#include "src/scheduler/job.h"
#include "src/scheduler/plan_cache.h"

namespace capsys {

struct SchedulerOptions {
  // Concurrent planner threads (each runs one CAPS search at a time).
  int planner_threads = 2;
  // Threads *within* one search/auto-tune (usually 1: cross-job parallelism beats
  // intra-search parallelism when many jobs are in flight).
  int search_threads = 1;
  double search_timeout_s = 1.0;
  int find_first_above_tasks = 32;
  AutoTuneOptions autotune{.timeout_s = 0.5, .probe_timeout_s = 0.05};

  // Optimistic-commit policy. Default: an epoch advance whose committed reservations do
  // not intersect ours re-validates and commits (kCommittedStale). Strict mode treats any
  // epoch advance as a conflict — the textbook protocol; used by tests and ablations.
  bool strict_epoch_commit = false;
  int max_plan_attempts = 10;
  double backoff_base_s = 0.001;  // exponential, doubles per conflict
  double backoff_max_s = 0.064;

  // Admission control.
  int max_queued_jobs = 64;
  // Fraction of aggregate usable capacity admissible per dimension (1.0 = up to nominal).
  double admission_headroom = 1.0;

  // Plan cache.
  bool enable_plan_cache = true;
  size_t plan_cache_capacity = 512;
};

struct SchedulerStats {
  uint64_t submitted = 0;
  uint64_t admitted = 0;
  uint64_t queued = 0;          // admission deferrals (incl. recovery requeues)
  uint64_t rejected = 0;
  uint64_t cancelled = 0;
  uint64_t plans_committed = 0;
  uint64_t plans_from_cache = 0;
  uint64_t commit_conflicts = 0;
  uint64_t stale_commits = 0;
  uint64_t recoveries = 0;      // worker-death replans dispatched
  uint64_t downscales = 0;      // degraded-recovery parallelism reductions
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t epoch = 0;           // current cluster-view epoch

  std::string ToString() const;
};

class PlacementService {
 public:
  PlacementService(Cluster cluster, SchedulerOptions options = {});
  ~PlacementService();  // drains in-flight planners, stops the dispatcher

  PlacementService(const PlacementService&) = delete;
  PlacementService& operator=(const PlacementService&) = delete;

  // --- Client API (thread-safe; all asynchronous, serialized through the event queue) ---

  // Submits a job; returns its id immediately. Admission/planning proceed asynchronously.
  JobId Submit(JobSpec spec);
  // Cancels a job in any non-terminal state, releasing its reservation.
  void Cancel(JobId job);
  // Requests a re-plan at a new per-operator parallelism (only honoured while Running;
  // DS2 decisions arrive here via ApplyScaleDecision).
  void Rescale(JobId job, std::vector<int> parallelism);
  void ApplyScaleDecision(JobId job, const std::vector<int>& parallelism) {
    Rescale(job, parallelism);
  }

  // --- Cluster events (FailureDetector verdicts, chaos faults, capacity changes) -------

  void OnWorkerDead(WorkerId w);
  void OnWorkerRestored(WorkerId w);
  // Convenience for wiring FailureDetector::Tick results straight in.
  void OnFailureDetectorVerdicts(const std::vector<WorkerId>& newly_dead);

  // --- Introspection --------------------------------------------------------------------

  JobStatus Status(JobId job) const;
  std::vector<JobStatus> AllStatuses() const;
  SchedulerStats stats() const;
  const ClusterView& view() const { return view_; }

  // Blocks until the service is quiescent: event queue empty, no planner in flight, and
  // every job in Queued / Running / Terminated / Rejected. Returns false on timeout.
  bool WaitIdle(double timeout_s);

 private:
  struct EventItem;
  struct JobRecord;
  struct PlanOutcome;
  struct PlanRequest;

  void DispatcherLoop();
  void Enqueue(EventItem item);
  // Dispatcher-thread handlers.
  void HandleSubmit(JobId job);
  void HandleCancel(JobId job);
  void HandleRescale(JobId job, std::vector<int> parallelism);
  void HandleWorkerDead(WorkerId w);
  void HandleWorkerRestored(WorkerId w);
  void HandlePlanCommitted(JobId job, PlanOutcome outcome);
  void HandlePlanFailed(JobId job, PlanOutcome outcome);
  // Admission decision for a submitted/queued job (dispatcher thread, mu_ held).
  AdmissionOutcome AdmitLocked(JobRecord& rec);
  // Re-examines queued jobs after capacity freed (dispatcher thread, mu_ held).
  void ReleaseQueuedLocked();
  // Spawns a planner task for `rec` (dispatcher thread, mu_ held).
  void SpawnPlanner(JobRecord& rec, bool recovering);
  // Runs in a planner thread; plans + commits, then posts kPlanCommitted/kPlanFailed.
  void RunPlanner(PlanRequest req);
  void Transition(JobRecord& rec, JobState to, const std::string& detail);
  double NowS() const;

  Cluster cluster_;
  SchedulerOptions options_;
  ClusterView view_;

  mutable std::mutex cache_mu_;
  PlanCache cache_;

  // Dispatcher state: the event queue and all job records.
  mutable std::mutex mu_;
  std::condition_variable queue_cv_;   // dispatcher wakeup
  std::condition_variable idle_cv_;    // WaitIdle wakeup
  std::deque<EventItem> queue_;
  std::map<JobId, std::unique_ptr<JobRecord>> jobs_;
  std::deque<JobId> admission_queue_;  // jobs in kQueued, FIFO with fit-based bypass
  ResourceVector admitted_demand_;     // summed demand of admitted (non-queued) jobs
  JobId next_job_id_ = 1;
  int planners_in_flight_ = 0;
  bool stopping_ = false;
  SchedulerStats stats_;

  std::unique_ptr<ThreadPool> planner_pool_;
  std::thread dispatcher_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace capsys

#endif  // SRC_SCHEDULER_PLACEMENT_SERVICE_H_
