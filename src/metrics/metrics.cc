#include "src/metrics/metrics.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {

void TimeSeries::Record(double time_s, double value) {
  CAPSYS_CHECK_MSG(points_.empty() || time_s >= points_.back().time_s,
                   "TimeSeries samples must be appended in time order");
  points_.push_back(Point{.time_s = time_s, .value = value});
  cumsum_.push_back((cumsum_.empty() ? 0.0 : cumsum_.back()) + value);
}

double TimeSeries::Last() const {
  CAPSYS_CHECK(!points_.empty());
  return points_.back().value;
}

double TimeSeries::LastTime() const {
  CAPSYS_CHECK(!points_.empty());
  return points_.back().time_s;
}

double TimeSeries::MeanOver(double from_s, double to_s) const {
  // Points are time-ordered (asserted on append): binary-search the window bounds and
  // answer from the prefix sum instead of scanning.
  auto time_less = [](const Point& p, double t) { return p.time_s < t; };
  auto lo_it = std::lower_bound(points_.begin(), points_.end(), from_s, time_less);
  auto hi_it = std::lower_bound(points_.begin(), points_.end(),
                                std::nextafter(to_s, 1e308), time_less);
  size_t lo = static_cast<size_t>(lo_it - points_.begin());
  size_t hi = static_cast<size_t>(hi_it - points_.begin());  // one past the last in-window
  if (lo >= hi) {
    return 0.0;
  }
  double sum = cumsum_[hi - 1] - (lo > 0 ? cumsum_[lo - 1] : 0.0);
  return sum / static_cast<double>(hi - lo);
}

Histogram::Histogram(std::vector<double> upper_bounds) : bounds_(std::move(upper_bounds)) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    CAPSYS_CHECK_MSG(bounds_[i] > bounds_[i - 1],
                     "histogram bucket bounds must be strictly increasing");
  }
  bucket_counts_.assign(bounds_.size() + 1, 0);  // + the implicit +Inf bucket
}

void Histogram::Observe(double value) {
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  ++bucket_counts_[static_cast<size_t>(it - bounds_.begin())];
  sum_ += value;
  samples_.Add(value);
}

std::vector<double> Histogram::DefaultBuckets() {
  // 1us..30s, roughly x3 per step.
  return {1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3, 1e-2,
          3e-2, 0.1,  0.3,  1.0,  3.0,  10.0, 30.0};
}

void MetricsRegistry::Record(const std::string& name, double time_s, double value) {
  series_[name].Record(time_s, value);
}

TimeSeries& MetricsRegistry::Series(const std::string& name) { return series_[name]; }

const TimeSeries* MetricsRegistry::Find(const std::string& name) const {
  auto it = series_.find(name);
  return it != series_.end() ? &it->second : nullptr;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) { return counters_[name]; }

const Counter* MetricsRegistry::FindCounter(const std::string& name) const {
  auto it = counters_.find(name);
  return it != counters_.end() ? &it->second : nullptr;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> upper_bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, Histogram(upper_bounds.empty() ? Histogram::DefaultBuckets()
                                                           : std::move(upper_bounds)))
             .first;
  }
  return it->second;
}

const Histogram* MetricsRegistry::FindHistogram(const std::string& name) const {
  auto it = histograms_.find(name);
  return it != histograms_.end() ? &it->second : nullptr;
}

double MetricsRegistry::LastOr(const std::string& name, double fallback) const {
  const TimeSeries* ts = Find(name);
  return (ts != nullptr && !ts->Empty()) ? ts->Last() : fallback;
}

double MetricsRegistry::MeanSinceOr(const std::string& name, double from_s,
                                    double fallback) const {
  const TimeSeries* ts = Find(name);
  if (ts == nullptr || ts->Empty()) {
    return fallback;
  }
  double mean = ts->MeanSince(from_s);
  return ts->Count() > 0 ? mean : fallback;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, ts] : series_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, c] : counters_) {
    names.push_back(name);
  }
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    names.push_back(name);
  }
  return names;
}

void MetricsRegistry::Clear() {
  series_.clear();
  counters_.clear();
  histograms_.clear();
}

std::string TaskMetric(int task_id, const std::string& metric) {
  return Sprintf("task.%d.%s", task_id, metric.c_str());
}

std::string WorkerMetric(int worker_id, const std::string& metric) {
  return Sprintf("worker.%d.%s", worker_id, metric.c_str());
}

std::string OperatorMetric(int op_id, const std::string& metric) {
  return Sprintf("op.%d.%s", op_id, metric.c_str());
}

std::string QueryMetric(const std::string& query, const std::string& metric) {
  return Sprintf("query.%s.%s", query.c_str(), metric.c_str());
}

}  // namespace capsys
