#include "src/metrics/metrics.h"

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {

void TimeSeries::Record(double time_s, double value) {
  points_.push_back(Point{.time_s = time_s, .value = value});
}

double TimeSeries::Last() const {
  CAPSYS_CHECK(!points_.empty());
  return points_.back().value;
}

double TimeSeries::LastTime() const {
  CAPSYS_CHECK(!points_.empty());
  return points_.back().time_s;
}

double TimeSeries::MeanOver(double from_s, double to_s) const {
  double sum = 0.0;
  size_t n = 0;
  for (const auto& p : points_) {
    if (p.time_s >= from_s && p.time_s <= to_s) {
      sum += p.value;
      ++n;
    }
  }
  return n > 0 ? sum / static_cast<double>(n) : 0.0;
}

void MetricsRegistry::Record(const std::string& name, double time_s, double value) {
  series_[name].Record(time_s, value);
}

TimeSeries& MetricsRegistry::Series(const std::string& name) { return series_[name]; }

const TimeSeries* MetricsRegistry::Find(const std::string& name) const {
  auto it = series_.find(name);
  return it != series_.end() ? &it->second : nullptr;
}

double MetricsRegistry::LastOr(const std::string& name, double fallback) const {
  const TimeSeries* ts = Find(name);
  return (ts != nullptr && !ts->Empty()) ? ts->Last() : fallback;
}

double MetricsRegistry::MeanSinceOr(const std::string& name, double from_s,
                                    double fallback) const {
  const TimeSeries* ts = Find(name);
  if (ts == nullptr || ts->Empty()) {
    return fallback;
  }
  double mean = ts->MeanSince(from_s);
  return ts->Count() > 0 ? mean : fallback;
}

std::vector<std::string> MetricsRegistry::Names() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const auto& [name, ts] : series_) {
    names.push_back(name);
  }
  return names;
}

void MetricsRegistry::Clear() { series_.clear(); }

std::string TaskMetric(int task_id, const std::string& metric) {
  return Sprintf("task.%d.%s", task_id, metric.c_str());
}

std::string WorkerMetric(int worker_id, const std::string& metric) {
  return Sprintf("worker.%d.%s", worker_id, metric.c_str());
}

std::string OperatorMetric(int op_id, const std::string& metric) {
  return Sprintf("op.%d.%s", op_id, metric.c_str());
}

std::string QueryMetric(const std::string& query, const std::string& metric) {
  return Sprintf("query.%s.%s", query.c_str(), metric.c_str());
}

}  // namespace capsys
