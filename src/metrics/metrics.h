// Metrics collection (paper §5.1 "Metrics collector"): time series recorded during runtime
// that the scaling and placement controllers pull on demand.
#ifndef SRC_METRICS_METRICS_H_
#define SRC_METRICS_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace capsys {

// One timestamped sample stream for a single metric (e.g. "task.3.true_rate").
class TimeSeries {
 public:
  void Record(double time_s, double value);

  size_t Count() const { return points_.size(); }
  bool Empty() const { return points_.empty(); }
  double Last() const;
  double LastTime() const;

  // Mean of samples with time in [from_s, to_s].
  double MeanOver(double from_s, double to_s) const;
  // Mean of all samples from `from_s` to the end.
  double MeanSince(double from_s) const { return MeanOver(from_s, 1e300); }
  double Mean() const { return MeanOver(-1e300, 1e300); }

  struct Point {
    double time_s;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
};

// Named registry of time series. Metric names follow "scope.id.metric" convention, e.g.
// "task.7.true_rate", "worker.2.cpu_util", "query.0.backpressure".
class MetricsRegistry {
 public:
  void Record(const std::string& name, double time_s, double value);

  // Returns the series, creating an empty one if absent.
  TimeSeries& Series(const std::string& name);
  // Returns nullptr when the series does not exist.
  const TimeSeries* Find(const std::string& name) const;

  double LastOr(const std::string& name, double fallback) const;
  double MeanSinceOr(const std::string& name, double from_s, double fallback) const;

  std::vector<std::string> Names() const;
  void Clear();

 private:
  std::map<std::string, TimeSeries> series_;
};

// Standard metric name builders so producers and consumers agree on keys.
std::string TaskMetric(int task_id, const std::string& metric);
std::string WorkerMetric(int worker_id, const std::string& metric);
std::string OperatorMetric(int op_id, const std::string& metric);
std::string QueryMetric(const std::string& query, const std::string& metric);

}  // namespace capsys

#endif  // SRC_METRICS_METRICS_H_
