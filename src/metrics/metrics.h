// Metrics collection (paper §5.1 "Metrics collector"): time series recorded during runtime
// that the scaling and placement controllers pull on demand.
#ifndef SRC_METRICS_METRICS_H_
#define SRC_METRICS_METRICS_H_

#include <map>
#include <string>
#include <vector>

#include "src/common/stats.h"

namespace capsys {

// One timestamped sample stream for a single metric (e.g. "task.3.true_rate"). Samples
// must be appended in non-decreasing time order (CHECKed); windowed queries exploit the
// ordering with binary search over a running prefix sum, so MeanOver is O(log n) however
// long the series grows — controllers poll these on every decision.
class TimeSeries {
 public:
  void Record(double time_s, double value);

  size_t Count() const { return points_.size(); }
  bool Empty() const { return points_.empty(); }
  double Last() const;
  double LastTime() const;

  // Mean of samples with time in [from_s, to_s].
  double MeanOver(double from_s, double to_s) const;
  // Mean of all samples from `from_s` to the end.
  double MeanSince(double from_s) const { return MeanOver(from_s, 1e300); }
  double Mean() const { return MeanOver(-1e300, 1e300); }

  struct Point {
    double time_s;
    double value;
  };
  const std::vector<Point>& points() const { return points_; }

 private:
  std::vector<Point> points_;
  std::vector<double> cumsum_;  // cumsum_[i] = sum of values[0..i]
};

// Monotonically increasing count (events, ticks, retries). Prometheus-exported as a
// counter.
class Counter {
 public:
  void Add(uint64_t n = 1) { value_ += n; }
  uint64_t Value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Fixed-bucket histogram of an observed quantity (latencies, decision times). Bucket counts
// and the sum export in Prometheus histogram format; exact p50/p95/p99 come from the
// retained sample distribution (src/common/stats) — fine at the experiment scales here.
class Histogram {
 public:
  // `upper_bounds` must be strictly increasing; an implicit +Inf bucket is appended.
  explicit Histogram(std::vector<double> upper_bounds = DefaultBuckets());

  void Observe(double value);

  size_t Count() const { return samples_.Count(); }
  double Sum() const { return sum_; }
  double Mean() const { return samples_.Mean(); }
  // Exact linear-interpolated percentile over the retained samples, q in [0, 100].
  double Percentile(double q) const { return samples_.Percentile(q); }

  const std::vector<double>& bounds() const { return bounds_; }
  // One count per bound plus the final +Inf bucket; non-cumulative.
  const std::vector<uint64_t>& bucket_counts() const { return bucket_counts_; }

  // Exponential 1us..30s bounds in seconds — suits the decision/step latencies here.
  static std::vector<double> DefaultBuckets();

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> bucket_counts_;
  double sum_ = 0.0;
  Distribution samples_;
};

// Named registry of time series, counters, and histograms. Metric names follow the
// "scope.id.metric" convention, e.g. "task.7.true_rate", "worker.2.cpu_util",
// "query.0.backpressure". The three instrument kinds live in separate namespaces — a
// counter and a series may share a name.
class MetricsRegistry {
 public:
  void Record(const std::string& name, double time_s, double value);

  // Returns the series, creating an empty one if absent.
  TimeSeries& Series(const std::string& name);
  // Returns nullptr when the series does not exist.
  const TimeSeries* Find(const std::string& name) const;

  // Returns the counter, creating a zeroed one if absent.
  Counter& GetCounter(const std::string& name);
  const Counter* FindCounter(const std::string& name) const;

  // Returns the histogram, creating one if absent. `upper_bounds` only applies on
  // creation (empty = Histogram::DefaultBuckets()); later calls ignore it.
  Histogram& GetHistogram(const std::string& name, std::vector<double> upper_bounds = {});
  const Histogram* FindHistogram(const std::string& name) const;

  double LastOr(const std::string& name, double fallback) const;
  double MeanSinceOr(const std::string& name, double from_s, double fallback) const;

  std::vector<std::string> Names() const;
  std::vector<std::string> CounterNames() const;
  std::vector<std::string> HistogramNames() const;
  void Clear();

 private:
  std::map<std::string, TimeSeries> series_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
};

// Standard metric name builders so producers and consumers agree on keys.
std::string TaskMetric(int task_id, const std::string& metric);
std::string WorkerMetric(int worker_id, const std::string& metric);
std::string OperatorMetric(int op_id, const std::string& metric);
std::string QueryMetric(const std::string& query, const std::string& metric);

}  // namespace capsys

#endif  // SRC_METRICS_METRICS_H_
