#include "src/checkpoint/checkpoint.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/obs/events.h"

namespace capsys {

const char* CheckpointStateName(CheckpointState state) {
  switch (state) {
    case CheckpointState::kInProgress:
      return "in_progress";
    case CheckpointState::kCompleted:
      return "completed";
    case CheckpointState::kFailed:
      return "failed";
    case CheckpointState::kExpired:
      return "expired";
  }
  return "?";
}

std::string CheckpointRecord::ToString() const {
  return Sprintf("ckpt#%llu t=%.1f..%.1f %s full=%llu delta=%llu pos=%.0f%s%s",
                 static_cast<unsigned long long>(id), trigger_time_s, end_time_s,
                 CheckpointStateName(state), static_cast<unsigned long long>(full_bytes),
                 static_cast<unsigned long long>(delta_bytes), source_records,
                 failure_reason.empty() ? "" : " reason=", failure_reason.c_str());
}

CheckpointCoordinator::CheckpointCoordinator(CheckpointOptions options, StateGrowthModel model,
                                             MetricsRegistry* telemetry)
    : options_(options), model_(model), telemetry_(telemetry),
      next_trigger_s_(options.interval_s) {
  CAPSYS_CHECK(options_.interval_s > 0.0);
  CAPSYS_CHECK(options_.timeout_s > 0.0);
  CAPSYS_CHECK(options_.retained >= 1);
  CAPSYS_CHECK(options_.write_bandwidth_bps > 0.0);
}

double CheckpointCoordinator::InFlightIoBps() const {
  if (!in_flight_) {
    return 0.0;
  }
  double upload_s = current_end_s_ - current_.trigger_time_s - options_.alignment_s;
  if (upload_s <= 1e-9) {
    return 0.0;
  }
  // A doomed-to-expire upload runs at the configured bandwidth until the timeout truncates
  // it; it never transfers faster than the backend allows.
  return std::min(static_cast<double>(current_.delta_bytes) / upload_s,
                  options_.write_bandwidth_bps);
}

const CheckpointRecord* CheckpointCoordinator::LastCompleted() const {
  return retained_.empty() ? nullptr : &retained_.back();
}

void CheckpointCoordinator::AdvanceTo(double now, double source_records) {
  CAPSYS_CHECK_MSG(now + 1e-9 >= now_, "coordinator time must not go backwards");
  now_ = std::max(now_, now);

  // Complete / expire the in-flight checkpoint once its end time passes.
  if (in_flight_ && now_ + 1e-9 >= current_end_s_) {
    if (force_fail_) {
      Finish(CheckpointState::kFailed, current_end_s_, "failure_storm");
    } else if (current_end_s_ - current_.trigger_time_s + 1e-9 >= options_.timeout_s) {
      Finish(CheckpointState::kExpired, current_.trigger_time_s + options_.timeout_s, "");
    } else {
      Finish(CheckpointState::kCompleted, current_end_s_, "");
    }
  }

  if (in_flight_ || now_ + 1e-9 < next_trigger_s_) {
    return;
  }

  // Trigger: the barrier captures the source position and the state size right now.
  current_ = CheckpointRecord{};
  current_.id = next_id_++;
  current_.trigger_time_s = now_;
  current_.state = CheckpointState::kInProgress;
  current_.source_records = source_records;
  current_.full_bytes = model_.BytesAt(source_records);
  const CheckpointRecord* prev = LastCompleted();
  if (options_.incremental && prev != nullptr) {
    double delta = model_.bytes_per_record * (source_records - prev->source_records);
    current_.delta_bytes = std::min(
        current_.full_bytes, static_cast<uint64_t>(std::max(0.0, delta)));
  } else {
    current_.delta_bytes = current_.full_bytes;
  }
  double duration = options_.alignment_s +
                    static_cast<double>(current_.delta_bytes) / options_.write_bandwidth_bps;
  current_end_s_ = current_.trigger_time_s + std::min(duration, options_.timeout_s);
  in_flight_ = true;
  ++triggered_;
  EmitCheckpointStarted(now_, current_.id, current_.full_bytes, current_.delta_bytes);
}

void CheckpointCoordinator::FailInFlight(double now, const std::string& reason) {
  if (!in_flight_) {
    return;
  }
  Finish(CheckpointState::kFailed, std::max(now, current_.trigger_time_s), reason);
}

void CheckpointCoordinator::Finish(CheckpointState state, double at,
                                   const std::string& reason) {
  current_.state = state;
  current_.end_time_s = at;
  current_.failure_reason = reason;
  double duration = current_.end_time_s - current_.trigger_time_s;
  switch (state) {
    case CheckpointState::kCompleted:
      ++completed_;
      retained_.push_back(current_);
      while (static_cast<int>(retained_.size()) > options_.retained) {
        retained_.pop_front();  // oldest checkpoints age out of the retention window
      }
      EmitCheckpointCompleted(current_.end_time_s, current_.id, duration,
                              current_.delta_bytes);
      if (telemetry_ != nullptr) {
        telemetry_->GetCounter("checkpoint.0.completed").Add();
        telemetry_->GetHistogram("checkpoint.0.duration_s").Observe(duration);
        telemetry_->GetHistogram("checkpoint.0.delta_bytes")
            .Observe(static_cast<double>(current_.delta_bytes));
      }
      break;
    case CheckpointState::kFailed:
      ++failed_;
      EmitCheckpointFailed(current_.end_time_s, current_.id, reason);
      if (telemetry_ != nullptr) {
        telemetry_->GetCounter("checkpoint.0.failed").Add();
      }
      break;
    case CheckpointState::kExpired:
      ++expired_;
      EmitCheckpointExpired(current_.end_time_s, current_.id, options_.timeout_s);
      if (telemetry_ != nullptr) {
        telemetry_->GetCounter("checkpoint.0.expired").Add();
      }
      break;
    case CheckpointState::kInProgress:
      CAPSYS_CHECK_MSG(false, "cannot finish a checkpoint as in_progress");
  }
  history_.push_back(current_);
  in_flight_ = false;
  next_trigger_s_ = std::max(current_.trigger_time_s + options_.interval_s,
                             current_.end_time_s + options_.min_pause_s);
}

std::string CheckpointCoordinator::ToString() const {
  return Sprintf("checkpoints: triggered=%d completed=%d failed=%d expired=%d retained=%zu%s",
                 triggered_, completed_, failed_, expired_, retained_.size(),
                 in_flight_ ? " (one in flight)" : "");
}

}  // namespace capsys
