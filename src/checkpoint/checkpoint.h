// Checkpoint coordinator (robustness extension): aligned, Chandy–Lamport-style snapshots
// on a configurable interval, with per-checkpoint timeout, failure/expiry handling, and a
// retained-checkpoints window — the Flink fault-tolerance contract CAPSys inherits (§2.2).
//
// The coordinator is analytic and time-driven: the experiment drivers advance it on their
// domain clock and it models each checkpoint's lifecycle — barrier alignment, snapshot
// upload at a bounded write bandwidth, completion or failure — without doing real I/O.
// State size comes from a StateGrowthModel (bytes appended per source record, saturating at
// a window-eviction cap), so checkpoint size, duration, and the recovery time derived from
// them all scale with workload exactly as the paper's cost model assumes. The record-level
// counterpart (memtable freeze + incremental run manifests) lives in
// src/statestore/state_store.h; both charge snapshot bytes into the worker I/O dimension so
// checkpoint traffic contends with compaction (§3.3).
#ifndef SRC_CHECKPOINT_CHECKPOINT_H_
#define SRC_CHECKPOINT_CHECKPOINT_H_

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "src/metrics/metrics.h"

namespace capsys {

struct CheckpointOptions {
  // Trigger cadence (Flink: execution.checkpointing.interval).
  double interval_s = 30.0;
  // Minimum pause between the end of one checkpoint and the next trigger.
  double min_pause_s = 2.0;
  // A checkpoint still in flight this long after its trigger is discarded as expired.
  double timeout_s = 120.0;
  // Completed checkpoints kept restorable (Flink: state.checkpoints.num-retained).
  int retained = 2;
  // Ship only state written since the last completed checkpoint (RocksDB incremental).
  bool incremental = true;
  // Barrier alignment overhead per checkpoint: the time for barriers to flow through the
  // pipeline and tasks to align their input channels.
  double alignment_s = 0.5;
  // Aggregate snapshot upload bandwidth across all stateful tasks (bytes/s). Checkpoint
  // duration = alignment_s + delta_bytes / write_bandwidth_bps.
  double write_bandwidth_bps = 60e6;
};

// Live state size as a function of the source position. Windowed operators retain a
// bounded history, so growth saturates at `max_bytes` (eviction keeps up with appends).
struct StateGrowthModel {
  double bytes_per_record = 64.0;
  uint64_t max_bytes = 256ull << 20;

  uint64_t BytesAt(double source_records) const {
    double b = bytes_per_record * source_records;
    double cap = static_cast<double>(max_bytes);
    return static_cast<uint64_t>(b < cap ? b : cap);
  }
};

enum class CheckpointState : int {
  kInProgress = 0,
  kCompleted,
  kFailed,    // a participant crashed or a failure storm hit mid-checkpoint
  kExpired,   // outlived timeout_s
};

const char* CheckpointStateName(CheckpointState state);

struct CheckpointRecord {
  uint64_t id = 0;
  double trigger_time_s = 0.0;
  double end_time_s = 0.0;  // completion / failure / expiry time
  CheckpointState state = CheckpointState::kInProgress;
  uint64_t full_bytes = 0;   // live state at the barrier
  uint64_t delta_bytes = 0;  // bytes shipped (== full_bytes when not incremental / first)
  // Source position (cumulative records emitted) captured by the barrier — the replay
  // point recovery rewinds the sources to.
  double source_records = 0.0;
  std::string failure_reason;

  std::string ToString() const;
};

// Drives the checkpoint lifecycle on the caller's domain clock. All telemetry (typed
// events, duration/size histograms, outcome counters) flows through the observability
// subsystem; pass a registry to collect the instruments into a run's telemetry bundle.
class CheckpointCoordinator {
 public:
  CheckpointCoordinator(CheckpointOptions options, StateGrowthModel model,
                        MetricsRegistry* telemetry = nullptr);

  // Advances the coordinator to `now` (monotonically non-decreasing), with the sources at
  // cumulative position `source_records`. Triggers new checkpoints on the configured
  // cadence and completes/expires the in-flight one when its end time passes.
  void AdvanceTo(double now, double source_records);

  // Fails the in-flight checkpoint (worker crash mid-checkpoint, job reconfiguration).
  // No-op when nothing is in flight.
  void FailInFlight(double now, const std::string& reason);

  // Checkpoint-failure storm: while set, every checkpoint fails at the moment it would
  // have completed (the injector toggles this from FaultType::kCheckpointFailure).
  void SetForceFail(bool force_fail) { force_fail_ = force_fail; }

  bool InFlight() const { return in_flight_; }
  // Extra disk traffic (bytes/s) while a snapshot upload is in flight; zero otherwise.
  // Drivers charge this into the workers' I/O dimension so checkpointing contends with
  // compaction.
  double InFlightIoBps() const;

  // The newest completed checkpoint, or nullptr when none ever completed. Recovery always
  // restores from this record — never from an in-flight or failed attempt.
  const CheckpointRecord* LastCompleted() const;
  // Completed checkpoints still restorable, oldest first (bounded by options.retained).
  const std::deque<CheckpointRecord>& retained() const { return retained_; }
  // Every checkpoint ever triggered, in trigger order, with its final state.
  const std::vector<CheckpointRecord>& history() const { return history_; }

  int triggered() const { return triggered_; }
  int completed() const { return completed_; }
  int failed() const { return failed_; }
  int expired() const { return expired_; }

  const CheckpointOptions& options() const { return options_; }
  const StateGrowthModel& model() const { return model_; }

  std::string ToString() const;

 private:
  void Finish(CheckpointState state, double at, const std::string& reason);

  CheckpointOptions options_;
  StateGrowthModel model_;
  MetricsRegistry* telemetry_ = nullptr;  // not owned; may be null

  double now_ = 0.0;
  double next_trigger_s_;
  uint64_t next_id_ = 1;
  bool force_fail_ = false;

  bool in_flight_ = false;
  CheckpointRecord current_;
  double current_end_s_ = 0.0;  // when the in-flight checkpoint completes (or expires)

  std::deque<CheckpointRecord> retained_;
  std::vector<CheckpointRecord> history_;
  int triggered_ = 0;
  int completed_ = 0;
  int failed_ = 0;
  int expired_ = 0;
};

}  // namespace capsys

#endif  // SRC_CHECKPOINT_CHECKPOINT_H_
