// Recovery-time model (robustness extension): how long a reconfiguration or failure
// recovery actually blacks the job out, derived from checkpoint state instead of a fixed
// constant. Restore time is snapshot bytes over the workers' disk bandwidth; replay time is
// the source backlog since the last completed checkpoint barrier over the new plan's
// sustainable rate. The split gives the two delivery-guarantee accountings:
//   - exactly-once: outputs since the barrier were not committed, so the sources rewind and
//     the replay happens inside the blackout — longer downtime, zero lost and zero
//     duplicate records;
//   - at-least-once: outputs since the barrier were already delivered, so the sources
//     resume from their current position — shorter downtime, but every replayed record is
//     delivered again (counted as duplicates).
// When checkpointing is disabled (coordinator == nullptr) or nothing ever completed, the
// model falls back to the caller's fixed blackout (the pre-checkpoint `reconfigure_downtime_s`
// behaviour), which keeps the constant available as a documented escape hatch.
#ifndef SRC_CHECKPOINT_RECOVERY_MODEL_H_
#define SRC_CHECKPOINT_RECOVERY_MODEL_H_

#include <cstdint>
#include <string>

#include "src/checkpoint/checkpoint.h"

namespace capsys {

struct RecoveryModelOptions {
  // Fixed blackout used when no completed checkpoint is available to restore from.
  double fallback_downtime_s = 5.0;
  // Delivery guarantee: true = exactly-once (replay inside the blackout), false =
  // at-least-once (resume immediately, replayed records become duplicates).
  bool exactly_once = true;
  // Floor on the restore phase: job teardown, scheduling, and task redeploy take this long
  // even for tiny state.
  double min_restore_s = 1.0;
};

struct RecoveryEstimate {
  bool used_fallback = false;   // no completed checkpoint — fixed blackout applied
  uint64_t checkpoint_id = 0;   // restored checkpoint (0 when used_fallback)
  uint64_t restored_bytes = 0;  // full snapshot bytes re-materialized on local disks
  double restore_s = 0.0;       // restored_bytes / restore bandwidth (+ floor)
  double replay_s = 0.0;        // exactly-once only: backlog / replay rate
  double downtime_s = 0.0;      // restore_s + replay_s, or the fallback
  double replayed_records = 0.0;   // records between the barrier and the failure point
  double duplicate_records = 0.0;  // at-least-once: replayed records delivered twice
  double lost_records = 0.0;       // always 0 when restoring from a completed checkpoint

  std::string ToString() const;
};

// Estimates the blackout for a recovery at time `now` with the sources at cumulative
// position `source_records`. `replay_rate` is the rate the restored plan re-processes the
// backlog at (the plan's sustainable rate); `restore_bandwidth_bps` the aggregate disk
// bandwidth the snapshot is re-materialized at. `coordinator` may be null (checkpointing
// disabled) — the fixed fallback applies.
RecoveryEstimate EstimateRecovery(const CheckpointCoordinator* coordinator, double now,
                                  double source_records, double replay_rate,
                                  double restore_bandwidth_bps,
                                  const RecoveryModelOptions& options);

}  // namespace capsys

#endif  // SRC_CHECKPOINT_RECOVERY_MODEL_H_
