#include "src/checkpoint/recovery_model.h"

#include <algorithm>

#include "src/common/str.h"

namespace capsys {

std::string RecoveryEstimate::ToString() const {
  if (used_fallback) {
    return Sprintf("fallback blackout %.1fs (no completed checkpoint)", downtime_s);
  }
  return Sprintf(
      "restore ckpt#%llu %llu bytes in %.2fs + replay %.0f records in %.2fs -> %.2fs down "
      "(dupes %.0f, lost %.0f)",
      static_cast<unsigned long long>(checkpoint_id),
      static_cast<unsigned long long>(restored_bytes), restore_s, replayed_records, replay_s,
      downtime_s, duplicate_records, lost_records);
}

RecoveryEstimate EstimateRecovery(const CheckpointCoordinator* coordinator, double now,
                                  double source_records, double replay_rate,
                                  double restore_bandwidth_bps,
                                  const RecoveryModelOptions& options) {
  (void)now;
  RecoveryEstimate est;
  const CheckpointRecord* ckpt =
      coordinator != nullptr ? coordinator->LastCompleted() : nullptr;
  if (ckpt == nullptr) {
    // No snapshot to restore from: the job restarts empty after the fixed blackout, and
    // every record that built the lost state is gone (at-most-once).
    est.used_fallback = true;
    est.downtime_s = options.fallback_downtime_s;
    est.lost_records = coordinator != nullptr ? source_records : 0.0;
    return est;
  }
  est.checkpoint_id = ckpt->id;
  est.restored_bytes = ckpt->full_bytes;
  est.restore_s = options.min_restore_s;
  if (restore_bandwidth_bps > 1e-9) {
    est.restore_s += static_cast<double>(ckpt->full_bytes) / restore_bandwidth_bps;
  }
  est.replayed_records = std::max(0.0, source_records - ckpt->source_records);
  if (options.exactly_once) {
    // The sources rewind to the barrier; the backlog is re-processed inside the blackout
    // and its outputs are committed exactly once.
    est.replay_s = replay_rate > 1e-9 ? est.replayed_records / replay_rate : 0.0;
    est.downtime_s = est.restore_s + est.replay_s;
  } else {
    // At-least-once: resume from the current position — everything since the barrier was
    // already delivered once and will be delivered again by the restored state.
    est.duplicate_records = est.replayed_records;
    est.downtime_s = est.restore_s;
  }
  return est;
}

}  // namespace capsys
