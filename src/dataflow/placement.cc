#include "src/dataflow/placement.h"

#include <algorithm>
#include <map>

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {

bool Placement::IsComplete() const {
  for (WorkerId w : assignment_) {
    if (w == kInvalidId) {
      return false;
    }
  }
  return !assignment_.empty();
}

std::string Placement::Validate(const PhysicalGraph& graph, const Cluster& cluster) const {
  if (static_cast<int>(assignment_.size()) != graph.num_tasks()) {
    return Sprintf("plan covers %zu tasks but graph has %d", assignment_.size(),
                   graph.num_tasks());
  }
  std::vector<int> load(static_cast<size_t>(cluster.num_workers()), 0);
  for (size_t t = 0; t < assignment_.size(); ++t) {
    WorkerId w = assignment_[t];
    if (w == kInvalidId) {
      return Sprintf("task %zu is unassigned", t);
    }
    if (w < 0 || w >= cluster.num_workers()) {
      return Sprintf("task %zu assigned to invalid worker %d", t, w);
    }
    ++load[static_cast<size_t>(w)];
  }
  for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
    if (load[static_cast<size_t>(w)] > cluster.worker(w).spec.slots) {
      return Sprintf("worker %d has %d tasks but only %d slots", w, load[static_cast<size_t>(w)],
                     cluster.worker(w).spec.slots);
    }
  }
  return "";
}

std::vector<std::vector<TaskId>> Placement::TasksByWorker(const Cluster& cluster) const {
  std::vector<std::vector<TaskId>> by_worker(static_cast<size_t>(cluster.num_workers()));
  for (size_t t = 0; t < assignment_.size(); ++t) {
    WorkerId w = assignment_[t];
    if (w != kInvalidId) {
      by_worker[static_cast<size_t>(w)].push_back(static_cast<TaskId>(t));
    }
  }
  return by_worker;
}

std::vector<int> Placement::LoadByWorker(const Cluster& cluster) const {
  std::vector<int> load(static_cast<size_t>(cluster.num_workers()), 0);
  for (WorkerId w : assignment_) {
    if (w != kInvalidId) {
      ++load[static_cast<size_t>(w)];
    }
  }
  return load;
}

double Placement::RemoteFraction(const PhysicalGraph& graph, TaskId t) const {
  const auto& downs = graph.DownstreamChannels(t);
  if (downs.empty()) {
    return 0.0;
  }
  int remote = 0;
  WorkerId wt = WorkerOf(t);
  for (ChannelId c : downs) {
    if (WorkerOf(graph.channel(c).to) != wt) {
      ++remote;
    }
  }
  return static_cast<double>(remote) / static_cast<double>(downs.size());
}

int Placement::ColocationDegree(const PhysicalGraph& graph, const Cluster& cluster,
                                OperatorId op) const {
  std::vector<int> count(static_cast<size_t>(cluster.num_workers()), 0);
  int best = 0;
  for (TaskId t : graph.TasksOf(op)) {
    WorkerId w = WorkerOf(t);
    if (w != kInvalidId) {
      best = std::max(best, ++count[static_cast<size_t>(w)]);
    }
  }
  return best;
}

std::string Placement::CanonicalKey(const PhysicalGraph& graph, const Cluster& cluster) const {
  // Per worker, build the sorted list of operator ids of its tasks; then sort the worker
  // descriptors. Equal keys <=> identical plans up to worker permutation.
  std::vector<std::string> worker_keys(static_cast<size_t>(cluster.num_workers()));
  std::vector<std::vector<int>> ops(static_cast<size_t>(cluster.num_workers()));
  for (size_t t = 0; t < assignment_.size(); ++t) {
    WorkerId w = assignment_[t];
    if (w != kInvalidId) {
      ops[static_cast<size_t>(w)].push_back(graph.task(static_cast<TaskId>(t)).op);
    }
  }
  for (size_t w = 0; w < ops.size(); ++w) {
    std::sort(ops[w].begin(), ops[w].end());
    // Prefix the worker's hardware signature: heterogeneous workers are only
    // interchangeable with workers of identical capacity.
    const auto& spec = cluster.worker(static_cast<WorkerId>(w)).spec;
    std::string key = Sprintf("[%d %.17g %.17g %.17g]", spec.slots, spec.cpu_capacity,
                              spec.io_bandwidth_bps, spec.net_bandwidth_bps);
    for (int o : ops[w]) {
      key += Sprintf("%d,", o);
    }
    worker_keys[w] = key;
  }
  std::sort(worker_keys.begin(), worker_keys.end());
  return Join(worker_keys, "|");
}

std::string Placement::ToString(const PhysicalGraph& graph) const {
  std::map<WorkerId, std::vector<std::string>> by_worker;
  for (size_t t = 0; t < assignment_.size(); ++t) {
    const Task& task = graph.task(static_cast<TaskId>(t));
    by_worker[assignment_[t]].push_back(
        Sprintf("%s.%d", graph.logical().op(task.op).name.c_str(), task.index));
  }
  std::vector<std::string> parts;
  for (const auto& [w, names] : by_worker) {
    parts.push_back(Sprintf("w%d:{%s}", w, Join(names, ",").c_str()));
  }
  return Join(parts, " ");
}

}  // namespace capsys
