// Operator chaining (paper §6.1): Flink fuses operators connected by forward edges into a
// single task chain; "CAPS works as-is with chaining enabled — it considers any chain as a
// single operator during profiling and when exploring the search space."
//
// ChainOperators() fuses maximal linear segments of a logical graph — runs of operators
// where each link is the sole output of its producer and sole input of its consumer, with
// equal parallelism and a chainable partition scheme — into single operators whose profile
// aggregates the segment (per-record costs compose through the selectivities; the chain's
// selectivity is their product; the chain emits the last operator's records).
#ifndef SRC_DATAFLOW_CHAINING_H_
#define SRC_DATAFLOW_CHAINING_H_

#include <vector>

#include "src/dataflow/logical_graph.h"

namespace capsys {

struct ChainingOptions {
  // Edge schemes that permit chaining (Flink chains forward edges; rebalance edges are
  // chainable when parallelism matches, which Flink's default chaining also exploits).
  bool chain_forward = true;
  bool chain_rebalance = true;
  // Never chain across these kinds (the paper separates sources from downstream operators
  // because generation has different resource requirements).
  bool chain_sources = false;
};

struct ChainingResult {
  LogicalGraph graph;
  // chain_of[original operator id] = operator id in the chained graph.
  std::vector<OperatorId> chain_of;
};

ChainingResult ChainOperators(const LogicalGraph& graph, const ChainingOptions& options = {});

}  // namespace capsys

#endif  // SRC_DATAFLOW_CHAINING_H_
