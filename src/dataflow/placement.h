// Task placement plan f : V_p -> V_w (paper §2.1, §4.1): maps every task in the physical
// execution graph to a worker, with at most `slots` tasks per worker.
#ifndef SRC_DATAFLOW_PLACEMENT_H_
#define SRC_DATAFLOW_PLACEMENT_H_

#include <string>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/types.h"
#include "src/dataflow/physical_graph.h"

namespace capsys {

class Placement {
 public:
  Placement() = default;
  // Creates an unassigned placement for `num_tasks` tasks.
  explicit Placement(int num_tasks)
      : assignment_(static_cast<size_t>(num_tasks), kInvalidId) {}
  explicit Placement(std::vector<WorkerId> assignment) : assignment_(std::move(assignment)) {}

  int num_tasks() const { return static_cast<int>(assignment_.size()); }

  WorkerId WorkerOf(TaskId t) const { return assignment_[static_cast<size_t>(t)]; }
  void Assign(TaskId t, WorkerId w) { assignment_[static_cast<size_t>(t)] = w; }

  bool IsComplete() const;

  // Validates constraints (1) and (2) of §4.1: every task assigned exactly one worker and
  // no worker exceeds its slot count. Returns an error string or empty when valid.
  std::string Validate(const PhysicalGraph& graph, const Cluster& cluster) const;

  // Tasks placed on each worker.
  std::vector<std::vector<TaskId>> TasksByWorker(const Cluster& cluster) const;

  // Number of tasks per worker.
  std::vector<int> LoadByWorker(const Cluster& cluster) const;

  // |D_r(f, t)| / |D(t)|: the fraction of task t's downstream physical channels that cross
  // workers under this placement (Table 1 / Eq. 8). Returns 0 for sink tasks.
  double RemoteFraction(const PhysicalGraph& graph, TaskId t) const;

  // Maximum number of tasks of `op` co-located on any single worker — the "co-location
  // degree" the paper's §3 study varies.
  int ColocationDegree(const PhysicalGraph& graph, const Cluster& cluster, OperatorId op) const;

  // Canonical key identifying the plan up to worker renaming *within the same spec*:
  // because workers are homogeneous, two plans that differ only by permuting workers are
  // equivalent (the duplicate-elimination insight of §4.3). The key is the multiset of
  // per-worker task-operator multisets.
  std::string CanonicalKey(const PhysicalGraph& graph, const Cluster& cluster) const;

  const std::vector<WorkerId>& assignment() const { return assignment_; }

  std::string ToString(const PhysicalGraph& graph) const;

  friend bool operator==(const Placement& a, const Placement& b) {
    return a.assignment_ == b.assignment_;
  }

 private:
  std::vector<WorkerId> assignment_;  // indexed by TaskId
};

}  // namespace capsys

#endif  // SRC_DATAFLOW_PLACEMENT_H_
