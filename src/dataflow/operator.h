// Logical operator descriptors for streaming dataflow queries (paper §2.1).
#ifndef SRC_DATAFLOW_OPERATOR_H_
#define SRC_DATAFLOW_OPERATOR_H_

#include <string>

#include "src/common/types.h"

namespace capsys {

// Kinds of operators appearing in the evaluation queries. The kind determines default
// resource behaviour (e.g. windows/joins are stateful and I/O heavy, inference is compute
// heavy with large records) but all costs are carried explicitly in OperatorProfile so
// profiling can override them.
enum class OperatorKind : int {
  kSource,
  kMap,
  kFilter,
  kSlidingWindow,
  kTumblingWindowJoin,
  kIncrementalJoin,
  kSessionWindow,
  kAggregate,
  kProcessFunction,
  kInference,
  kSink,
};

const char* OperatorKindName(OperatorKind kind);

// Per-record resource requirements of one operator, i.e. the unit costs the CAPSys cost
// profiler measures (paper §5.1 "Cost profiling"): CPU-seconds, state-backend bytes
// (read+write), and emitted bytes per processed record, plus selectivity (output records
// per input record).
struct OperatorProfile {
  double cpu_per_record = 1e-5;    // CPU-seconds consumed per input record.
  double io_bytes_per_record = 0;  // State backend read+write bytes per input record.
  double out_bytes_per_record = 100;  // Bytes emitted per *output* record (record size).
  double selectivity = 1.0;           // Output records per input record.
  bool stateful = false;              // Accesses the state backend.
  // Fraction of CPU time subject to GC-style periodic spikes (Q3-inf inference behaviour).
  double gc_spike_fraction = 0.0;
};

// A logical operator: processing logic replicated into `parallelism` identical tasks.
struct LogicalOperator {
  OperatorId id = kInvalidId;
  std::string name;
  OperatorKind kind = OperatorKind::kMap;
  int parallelism = 1;
  OperatorProfile profile;
};

// How an upstream operator's output is partitioned across downstream tasks.
enum class PartitionScheme : int {
  kForward,    // one-to-one; requires equal parallelism on both ends
  kHash,       // key-partitioned; every upstream task connects to every downstream task
  kRebalance,  // round-robin; all-to-all connectivity
};

const char* PartitionSchemeName(PartitionScheme scheme);

// A logical data stream between two operators.
struct LogicalEdge {
  OperatorId from = kInvalidId;
  OperatorId to = kInvalidId;
  PartitionScheme scheme = PartitionScheme::kHash;
};

}  // namespace capsys

#endif  // SRC_DATAFLOW_OPERATOR_H_
