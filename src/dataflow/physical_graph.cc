#include "src/dataflow/physical_graph.h"

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {

PhysicalGraph PhysicalGraph::Expand(const LogicalGraph& logical) {
  std::string err = logical.Validate();
  CAPSYS_CHECK_MSG(err.empty(), err);

  PhysicalGraph g;
  g.logical_ = logical;
  g.tasks_by_op_.resize(static_cast<size_t>(logical.num_operators()));
  for (const auto& op : logical.operators()) {
    for (int i = 0; i < op.parallelism; ++i) {
      Task t;
      t.id = static_cast<TaskId>(g.tasks_.size());
      t.op = op.id;
      t.index = i;
      g.tasks_.push_back(t);
      g.tasks_by_op_[static_cast<size_t>(op.id)].push_back(t.id);
    }
  }
  g.out_channels_.resize(g.tasks_.size());
  g.in_channels_.resize(g.tasks_.size());

  auto add_channel = [&g](TaskId from, TaskId to, PartitionScheme scheme) {
    Channel c;
    c.id = static_cast<ChannelId>(g.channels_.size());
    c.from = from;
    c.to = to;
    c.scheme = scheme;
    g.channels_.push_back(c);
    g.out_channels_[static_cast<size_t>(from)].push_back(c.id);
    g.in_channels_[static_cast<size_t>(to)].push_back(c.id);
  };

  for (const auto& e : logical.edges()) {
    const auto& ups = g.tasks_by_op_[static_cast<size_t>(e.from)];
    const auto& downs = g.tasks_by_op_[static_cast<size_t>(e.to)];
    if (e.scheme == PartitionScheme::kForward) {
      CAPSYS_CHECK(ups.size() == downs.size());
      for (size_t i = 0; i < ups.size(); ++i) {
        add_channel(ups[i], downs[i], e.scheme);
      }
    } else {
      for (TaskId u : ups) {
        for (TaskId d : downs) {
          add_channel(u, d, e.scheme);
        }
      }
    }
  }
  return g;
}

std::string PhysicalGraph::ToString() const {
  return Sprintf("%s: %d tasks, %d channels", logical_.name().c_str(), num_tasks(),
                 num_channels());
}

}  // namespace capsys
