#include "src/dataflow/rates.h"

#include "src/common/logging.h"

namespace capsys {

std::vector<OperatorRates> PropagateRates(const LogicalGraph& graph,
                                          const std::map<OperatorId, double>& source_rates) {
  std::vector<OperatorRates> rates(static_cast<size_t>(graph.num_operators()));
  for (OperatorId id : graph.TopologicalOrder()) {
    const auto& op = graph.op(id);
    auto& r = rates[static_cast<size_t>(id)];
    if (graph.Upstreams(id).empty()) {
      auto it = source_rates.find(id);
      r.input_rate = it != source_rates.end() ? it->second : 0.0;
    } else {
      double in = 0.0;
      for (OperatorId up : graph.Upstreams(id)) {
        in += rates[static_cast<size_t>(up)].output_rate;
      }
      r.input_rate = in;
    }
    r.output_rate = r.input_rate * op.profile.selectivity;
  }
  return rates;
}

std::vector<OperatorRates> PropagateRates(const LogicalGraph& graph, double source_rate) {
  std::map<OperatorId, double> source_rates;
  for (OperatorId id : graph.SourceIds()) {
    source_rates[id] = source_rate;
  }
  return PropagateRates(graph, source_rates);
}

ResourceVector TaskDemand(const LogicalOperator& op, const OperatorRates& rates) {
  CAPSYS_CHECK(op.parallelism >= 1);
  double per_task_in = rates.input_rate / op.parallelism;
  double per_task_out = rates.output_rate / op.parallelism;
  ResourceVector demand;
  demand.cpu = per_task_in * op.profile.cpu_per_record;
  demand.io = per_task_in * op.profile.io_bytes_per_record;
  demand.net = per_task_out * op.profile.out_bytes_per_record;
  return demand;
}

std::vector<ResourceVector> TaskDemands(const PhysicalGraph& graph,
                                        const std::vector<OperatorRates>& rates) {
  CAPSYS_CHECK(rates.size() == static_cast<size_t>(graph.num_operators()));
  std::vector<ResourceVector> demands(static_cast<size_t>(graph.num_tasks()));
  for (const auto& t : graph.tasks()) {
    const auto& op = graph.logical().op(t.op);
    demands[static_cast<size_t>(t.id)] = TaskDemand(op, rates[static_cast<size_t>(t.op)]);
  }
  return demands;
}

}  // namespace capsys
