// Physical execution graph G_p = (V_p, E_p): each logical operator is replicated into
// `parallelism` tasks and each data stream into physical channels (paper §2.1, Table 1).
#ifndef SRC_DATAFLOW_PHYSICAL_GRAPH_H_
#define SRC_DATAFLOW_PHYSICAL_GRAPH_H_

#include <string>
#include <vector>

#include "src/common/types.h"
#include "src/dataflow/logical_graph.h"

namespace capsys {

// One streaming task t in V_p. Tasks of the same operator are identical (the model
// assumption of §4.1; skew is handled upstream of placement).
struct Task {
  TaskId id = kInvalidId;
  OperatorId op = kInvalidId;
  int index = 0;  // Subtask index within the operator, [0, parallelism).
};

// One physical data link l in E_p connecting an upstream task to a downstream task.
struct Channel {
  ChannelId id = kInvalidId;
  TaskId from = kInvalidId;
  TaskId to = kInvalidId;
  PartitionScheme scheme = PartitionScheme::kHash;
};

class PhysicalGraph {
 public:
  PhysicalGraph() = default;

  // Expands the logical graph according to each operator's current parallelism. Forward
  // edges become one-to-one channels; hash/rebalance edges become all-to-all channels.
  static PhysicalGraph Expand(const LogicalGraph& logical);

  int num_tasks() const { return static_cast<int>(tasks_.size()); }
  int num_channels() const { return static_cast<int>(channels_.size()); }
  int num_operators() const { return static_cast<int>(tasks_by_op_.size()); }

  const Task& task(TaskId id) const { return tasks_[static_cast<size_t>(id)]; }
  const std::vector<Task>& tasks() const { return tasks_; }
  const Channel& channel(ChannelId id) const { return channels_[static_cast<size_t>(id)]; }
  const std::vector<Channel>& channels() const { return channels_; }

  // Tasks belonging to one logical operator, in subtask-index order.
  const std::vector<TaskId>& TasksOf(OperatorId op) const {
    return tasks_by_op_[static_cast<size_t>(op)];
  }

  // D(t): downstream physical channels originating from task t (Table 1). Empty for sinks.
  const std::vector<ChannelId>& DownstreamChannels(TaskId t) const {
    return out_channels_[static_cast<size_t>(t)];
  }
  const std::vector<ChannelId>& UpstreamChannels(TaskId t) const {
    return in_channels_[static_cast<size_t>(t)];
  }

  const LogicalGraph& logical() const { return logical_; }

  std::string ToString() const;

 private:
  LogicalGraph logical_;
  std::vector<Task> tasks_;
  std::vector<Channel> channels_;
  std::vector<std::vector<TaskId>> tasks_by_op_;
  std::vector<std::vector<ChannelId>> out_channels_;
  std::vector<std::vector<ChannelId>> in_channels_;
};

}  // namespace capsys

#endif  // SRC_DATAFLOW_PHYSICAL_GRAPH_H_
