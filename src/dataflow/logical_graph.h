// Logical directed acyclic query graph: vertices are logical operators, edges are data
// streams (paper §2.1, Figure 1 step ①).
#ifndef SRC_DATAFLOW_LOGICAL_GRAPH_H_
#define SRC_DATAFLOW_LOGICAL_GRAPH_H_

#include <string>
#include <vector>

#include "src/dataflow/operator.h"

namespace capsys {

class LogicalGraph {
 public:
  LogicalGraph() = default;
  explicit LogicalGraph(std::string name) : name_(std::move(name)) {}

  // Adds an operator and returns its id. Parallelism defaults to 1 and can be overridden
  // later by the auto-scaling controller via SetParallelism.
  OperatorId AddOperator(const std::string& name, OperatorKind kind,
                         const OperatorProfile& profile, int parallelism = 1);

  // Adds a stream from `from` to `to`. Both operators must already exist.
  void AddEdge(OperatorId from, OperatorId to, PartitionScheme scheme = PartitionScheme::kHash);

  void SetParallelism(OperatorId op, int parallelism);
  void SetParallelism(const std::vector<int>& parallelism);

  int num_operators() const { return static_cast<int>(operators_.size()); }
  int total_parallelism() const;

  const LogicalOperator& op(OperatorId id) const { return operators_[static_cast<size_t>(id)]; }
  LogicalOperator& mutable_op(OperatorId id) { return operators_[static_cast<size_t>(id)]; }
  const std::vector<LogicalOperator>& operators() const { return operators_; }
  const std::vector<LogicalEdge>& edges() const { return edges_; }

  std::vector<OperatorId> Upstreams(OperatorId id) const;
  std::vector<OperatorId> Downstreams(OperatorId id) const;
  std::vector<OperatorId> SourceIds() const;
  std::vector<OperatorId> SinkIds() const;

  // Operators in topological order. CHECK-fails if the graph has a cycle.
  std::vector<OperatorId> TopologicalOrder() const;

  // Validates DAG-ness and forward-edge parallelism compatibility; returns an error
  // description or empty string when valid.
  std::string Validate() const;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // Merges `other` into this graph (disjoint union), returning the operator-id offset that
  // was applied to `other`'s ids. Used by the multi-tenant experiment, which treats all six
  // queries as a single dataflow graph (paper §6.2.2).
  OperatorId Merge(const LogicalGraph& other);

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<LogicalOperator> operators_;
  std::vector<LogicalEdge> edges_;
};

}  // namespace capsys

#endif  // SRC_DATAFLOW_LOGICAL_GRAPH_H_
