#include "src/dataflow/chaining.h"

#include <algorithm>

#include "src/common/logging.h"

namespace capsys {
namespace {

bool SchemeChainable(PartitionScheme scheme, const ChainingOptions& options) {
  switch (scheme) {
    case PartitionScheme::kForward:
      return options.chain_forward;
    case PartitionScheme::kRebalance:
      return options.chain_rebalance;
    case PartitionScheme::kHash:
      return false;  // key partitioning requires a network shuffle
  }
  return false;
}

}  // namespace

ChainingResult ChainOperators(const LogicalGraph& graph, const ChainingOptions& options) {
  int n = graph.num_operators();
  // successor[i] = j when the edge i->j is chainable and both endpoints are linear.
  std::vector<OperatorId> successor(static_cast<size_t>(n), kInvalidId);
  std::vector<bool> has_pred(static_cast<size_t>(n), false);
  for (const auto& e : graph.edges()) {
    const auto& from = graph.op(e.from);
    const auto& to = graph.op(e.to);
    bool chainable = SchemeChainable(e.scheme, options) &&
                     from.parallelism == to.parallelism &&
                     graph.Downstreams(e.from).size() == 1 &&
                     graph.Upstreams(e.to).size() == 1 &&
                     (options.chain_sources || from.kind != OperatorKind::kSource);
    if (chainable) {
      successor[static_cast<size_t>(e.from)] = e.to;
      has_pred[static_cast<size_t>(e.to)] = true;
    }
  }

  ChainingResult result;
  result.graph.set_name(graph.name());
  result.chain_of.assign(static_cast<size_t>(n), kInvalidId);

  // Walk chains from their heads in topological order so the new graph stays topologically
  // ordered too.
  for (OperatorId head : graph.TopologicalOrder()) {
    if (has_pred[static_cast<size_t>(head)]) {
      continue;  // interior of a chain; handled from its head
    }
    // Collect the chain.
    std::vector<OperatorId> chain;
    for (OperatorId cur = head; cur != kInvalidId;
         cur = successor[static_cast<size_t>(cur)]) {
      chain.push_back(cur);
    }
    // Aggregate the chain's profile: operator i in the chain processes f_i records per
    // chain-input record, where f accumulates the upstream selectivities.
    OperatorProfile profile;
    profile.cpu_per_record = 0.0;
    profile.io_bytes_per_record = 0.0;
    profile.selectivity = 1.0;
    profile.stateful = false;
    double f = 1.0;
    double gc_weighted = 0.0;
    double dominant_cpu = -1.0;
    OperatorKind kind = graph.op(head).kind;
    std::string name;
    for (OperatorId id : chain) {
      const auto& op = graph.op(id);
      double cpu = f * op.profile.cpu_per_record;
      profile.cpu_per_record += cpu;
      profile.io_bytes_per_record += f * op.profile.io_bytes_per_record;
      gc_weighted += cpu * op.profile.gc_spike_fraction;
      profile.stateful = profile.stateful || op.profile.stateful;
      if (cpu > dominant_cpu && op.kind != OperatorKind::kSource) {
        dominant_cpu = cpu;
        kind = op.kind;
      }
      f *= op.profile.selectivity;
      name += (name.empty() ? "" : "->") + op.name;
    }
    profile.selectivity = f;
    profile.out_bytes_per_record = graph.op(chain.back()).profile.out_bytes_per_record;
    if (profile.cpu_per_record > 0.0) {
      profile.gc_spike_fraction = gc_weighted / profile.cpu_per_record;
    }
    if (graph.op(head).kind == OperatorKind::kSource) {
      kind = OperatorKind::kSource;  // a chain starting at a source stays a source
    }
    OperatorId rep =
        result.graph.AddOperator(name, kind, profile, graph.op(head).parallelism);
    for (OperatorId id : chain) {
      result.chain_of[static_cast<size_t>(id)] = rep;
    }
  }

  // Re-create the non-chained edges between chain representatives.
  for (const auto& e : graph.edges()) {
    if (successor[static_cast<size_t>(e.from)] == e.to) {
      continue;  // fused away
    }
    result.graph.AddEdge(result.chain_of[static_cast<size_t>(e.from)],
                         result.chain_of[static_cast<size_t>(e.to)], e.scheme);
  }
  CAPSYS_CHECK_MSG(result.graph.Validate().empty(), result.graph.Validate());
  return result;
}

}  // namespace capsys
