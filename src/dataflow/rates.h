// Steady-state rate propagation and per-task resource demands.
//
// Given target source rates, propagates record rates through the logical graph using each
// operator's selectivity, then derives the per-task utilizations of Table 1:
//   U_cpu(t) = input rate x cpu_per_record          [CPU-seconds/s]
//   U_io(t)  = input rate x io_bytes_per_record     [bytes/s]
//   U_net(t) = output rate x out_bytes_per_record   [bytes/s]
// These feed both the CAPS cost model (paper §4.2) and the simulator.
#ifndef SRC_DATAFLOW_RATES_H_
#define SRC_DATAFLOW_RATES_H_

#include <map>
#include <vector>

#include "src/common/types.h"
#include "src/dataflow/physical_graph.h"

namespace capsys {

// Aggregate record rates of one logical operator at steady state.
struct OperatorRates {
  double input_rate = 0.0;   // records/s entering the operator (summed over all tasks)
  double output_rate = 0.0;  // records/s leaving the operator
};

// Computes per-operator steady-state rates from per-source target rates. `source_rates`
// maps source OperatorId -> records/s; sources missing from the map default to 0.
std::vector<OperatorRates> PropagateRates(const LogicalGraph& graph,
                                          const std::map<OperatorId, double>& source_rates);

// Convenience overload for single-source graphs (or uniform rate across all sources).
std::vector<OperatorRates> PropagateRates(const LogicalGraph& graph, double source_rate);

// Resource demand of every task under the given operator rates, assuming each operator's
// rate is evenly divided among its tasks (§4.1 model assumption).
std::vector<ResourceVector> TaskDemands(const PhysicalGraph& graph,
                                        const std::vector<OperatorRates>& rates);

// Demand of one task of `op` if the operator runs at `rates[op]` with its current
// parallelism.
ResourceVector TaskDemand(const LogicalOperator& op, const OperatorRates& rates);

}  // namespace capsys

#endif  // SRC_DATAFLOW_RATES_H_
