#include "src/dataflow/logical_graph.h"

#include <algorithm>
#include <queue>

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {

const char* OperatorKindName(OperatorKind kind) {
  switch (kind) {
    case OperatorKind::kSource:
      return "source";
    case OperatorKind::kMap:
      return "map";
    case OperatorKind::kFilter:
      return "filter";
    case OperatorKind::kSlidingWindow:
      return "sliding_window";
    case OperatorKind::kTumblingWindowJoin:
      return "tumbling_window_join";
    case OperatorKind::kIncrementalJoin:
      return "incremental_join";
    case OperatorKind::kSessionWindow:
      return "session_window";
    case OperatorKind::kAggregate:
      return "aggregate";
    case OperatorKind::kProcessFunction:
      return "process_function";
    case OperatorKind::kInference:
      return "inference";
    case OperatorKind::kSink:
      return "sink";
  }
  return "?";
}

const char* PartitionSchemeName(PartitionScheme scheme) {
  switch (scheme) {
    case PartitionScheme::kForward:
      return "forward";
    case PartitionScheme::kHash:
      return "hash";
    case PartitionScheme::kRebalance:
      return "rebalance";
  }
  return "?";
}

OperatorId LogicalGraph::AddOperator(const std::string& name, OperatorKind kind,
                                     const OperatorProfile& profile, int parallelism) {
  CAPSYS_CHECK(parallelism >= 1);
  LogicalOperator op;
  op.id = static_cast<OperatorId>(operators_.size());
  op.name = name;
  op.kind = kind;
  op.profile = profile;
  op.parallelism = parallelism;
  operators_.push_back(op);
  return op.id;
}

void LogicalGraph::AddEdge(OperatorId from, OperatorId to, PartitionScheme scheme) {
  CAPSYS_CHECK(from >= 0 && from < num_operators());
  CAPSYS_CHECK(to >= 0 && to < num_operators());
  CAPSYS_CHECK_MSG(from != to, "self-loops are not allowed");
  edges_.push_back(LogicalEdge{.from = from, .to = to, .scheme = scheme});
}

void LogicalGraph::SetParallelism(OperatorId op, int parallelism) {
  CAPSYS_CHECK(parallelism >= 1);
  operators_[static_cast<size_t>(op)].parallelism = parallelism;
}

void LogicalGraph::SetParallelism(const std::vector<int>& parallelism) {
  CAPSYS_CHECK(parallelism.size() == operators_.size());
  for (size_t i = 0; i < parallelism.size(); ++i) {
    SetParallelism(static_cast<OperatorId>(i), parallelism[i]);
  }
}

int LogicalGraph::total_parallelism() const {
  int total = 0;
  for (const auto& op : operators_) {
    total += op.parallelism;
  }
  return total;
}

std::vector<OperatorId> LogicalGraph::Upstreams(OperatorId id) const {
  std::vector<OperatorId> ups;
  for (const auto& e : edges_) {
    if (e.to == id) {
      ups.push_back(e.from);
    }
  }
  return ups;
}

std::vector<OperatorId> LogicalGraph::Downstreams(OperatorId id) const {
  std::vector<OperatorId> downs;
  for (const auto& e : edges_) {
    if (e.from == id) {
      downs.push_back(e.to);
    }
  }
  return downs;
}

std::vector<OperatorId> LogicalGraph::SourceIds() const {
  std::vector<OperatorId> ids;
  for (const auto& op : operators_) {
    if (Upstreams(op.id).empty()) {
      ids.push_back(op.id);
    }
  }
  return ids;
}

std::vector<OperatorId> LogicalGraph::SinkIds() const {
  std::vector<OperatorId> ids;
  for (const auto& op : operators_) {
    if (Downstreams(op.id).empty()) {
      ids.push_back(op.id);
    }
  }
  return ids;
}

std::vector<OperatorId> LogicalGraph::TopologicalOrder() const {
  std::vector<int> indegree(operators_.size(), 0);
  for (const auto& e : edges_) {
    ++indegree[static_cast<size_t>(e.to)];
  }
  std::queue<OperatorId> ready;
  for (size_t i = 0; i < operators_.size(); ++i) {
    if (indegree[i] == 0) {
      ready.push(static_cast<OperatorId>(i));
    }
  }
  std::vector<OperatorId> order;
  order.reserve(operators_.size());
  while (!ready.empty()) {
    OperatorId id = ready.front();
    ready.pop();
    order.push_back(id);
    for (OperatorId d : Downstreams(id)) {
      if (--indegree[static_cast<size_t>(d)] == 0) {
        ready.push(d);
      }
    }
  }
  CAPSYS_CHECK_MSG(order.size() == operators_.size(), "graph has a cycle");
  return order;
}

std::string LogicalGraph::Validate() const {
  if (operators_.empty()) {
    return "graph has no operators";
  }
  // Cycle check via Kahn's algorithm (without the CHECK).
  std::vector<int> indegree(operators_.size(), 0);
  for (const auto& e : edges_) {
    ++indegree[static_cast<size_t>(e.to)];
  }
  std::queue<OperatorId> ready;
  for (size_t i = 0; i < operators_.size(); ++i) {
    if (indegree[i] == 0) {
      ready.push(static_cast<OperatorId>(i));
    }
  }
  size_t visited = 0;
  while (!ready.empty()) {
    OperatorId id = ready.front();
    ready.pop();
    ++visited;
    for (OperatorId d : Downstreams(id)) {
      if (--indegree[static_cast<size_t>(d)] == 0) {
        ready.push(d);
      }
    }
  }
  if (visited != operators_.size()) {
    return "graph has a cycle";
  }
  for (const auto& e : edges_) {
    if (e.scheme == PartitionScheme::kForward &&
        op(e.from).parallelism != op(e.to).parallelism) {
      return Sprintf("forward edge %s->%s requires equal parallelism (%d vs %d)",
                     op(e.from).name.c_str(), op(e.to).name.c_str(), op(e.from).parallelism,
                     op(e.to).parallelism);
    }
  }
  return "";
}

OperatorId LogicalGraph::Merge(const LogicalGraph& other) {
  OperatorId offset = static_cast<OperatorId>(operators_.size());
  for (const auto& op : other.operators_) {
    LogicalOperator copy = op;
    copy.id = static_cast<OperatorId>(operators_.size());
    copy.name = other.name_.empty() ? op.name : other.name_ + "/" + op.name;
    operators_.push_back(copy);
  }
  for (const auto& e : other.edges_) {
    edges_.push_back(LogicalEdge{.from = e.from + offset, .to = e.to + offset, .scheme = e.scheme});
  }
  return offset;
}

std::string LogicalGraph::ToString() const {
  std::vector<std::string> parts;
  for (const auto& op : operators_) {
    parts.push_back(Sprintf("%s(x%d)", op.name.c_str(), op.parallelism));
  }
  return Sprintf("%s: %s, %zu edges", name_.c_str(), Join(parts, " ").c_str(), edges_.size());
}

}  // namespace capsys
