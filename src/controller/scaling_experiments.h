// Variable-workload experiment drivers (paper §6.4): run a query under a schedule of target
// rates with DS2 deciding when to rescale, and the selected placement policy computing each
// new plan. Produces the data behind Table 4 (auto-scaling accuracy) and Figure 9
// (auto-scaling convergence).
#ifndef SRC_CONTROLLER_SCALING_EXPERIMENTS_H_
#define SRC_CONTROLLER_SCALING_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/checkpoint/recovery_model.h"
#include "src/controller/deployment.h"

namespace capsys {

struct ScalingExperimentOptions {
  PlacementPolicy policy = PlacementPolicy::kCaps;
  // DS2 controller timing (paper: activation 90 s, policy interval 5 s).
  double activation_time_s = 90.0;
  double policy_interval_s = 5.0;
  // Metrics window DS2 evaluates over.
  double metrics_window_s = 30.0;
  // Duration of each rate step (paper: 600 s / 1200 s; shorter values keep benches fast —
  // the fluid model reaches steady state within ~30 s).
  double step_duration_s = 240.0;
  // Start from the manually tuned optimal configuration (Table 4) instead of parallelism 1
  // with the policy's own initial plan (Figure 9).
  bool start_optimal = true;
  // Fraction of the target a step must reach to count as "met".
  double target_fraction = 0.95;
  // Fixed downtime per reconfiguration — the FALLBACK when `use_checkpointing` is off (the
  // default here, preserving the paper's Table 4 / Figure 9 setup) or before the first
  // checkpoint completes. Sources stay blocked while the job restarts and state is
  // restored, which makes extra scaling decisions costly, as on Flink.
  double reconfigure_downtime_s = 5.0;
  // When on, a CheckpointCoordinator runs alongside the DS2 loop and each
  // reconfiguration's blackout comes from the recovery-time model (restore bytes / disk
  // bandwidth + source replay from the last barrier) instead of the fixed constant.
  bool use_checkpointing = false;
  CheckpointOptions checkpoint;
  StateGrowthModel state;
  bool exactly_once = true;
  int search_threads = 2;
  uint64_t seed = 1;
  SimConfig sim;
  Ds2Options ds2;
};

struct TimelinePoint {
  double time_s = 0.0;
  double target_rate = 0.0;
  double throughput = 0.0;
  int slots = 0;
};

struct StepEval {
  double target_rate = 0.0;
  double throughput = 0.0;     // mean over the step's final window
  int slots = 0;               // slots in use at the end of the step
  int min_slots = 0;           // ground-truth minimal slots for the target
  bool met_target = false;     // Table 4 "Throughput" column
  bool overprovisioned = false;  // Table 4 "Resources" column (X when over)
  int scaling_decisions = 0;   // decisions taken during this step

  std::string ToString() const;
};

struct ScalingRun {
  std::vector<TimelinePoint> timeline;      // sampled every policy interval
  std::vector<double> decision_times_s;     // when reconfigurations happened
  std::vector<StepEval> steps;
  int total_decisions = 0;
  // Checkpoint & restore accounting (fallback constants when use_checkpointing is off).
  double restore_downtime_s = 0.0;  // total reconfiguration blackout across the run
  double replayed_records = 0.0;    // source backlog re-read across all reconfigurations
  int checkpoints_completed = 0;
};

// Runs the experiment: `rate_steps` gives the target source rate (scaled per source by its
// share in `query.source_rates`) for each consecutive step.
ScalingRun RunScalingExperiment(const QuerySpec& query, const Cluster& cluster,
                                const std::vector<double>& rate_steps,
                                const ScalingExperimentOptions& options);

}  // namespace capsys

#endif  // SRC_CONTROLLER_SCALING_EXPERIMENTS_H_
