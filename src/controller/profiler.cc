#include "src/controller/profiler.h"

#include <algorithm>
#include <memory>

#include "src/common/logging.h"
#include "src/dataflow/rates.h"

namespace capsys {

std::vector<MeasuredCost> ProfileOperators(const LogicalGraph& graph,
                                           const std::map<OperatorId, double>& source_rates,
                                           const WorkerSpec& worker_spec,
                                           const ProfileOptions& options) {
  // Deploy each operator's tasks on their own dedicated worker: one worker per operator,
  // sized to hold the operator's full parallelism. All channels are then cross-worker, so
  // emitted bytes appear 1:1 as NIC traffic.
  int num_ops = graph.num_operators();
  int max_par = 1;
  for (const auto& op : graph.operators()) {
    max_par = std::max(max_par, op.parallelism);
  }
  WorkerSpec spec = worker_spec;
  spec.slots = max_par;
  Cluster cluster(num_ops, spec);

  PhysicalGraph physical = PhysicalGraph::Expand(graph);
  Placement placement(physical.num_tasks());
  for (const auto& t : physical.tasks()) {
    placement.Assign(t.id, t.op);  // worker id == operator id
  }

  // Run at a low rate so no operator saturates its (single-worker) deployment; if sources
  // get throttled anyway — e.g. a wide stateful operator whose tasks contend with each
  // other on the profiling worker — back off and retry so measured unit costs reflect
  // uncontended behaviour.
  double fraction = options.rate_fraction;
  double from = 0.0;
  double to = 0.0;
  std::unique_ptr<FluidSimulator> sim;
  for (int attempt = 0; attempt < 4; ++attempt) {
    sim = std::make_unique<FluidSimulator>(physical, cluster, placement, options.sim);
    double requested = 0.0;
    for (const auto& [op, rate] : source_rates) {
      sim->SetSourceRate(op, rate * fraction);
      requested += rate * fraction;
    }
    sim->RunFor(options.warmup_s);
    from = sim->time_s();
    sim->RunFor(options.measure_s);
    to = sim->time_s();
    double emitted = sim->Summarize(from, to).throughput;
    if (requested <= 0.0 || emitted >= 0.97 * requested) {
      break;
    }
    fraction *= 0.5;
  }

  std::vector<MeasuredCost> costs(static_cast<size_t>(num_ops));
  for (OperatorId o = 0; o < num_ops; ++o) {
    double in_rate = sim->OperatorInputRate(o, from, to);
    double out_rate = sim->OperatorOutputRate(o, from, to);
    auto& c = costs[static_cast<size_t>(o)];
    if (in_rate < 1e-9) {
      // Operator processed nothing during profiling; fall back to declared costs.
      const auto& p = graph.op(o).profile;
      c.cpu_per_record = p.cpu_per_record;
      c.io_bytes_per_record = p.io_bytes_per_record;
      c.out_bytes_per_record = p.out_bytes_per_record;
      c.selectivity = p.selectivity;
      continue;
    }
    WorkerId w = o;  // dedicated worker
    double cpu_used = sim->metrics().MeanSinceOr(WorkerMetric(w, "cpu_used"), from, 0.0);
    double io_bps = sim->metrics().MeanSinceOr(WorkerMetric(w, "io_bps"), from, 0.0);
    double net_bps = sim->metrics().MeanSinceOr(WorkerMetric(w, "net_bps"), from, 0.0);
    c.cpu_per_record = cpu_used / in_rate;
    c.io_bytes_per_record = io_bps / in_rate;
    c.out_bytes_per_record = out_rate > 1e-9 ? net_bps / out_rate : 0.0;
    c.selectivity = out_rate / in_rate;
  }
  return costs;
}

std::vector<MeasuredCost> EstimateCostsOnline(const FluidSimulator& sim, double from_s,
                                              double to_s,
                                              const std::vector<MeasuredCost>& previous) {
  int num_ops = sim.graph().logical().num_operators();
  CAPSYS_CHECK(previous.size() == static_cast<size_t>(num_ops));
  std::vector<MeasuredCost> costs = previous;
  for (OperatorId o = 0; o < num_ops; ++o) {
    double in_rate = sim.OperatorInputRate(o, from_s, to_s);
    double out_rate = sim.OperatorOutputRate(o, from_s, to_s);
    if (in_rate < 1e-9) {
      continue;  // no observations in the window; keep the previous estimate
    }
    auto& c = costs[static_cast<size_t>(o)];
    double cpu = sim.metrics().MeanSinceOr(OperatorMetric(o, "cpu_used"), from_s, -1.0);
    double io = sim.metrics().MeanSinceOr(OperatorMetric(o, "io_bps"), from_s, -1.0);
    double net = sim.metrics().MeanSinceOr(OperatorMetric(o, "net_bps"), from_s, -1.0);
    if (cpu >= 0.0) {
      c.cpu_per_record = cpu / in_rate;
    }
    if (io >= 0.0) {
      c.io_bytes_per_record = io / in_rate;
    }
    if (net >= 0.0 && out_rate > 1e-9) {
      c.out_bytes_per_record = net / out_rate;
    }
    c.selectivity = out_rate / in_rate;
  }
  return costs;
}

std::vector<ResourceVector> DemandsFromMeasuredCosts(const PhysicalGraph& graph,
                                                     const std::vector<MeasuredCost>& costs,
                                                     const std::vector<OperatorRates>& rates) {
  CAPSYS_CHECK(costs.size() == static_cast<size_t>(graph.num_operators()));
  CAPSYS_CHECK(rates.size() == static_cast<size_t>(graph.num_operators()));
  std::vector<ResourceVector> demands(static_cast<size_t>(graph.num_tasks()));
  for (const auto& t : graph.tasks()) {
    const auto& op = graph.logical().op(t.op);
    const auto& c = costs[static_cast<size_t>(t.op)];
    const auto& r = rates[static_cast<size_t>(t.op)];
    double per_task_in = r.input_rate / op.parallelism;
    double per_task_out = r.output_rate / op.parallelism;
    auto& d = demands[static_cast<size_t>(t.id)];
    d.cpu = per_task_in * c.cpu_per_record;
    d.io = per_task_in * c.io_bytes_per_record;
    d.net = per_task_out * c.out_bytes_per_record;
  }
  return demands;
}

}  // namespace capsys
