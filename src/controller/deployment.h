// CAPSys deployment pipeline (paper §5.1, Figure 6): profile the query, let DS2 size
// operator parallelism, compute a placement with the selected policy, and hand the plan to
// the runtime (here: the fluid simulator).
#ifndef SRC_CONTROLLER_DEPLOYMENT_H_
#define SRC_CONTROLLER_DEPLOYMENT_H_

#include <map>
#include <string>
#include <vector>

#include "src/caps/auto_tuner.h"
#include "src/caps/search.h"
#include "src/caps/threshold_cache.h"
#include "src/common/rng.h"
#include "src/controller/ds2.h"
#include "src/controller/profiler.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {

enum class PlacementPolicy : int { kCaps = 0, kFlinkDefault = 1, kFlinkEvenly = 2 };

const char* PolicyName(PlacementPolicy policy);

struct DeployOptions {
  PlacementPolicy policy = PlacementPolicy::kCaps;
  // Size parallelism with DS2 from the profiled costs; when false, the query's configured
  // parallelism is kept (the motivation-study setups fix parallelism explicitly).
  bool use_ds2_sizing = false;
  int search_threads = 2;
  // Budget for the placement search. Large instances use find-first mode (the paper's
  // online mode: the first plan satisfying the auto-tuned thresholds); smaller instances
  // explore within the budget and return the pareto-best plan.
  double search_timeout_s = 3.0;
  int find_first_above_tasks = 48;
  AutoTuneOptions autotune;
  ProfileOptions profile;
  Ds2Options ds2;
  uint64_t seed = 1;  // randomness for the Flink baseline policies
  // Optional precomputed thresholds (paper §5.2): when set and the current parallelism
  // vector is cached, the runtime auto-tuning step is skipped. Not owned.
  const ThresholdCache* threshold_cache = nullptr;
};

struct Deployment {
  LogicalGraph graph;  // final parallelism
  std::map<OperatorId, double> source_rates;
  PhysicalGraph physical;
  Placement placement;
  std::vector<MeasuredCost> costs;  // profiled unit costs
  ResourceVector alpha;             // auto-tuned thresholds (CAPS only)
  ResourceVector plan_cost;         // CAPS cost vector of the chosen plan
  double decision_time_s = 0.0;     // placement computation incl. auto-tuning
};

class CapsysController {
 public:
  CapsysController(Cluster cluster, DeployOptions options)
      : cluster_(std::move(cluster)), options_(std::move(options)), rng_(options_.seed) {}

  // Full pipeline on a query spec.
  Deployment Deploy(const QuerySpec& query);

  // Pipeline on an explicit graph + rates (used by the multi-tenant experiment, which
  // merges all queries into one graph).
  Deployment DeployGraph(const LogicalGraph& graph,
                         const std::map<OperatorId, double>& source_rates);

  // Placement only, for an already-expanded graph with known demands. Returns the plan and
  // fills `alpha`/`plan_cost`/`decision_time_s` of `out` when non-null.
  Placement Place(const PhysicalGraph& physical, const std::vector<ResourceVector>& demands,
                  Deployment* out);

  // Standalone (uncontended) records/s one task of an operator with the given measured
  // costs sustains on `spec` — the per-task capacity DS2 sizes against after profiling.
  static double StandaloneTaskRate(const MeasuredCost& cost, const WorkerSpec& spec);

  const Cluster& cluster() const { return cluster_; }
  DeployOptions& options() { return options_; }

 private:
  Cluster cluster_;
  DeployOptions options_;
  Rng rng_;
};

}  // namespace capsys

#endif  // SRC_CONTROLLER_DEPLOYMENT_H_
