// Heartbeat-based failure detection with suspicion and flap blacklisting (robustness
// extension; StreamShield-style resiliency, see PAPERS.md).
//
// Each worker heartbeats the controller every heartbeat_interval_s. The detector counts one
// miss per elapsed timeout period without a beat: after the first miss a worker is
// *suspected* (still usable — slow workers and lossy telemetry must not trigger
// re-placement), and only after `dead_after_misses` consecutive misses is it declared
// *dead*. Any beat resets the worker to alive.
//
// Workers that are declared dead repeatedly within a sliding window are flapping: they get
// blacklisted with exponential backoff (base * 2^(n-1), capped), so the placement search
// stops bouncing tasks onto a worker that will die again moments later.
#ifndef SRC_CONTROLLER_FAILURE_DETECTOR_H_
#define SRC_CONTROLLER_FAILURE_DETECTOR_H_

#include <deque>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace capsys {

enum class WorkerHealth : int { kAlive = 0, kSuspected = 1, kDead = 2 };

const char* WorkerHealthName(WorkerHealth health);

struct FailureDetectorOptions {
  double heartbeat_interval_s = 1.0;
  // No beat for this long counts as one miss (should exceed the heartbeat interval by a
  // comfortable margin so jittery-but-alive workers are merely suspected).
  double timeout_s = 3.0;
  // Consecutive misses before a suspected worker is declared dead.
  int dead_after_misses = 3;
  // Declared dead this many times within flap_window_s => blacklisted.
  int flap_deaths_to_blacklist = 2;
  double flap_window_s = 120.0;
  // Exponential backoff before a blacklisted worker may host tasks again.
  double blacklist_base_s = 30.0;
  double blacklist_max_s = 480.0;
};

class FailureDetector {
 public:
  explicit FailureDetector(int num_workers, FailureDetectorOptions options = {});

  // A heartbeat from `w` arrived at `now_s`. Resets misses; a dead worker comes back as
  // alive (blacklisting, tracked separately, may still exclude it from placement).
  void RecordHeartbeat(WorkerId w, double now_s);

  // Advances suspicion/death state to `now_s`. Returns the workers newly declared dead by
  // this call (each death is reported exactly once).
  std::vector<WorkerId> Tick(double now_s);

  WorkerHealth HealthOf(WorkerId w) const;
  bool IsBlacklisted(WorkerId w, double now_s) const;
  // Usable = not dead and not blacklisted. Suspected workers remain usable: a transient
  // straggler must not trigger re-placement.
  bool IsUsable(WorkerId w, double now_s) const;
  std::vector<bool> UsableMask(double now_s) const;
  int NumUsable(double now_s) const;

  int deaths_declared() const { return deaths_declared_; }
  int DeathsOf(WorkerId w) const { return workers_[static_cast<size_t>(w)].total_deaths; }
  double BlacklistedUntil(WorkerId w) const {
    return workers_[static_cast<size_t>(w)].blacklist_until_s;
  }
  int num_workers() const { return static_cast<int>(workers_.size()); }
  const FailureDetectorOptions& options() const { return options_; }

  std::string ToString(double now_s) const;

 private:
  struct WorkerState {
    double last_heartbeat_s = 0.0;
    int misses = 0;
    WorkerHealth health = WorkerHealth::kAlive;
    std::deque<double> death_times_s;  // recent deaths, pruned to flap_window_s
    int total_deaths = 0;
    int times_blacklisted = 0;
    double blacklist_until_s = -1.0;
  };

  FailureDetectorOptions options_;
  std::vector<WorkerState> workers_;
  int deaths_declared_ = 0;
};

}  // namespace capsys

#endif  // SRC_CONTROLLER_FAILURE_DETECTOR_H_
