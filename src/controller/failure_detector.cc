#include "src/controller/failure_detector.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {

const char* WorkerHealthName(WorkerHealth health) {
  switch (health) {
    case WorkerHealth::kAlive:
      return "alive";
    case WorkerHealth::kSuspected:
      return "suspected";
    case WorkerHealth::kDead:
      return "dead";
  }
  return "?";
}

FailureDetector::FailureDetector(int num_workers, FailureDetectorOptions options)
    : options_(options), workers_(static_cast<size_t>(num_workers)) {
  CAPSYS_CHECK(num_workers > 0);
  CAPSYS_CHECK(options_.timeout_s > 0.0 && options_.dead_after_misses >= 1);
}

void FailureDetector::RecordHeartbeat(WorkerId w, double now_s) {
  WorkerState& state = workers_[static_cast<size_t>(w)];
  state.last_heartbeat_s = now_s;
  state.misses = 0;
  if (state.health == WorkerHealth::kDead) {
    CAPSYS_LOG_INFO("detector", Sprintf("w%d heartbeating again at t=%.1f", w, now_s));
  }
  state.health = WorkerHealth::kAlive;
}

std::vector<WorkerId> FailureDetector::Tick(double now_s) {
  std::vector<WorkerId> newly_dead;
  for (size_t i = 0; i < workers_.size(); ++i) {
    WorkerState& state = workers_[i];
    // One miss per fully elapsed timeout period since the last beat.
    int misses = static_cast<int>(
        std::floor((now_s - state.last_heartbeat_s) / options_.timeout_s + 1e-9));
    if (misses <= state.misses) {
      continue;
    }
    state.misses = misses;
    if (state.misses >= options_.dead_after_misses) {
      if (state.health != WorkerHealth::kDead) {
        state.health = WorkerHealth::kDead;
        state.total_deaths += 1;
        ++deaths_declared_;
        newly_dead.push_back(static_cast<WorkerId>(i));
        // Flap tracking: repeated deaths within the window trigger exponential backoff.
        state.death_times_s.push_back(now_s);
        while (!state.death_times_s.empty() &&
               state.death_times_s.front() < now_s - options_.flap_window_s) {
          state.death_times_s.pop_front();
        }
        if (static_cast<int>(state.death_times_s.size()) >=
            options_.flap_deaths_to_blacklist) {
          double backoff = options_.blacklist_base_s *
                           std::pow(2.0, static_cast<double>(state.times_blacklisted));
          backoff = std::min(backoff, options_.blacklist_max_s);
          state.times_blacklisted += 1;
          state.blacklist_until_s = std::max(state.blacklist_until_s, now_s + backoff);
          CAPSYS_LOG_WARN("detector",
                          Sprintf("w%zu flapping (%zu deaths in %.0fs): blacklisted for %.0fs",
                                  i, state.death_times_s.size(), options_.flap_window_s,
                                  backoff));
        }
      }
    } else if (state.health == WorkerHealth::kAlive) {
      state.health = WorkerHealth::kSuspected;
    }
  }
  return newly_dead;
}

WorkerHealth FailureDetector::HealthOf(WorkerId w) const {
  return workers_[static_cast<size_t>(w)].health;
}

bool FailureDetector::IsBlacklisted(WorkerId w, double now_s) const {
  return workers_[static_cast<size_t>(w)].blacklist_until_s > now_s;
}

bool FailureDetector::IsUsable(WorkerId w, double now_s) const {
  return HealthOf(w) != WorkerHealth::kDead && !IsBlacklisted(w, now_s);
}

std::vector<bool> FailureDetector::UsableMask(double now_s) const {
  std::vector<bool> mask(workers_.size(), false);
  for (size_t i = 0; i < workers_.size(); ++i) {
    mask[i] = IsUsable(static_cast<WorkerId>(i), now_s);
  }
  return mask;
}

int FailureDetector::NumUsable(double now_s) const {
  int n = 0;
  for (size_t i = 0; i < workers_.size(); ++i) {
    n += IsUsable(static_cast<WorkerId>(i), now_s) ? 1 : 0;
  }
  return n;
}

std::string FailureDetector::ToString(double now_s) const {
  std::vector<std::string> parts;
  for (size_t i = 0; i < workers_.size(); ++i) {
    const WorkerState& s = workers_[i];
    parts.push_back(Sprintf("w%zu:%s%s", i, WorkerHealthName(s.health),
                            IsBlacklisted(static_cast<WorkerId>(i), now_s) ? "(bl)" : ""));
  }
  return Join(parts, " ");
}

}  // namespace capsys
