// Chaos experiment driver (robustness extension): replays a seeded FaultSchedule against a
// deployed query while the hardened controller loop runs — heartbeat failure detection with
// suspicion and flap blacklisting, bounded re-planning under churn, and graceful
// degraded-mode recovery (down-scaling parallelism when the survivors cannot host the query
// at full width, re-upscaling when workers return). Generalizes the single-kill
// RunFailureRecoveryExperiment into an arbitrary-fault harness and reports the resiliency
// metrics StreamShield-style evaluations use: MTTR, reconfiguration count, throughput-loss
// integral, and detector false positives.
#ifndef SRC_CONTROLLER_CHAOS_EXPERIMENTS_H_
#define SRC_CONTROLLER_CHAOS_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "src/checkpoint/checkpoint.h"
#include "src/checkpoint/recovery_model.h"
#include "src/controller/failure_detector.h"
#include "src/controller/recovery.h"
#include "src/controller/scaling_experiments.h"
#include "src/faults/fault_injector.h"
#include "src/faults/fault_schedule.h"
#include "src/metrics/metrics.h"

namespace capsys {

struct ChaosExperimentOptions {
  PlacementPolicy policy = PlacementPolicy::kCaps;
  double run_s = 420.0;
  // Controller loop cadence: heartbeat collection, detector ticks, fault application.
  double control_interval_s = 1.0;
  // Timeline sampling cadence (and the resolution of the loss integral).
  double sample_interval_s = 5.0;
  // A sample counts as healthy when throughput >= target_fraction x the achievable target
  // (the nominal target, reduced while running a degraded plan).
  double target_fraction = 0.9;
  // Fixed checkpoint-restore blackout per reconfiguration — the FALLBACK used only when
  // `use_checkpointing` is off or no checkpoint has completed yet. With checkpointing on,
  // the blackout comes from the recovery-time model instead (restore bytes / disk bandwidth
  // + source replay from the last barrier).
  double reconfigure_downtime_s = 5.0;
  // Aligned-snapshot checkpointing: a CheckpointCoordinator runs alongside the control
  // loop, its in-flight uploads contend with the workers' disk bandwidth, and every
  // reconfiguration restores from the last *completed* checkpoint.
  bool use_checkpointing = true;
  CheckpointOptions checkpoint;
  StateGrowthModel state;
  // Delivery guarantee for the recovery accounting: exactly-once replays the backlog
  // inside the blackout (zero lost/duplicates); at-least-once resumes immediately and
  // counts the replayed records as duplicates.
  bool exactly_once = true;
  // Placement decision latency: the world keeps moving while the search runs, so a plan can
  // be stale by the time it is ready (churn).
  double replan_latency_s = 2.0;
  // Bounded retry when churn invalidates a freshly computed plan.
  int max_replan_retries = 3;
  // Back-off before re-attempting recovery after a kUnplaceable verdict.
  double unplaceable_retry_s = 10.0;
  // Minimum gap before re-upscaling onto restored workers (prevents reconfiguration storms
  // when workers churn).
  double upscale_cooldown_s = 30.0;
  bool use_ds2_sizing = true;
  int search_threads = 2;
  uint64_t seed = 1;
  FailureDetectorOptions detector;
  InjectorOptions injector;
  SimConfig sim;
};

struct ChaosRun {
  // Sampled every sample_interval_s; `target_rate` carries the achievable target at that
  // time (nominal, or the degraded plan's sustainable rate), `slots` the deployed width.
  std::vector<TimelinePoint> timeline;
  std::vector<double> reconfig_times_s;
  int reconfigurations = 0;
  int deaths_declared = 0;
  int false_positives = 0;      // declared dead while not actually crashed (ground truth)
  int replan_churn_retries = 0;  // plans recomputed because the usable set changed mid-search
  int unplaceable_verdicts = 0;  // recovery attempts that found no feasible plan

  // Outage accounting over the timeline: an outage is a maximal run of samples below
  // target_fraction x achievable target.
  int outages = 0;
  int unrecovered_outages = 0;  // still below the bar when the run ended
  double mttr_s = -1.0;         // mean duration of recovered outages; -1 when none
  double longest_outage_s = 0.0;
  // Integral of max(0, nominal target - throughput) over the run (records "missing" vs. a
  // fault-free ideal).
  double throughput_loss = 0.0;
  double mean_throughput = 0.0;

  RecoveryOutcome last_outcome = RecoveryOutcome::kRecoveredFull;
  int final_slots = 0;

  // Checkpoint & restore accounting (zeros when use_checkpointing is off).
  int checkpoints_triggered = 0;
  int checkpoints_completed = 0;
  int checkpoints_failed = 0;
  int checkpoints_expired = 0;
  double replayed_records = 0.0;   // source backlog re-read across all recoveries
  double duplicate_records = 0.0;  // at-least-once only: replayed records delivered twice
  double lost_records = 0.0;       // nonzero only on fallback (no completed checkpoint)
  double restore_downtime_s = 0.0;  // total reconfiguration blackout across the run

  // Driver-side telemetry on the global timeline: "chaos.0.*" gauges sampled with the
  // timeline, reconfiguration/verdict counters, and the replan-latency histogram. Exported
  // alongside events/spans in the telemetry bundle (src/obs/exporters.h).
  MetricsRegistry telemetry;

  std::string ToString() const;
};

ChaosRun RunChaosExperiment(const QuerySpec& query, const Cluster& cluster,
                            const FaultSchedule& schedule,
                            const ChaosExperimentOptions& options);

}  // namespace capsys

#endif  // SRC_CONTROLLER_CHAOS_EXPERIMENTS_H_
