#include "src/controller/deployment.h"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "src/baselines/flink_strategies.h"
#include "src/caps/greedy.h"
#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/dataflow/rates.h"
#include "src/obs/events.h"
#include "src/obs/trace.h"

namespace capsys {

namespace {

// Predicted bottleneck utilization of a plan: per-worker loads normalized by the worker's
// actual capacities, maximized over workers and dimensions. The cost vector only measures
// *relative* imbalance per dimension; when choosing among pareto-optimal plans this
// capacity-aware score identifies which imbalance actually limits throughput.
double MaxUtilization(const CostModel& model, const Cluster& cluster, const Placement& plan) {
  auto loads = model.WorkerLoads(plan);
  double worst = 0.0;
  for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
    const auto& spec = cluster.worker(w).spec;
    const auto& l = loads[static_cast<size_t>(w)];
    worst = std::max({worst, l.cpu / spec.cpu_capacity, l.io / spec.io_bandwidth_bps,
                      l.net / spec.net_bandwidth_bps});
  }
  return worst;
}

}  // namespace

const char* PolicyName(PlacementPolicy policy) {
  switch (policy) {
    case PlacementPolicy::kCaps:
      return "capsys";
    case PlacementPolicy::kFlinkDefault:
      return "default";
    case PlacementPolicy::kFlinkEvenly:
      return "evenly";
  }
  return "?";
}

double CapsysController::StandaloneTaskRate(const MeasuredCost& cost, const WorkerSpec& spec) {
  double rate = 1e18;
  ContentionParams params;
  if (cost.cpu_per_record > 1e-15) {
    rate = std::min(rate, params.cores_per_task / cost.cpu_per_record);
  }
  if (cost.io_bytes_per_record > 1e-15) {
    rate = std::min(rate, spec.io_bandwidth_bps / cost.io_bytes_per_record);
  }
  if (cost.out_bytes_per_record > 1e-15 && cost.selectivity > 1e-15) {
    rate = std::min(rate,
                    spec.net_bandwidth_bps / (cost.out_bytes_per_record * cost.selectivity));
  }
  return rate;
}

Deployment CapsysController::Deploy(const QuerySpec& query) {
  return DeployGraph(query.graph, query.source_rates);
}

Deployment CapsysController::DeployGraph(const LogicalGraph& graph,
                                         const std::map<OperatorId, double>& source_rates) {
  Span deploy_span("controller.deploy");
  deploy_span.AddAttr("policy", PolicyName(options_.policy));
  Deployment d;
  d.graph = graph;
  d.source_rates = source_rates;

  // ② Profiling job: per-operator unit costs.
  {
    Span profile_span("controller.profile");
    d.costs = ProfileOperators(graph, source_rates, cluster_.worker(0).spec, options_.profile);
  }

  // ③ Scaling controller (DS2): parallelism per operator from profiled standalone rates.
  if (options_.use_ds2_sizing) {
    Span ds2_span("controller.ds2_sizing");
    std::vector<Ds2Observation> obs(static_cast<size_t>(graph.num_operators()));
    for (OperatorId o = 0; o < graph.num_operators(); ++o) {
      obs[static_cast<size_t>(o)].true_rate_per_task =
          StandaloneTaskRate(d.costs[static_cast<size_t>(o)], cluster_.worker(0).spec);
    }
    Ds2Options ds2 = options_.ds2;
    ds2.max_parallelism = std::min(ds2.max_parallelism, cluster_.slots_per_worker() *
                                                            cluster_.num_workers());
    Ds2Decision decision = Ds2Scale(graph, source_rates, obs, ds2);
    int slots_before = d.graph.total_parallelism();
    d.graph.SetParallelism(decision.parallelism);
    ds2_span.AddAttr("parallelism", decision.ToString());
    if (decision.changed) {
      EmitScaleDecision(EventLog::Global().now(), "ds2_sizing", slots_before,
                        d.graph.total_parallelism(), decision.ToString());
    }
  }

  // ④ Placement controller.
  d.physical = PhysicalGraph::Expand(d.graph);
  CAPSYS_CHECK_MSG(cluster_.total_slots() >= d.physical.num_tasks(),
                   Sprintf("cluster has %d slots but the query needs %d tasks",
                           cluster_.total_slots(), d.physical.num_tasks()));
  auto rates = PropagateRates(d.graph, source_rates);
  auto demands = DemandsFromMeasuredCosts(d.physical, d.costs, rates);
  d.placement = Place(d.physical, demands, &d);
  return d;
}

Placement CapsysController::Place(const PhysicalGraph& physical,
                                  const std::vector<ResourceVector>& demands, Deployment* out) {
  Span place_span("controller.place");
  place_span.AddAttr("policy", PolicyName(options_.policy));
  place_span.AddAttr("tasks", physical.num_tasks());
  auto start = std::chrono::steady_clock::now();
  Placement placement;
  ResourceVector alpha{1.0, 1.0, 1.0};
  ResourceVector plan_cost;
  switch (options_.policy) {
    case PlacementPolicy::kCaps: {
      CostModel model(physical, cluster_, demands);
      // Precomputed thresholds for this scaling scenario skip the runtime auto-tuning.
      std::optional<ResourceVector> cached;
      if (options_.threshold_cache != nullptr) {
        std::vector<int> parallelism;
        for (const auto& op : physical.logical().operators()) {
          parallelism.push_back(op.parallelism);
        }
        cached = options_.threshold_cache->Lookup(parallelism);
      }
      if (cached.has_value()) {
        alpha = *cached;
      } else {
        AutoTuneOptions tune = options_.autotune;
        tune.num_threads = options_.search_threads;
        AutoTuneResult tuned = AutoTuneThresholds(model, tune);
        alpha = tuned.feasible ? tuned.alpha : ResourceVector{1.0, 1.0, 1.0};
      }
      SearchOptions search_options;
      search_options.alpha = alpha;
      search_options.num_threads = options_.search_threads;
      search_options.timeout_s = options_.search_timeout_s;
      search_options.find_first = physical.num_tasks() > options_.find_first_above_tasks;
      SearchResult result = CapsSearch(model, search_options).Run();
      // Choose among the pareto front plus a greedy incumbent (which guards against
      // over-relaxed thresholds and search timeouts on large instances) by the predicted
      // bottleneck utilization, tie-broken by the scalarized cost.
      std::vector<ScoredPlan> candidates = std::move(result.pareto);
      Placement greedy = GreedyBalancedPlacement(model);
      candidates.push_back(ScoredPlan{greedy, model.Cost(greedy)});
      size_t best = 0;
      double best_util = 1e300;
      for (size_t i = 0; i < candidates.size(); ++i) {
        double util = MaxUtilization(model, cluster_, candidates[i].placement);
        if (util < best_util - 1e-9 ||
            (util < best_util + 1e-9 && BetterCost(candidates[i].cost, candidates[best].cost))) {
          best = i;
          best_util = util;
        }
      }
      placement = candidates[best].placement;
      plan_cost = candidates[best].cost;
      break;
    }
    case PlacementPolicy::kFlinkDefault:
      placement = FlinkDefaultPlacement(physical, cluster_, rng_);
      break;
    case PlacementPolicy::kFlinkEvenly:
      placement = FlinkEvenlyPlacement(physical, cluster_, rng_);
      break;
  }
  double elapsed =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  if (out != nullptr) {
    out->alpha = alpha;
    out->plan_cost = plan_cost;
    out->decision_time_s = elapsed;
  }
  place_span.AddAttr("decision_time_s", elapsed);
  EmitPlacementDecision(EventLog::Global().now(), PolicyName(options_.policy),
                        physical.num_tasks(), cluster_.num_workers(), alpha, plan_cost,
                        elapsed);
  return placement;
}

}  // namespace capsys
