// Cost profiling (paper §5.1): estimates each operator's per-record resource costs by
// deploying the query with every operator's tasks isolated on a dedicated worker and
// recording (i) CPU utilization, (ii) state-backend bytes, (iii) emitted bytes, each
// normalized by the operator's observed rate. Profiling runs once; on reconfiguration the
// unit costs are multiplied by the new target rates.
#ifndef SRC_CONTROLLER_PROFILER_H_
#define SRC_CONTROLLER_PROFILER_H_

#include <map>
#include <vector>

#include "src/cluster/cluster.h"
#include "src/dataflow/logical_graph.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {

struct ProfileOptions {
  // Fraction of the target rate used while profiling (kept low so no operator saturates
  // and measured costs reflect uncontended behaviour).
  double rate_fraction = 0.3;
  double warmup_s = 10.0;
  double measure_s = 30.0;
  SimConfig sim;
};

// Measured per-record unit costs of one operator, in the same units as OperatorProfile.
struct MeasuredCost {
  double cpu_per_record = 0.0;
  double io_bytes_per_record = 0.0;
  double out_bytes_per_record = 0.0;
  double selectivity = 1.0;
};

// Profiles every operator of `graph` on `worker_spec`-shaped workers. Returns one entry per
// OperatorId.
std::vector<MeasuredCost> ProfileOperators(const LogicalGraph& graph,
                                           const std::map<OperatorId, double>& source_rates,
                                           const WorkerSpec& worker_spec,
                                           const ProfileOptions& options = {});

// Converts measured unit costs into per-task demand vectors for a physical graph running at
// the given operator rates — the U(t) inputs of the CAPS cost model.
std::vector<ResourceVector> DemandsFromMeasuredCosts(const PhysicalGraph& graph,
                                                     const std::vector<MeasuredCost>& costs,
                                                     const std::vector<OperatorRates>& rates);

// Online profiling (paper §5.1 future work): re-estimates per-operator unit costs from a
// *running* deployment's metrics over the window [from_s, to_s], without redeploying a
// profiling job. Operators that processed nothing in the window keep their `previous`
// estimate. Use when workload characteristics drift (e.g. record sizes or selectivities
// change over time).
std::vector<MeasuredCost> EstimateCostsOnline(const FluidSimulator& sim, double from_s,
                                              double to_s,
                                              const std::vector<MeasuredCost>& previous);

}  // namespace capsys

#endif  // SRC_CONTROLLER_PROFILER_H_
