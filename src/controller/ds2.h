// DS2 auto-scaling model (Kalavri et al., OSDI'18 [30]) — the scaling controller CAPSys
// couples with (paper §5.1 step ③).
//
// DS2 computes, for each operator, the *true processing rate* of its tasks (the rate a task
// sustains while it is doing useful work), propagates target rates through the dataflow
// using observed selectivities, and sets the operator's parallelism to
//     p_o = ceil(target input rate of o / true rate per task of o).
// When the placement is contended, measured true rates underestimate task capacity, which
// is exactly how bad placements mislead DS2 into overshooting (paper §6.4).
#ifndef SRC_CONTROLLER_DS2_H_
#define SRC_CONTROLLER_DS2_H_

#include <map>
#include <string>
#include <vector>

#include "src/dataflow/logical_graph.h"

namespace capsys {

// Per-operator measurements DS2 consumes, typically extracted from a FluidSimulator window.
struct Ds2Observation {
  double true_rate_per_task = 0.0;  // records/s one task can process under current placement
  double observed_input_rate = 0.0;
  double observed_output_rate = 0.0;
};

struct Ds2Options {
  // Safety margin on computed parallelism (1.0 = exactly the model's answer).
  double headroom = 1.0;
  // Parallelism bounds per operator.
  int min_parallelism = 1;
  int max_parallelism = 64;
};

// Result of one DS2 evaluation.
struct Ds2Decision {
  std::vector<int> parallelism;  // per operator
  bool changed = false;          // differs from the graph's current parallelism

  std::string ToString() const;
};

// Runs the DS2 model. `observations` is indexed by OperatorId. Source operators keep their
// current parallelism unless their true rate cannot sustain the target, in which case they
// are scaled like any other operator.
Ds2Decision Ds2Scale(const LogicalGraph& graph,
                     const std::map<OperatorId, double>& target_source_rates,
                     const std::vector<Ds2Observation>& observations,
                     const Ds2Options& options = {});

}  // namespace capsys

#endif  // SRC_CONTROLLER_DS2_H_
