#include "src/controller/ds2.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {

std::string Ds2Decision::ToString() const {
  std::vector<std::string> parts;
  for (int p : parallelism) {
    parts.push_back(Sprintf("%d", p));
  }
  return Sprintf("[%s]%s", Join(parts, ",").c_str(), changed ? " (changed)" : "");
}

Ds2Decision Ds2Scale(const LogicalGraph& graph,
                     const std::map<OperatorId, double>& target_source_rates,
                     const std::vector<Ds2Observation>& observations,
                     const Ds2Options& options) {
  CAPSYS_CHECK(observations.size() == static_cast<size_t>(graph.num_operators()));
  Ds2Decision decision;
  decision.parallelism.resize(static_cast<size_t>(graph.num_operators()), 1);

  // Propagate target rates in topological order, using *observed* selectivities where
  // available (falling back to the declared profile when an operator processed nothing).
  std::vector<double> target_in(static_cast<size_t>(graph.num_operators()), 0.0);
  std::vector<double> target_out(static_cast<size_t>(graph.num_operators()), 0.0);
  for (OperatorId id : graph.TopologicalOrder()) {
    const auto& op = graph.op(id);
    const auto& obs = observations[static_cast<size_t>(id)];
    double in = 0.0;
    if (graph.Upstreams(id).empty()) {
      auto it = target_source_rates.find(id);
      in = it != target_source_rates.end() ? it->second : 0.0;
    } else {
      for (OperatorId up : graph.Upstreams(id)) {
        in += target_out[static_cast<size_t>(up)];
      }
    }
    double selectivity = op.profile.selectivity;
    if (obs.observed_input_rate > 1e-9) {
      selectivity = obs.observed_output_rate / obs.observed_input_rate;
    }
    target_in[static_cast<size_t>(id)] = in;
    target_out[static_cast<size_t>(id)] = in * selectivity;

    // Sources "process" their generation target; all operators size identically.
    double true_rate = obs.true_rate_per_task;
    int p = op.parallelism;
    if (true_rate > 1e-9 && in > 1e-9) {
      p = static_cast<int>(std::ceil(in * options.headroom / true_rate));
    }
    p = std::clamp(p, options.min_parallelism, options.max_parallelism);
    decision.parallelism[static_cast<size_t>(id)] = p;
    if (p != op.parallelism) {
      decision.changed = true;
    }
  }
  return decision;
}

}  // namespace capsys
