#include "src/controller/chaos_experiments.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <memory>
#include <set>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/dataflow/rates.h"
#include "src/obs/events.h"
#include "src/obs/trace.h"

namespace capsys {

std::string ChaosRun::ToString() const {
  return Sprintf(
      "reconfigs=%d deaths=%d false_pos=%d churn_retries=%d outages=%d (unrecovered %d) "
      "mttr=%.1fs loss=%.0f mean_thr=%.0f last=%s slots=%d ckpt=%d/%d/%d/%d "
      "(ok/fail/expired/total) replayed=%.0f dupes=%.0f lost=%.0f blackout=%.1fs",
      reconfigurations, deaths_declared, false_positives, replan_churn_retries, outages,
      unrecovered_outages, mttr_s, throughput_loss, mean_throughput,
      RecoveryOutcomeName(last_outcome), final_slots, checkpoints_completed,
      checkpoints_failed, checkpoints_expired, checkpoints_triggered, replayed_records,
      duplicate_records, lost_records, restore_downtime_s);
}

ChaosRun RunChaosExperiment(const QuerySpec& query, const Cluster& cluster,
                            const FaultSchedule& schedule,
                            const ChaosExperimentOptions& options) {
  ChaosRun run;
  const double target = query.TotalTargetRate();
  Span chaos_span("chaos.run");
  chaos_span.AddAttr("policy", PolicyName(options.policy));
  chaos_span.AddAttr("run_s", options.run_s);
  // All structured events below stamp against the driver's global clock.
  EventLog::Global().set_now(0.0);

  // --- Initial deployment -------------------------------------------------------------------
  DeployOptions deploy_options;
  deploy_options.policy = options.policy;
  deploy_options.use_ds2_sizing = options.use_ds2_sizing;
  deploy_options.search_threads = options.search_threads;
  deploy_options.seed = options.seed;
  CapsysController controller(cluster, deploy_options);
  Deployment d = controller.Deploy(query);

  // The DS2-sized graph is the nominal width recovery aims back at.
  const LogicalGraph nominal_graph = d.graph;
  LogicalGraph graph = d.graph;
  Placement placement = d.placement;
  PhysicalGraph physical = d.physical;

  // Flush metrics every control tick so timeline samples always see fresh windows, however
  // reconfigurations shift the runtime's local clock against the global one.
  SimConfig sim_config = options.sim;
  sim_config.metrics_interval_s =
      std::min(sim_config.metrics_interval_s, options.control_interval_s);

  auto sim = std::make_unique<FluidSimulator>(physical, cluster, placement, sim_config);
  for (const auto& [op, r] : d.source_rates) {
    sim->SetSourceRate(op, r);
  }

  FaultInjector injector(schedule, cluster.num_workers(), options.seed, options.injector);
  FailureDetector detector(cluster.num_workers(), options.detector);

  // Checkpoint coordinator: runs on the driver's global clock, sized by the state growth
  // model. Null when checkpointing is disabled (fixed-blackout fallback).
  std::unique_ptr<CheckpointCoordinator> coordinator;
  if (options.use_checkpointing) {
    coordinator = std::make_unique<CheckpointCoordinator>(options.checkpoint, options.state,
                                                          &run.telemetry);
  }
  // Cumulative records emitted by the sources — the position checkpoint barriers capture
  // and recovery rewinds to.
  double cum_records = 0.0;

  double now = 0.0;            // global time
  double global_offset = 0.0;  // global time = offset + sim local time
  double next_sample = options.sample_interval_s;
  double achievable = std::min(
      target, EstimateSustainableRate(graph, d.source_rates, d.costs, cluster.worker(0).spec));
  double last_reconfig_s = -1e300;
  double last_unplaceable_s = -1e300;
  // Usable-worker count when the running plan was computed: the rebalance trigger fires
  // when capacity has returned since then.
  int plan_usable_workers = cluster.num_workers();

  // Charges the in-flight snapshot upload against the disk bandwidth of every worker
  // hosting the job, so checkpoint traffic contends with normal processing I/O (§3.3).
  auto apply_checkpoint_io = [&](double total_bps) {
    sim->ClearCheckpointIo();
    if (total_bps <= 0.0) {
      return;
    }
    std::set<WorkerId> hosts;
    for (TaskId t = 0; t < physical.num_tasks(); ++t) {
      hosts.insert(placement.WorkerOf(t));
    }
    double per_worker = total_bps / static_cast<double>(hosts.size());
    for (WorkerId w : hosts) {
      sim->SetWorkerCheckpointIoBps(w, per_worker);
    }
  };

  // Advances the world by one control interval: faults in, simulator on, heartbeats out,
  // detector tick, checkpoint lifecycle, timeline sample.
  auto step = [&]() {
    injector.AdvanceTo(now, sim.get());
    if (coordinator != nullptr) {
      apply_checkpoint_io(coordinator->InFlightIoBps());
    }
    sim->RunFor(options.control_interval_s);
    now += options.control_interval_s;
    EventLog::Global().set_now(now);
    {
      double local = now - global_offset;
      cum_records += sim->Summarize(std::max(0.0, local - options.control_interval_s), local)
                         .throughput *
                     options.control_interval_s;
    }
    if (coordinator != nullptr) {
      coordinator->SetForceFail(injector.CheckpointsFailing());
      if (coordinator->InFlight()) {
        // Crash-mid-checkpoint: a participant died before acking its snapshot, so the
        // attempt can never complete — recovery must fall back to the last *completed*
        // checkpoint.
        for (TaskId t = 0; t < physical.num_tasks(); ++t) {
          if (injector.IsCrashed(placement.WorkerOf(t))) {
            coordinator->FailInFlight(now, "participant_crash");
            break;
          }
        }
      }
      coordinator->AdvanceTo(now, cum_records);
    }
    for (WorkerId w : injector.CollectHeartbeats(now)) {
      detector.RecordHeartbeat(w, now);
    }
    for (WorkerId w : detector.Tick(now)) {
      EmitWorkerDeclaredDead(now, w, injector.IsCrashed(w));
      if (!injector.IsCrashed(w)) {
        ++run.false_positives;
        run.telemetry.GetCounter("chaos.0.false_positives").Add();
        CAPSYS_LOG_WARN("chaos", Sprintf("false positive: w%d declared dead but alive", w));
      }
    }
    if (now + 1e-9 >= next_sample) {
      double local = now - global_offset;
      double throughput =
          sim->Summarize(std::max(0.0, local - options.sample_interval_s), local).throughput;
      run.timeline.push_back(TimelinePoint{.time_s = now,
                                           .target_rate = achievable,
                                           .throughput = throughput,
                                           .slots = graph.total_parallelism()});
      run.telemetry.Record("chaos.0.throughput", now, throughput);
      run.telemetry.Record("chaos.0.target_rate", now, achievable);
      run.telemetry.Record("chaos.0.slots", now, graph.total_parallelism());
      run.telemetry.Record("chaos.0.usable_workers", now, detector.NumUsable(now));
      next_sample += options.sample_interval_s;
    }
  };
  auto advance = [&](double seconds) {
    int ticks = std::max(1, static_cast<int>(std::llround(seconds / options.control_interval_s)));
    for (int i = 0; i < ticks; ++i) {
      step();
    }
  };

  // --- Control loop -------------------------------------------------------------------------
  while (now + options.control_interval_s <= options.run_s + 1e-9) {
    step();

    // Does the current deployment still stand on usable workers?
    bool hosts_unusable = false;
    for (TaskId t = 0; t < physical.num_tasks() && !hosts_unusable; ++t) {
      hosts_unusable = !detector.IsUsable(placement.WorkerOf(t), now);
    }
    // Can the deployment reclaim restored capacity? This fires both to re-upscale a
    // degraded (narrow) plan and to re-spread a full-width plan that was crammed onto the
    // few survivors while the rest of the cluster was down.
    bool can_rebalance = detector.NumUsable(now) > plan_usable_workers &&
                         now - last_reconfig_s >= options.upscale_cooldown_s;
    if (!hosts_unusable && !can_rebalance) {
      continue;
    }
    if (!hosts_unusable && now - last_unplaceable_s < options.unplaceable_retry_s) {
      continue;  // back off after a hopeless attempt unless forced to act
    }

    // --- Recovery attempt, with bounded retry under churn -----------------------------------
    Span recovery_span("chaos.recovery_attempt");
    recovery_span.AddAttr("t", now);
    recovery_span.AddAttr("trigger", hosts_unusable ? "unusable_host" : "rebalance");
    RecoveryPlan plan;
    bool plan_usable = false;
    for (int attempt = 0; attempt <= options.max_replan_retries; ++attempt) {
      if (attempt > 0) {
        ++run.replan_churn_retries;
        run.telemetry.GetCounter("chaos.0.churn_retries").Add();
      }
      auto replan_start = std::chrono::steady_clock::now();
      plan = PlanRecovery(nominal_graph, d.source_rates, d.costs, cluster,
                          detector.UsableMask(now), deploy_options);
      run.telemetry.GetHistogram("chaos.0.replan_seconds")
          .Observe(std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                 replan_start)
                       .count());
      // The search takes time; faults keep landing while it runs.
      advance(options.replan_latency_s);
      if (!plan.Placeable()) {
        break;
      }
      plan_usable = true;
      for (TaskId t = 0; t < plan.physical.num_tasks() && plan_usable; ++t) {
        plan_usable = detector.IsUsable(plan.placement.WorkerOf(t), now);
      }
      if (plan_usable) {
        break;  // plan survived the churn window
      }
      CAPSYS_LOG_WARN("chaos", Sprintf("plan stale after churn (attempt %d), retrying",
                                       attempt + 1));
    }

    if (!plan.Placeable()) {
      // Structured degraded verdict: keep whatever is still running, retry later. The
      // achievable bar intentionally stays at the last feasible plan's value so the stall
      // is accounted as an (un)recovered outage, not defined away.
      ++run.unplaceable_verdicts;
      run.telemetry.GetCounter("chaos.0.unplaceable_verdicts").Add();
      EmitRecoveryVerdict(now, "unplaceable", detector.NumUsable(now));
      run.last_outcome = RecoveryOutcome::kUnplaceable;
      last_unplaceable_s = now;
      CAPSYS_LOG_WARN("chaos",
                      Sprintf("t=%.0f recovery unplaceable (%d usable workers), retrying in "
                              "%.0fs",
                              now, detector.NumUsable(now), options.unplaceable_retry_s));
      continue;
    }
    if (!plan_usable) {
      continue;  // churn outlasted the retry budget; try again next tick
    }

    // --- Apply: reconfigure onto the plan ---------------------------------------------------
    graph = plan.graph;
    physical = plan.physical;
    placement = plan.placement;
    run.last_outcome = plan.outcome;
    plan_usable_workers = detector.NumUsable(now);
    achievable = std::min(target, plan.sustainable_rate);
    ++run.reconfigurations;
    run.telemetry.GetCounter("chaos.0.reconfigurations").Add();
    EmitReconfiguration(now, RecoveryOutcomeName(plan.outcome), plan.graph.total_parallelism(),
                        plan.sustainable_rate);
    run.reconfig_times_s.push_back(now);
    last_reconfig_s = now;
    global_offset = now;
    sim = std::make_unique<FluidSimulator>(physical, cluster, placement, sim_config);
    sim->SetTelemetryTimeOffset(global_offset);
    injector.ApplyCurrentState(sim.get());

    // --- Blackout: restore from the last completed checkpoint + source replay ----------
    // (or the fixed reconfigure_downtime_s fallback when checkpointing is off / nothing
    // has completed). Sources stay silent until the advance() below finishes, so the
    // estimate's downtime shows up in the loss integral sample-by-sample.
    if (coordinator != nullptr) {
      coordinator->FailInFlight(now, "reconfiguration");
    }
    RecoveryModelOptions rm;
    rm.fallback_downtime_s = options.reconfigure_downtime_s;
    rm.exactly_once = options.exactly_once;
    RecoveryEstimate est =
        EstimateRecovery(coordinator.get(), now, cum_records,
                         std::max(plan.sustainable_rate, 1.0),
                         cluster.worker(0).spec.io_bandwidth_bps, rm);
    run.replayed_records += est.replayed_records;
    run.duplicate_records += est.duplicate_records;
    run.lost_records += est.lost_records;
    run.restore_downtime_s += est.downtime_s;
    run.telemetry.Record("chaos.0.replayed_records", now, est.replayed_records);
    run.telemetry.GetHistogram("chaos.0.restore_downtime_s").Observe(est.downtime_s);
    if (coordinator != nullptr) {
      EmitRestoreStarted(now, est.checkpoint_id, est.restored_bytes);
    }
    if (est.downtime_s > 0.0) {
      advance(est.downtime_s);
    }
    if (coordinator != nullptr) {
      EmitRestoreCompleted(now, est.checkpoint_id, est.downtime_s, est.replayed_records);
    }
    for (const auto& [op, r] : d.source_rates) {
      sim->SetSourceRate(op, r);
    }
    CAPSYS_LOG_INFO("chaos", Sprintf("t=%.0f reconfigured: %s (%s)", now,
                                     plan.ToString().c_str(), est.ToString().c_str()));
  }

  // --- Outage accounting over the timeline --------------------------------------------------
  double loss = 0.0;
  double thr_sum = 0.0;
  double outage_start = -1.0;
  std::vector<double> outage_durations;
  for (const TimelinePoint& p : run.timeline) {
    thr_sum += p.throughput;
    loss += std::max(0.0, target - p.throughput) * options.sample_interval_s;
    bool below = p.throughput < options.target_fraction * p.target_rate;
    if (below && outage_start < 0.0) {
      outage_start = p.time_s;
    } else if (!below && outage_start >= 0.0) {
      outage_durations.push_back(p.time_s - outage_start);
      outage_start = -1.0;
    }
  }
  run.outages = static_cast<int>(outage_durations.size());
  if (outage_start >= 0.0) {
    ++run.outages;
    ++run.unrecovered_outages;
    run.longest_outage_s =
        std::max(run.longest_outage_s, options.run_s - outage_start);
  }
  if (!outage_durations.empty()) {
    double sum = 0.0;
    for (double o : outage_durations) {
      sum += o;
      run.longest_outage_s = std::max(run.longest_outage_s, o);
    }
    run.mttr_s = sum / static_cast<double>(outage_durations.size());
  }
  run.throughput_loss = loss;
  run.mean_throughput =
      run.timeline.empty() ? 0.0 : thr_sum / static_cast<double>(run.timeline.size());
  run.deaths_declared = detector.deaths_declared();
  run.final_slots = graph.total_parallelism();
  if (coordinator != nullptr) {
    run.checkpoints_triggered = coordinator->triggered();
    run.checkpoints_completed = coordinator->completed();
    run.checkpoints_failed = coordinator->failed();
    run.checkpoints_expired = coordinator->expired();
  }
  if (chaos_span.active()) {
    chaos_span.AddAttr("reconfigurations", run.reconfigurations);
    chaos_span.AddAttr("outages", run.outages);
    chaos_span.AddAttr("mttr_s", run.mttr_s);
    chaos_span.AddAttr("mean_throughput", run.mean_throughput);
  }
  return run;
}

}  // namespace capsys
