#include "src/controller/failure_experiments.h"

#include <algorithm>
#include <memory>

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {

std::string FailureRun::ToString() const {
  return Sprintf("victim=w%d before=%.0f during=%.0f after=%.0f recovery=%.1fs %s(%d->%d)%s",
                 victim, throughput_before, throughput_during, throughput_after,
                 recovery_time_s, RecoveryOutcomeName(outcome), slots_before, slots_after,
                 recovered ? "" : " NOT_RECOVERED");
}

FailureRun RunFailureRecoveryExperiment(const QuerySpec& query, const Cluster& cluster,
                                        const FailureExperimentOptions& options) {
  FailureRun run;
  double target = query.TotalTargetRate();

  // --- Initial deployment -------------------------------------------------------------------
  DeployOptions deploy_options;
  deploy_options.policy = options.policy;
  deploy_options.use_ds2_sizing = true;
  deploy_options.search_threads = options.search_threads;
  deploy_options.seed = options.seed;
  CapsysController controller(cluster, deploy_options);
  Deployment d = controller.Deploy(query);

  // Victim: the worker hosting the most tasks.
  auto load = d.placement.LoadByWorker(cluster);
  run.victim = 0;
  for (WorkerId w = 1; w < cluster.num_workers(); ++w) {
    if (load[static_cast<size_t>(w)] > load[static_cast<size_t>(run.victim)]) {
      run.victim = w;
    }
  }
  run.slots_before = d.physical.num_tasks();

  auto sim = std::make_unique<FluidSimulator>(d.physical, cluster, d.placement, options.sim);
  for (const auto& [op, r] : d.source_rates) {
    sim->SetSourceRate(op, r);
  }

  double global_offset = 0.0;
  int current_slots = d.physical.num_tasks();
  auto sample = [&](double step_s) {
    sim->RunFor(step_s);
    double now_local = sim->time_s();
    run.timeline.push_back(TimelinePoint{
        .time_s = global_offset + now_local,
        .target_rate = target,
        .throughput = sim->Summarize(now_local - step_s, now_local).throughput,
        .slots = current_slots});
  };

  // --- Phase 1: healthy ----------------------------------------------------------------------
  while (global_offset + sim->time_s() + 5.0 <= options.fail_at_s) {
    sample(5.0);
  }
  {
    double t = sim->time_s();
    run.throughput_before = sim->Summarize(std::max(0.0, t - 30.0), t).throughput;
  }

  // --- Phase 2: failure until detection -------------------------------------------------------
  sim->FailWorker(run.victim);
  double fail_time = global_offset + sim->time_s();
  while (global_offset + sim->time_s() + 5.0 <= options.fail_at_s + options.detection_delay_s) {
    sample(5.0);
  }
  {
    double t = sim->time_s();
    run.throughput_during =
        sim->Summarize(std::max(0.0, t - options.detection_delay_s), t).throughput;
  }

  // --- Phase 3: plan recovery on the surviving workers and redeploy --------------------------
  // The planner sees the reduced cluster. When the survivors cannot host the query at its
  // current parallelism it down-scales via DS2 (degraded mode); when nothing fits it
  // reports kUnplaceable and the run simply continues on the survivors — no abort.
  std::vector<bool> usable(static_cast<size_t>(cluster.num_workers()), true);
  usable[static_cast<size_t>(run.victim)] = false;
  RecoveryPlan plan =
      PlanRecovery(d.graph, d.source_rates, d.costs, cluster, usable, deploy_options);
  run.outcome = plan.outcome;
  double recovery_target = target;
  if (plan.Placeable()) {
    run.slots_after = plan.physical.num_tasks();
    current_slots = run.slots_after;
    if (plan.outcome == RecoveryOutcome::kRecoveredDegraded) {
      recovery_target = std::min(target, plan.sustainable_rate);
    }
    global_offset += sim->time_s();
    sim = std::make_unique<FluidSimulator>(plan.physical, cluster, plan.placement, options.sim);
    sim->FailWorker(run.victim);  // the victim is still down; the plan avoids it
    for (const auto& [op, r] : d.source_rates) {
      sim->SetSourceRate(op, r);
    }
  } else {
    run.slots_after = 0;
    CAPSYS_LOG_WARN("failure", "recovery unplaceable: continuing on the survivors");
  }

  // --- Phase 4: recovery ----------------------------------------------------------------------
  while (global_offset + sim->time_s() + 5.0 <= options.run_s) {
    sample(5.0);
    if (!run.recovered && plan.Placeable() &&
        run.timeline.back().throughput >= options.target_fraction * recovery_target) {
      run.recovered = true;
      run.recovery_time_s = run.timeline.back().time_s - fail_time;
    }
  }
  {
    double t = sim->time_s();
    run.throughput_after = sim->Summarize(std::max(0.0, t - 30.0), t).throughput;
  }
  return run;
}

}  // namespace capsys
