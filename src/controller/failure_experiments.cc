#include "src/controller/failure_experiments.h"

#include <algorithm>
#include <memory>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/dataflow/rates.h"

namespace capsys {

std::string FailureRun::ToString() const {
  return Sprintf("victim=w%d before=%.0f during=%.0f after=%.0f recovery=%.1fs%s", victim,
                 throughput_before, throughput_during, throughput_after, recovery_time_s,
                 recovered ? "" : " NOT_RECOVERED");
}

FailureRun RunFailureRecoveryExperiment(const QuerySpec& query, const Cluster& cluster,
                                        const FailureExperimentOptions& options) {
  FailureRun run;
  double target = query.TotalTargetRate();

  // --- Initial deployment -------------------------------------------------------------------
  DeployOptions deploy_options;
  deploy_options.policy = options.policy;
  deploy_options.use_ds2_sizing = true;
  deploy_options.search_threads = options.search_threads;
  deploy_options.seed = options.seed;
  CapsysController controller(cluster, deploy_options);
  Deployment d = controller.Deploy(query);

  // Victim: the worker hosting the most tasks.
  auto load = d.placement.LoadByWorker(cluster);
  run.victim = 0;
  for (WorkerId w = 1; w < cluster.num_workers(); ++w) {
    if (load[static_cast<size_t>(w)] > load[static_cast<size_t>(run.victim)]) {
      run.victim = w;
    }
  }
  int surviving_slots = cluster.total_slots() - cluster.worker(run.victim).spec.slots;
  CAPSYS_CHECK_MSG(surviving_slots >= d.physical.num_tasks(),
                   "surviving cluster cannot host the query");

  auto sim = std::make_unique<FluidSimulator>(d.physical, cluster, d.placement, options.sim);
  for (const auto& [op, r] : d.source_rates) {
    sim->SetSourceRate(op, r);
  }

  double global_offset = 0.0;
  auto sample = [&](double step_s) {
    sim->RunFor(step_s);
    double now_local = sim->time_s();
    run.timeline.push_back(TimelinePoint{
        .time_s = global_offset + now_local,
        .target_rate = target,
        .throughput = sim->Summarize(now_local - step_s, now_local).throughput,
        .slots = d.physical.num_tasks()});
  };

  // --- Phase 1: healthy ----------------------------------------------------------------------
  while (global_offset + sim->time_s() + 5.0 <= options.fail_at_s) {
    sample(5.0);
  }
  {
    double t = sim->time_s();
    run.throughput_before = sim->Summarize(std::max(0.0, t - 30.0), t).throughput;
  }

  // --- Phase 2: failure until detection -------------------------------------------------------
  sim->FailWorker(run.victim);
  double fail_time = global_offset + sim->time_s();
  while (global_offset + sim->time_s() + 5.0 <= options.fail_at_s + options.detection_delay_s) {
    sample(5.0);
  }
  {
    double t = sim->time_s();
    run.throughput_during =
        sim->Summarize(std::max(0.0, t - options.detection_delay_s), t).throughput;
  }

  // --- Phase 3: re-place on the surviving workers and redeploy -------------------------------
  // The controller sees a reduced cluster; worker ids are remapped around the victim.
  std::vector<WorkerSpec> surviving;
  std::vector<WorkerId> to_global;
  for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
    if (w != run.victim) {
      surviving.push_back(cluster.worker(w).spec);
      to_global.push_back(w);
    }
  }
  Cluster reduced(std::move(surviving));
  CapsysController recovery_controller(reduced, deploy_options);
  auto rates = PropagateRates(d.graph, d.source_rates);
  auto demands = DemandsFromMeasuredCosts(d.physical, d.costs, rates);
  Placement reduced_plan = recovery_controller.Place(d.physical, demands, nullptr);
  Placement global_plan(d.physical.num_tasks());
  for (TaskId t = 0; t < d.physical.num_tasks(); ++t) {
    global_plan.Assign(t, to_global[static_cast<size_t>(reduced_plan.WorkerOf(t))]);
  }

  global_offset += sim->time_s();
  sim = std::make_unique<FluidSimulator>(d.physical, cluster, global_plan, options.sim);
  for (const auto& [op, r] : d.source_rates) {
    sim->SetSourceRate(op, r);
  }

  // --- Phase 4: recovery ----------------------------------------------------------------------
  while (global_offset + sim->time_s() + 5.0 <= options.run_s) {
    sample(5.0);
    if (!run.recovered &&
        run.timeline.back().throughput >= options.target_fraction * target) {
      run.recovered = true;
      run.recovery_time_s = run.timeline.back().time_s - fail_time;
    }
  }
  {
    double t = sim->time_s();
    run.throughput_after = sim->Summarize(std::max(0.0, t - 30.0), t).throughput;
  }
  return run;
}

}  // namespace capsys
