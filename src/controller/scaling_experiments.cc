#include "src/controller/scaling_experiments.h"

#include <algorithm>
#include <cmath>
#include <memory>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/dataflow/rates.h"

namespace capsys {
namespace {

// Records/s one task of `op` sustains when it is the only resource-intensive task on a
// worker — the ground truth against which over-provisioning is judged. Unlike the profiled
// costs (which inherit GC-collision inflation from co-locating the operator's tasks during
// profiling), this uses the declared profile with the solo GC multiplier.
double GroundTruthSoloRate(const OperatorProfile& prof, const WorkerSpec& spec,
                           const ContentionParams& params) {
  double cpu_eff = prof.cpu_per_record * (1.0 + prof.gc_spike_fraction);
  double rate = 1e18;
  if (cpu_eff > 1e-15) {
    rate = std::min(rate, params.cores_per_task / cpu_eff);
  }
  if (prof.io_bytes_per_record > 1e-15) {
    rate = std::min(rate, spec.io_bandwidth_bps / prof.io_bytes_per_record);
  }
  double out = prof.selectivity * prof.out_bytes_per_record;
  if (out > 1e-15) {
    rate = std::min(rate, spec.net_bandwidth_bps / out);
  }
  return rate;
}

// Ground-truth minimal parallelism per operator for a given total target rate. DS2 with
// perfect metrics and an uncontended placement would return exactly this.
std::vector<int> MinimalParallelism(const LogicalGraph& graph,
                                    const std::map<OperatorId, double>& source_rates,
                                    const WorkerSpec& spec, const ContentionParams& params) {
  auto rates = PropagateRates(graph, source_rates);
  std::vector<int> p(static_cast<size_t>(graph.num_operators()), 1);
  for (OperatorId o = 0; o < graph.num_operators(); ++o) {
    double solo = GroundTruthSoloRate(graph.op(o).profile, spec, params);
    double in = rates[static_cast<size_t>(o)].input_rate;
    if (solo > 1e-9 && in > 1e-9) {
      p[static_cast<size_t>(o)] = std::max(1, static_cast<int>(std::ceil(in / solo)));
    }
  }
  return p;
}

std::map<OperatorId, double> ScaledRates(const std::map<OperatorId, double>& base,
                                         double total_rate) {
  double base_total = 0.0;
  for (const auto& [op, r] : base) {
    base_total += r;
  }
  std::map<OperatorId, double> out;
  for (const auto& [op, r] : base) {
    out[op] = total_rate * (r / base_total);
  }
  return out;
}

}  // namespace

std::string StepEval::ToString() const {
  return Sprintf("target=%.0f thr=%.0f slots=%d (min %d) throughput:%s resources:%s decisions=%d",
                 target_rate, throughput, slots, min_slots, met_target ? "OK" : "MISS",
                 overprovisioned ? "OVER" : "OK", scaling_decisions);
}

ScalingRun RunScalingExperiment(const QuerySpec& query, const Cluster& cluster,
                                const std::vector<double>& rate_steps,
                                const ScalingExperimentOptions& options) {
  CAPSYS_CHECK(!rate_steps.empty());
  ScalingRun run;

  DeployOptions deploy_options;
  deploy_options.policy = options.policy;
  deploy_options.search_threads = options.search_threads;
  deploy_options.seed = options.seed;
  deploy_options.ds2 = options.ds2;
  CapsysController controller(cluster, deploy_options);

  // One-time profiling at the base rates (§5.1: profiling is not repeated on reconfig).
  std::vector<MeasuredCost> costs = ProfileOperators(
      query.graph, query.source_rates, cluster.worker(0).spec, deploy_options.profile);
  const WorkerSpec& spec = cluster.worker(0).spec;

  // --- Initial configuration --------------------------------------------------------------
  LogicalGraph graph = query.graph;
  auto step0_rates = ScaledRates(query.source_rates, rate_steps[0]);
  if (options.start_optimal) {
    graph.SetParallelism(MinimalParallelism(graph, step0_rates, spec, options.sim.contention));
  } else {
    for (OperatorId o = 0; o < graph.num_operators(); ++o) {
      graph.SetParallelism(o, 1);
    }
  }

  auto make_placement = [&](const LogicalGraph& g,
                            const std::map<OperatorId, double>& rates) -> Placement {
    PhysicalGraph physical = PhysicalGraph::Expand(g);
    auto op_rates = PropagateRates(g, rates);
    auto demands = DemandsFromMeasuredCosts(physical, costs, op_rates);
    if (options.start_optimal && run.timeline.empty() &&
        options.policy != PlacementPolicy::kCaps) {
      // Table 4 setup: every policy starts from the manually tuned optimal placement.
      DeployOptions caps_options = deploy_options;
      caps_options.policy = PlacementPolicy::kCaps;
      CapsysController caps(cluster, caps_options);
      return caps.Place(physical, demands, nullptr);
    }
    return controller.Place(physical, demands, nullptr);
  };

  Placement placement = make_placement(graph, step0_rates);
  auto sim = std::make_unique<FluidSimulator>(PhysicalGraph::Expand(graph), cluster, placement,
                                              options.sim);
  double global_offset = 0.0;  // global time = offset + sim->time_s()

  // Optional checkpointing: replaces the fixed reconfiguration blackout with the
  // recovery-time model. Off by default, which keeps the driver byte-compatible with the
  // paper's fixed-downtime setup (EstimateRecovery falls back to reconfigure_downtime_s).
  std::unique_ptr<CheckpointCoordinator> coordinator;
  if (options.use_checkpointing) {
    coordinator = std::make_unique<CheckpointCoordinator>(options.checkpoint, options.state);
  }
  double cum_records = 0.0;  // cumulative source position the barriers capture

  std::map<OperatorId, double> current_rates = step0_rates;
  auto apply_rates = [&](FluidSimulator& s) {
    for (const auto& [op, r] : current_rates) {
      s.SetSourceRate(op, r);
    }
  };
  apply_rates(*sim);

  // --- Main loop ---------------------------------------------------------------------------
  for (size_t step = 0; step < rate_steps.size(); ++step) {
    current_rates = ScaledRates(query.source_rates, rate_steps[step]);
    apply_rates(*sim);
    double step_start_global = global_offset + sim->time_s();
    int decisions_this_step = 0;

    double elapsed_in_step = 0.0;
    while (elapsed_in_step + 1e-9 < options.step_duration_s) {
      sim->RunFor(options.policy_interval_s);
      elapsed_in_step += options.policy_interval_s;
      double now_local = sim->time_s();
      double now_global = global_offset + now_local;
      QuerySummary last = sim->Summarize(now_local - options.policy_interval_s, now_local);
      run.timeline.push_back(TimelinePoint{.time_s = now_global,
                                           .target_rate = rate_steps[step],
                                           .throughput = last.throughput,
                                           .slots = graph.total_parallelism()});
      cum_records += last.throughput * options.policy_interval_s;
      if (coordinator != nullptr) {
        coordinator->AdvanceTo(now_global, cum_records);
      }

      // DS2 evaluation: only after the activation time has elapsed since the last
      // reconfiguration, so the controller sees stabilized metrics.
      if (now_local < options.activation_time_s) {
        continue;
      }
      double window_from = std::max(0.0, now_local - options.metrics_window_s);
      std::vector<Ds2Observation> obs(static_cast<size_t>(graph.num_operators()));
      for (OperatorId o = 0; o < graph.num_operators(); ++o) {
        auto& ob = obs[static_cast<size_t>(o)];
        ob.true_rate_per_task = sim->OperatorTrueRatePerTask(o, window_from, now_local);
        ob.observed_input_rate = sim->OperatorInputRate(o, window_from, now_local);
        ob.observed_output_rate = sim->OperatorOutputRate(o, window_from, now_local);
      }
      Ds2Options ds2 = options.ds2;
      ds2.max_parallelism =
          std::min(ds2.max_parallelism, cluster.total_slots() - graph.num_operators() + 1);
      Ds2Decision decision = Ds2Scale(graph, current_rates, obs, ds2);
      if (!decision.changed) {
        continue;
      }
      // Cap total tasks at cluster capacity (DS2 cannot deploy more than the slots allow).
      int total = 0;
      for (int p : decision.parallelism) {
        total += p;
      }
      if (total > cluster.total_slots()) {
        continue;
      }
      // ⑤ Reconfigure: new parallelism, new placement, fresh runtime.
      ++decisions_this_step;
      ++run.total_decisions;
      run.decision_times_s.push_back(now_global);
      graph.SetParallelism(decision.parallelism);
      placement = make_placement(graph, current_rates);
      global_offset += sim->time_s();
      sim = std::make_unique<FluidSimulator>(PhysicalGraph::Expand(graph), cluster, placement,
                                             options.sim);
      // Checkpoint-restore blackout: no records flow until the job is back up. The
      // duration comes from the recovery-time model — with checkpointing off (the
      // default) it degenerates to the fixed reconfigure_downtime_s fallback.
      if (coordinator != nullptr) {
        coordinator->FailInFlight(now_global, "reconfiguration");
      }
      RecoveryModelOptions rm;
      rm.fallback_downtime_s = options.reconfigure_downtime_s;
      rm.exactly_once = options.exactly_once;
      RecoveryEstimate est =
          EstimateRecovery(coordinator.get(), now_global, cum_records,
                           std::max(rate_steps[step], 1.0), spec.io_bandwidth_bps, rm);
      run.restore_downtime_s += est.downtime_s;
      run.replayed_records += est.replayed_records;
      if (est.downtime_s > 0.0) {
        sim->RunFor(est.downtime_s);
        elapsed_in_step += est.downtime_s;
      }
      apply_rates(*sim);
    }

    // --- Step evaluation ---------------------------------------------------------------
    double eval_window = std::min(60.0, options.step_duration_s / 3.0);
    if (sim->time_s() < eval_window) {
      // A reconfiguration landed near the step boundary; give the fresh runtime a full
      // evaluation window before judging the step.
      sim->RunFor(eval_window - sim->time_s());
    }
    double now_local = sim->time_s();
    QuerySummary summary = sim->Summarize(now_local - eval_window, now_local);
    StepEval eval;
    eval.target_rate = rate_steps[step];
    eval.throughput = summary.throughput;
    eval.slots = graph.total_parallelism();
    auto min_p = MinimalParallelism(query.graph, current_rates, spec, options.sim.contention);
    for (int p : min_p) {
      eval.min_slots += p;
    }
    eval.met_target = summary.throughput >= options.target_fraction * rate_steps[step];
    eval.overprovisioned = eval.slots > eval.min_slots;
    eval.scaling_decisions = decisions_this_step;
    run.steps.push_back(eval);
    (void)step_start_global;
  }
  if (coordinator != nullptr) {
    run.checkpoints_completed = coordinator->completed();
  }
  return run;
}

}  // namespace capsys
