#include "src/controller/recovery.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/dataflow/rates.h"
#include "src/obs/events.h"
#include "src/obs/trace.h"

namespace capsys {

const char* RecoveryOutcomeName(RecoveryOutcome outcome) {
  switch (outcome) {
    case RecoveryOutcome::kRecoveredFull:
      return "full";
    case RecoveryOutcome::kRecoveredDegraded:
      return "degraded";
    case RecoveryOutcome::kUnplaceable:
      return "unplaceable";
  }
  return "?";
}

std::string RecoveryPlan::ToString() const {
  return Sprintf("outcome=%s slots=%d->%d sustainable=%.0f rec/s",
                 RecoveryOutcomeName(outcome), slots_before, slots_after, sustainable_rate);
}

double EstimateSustainableRate(const LogicalGraph& graph,
                               const std::map<OperatorId, double>& source_rates,
                               const std::vector<MeasuredCost>& costs,
                               const WorkerSpec& spec) {
  double target = 0.0;
  for (const auto& [op, r] : source_rates) {
    target += r;
  }
  if (target <= 1e-9) {
    return 0.0;
  }
  auto rates = PropagateRates(graph, source_rates);
  // Sustained fraction of the target = min over operators of what its tasks can absorb
  // relative to the load the target pushes through it (rates scale linearly with the
  // aggregate source rate in the fluid model).
  double fraction = 1.0;
  for (OperatorId o = 0; o < graph.num_operators(); ++o) {
    double in = rates[static_cast<size_t>(o)].input_rate;
    if (in <= 1e-9) {
      continue;
    }
    double solo = CapsysController::StandaloneTaskRate(costs[static_cast<size_t>(o)], spec);
    double capacity = solo * graph.op(o).parallelism;
    fraction = std::min(fraction, capacity / in);
  }
  return target * std::clamp(fraction, 0.0, 1.0);
}

RecoveryPlan PlanRecovery(const LogicalGraph& graph,
                          const std::map<OperatorId, double>& source_rates,
                          const std::vector<MeasuredCost>& costs, const Cluster& cluster,
                          const std::vector<bool>& usable, const DeployOptions& options) {
  CAPSYS_CHECK(static_cast<int>(usable.size()) == cluster.num_workers());
  CAPSYS_CHECK(static_cast<int>(costs.size()) == graph.num_operators());
  Span span("controller.plan_recovery");
  RecoveryPlan plan;
  plan.slots_before = graph.total_parallelism();

  // --- Usable sub-cluster -------------------------------------------------------------------
  std::vector<WorkerSpec> surviving;
  std::vector<WorkerId> to_global;
  for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
    if (usable[static_cast<size_t>(w)]) {
      surviving.push_back(cluster.worker(w).spec);
      to_global.push_back(w);
    }
  }
  if (surviving.empty()) {
    return plan;  // kUnplaceable: no worker left to host anything
  }
  Cluster reduced(std::move(surviving));
  int available_slots = reduced.total_slots();

  // --- Fit parallelism to the survivors -----------------------------------------------------
  plan.graph = graph;
  if (plan.graph.total_parallelism() > available_slots) {
    if (graph.num_operators() > available_slots) {
      return plan;  // even parallelism 1 per operator cannot fit
    }
    // Down-scale via the DS2 sizing model: size each operator for the target rate from its
    // profiled standalone rate, then shrink the widest operators until the plan fits. The
    // DS2 pass keeps the relative parallelism proportional to per-operator load, so the
    // shrink loop degrades the least-loaded dimensions last.
    std::vector<Ds2Observation> obs(static_cast<size_t>(graph.num_operators()));
    for (OperatorId o = 0; o < graph.num_operators(); ++o) {
      obs[static_cast<size_t>(o)].true_rate_per_task =
          CapsysController::StandaloneTaskRate(costs[static_cast<size_t>(o)],
                                               reduced.worker(0).spec);
    }
    Ds2Options ds2 = options.ds2;
    ds2.max_parallelism = std::min(ds2.max_parallelism, available_slots);
    Ds2Decision decision = Ds2Scale(graph, source_rates, obs, ds2);
    // Never scale *up* beyond the requested graph during recovery.
    for (OperatorId o = 0; o < graph.num_operators(); ++o) {
      decision.parallelism[static_cast<size_t>(o)] =
          std::min(decision.parallelism[static_cast<size_t>(o)], graph.op(o).parallelism);
    }
    plan.graph.SetParallelism(decision.parallelism);
    // Forward edges require equal parallelism on both ends; repair by shrinking to the min.
    auto repair_forward = [](LogicalGraph& g) {
      bool changed = true;
      while (changed) {
        changed = false;
        for (const auto& e : g.edges()) {
          if (e.scheme != PartitionScheme::kForward) {
            continue;
          }
          int p = std::min(g.op(e.from).parallelism, g.op(e.to).parallelism);
          if (g.op(e.from).parallelism != p || g.op(e.to).parallelism != p) {
            g.SetParallelism(e.from, p);
            g.SetParallelism(e.to, p);
            changed = true;
          }
        }
      }
    };
    repair_forward(plan.graph);
    while (plan.graph.total_parallelism() > available_slots) {
      OperatorId widest = 0;
      for (OperatorId o = 1; o < plan.graph.num_operators(); ++o) {
        if (plan.graph.op(o).parallelism > plan.graph.op(widest).parallelism) {
          widest = o;
        }
      }
      plan.graph.SetParallelism(widest, plan.graph.op(widest).parallelism - 1);
      repair_forward(plan.graph);
    }
    plan.outcome = RecoveryOutcome::kRecoveredDegraded;
    EmitScaleDecision(EventLog::Global().now(), "degraded_recovery", plan.slots_before,
                      plan.graph.total_parallelism(), decision.ToString());
    CAPSYS_LOG_WARN("recovery", Sprintf("down-scaled %d -> %d tasks to fit %d usable slots",
                                        plan.slots_before, plan.graph.total_parallelism(),
                                        available_slots));
  } else {
    plan.outcome = RecoveryOutcome::kRecoveredFull;
  }
  plan.slots_after = plan.graph.total_parallelism();

  // --- Place on the reduced cluster and lift back to global ids -----------------------------
  plan.physical = PhysicalGraph::Expand(plan.graph);
  auto rates = PropagateRates(plan.graph, source_rates);
  auto demands = DemandsFromMeasuredCosts(plan.physical, costs, rates);
  CapsysController recovery_controller(reduced, options);
  Placement reduced_plan = recovery_controller.Place(plan.physical, demands, nullptr);
  plan.placement = Placement(plan.physical.num_tasks());
  for (TaskId t = 0; t < plan.physical.num_tasks(); ++t) {
    plan.placement.Assign(t, to_global[static_cast<size_t>(reduced_plan.WorkerOf(t))]);
  }
  plan.sustainable_rate =
      EstimateSustainableRate(plan.graph, source_rates, costs, reduced.worker(0).spec);
  return plan;
}

}  // namespace capsys
