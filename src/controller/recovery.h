// Degraded-mode recovery planning (robustness extension): given the subset of workers that
// are still usable, compute a plan that keeps the query running. When the survivors can
// host the query at its current parallelism this is a plain re-placement; when they cannot,
// parallelism is down-scaled via the DS2 sizing model until the plan fits (graceful
// degradation at reduced capacity); when even parallelism-1 does not fit, the planner
// reports a structured kUnplaceable outcome instead of aborting — the caller keeps the
// survivors running and retries when workers return.
#ifndef SRC_CONTROLLER_RECOVERY_H_
#define SRC_CONTROLLER_RECOVERY_H_

#include <map>
#include <string>
#include <vector>

#include "src/controller/deployment.h"

namespace capsys {

enum class RecoveryOutcome : int {
  kRecoveredFull = 0,   // original parallelism fits the usable workers
  kRecoveredDegraded,   // parallelism was down-scaled to fit (reduced capacity)
  kUnplaceable,         // not even parallelism 1 per operator fits the usable workers
};

const char* RecoveryOutcomeName(RecoveryOutcome outcome);

struct RecoveryPlan {
  RecoveryOutcome outcome = RecoveryOutcome::kUnplaceable;
  LogicalGraph graph;       // possibly down-scaled parallelism (empty when unplaceable)
  PhysicalGraph physical;
  Placement placement;      // global worker ids over the *full* cluster
  int slots_before = 0;     // total parallelism of the requested graph
  int slots_after = 0;      // total parallelism of the planned graph
  // Estimated aggregate source rate the planned parallelism sustains (capped at the
  // target); the throughput bar a degraded deployment is judged against.
  double sustainable_rate = 0.0;

  bool Placeable() const { return outcome != RecoveryOutcome::kUnplaceable; }
  std::string ToString() const;
};

// Estimated aggregate source rate `graph` (at its current parallelism) sustains, given
// per-operator standalone task rates derived from `costs` on `spec`. Computed as the
// bottleneck over operators of parallelism x standalone rate, scaled back to source terms;
// capped at the aggregate target.
double EstimateSustainableRate(const LogicalGraph& graph,
                               const std::map<OperatorId, double>& source_rates,
                               const std::vector<MeasuredCost>& costs, const WorkerSpec& spec);

// Plans a recovery of `graph` onto the usable subset of `cluster`. `usable` is indexed by
// global WorkerId. `options.policy` selects the placement policy, as in normal deployment.
// Never CHECK-fails on insufficient capacity — that is what the outcome reports.
RecoveryPlan PlanRecovery(const LogicalGraph& graph,
                          const std::map<OperatorId, double>& source_rates,
                          const std::vector<MeasuredCost>& costs, const Cluster& cluster,
                          const std::vector<bool>& usable, const DeployOptions& options);

}  // namespace capsys

#endif  // SRC_CONTROLLER_RECOVERY_H_
