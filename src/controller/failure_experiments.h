// Failure-injection experiment driver (robustness extension): kill a worker mid-run, let
// the controller detect the failure and re-place the query on the surviving workers, and
// measure the recovery. Exercises the same reconfiguration path as auto-scaling (§5.1 ⑤),
// triggered by node loss instead of a rate change.
#ifndef SRC_CONTROLLER_FAILURE_EXPERIMENTS_H_
#define SRC_CONTROLLER_FAILURE_EXPERIMENTS_H_

#include <string>
#include <vector>

#include "src/controller/recovery.h"
#include "src/controller/scaling_experiments.h"

namespace capsys {

struct FailureExperimentOptions {
  PlacementPolicy policy = PlacementPolicy::kCaps;
  double fail_at_s = 120.0;         // when the victim worker dies
  double detection_delay_s = 10.0;  // heartbeat timeout before the controller reacts
  double run_s = 360.0;             // total experiment duration
  double target_fraction = 0.95;
  int search_threads = 2;
  uint64_t seed = 1;
  SimConfig sim;
};

struct FailureRun {
  std::vector<TimelinePoint> timeline;  // sampled every 5 s
  WorkerId victim = kInvalidId;
  double throughput_before = 0.0;  // steady state before the failure
  double throughput_during = 0.0;  // between failure and re-placement
  double throughput_after = 0.0;   // steady state after recovery
  // Time from the failure instant until throughput is back above target_fraction x the
  // recovery target (the nominal target, or the degraded plan's sustainable rate when the
  // survivors forced a down-scale); negative when the query never recovers within the run.
  double recovery_time_s = -1.0;
  bool recovered = false;
  // How the re-placement went: full-width, down-scaled, or unplaceable (in which case no
  // re-placement happens and the run continues on the survivors of the original plan).
  RecoveryOutcome outcome = RecoveryOutcome::kRecoveredFull;
  int slots_before = 0;  // tasks deployed before the failure
  int slots_after = 0;   // tasks deployed after recovery

  std::string ToString() const;
};

// Runs the experiment. The victim is the worker hosting the most tasks under the initial
// placement (worst case). When the survivors cannot host the query at its current
// parallelism the controller down-scales via DS2 until the plan fits (outcome
// kRecoveredDegraded) or reports kUnplaceable — it never aborts.
FailureRun RunFailureRecoveryExperiment(const QuerySpec& query, const Cluster& cluster,
                                        const FailureExperimentOptions& options);

}  // namespace capsys

#endif  // SRC_CONTROLLER_FAILURE_EXPERIMENTS_H_
