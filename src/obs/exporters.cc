#include "src/obs/exporters.h"

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <map>

#include "src/common/str.h"
#include "src/obs/events.h"
#include "src/obs/json_util.h"

namespace capsys {
namespace {

std::string Sanitize(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    bool ok = std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (!out.empty() && std::isdigit(static_cast<unsigned char>(out[0])) != 0) {
    out.insert(out.begin(), '_');
  }
  return out;
}

// Splits a "scope.id.metric" convention name into a Prometheus family name and a label;
// names outside the convention become label-less sanitized families.
struct PromName {
  std::string family;
  std::string labels;  // "" or `{scope="id"}` content without braces
};

PromName ToPromName(const std::string& name) {
  size_t first = name.find('.');
  size_t second = first == std::string::npos ? std::string::npos : name.find('.', first + 1);
  if (second != std::string::npos) {
    std::string scope = name.substr(0, first);
    std::string id = name.substr(first + 1, second - first - 1);
    std::string metric = name.substr(second + 1);
    if (scope == "task" || scope == "worker" || scope == "op" || scope == "query" ||
        scope == "chaos" || scope == "sim") {
      return PromName{Sprintf("capsys_%s_%s", Sanitize(scope).c_str(),
                              Sanitize(metric).c_str()),
                      Sprintf("%s=\"%s\"", Sanitize(scope).c_str(), JsonEscape(id).c_str())};
    }
  }
  return PromName{"capsys_" + Sanitize(name), ""};
}

std::string Sample(const PromName& n, const std::string& suffix, const std::string& extra_label,
                   const std::string& value) {
  std::string labels = n.labels;
  if (!extra_label.empty()) {
    labels += labels.empty() ? extra_label : ("," + extra_label);
  }
  if (labels.empty()) {
    return Sprintf("%s%s %s\n", n.family.c_str(), suffix.c_str(), value.c_str());
  }
  return Sprintf("%s%s{%s} %s\n", n.family.c_str(), suffix.c_str(), labels.c_str(),
                 value.c_str());
}

std::string FormatValue(double v) { return Sprintf("%.10g", v); }

}  // namespace

std::string PrometheusText(const MetricsRegistry& registry) {
  // Group samples by family so each family gets exactly one # TYPE header.
  struct Family {
    std::string type;
    std::vector<std::string> samples;
  };
  std::map<std::string, Family> families;

  for (const std::string& name : registry.Names()) {
    const TimeSeries* ts = registry.Find(name);
    if (ts == nullptr || ts->Empty()) {
      continue;
    }
    PromName n = ToPromName(name);
    Family& fam = families[n.family];
    fam.type = "gauge";
    fam.samples.push_back(Sample(n, "", "", FormatValue(ts->Last())));
  }
  for (const std::string& name : registry.CounterNames()) {
    const Counter* c = registry.FindCounter(name);
    PromName n = ToPromName(name);
    n.family += "_total";
    Family& fam = families[n.family];
    fam.type = "counter";
    fam.samples.push_back(
        Sample(n, "", "", Sprintf("%llu", static_cast<unsigned long long>(c->Value()))));
  }
  for (const std::string& name : registry.HistogramNames()) {
    const Histogram* h = registry.FindHistogram(name);
    PromName n = ToPromName(name);
    Family& fam = families[n.family];
    fam.type = "histogram";
    uint64_t cumulative = 0;
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      cumulative += h->bucket_counts()[i];
      fam.samples.push_back(
          Sample(n, "_bucket", Sprintf("le=\"%.10g\"", h->bounds()[i]),
                 Sprintf("%llu", static_cast<unsigned long long>(cumulative))));
    }
    fam.samples.push_back(
        Sample(n, "_bucket", "le=\"+Inf\"",
               Sprintf("%llu", static_cast<unsigned long long>(h->Count()))));
    fam.samples.push_back(Sample(n, "_sum", "", FormatValue(h->Sum())));
    fam.samples.push_back(
        Sample(n, "_count", "", Sprintf("%llu", static_cast<unsigned long long>(h->Count()))));
  }

  std::string out;
  for (const auto& [family, fam] : families) {
    out += Sprintf("# TYPE %s %s\n", family.c_str(), fam.type.c_str());
    for (const std::string& s : fam.samples) {
      out += s;
    }
  }
  return out;
}

std::string MetricsJson(const MetricsRegistry& registry) {
  std::string out = "{\n  \"series\": {\n";
  bool first = true;
  for (const std::string& name : registry.Names()) {
    const TimeSeries* ts = registry.Find(name);
    if (ts == nullptr) {
      continue;
    }
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += Sprintf("    \"%s\": [", JsonEscape(name).c_str());
    for (size_t i = 0; i < ts->points().size(); ++i) {
      const auto& p = ts->points()[i];
      out += Sprintf("%s[%s,%s]", i > 0 ? "," : "", JsonNumber(p.time_s).c_str(),
                     JsonNumber(p.value).c_str());
    }
    out += "]";
  }
  out += "\n  },\n  \"counters\": {\n";
  first = true;
  for (const std::string& name : registry.CounterNames()) {
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += Sprintf("    \"%s\": %llu", JsonEscape(name).c_str(),
                   static_cast<unsigned long long>(registry.FindCounter(name)->Value()));
  }
  out += "\n  },\n  \"histograms\": {\n";
  first = true;
  for (const std::string& name : registry.HistogramNames()) {
    const Histogram* h = registry.FindHistogram(name);
    if (!first) {
      out += ",\n";
    }
    first = false;
    out += Sprintf("    \"%s\": {\"count\":%llu,\"sum\":%s", JsonEscape(name).c_str(),
                   static_cast<unsigned long long>(h->Count()),
                   JsonNumber(h->Sum()).c_str());
    if (h->Count() > 0) {
      out += Sprintf(",\"p50\":%s,\"p95\":%s,\"p99\":%s",
                     JsonNumber(h->Percentile(50)).c_str(),
                     JsonNumber(h->Percentile(95)).c_str(),
                     JsonNumber(h->Percentile(99)).c_str());
    }
    out += ",\"bounds\":[";
    for (size_t i = 0; i < h->bounds().size(); ++i) {
      out += Sprintf("%s%s", i > 0 ? "," : "", JsonNumber(h->bounds()[i]).c_str());
    }
    out += "],\"buckets\":[";
    for (size_t i = 0; i < h->bucket_counts().size(); ++i) {
      out += Sprintf("%s%llu", i > 0 ? "," : "",
                     static_cast<unsigned long long>(h->bucket_counts()[i]));
    }
    out += "]}";
  }
  out += "\n  }\n}\n";
  return out;
}

std::string ChromeTraceJson(const std::vector<SpanRecord>& spans) {
  std::string out = "{\"traceEvents\":[";
  for (size_t i = 0; i < spans.size(); ++i) {
    const SpanRecord& s = spans[i];
    if (i > 0) {
      out += ",";
    }
    out += Sprintf("\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,"
                   "\"dur\":%s,\"args\":{\"span_id\":%llu,\"parent_id\":%llu",
                   JsonEscape(s.name).c_str(), s.tid, JsonNumber(s.start_us).c_str(),
                   JsonNumber(s.dur_us).c_str(), static_cast<unsigned long long>(s.id),
                   static_cast<unsigned long long>(s.parent));
    for (const auto& [key, value] : s.attrs) {
      out += Sprintf(",\"%s\":", JsonEscape(key).c_str());
      if (IsJsonNumber(value)) {
        out += value;
      } else {
        out += Sprintf("\"%s\"", JsonEscape(value).c_str());
      }
    }
    out += "}}";
  }
  out += "\n]}\n";
  return out;
}

namespace {

bool WriteFile(const std::string& path, const std::string& content, std::string* error) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    if (error != nullptr) {
      *error = "cannot open " + path;
    }
    return false;
  }
  bool ok = content.empty() || std::fwrite(content.data(), 1, content.size(), f) == content.size();
  ok = std::fclose(f) == 0 && ok;
  if (!ok && error != nullptr) {
    *error = "short write to " + path;
  }
  return ok;
}

}  // namespace

bool WriteTelemetryBundle(const std::string& dir, const MetricsRegistry* registry,
                          std::string* error) {
  std::error_code ec;
  std::filesystem::create_directories(dir, ec);
  if (ec) {
    if (error != nullptr) {
      *error = "cannot create " + dir + ": " + ec.message();
    }
    return false;
  }
  if (registry != nullptr) {
    if (!WriteFile(dir + "/metrics.prom", PrometheusText(*registry), error) ||
        !WriteFile(dir + "/metrics.json", MetricsJson(*registry), error)) {
      return false;
    }
  }
  return WriteFile(dir + "/trace.json", ChromeTraceJson(Tracer::Global().Snapshot()), error) &&
         WriteFile(dir + "/events.jsonl", EventLog::Global().ToJsonLines(), error);
}

}  // namespace capsys
