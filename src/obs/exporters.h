// Telemetry exporters (observability subsystem): serialize a MetricsRegistry to Prometheus
// text-exposition format and to JSON, serialize collected spans to Chrome trace_event JSON
// (loadable in chrome://tracing / Perfetto), and write a whole run's telemetry bundle —
// metrics.prom + metrics.json + trace.json + events.jsonl — into a directory.
#ifndef SRC_OBS_EXPORTERS_H_
#define SRC_OBS_EXPORTERS_H_

#include <string>
#include <vector>

#include "src/metrics/metrics.h"
#include "src/obs/trace.h"

namespace capsys {

// Prometheus text exposition (version 0.0.4) of the registry:
//   - every TimeSeries exports its last value as a gauge,
//   - counters export as counters,
//   - histograms export cumulative `_bucket{le=...}` samples plus `_sum`/`_count`.
// Names following the "scope.id.metric" convention map to one metric family per
// (scope, metric) with the id as a label: "task.7.true_rate" becomes
// `capsys_task_true_rate{task="7"}`. Other names are sanitized wholesale.
std::string PrometheusText(const MetricsRegistry& registry);

// Full JSON dump of the registry: every series with all its points, every counter, every
// histogram with bucket bounds/counts and p50/p95/p99.
std::string MetricsJson(const MetricsRegistry& registry);

// Chrome trace_event JSON ("traceEvents" array of complete "X" events, timestamps in
// microseconds) of the given spans. Span attributes become event "args".
std::string ChromeTraceJson(const std::vector<SpanRecord>& spans);

// Writes a telemetry bundle into `dir` (created if needed):
//   metrics.prom   PrometheusText(*registry)    — omitted when registry is null
//   metrics.json   MetricsJson(*registry)       — omitted when registry is null
//   trace.json     ChromeTraceJson of the global Tracer's spans
//   events.jsonl   the global EventLog as JSON Lines
// Returns false (and fills *error when non-null) on I/O failure.
bool WriteTelemetryBundle(const std::string& dir, const MetricsRegistry* registry,
                          std::string* error = nullptr);

}  // namespace capsys

#endif  // SRC_OBS_EXPORTERS_H_
