#include "src/obs/events.h"

#include "src/common/str.h"
#include "src/obs/json_util.h"

namespace capsys {
namespace {

std::string Num(double v) { return Sprintf("%.6g", v); }

}  // namespace

const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kPlacementDecision:
      return "PlacementDecision";
    case EventType::kScaleDecision:
      return "ScaleDecision";
    case EventType::kFaultInjected:
      return "FaultInjected";
    case EventType::kBackpressureOnset:
      return "BackpressureOnset";
    case EventType::kBackpressureCleared:
      return "BackpressureCleared";
    case EventType::kMetricDropout:
      return "MetricDropout";
    case EventType::kMetricStale:
      return "MetricStale";
    case EventType::kWorkerDeclaredDead:
      return "WorkerDeclaredDead";
    case EventType::kReconfiguration:
      return "Reconfiguration";
    case EventType::kRecoveryVerdict:
      return "RecoveryVerdict";
    case EventType::kCheckpointStarted:
      return "CheckpointStarted";
    case EventType::kCheckpointCompleted:
      return "CheckpointCompleted";
    case EventType::kCheckpointFailed:
      return "CheckpointFailed";
    case EventType::kCheckpointExpired:
      return "CheckpointExpired";
    case EventType::kRestoreStarted:
      return "RestoreStarted";
    case EventType::kRestoreCompleted:
      return "RestoreCompleted";
    case EventType::kJobStateChanged:
      return "JobStateChanged";
    case EventType::kAdmissionDecision:
      return "AdmissionDecision";
  }
  return "?";
}

std::string Event::ToJson() const {
  std::string out = Sprintf("{\"type\":\"%s\",\"t\":%s", EventTypeName(type),
                            JsonNumber(time_s).c_str());
  for (const auto& [key, value] : fields) {
    out += Sprintf(",\"%s\":", JsonEscape(key).c_str());
    // Numeric-looking field values are emitted as JSON numbers, the rest as strings.
    if (IsJsonNumber(value)) {
      out += value;
    } else if (value == "true" || value == "false") {
      out += value;
    } else {
      out += Sprintf("\"%s\"", JsonEscape(value).c_str());
    }
  }
  out += "}";
  return out;
}

EventLog& EventLog::Global() {
  static EventLog* log = new EventLog();
  return *log;
}

void EventLog::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void EventLog::Emit(Event event) {
  if (!enabled()) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<Event> EventLog::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t EventLog::Count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

size_t EventLog::CountOf(EventType type) const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const Event& e : events_) {
    n += e.type == type ? 1 : 0;
  }
  return n;
}

std::string EventLog::ToJsonLines() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const Event& e : events_) {
    out += e.ToJson();
    out += '\n';
  }
  return out;
}

void EmitPlacementDecision(double time_s, const std::string& policy, int tasks, int workers,
                           const ResourceVector& alpha, const ResourceVector& plan_cost,
                           double decision_time_s) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kPlacementDecision, time_s, {}};
  e.fields = {{"policy", policy},
              {"tasks", Sprintf("%d", tasks)},
              {"workers", Sprintf("%d", workers)},
              {"alpha_cpu", Num(alpha.cpu)},
              {"alpha_io", Num(alpha.io)},
              {"alpha_net", Num(alpha.net)},
              {"cost_cpu", Num(plan_cost.cpu)},
              {"cost_io", Num(plan_cost.io)},
              {"cost_net", Num(plan_cost.net)},
              {"decision_time_s", Num(decision_time_s)}};
  log.Emit(std::move(e));
}

void EmitScaleDecision(double time_s, const std::string& reason, int slots_before,
                       int slots_after, const std::string& parallelism) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kScaleDecision, time_s, {}};
  e.fields = {{"reason", reason},
              {"slots_before", Sprintf("%d", slots_before)},
              {"slots_after", Sprintf("%d", slots_after)},
              {"parallelism", parallelism}};
  log.Emit(std::move(e));
}

void EmitFaultInjected(double time_s, const std::string& kind, WorkerId worker, double value) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kFaultInjected, time_s, {}};
  e.fields = {{"kind", kind}, {"worker", Sprintf("%d", worker)}, {"value", Num(value)}};
  log.Emit(std::move(e));
}

void EmitBackpressureOnset(double time_s, double backpressure) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kBackpressureOnset, time_s, {{"backpressure", Num(backpressure)}}};
  log.Emit(std::move(e));
}

void EmitBackpressureCleared(double time_s, double backpressure) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kBackpressureCleared, time_s, {{"backpressure", Num(backpressure)}}};
  log.Emit(std::move(e));
}

void EmitMetricDropout(double time_s, const std::string& metric, double shift_s) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kMetricDropout, time_s, {{"metric", metric}, {"shift_s", Num(shift_s)}}};
  log.Emit(std::move(e));
}

void EmitMetricStale(double time_s, const std::string& metric, double staleness_s) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kMetricStale,
          time_s,
          {{"metric", metric}, {"staleness_s", Num(staleness_s)}}};
  log.Emit(std::move(e));
}

void EmitWorkerDeclaredDead(double time_s, WorkerId worker, bool actually_crashed) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kWorkerDeclaredDead, time_s, {}};
  e.fields = {{"worker", Sprintf("%d", worker)},
              {"actually_crashed", actually_crashed ? "true" : "false"}};
  log.Emit(std::move(e));
}

void EmitReconfiguration(double time_s, const std::string& outcome, int slots,
                         double sustainable_rate) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kReconfiguration, time_s, {}};
  e.fields = {{"outcome", outcome},
              {"slots", Sprintf("%d", slots)},
              {"sustainable_rate", Num(sustainable_rate)}};
  log.Emit(std::move(e));
}

void EmitRecoveryVerdict(double time_s, const std::string& outcome, int usable_workers) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kRecoveryVerdict, time_s, {}};
  e.fields = {{"outcome", outcome}, {"usable_workers", Sprintf("%d", usable_workers)}};
  log.Emit(std::move(e));
}

void EmitCheckpointStarted(double time_s, uint64_t checkpoint_id, uint64_t full_bytes,
                           uint64_t delta_bytes) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kCheckpointStarted, time_s, {}};
  e.fields = {{"checkpoint_id", Sprintf("%llu", static_cast<unsigned long long>(checkpoint_id))},
              {"full_bytes", Sprintf("%llu", static_cast<unsigned long long>(full_bytes))},
              {"delta_bytes", Sprintf("%llu", static_cast<unsigned long long>(delta_bytes))}};
  log.Emit(std::move(e));
}

void EmitCheckpointCompleted(double time_s, uint64_t checkpoint_id, double duration_s,
                             uint64_t delta_bytes) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kCheckpointCompleted, time_s, {}};
  e.fields = {{"checkpoint_id", Sprintf("%llu", static_cast<unsigned long long>(checkpoint_id))},
              {"duration_s", Num(duration_s)},
              {"delta_bytes", Sprintf("%llu", static_cast<unsigned long long>(delta_bytes))}};
  log.Emit(std::move(e));
}

void EmitCheckpointFailed(double time_s, uint64_t checkpoint_id, const std::string& reason) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kCheckpointFailed, time_s, {}};
  e.fields = {{"checkpoint_id", Sprintf("%llu", static_cast<unsigned long long>(checkpoint_id))},
              {"reason", reason}};
  log.Emit(std::move(e));
}

void EmitCheckpointExpired(double time_s, uint64_t checkpoint_id, double timeout_s) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kCheckpointExpired, time_s, {}};
  e.fields = {{"checkpoint_id", Sprintf("%llu", static_cast<unsigned long long>(checkpoint_id))},
              {"timeout_s", Num(timeout_s)}};
  log.Emit(std::move(e));
}

void EmitRestoreStarted(double time_s, uint64_t checkpoint_id, uint64_t restored_bytes) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kRestoreStarted, time_s, {}};
  e.fields = {{"checkpoint_id", Sprintf("%llu", static_cast<unsigned long long>(checkpoint_id))},
              {"restored_bytes",
               Sprintf("%llu", static_cast<unsigned long long>(restored_bytes))}};
  log.Emit(std::move(e));
}

void EmitRestoreCompleted(double time_s, uint64_t checkpoint_id, double downtime_s,
                          double replayed_records) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kRestoreCompleted, time_s, {}};
  e.fields = {{"checkpoint_id", Sprintf("%llu", static_cast<unsigned long long>(checkpoint_id))},
              {"downtime_s", Num(downtime_s)},
              {"replayed_records", Num(replayed_records)}};
  log.Emit(std::move(e));
}

void EmitJobStateChanged(double time_s, int64_t job, const std::string& from,
                         const std::string& to, const std::string& detail) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kJobStateChanged, time_s, {}};
  e.fields = {{"job", Sprintf("%lld", static_cast<long long>(job))},
              {"from", from},
              {"to", to},
              {"detail", detail}};
  log.Emit(std::move(e));
}

void EmitAdmissionDecision(double time_s, int64_t job, const std::string& verdict, int tasks,
                           int free_slots) {
  EventLog& log = EventLog::Global();
  if (!log.enabled()) {
    return;
  }
  Event e{EventType::kAdmissionDecision, time_s, {}};
  e.fields = {{"job", Sprintf("%lld", static_cast<long long>(job))},
              {"verdict", verdict},
              {"tasks", Sprintf("%d", tasks)},
              {"free_slots", Sprintf("%d", free_slots)}};
  log.Emit(std::move(e));
}

}  // namespace capsys
