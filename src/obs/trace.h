// Lightweight span tracing for the control plane (observability subsystem).
//
// A Span is an RAII scope: construction stamps a monotonic start time, destruction records
// the completed span into the global Tracer. Spans nest via a thread-local stack, so a span
// opened inside another span's scope (on the same thread) records it as its parent —
// including across the search's worker threads, where each offloaded subtree starts a fresh
// root on its own thread. Collection is thread-safe; the only cost on a hot path with
// tracing disabled is one relaxed atomic load per span (measured by bench_obs_overhead).
//
// Completed spans export to Chrome trace_event JSON (exporters.h) and open directly in
// chrome://tracing or Perfetto.
#ifndef SRC_OBS_TRACE_H_
#define SRC_OBS_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace capsys {

// One completed span. Times are microseconds since the tracer's epoch (reset by Reset()).
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent = 0;  // 0 = root span
  std::string name;
  double start_us = 0.0;
  double dur_us = 0.0;
  int tid = 0;  // logical thread id, assigned in first-span order
  std::vector<std::pair<std::string, std::string>> attrs;
};

// Process-global collector of completed spans. Disabled by default; when disabled, Span
// construction/destruction is a single relaxed atomic load.
class Tracer {
 public:
  static Tracer& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Drops all collected spans and restarts the time epoch at now.
  void Reset();

  std::vector<SpanRecord> Snapshot() const;
  size_t SpanCount() const;

  // -- Internal API used by Span (public so Span need not be a friend of a singleton). --
  uint64_t NextId() { return next_id_.fetch_add(1, std::memory_order_relaxed); }
  double NowUs() const;
  int ThisThreadTid();
  void Submit(SpanRecord&& rec);

 private:
  Tracer();

  std::atomic<bool> enabled_{false};
  std::atomic<uint64_t> next_id_{1};
  std::atomic<int> next_tid_{0};
  std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
};

// RAII tracing scope. Creating a Span while another Span is open on the same thread makes
// the new one a child. Inactive (tracing disabled at construction) spans ignore attributes
// and record nothing.
class Span {
 public:
  explicit Span(const char* name);
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  bool active() const { return active_; }

  void AddAttr(const char* key, const std::string& value);
  void AddAttr(const char* key, const char* value);
  void AddAttr(const char* key, double value);
  void AddAttr(const char* key, uint64_t value);
  void AddAttr(const char* key, int value);

 private:
  bool active_ = false;
  SpanRecord rec_;
};

}  // namespace capsys

#endif  // SRC_OBS_TRACE_H_
