#include "src/obs/json_util.h"

#include <cmath>
#include <cstdlib>

#include "src/common/str.h"

namespace capsys {

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += Sprintf("\\u%04x", static_cast<unsigned>(static_cast<unsigned char>(c)));
        } else {
          out += c;
        }
    }
  }
  return out;
}

bool IsJsonNumber(const std::string& s) {
  if (s.empty()) {
    return false;
  }
  const char* begin = s.c_str();
  char* end = nullptr;
  double v = std::strtod(begin, &end);
  if (end != begin + s.size()) {
    return false;
  }
  if (!std::isfinite(v)) {
    return false;
  }
  // JSON forbids leading '+', leading '.', and hex literals; strtod accepts them.
  char first = s[0] == '-' ? (s.size() > 1 ? s[1] : '\0') : s[0];
  if (first < '0' || first > '9') {
    return false;
  }
  if (s.find('x') != std::string::npos || s.find('X') != std::string::npos) {
    return false;
  }
  return true;
}

std::string JsonNumber(double v) {
  if (!std::isfinite(v)) {
    return "null";
  }
  std::string s = Sprintf("%.17g", v);
  return IsJsonNumber(s) ? s : "null";
}

}  // namespace capsys
