// Structured event log (observability subsystem): typed records for the decisions the
// control plane makes — placements, scalings, fault injections, backpressure episodes,
// metric-quality incidents — replacing ad-hoc log strings on those paths. Each record
// serializes to one JSON object; a run's log exports as JSON Lines (events.jsonl in the
// telemetry bundle), so chaos runs can be audited with standard tooling.
//
// Events carry *domain* time (simulation/experiment seconds), not wall-clock time: the
// fluid simulator and the chaos driver advance a virtual clock, and decision audits need to
// line up with that timeline. Producers that own a clock pass it explicitly; nested code
// without one (e.g. the placement pipeline called from the chaos loop) uses the log's
// current domain time, which the owning driver keeps updated via set_now().
#ifndef SRC_OBS_EVENTS_H_
#define SRC_OBS_EVENTS_H_

#include <atomic>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "src/common/types.h"

namespace capsys {

enum class EventType : int {
  kPlacementDecision = 0,  // a placement policy chose a plan
  kScaleDecision,          // DS2 (or degraded-mode recovery) changed parallelism
  kFaultInjected,          // the injector applied a primitive fault
  kBackpressureOnset,      // query-level backpressure crossed the onset threshold
  kBackpressureCleared,    // ... and dropped back below it
  kMetricDropout,          // a controller-facing read lost its window and saw an older one
  kMetricStale,            // a controller-facing read was served a time-shifted window
  kWorkerDeclaredDead,     // the failure detector declared a worker dead
  kReconfiguration,        // the controller redeployed onto a new plan
  kRecoveryVerdict,        // outcome of a recovery attempt (incl. unplaceable)
  kCheckpointStarted,      // the coordinator injected barriers for a new checkpoint
  kCheckpointCompleted,    // all state was snapshotted and the manifest committed
  kCheckpointFailed,       // a participant crashed / a failure storm hit mid-checkpoint
  kCheckpointExpired,      // the checkpoint outlived its timeout and was discarded
  kRestoreStarted,         // recovery began restoring from a completed checkpoint
  kRestoreCompleted,       // restore + source replay finished; the job is live again
  kJobStateChanged,        // the placement service moved a job between lifecycle states
  kAdmissionDecision,      // the placement service admitted / queued / rejected a job
};

const char* EventTypeName(EventType type);

// One structured record: a type, a domain timestamp, and typed-by-convention fields
// (pre-stringified key/value pairs; the typed Emit* helpers below enforce each record's
// schema at the call site).
struct Event {
  EventType type = EventType::kPlacementDecision;
  double time_s = 0.0;
  std::vector<std::pair<std::string, std::string>> fields;

  std::string ToJson() const;
};

// Process-global, thread-safe event collector. Disabled by default; when disabled the
// typed emit helpers return before building the record.
class EventLog {
 public:
  static EventLog& Global();

  void Enable() { enabled_.store(true, std::memory_order_relaxed); }
  void Disable() { enabled_.store(false, std::memory_order_relaxed); }
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  // Domain clock for producers that do not own one (see file comment).
  void set_now(double time_s) { now_.store(time_s, std::memory_order_relaxed); }
  double now() const { return now_.load(std::memory_order_relaxed); }

  void Reset();
  void Emit(Event event);

  std::vector<Event> Snapshot() const;
  size_t Count() const;
  size_t CountOf(EventType type) const;
  // One JSON object per line, in emission order.
  std::string ToJsonLines() const;

 private:
  EventLog() = default;

  std::atomic<bool> enabled_{false};
  std::atomic<double> now_{0.0};
  mutable std::mutex mu_;
  std::vector<Event> events_;
};

// --- Typed emitters (each enforces one record schema) ---------------------------------------

void EmitPlacementDecision(double time_s, const std::string& policy, int tasks, int workers,
                           const ResourceVector& alpha, const ResourceVector& plan_cost,
                           double decision_time_s);
void EmitScaleDecision(double time_s, const std::string& reason, int slots_before,
                       int slots_after, const std::string& parallelism);
void EmitFaultInjected(double time_s, const std::string& kind, WorkerId worker, double value);
void EmitBackpressureOnset(double time_s, double backpressure);
void EmitBackpressureCleared(double time_s, double backpressure);
void EmitMetricDropout(double time_s, const std::string& metric, double shift_s);
void EmitMetricStale(double time_s, const std::string& metric, double staleness_s);
void EmitWorkerDeclaredDead(double time_s, WorkerId worker, bool actually_crashed);
void EmitReconfiguration(double time_s, const std::string& outcome, int slots,
                         double sustainable_rate);
void EmitRecoveryVerdict(double time_s, const std::string& outcome, int usable_workers);
void EmitCheckpointStarted(double time_s, uint64_t checkpoint_id, uint64_t full_bytes,
                           uint64_t delta_bytes);
void EmitCheckpointCompleted(double time_s, uint64_t checkpoint_id, double duration_s,
                             uint64_t delta_bytes);
void EmitCheckpointFailed(double time_s, uint64_t checkpoint_id, const std::string& reason);
void EmitCheckpointExpired(double time_s, uint64_t checkpoint_id, double timeout_s);
void EmitRestoreStarted(double time_s, uint64_t checkpoint_id, uint64_t restored_bytes);
void EmitRestoreCompleted(double time_s, uint64_t checkpoint_id, double downtime_s,
                          double replayed_records);
void EmitJobStateChanged(double time_s, int64_t job, const std::string& from,
                         const std::string& to, const std::string& detail);
void EmitAdmissionDecision(double time_s, int64_t job, const std::string& verdict, int tasks,
                           int free_slots);

}  // namespace capsys

#endif  // SRC_OBS_EVENTS_H_
