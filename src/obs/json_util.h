// Minimal JSON encoding helpers shared by the event log and the exporters.
#ifndef SRC_OBS_JSON_UTIL_H_
#define SRC_OBS_JSON_UTIL_H_

#include <string>

namespace capsys {

// Returns `s` with JSON string escaping applied (quotes, backslash, control chars).
std::string JsonEscape(const std::string& s);

// True when `s` is a complete JSON-legal number literal (no inf/nan, no trailing junk).
bool IsJsonNumber(const std::string& s);

// Encodes a double as a JSON value ("null" for non-finite values).
std::string JsonNumber(double v);

}  // namespace capsys

#endif  // SRC_OBS_JSON_UTIL_H_
