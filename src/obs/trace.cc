#include "src/obs/trace.h"

#include "src/common/str.h"

namespace capsys {
namespace {

// Per-thread stack of open span ids; the top is the parent of the next span opened here.
thread_local std::vector<uint64_t> tls_span_stack;
thread_local int tls_tid = -1;

}  // namespace

Tracer::Tracer() : epoch_(std::chrono::steady_clock::now()) {}

Tracer& Tracer::Global() {
  static Tracer* tracer = new Tracer();
  return *tracer;
}

void Tracer::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  epoch_ = std::chrono::steady_clock::now();
}

double Tracer::NowUs() const {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() - epoch_)
      .count();
}

int Tracer::ThisThreadTid() {
  if (tls_tid < 0) {
    tls_tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
  }
  return tls_tid;
}

void Tracer::Submit(SpanRecord&& rec) {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.push_back(std::move(rec));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

size_t Tracer::SpanCount() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_.size();
}

Span::Span(const char* name) {
  Tracer& tracer = Tracer::Global();
  if (!tracer.enabled()) {
    return;
  }
  active_ = true;
  rec_.id = tracer.NextId();
  rec_.parent = tls_span_stack.empty() ? 0 : tls_span_stack.back();
  rec_.name = name;
  rec_.tid = tracer.ThisThreadTid();
  rec_.start_us = tracer.NowUs();
  tls_span_stack.push_back(rec_.id);
}

Span::~Span() {
  if (!active_) {
    return;
  }
  Tracer& tracer = Tracer::Global();
  rec_.dur_us = tracer.NowUs() - rec_.start_us;
  // The stack is strictly LIFO per thread because spans are scoped objects.
  if (!tls_span_stack.empty() && tls_span_stack.back() == rec_.id) {
    tls_span_stack.pop_back();
  }
  tracer.Submit(std::move(rec_));
}

void Span::AddAttr(const char* key, const std::string& value) {
  if (active_) {
    rec_.attrs.emplace_back(key, value);
  }
}

void Span::AddAttr(const char* key, const char* value) {
  if (active_) {
    rec_.attrs.emplace_back(key, value);
  }
}

void Span::AddAttr(const char* key, double value) {
  if (active_) {
    rec_.attrs.emplace_back(key, Humanize(value, 6));
  }
}

void Span::AddAttr(const char* key, uint64_t value) {
  if (active_) {
    rec_.attrs.emplace_back(key, Sprintf("%llu", static_cast<unsigned long long>(value)));
  }
}

void Span::AddAttr(const char* key, int value) {
  if (active_) {
    rec_.attrs.emplace_back(key, Sprintf("%d", value));
  }
}

}  // namespace capsys
