// ODRP: Optimal DSP Replication and Placement (Cardellini et al. [13, 14]) — the
// state-of-the-art baseline of the paper's §6.3.
//
// ODRP jointly decides operator parallelism and task placement by optimizing a weighted
// multi-objective over response time, resource cost, network traffic, and availability,
// solved exactly (the original uses CPLEX on an ILP; we use an exhaustive branch-and-bound
// over the same space). Following the paper's §6.3 setup:
//   - an operator's execution time is the inverse of its true processing rate;
//   - data rates (lambda) follow from the target input rate and operator selectivities;
//   - all nodes have the same speedup, all links the same delay/bandwidth;
//   - availability is perfect, so that objective term vanishes.
//
// The formulation has no objective to sustain the input rate, so low-resource weight
// settings return under-provisioned plans — exactly the behaviour Table 3 demonstrates.
// The optional `sustain` weight (used by the hand-tuned Weighted config) penalizes
// operators whose utilization exceeds 1.
#ifndef SRC_ODRP_ODRP_H_
#define SRC_ODRP_ODRP_H_

#include <cstdint>
#include <map>
#include <string>

#include "src/cluster/cluster.h"
#include "src/dataflow/placement.h"
#include "src/dataflow/rates.h"

namespace capsys {

struct OdrpWeights {
  double response_time = 1.0;
  double resource_cost = 1.0;
  double network = 1.0;
  double sustain = 0.0;  // not part of base ODRP; >0 only in the Weighted config

  // The three configurations evaluated in Table 3.
  static OdrpWeights Default();   // equal weight on all base objectives
  static OdrpWeights Weighted();  // hand-tuned: throughput + resource efficiency
  static OdrpWeights Latency();   // response time only
};

struct OdrpOptions {
  OdrpWeights weights;
  // Parallelism search range per operator.
  int min_parallelism = 1;
  int max_parallelism = 16;
  // When true, the placement solver breaks worker symmetry like CAPS does. Off by default:
  // the original ODRP hands one monolithic ILP to CPLEX, which has no knowledge of worker
  // interchangeability — a structural reason for its long decision times.
  bool break_symmetry = false;
  // Propagation delay added per fully-remote logical hop (seconds).
  double link_delay_s = 0.001;
  // Exploration budget; the solver returns the best plan found so far when exhausted.
  double timeout_s = 60.0;
  uint64_t max_nodes = UINT64_MAX;
};

struct OdrpResult {
  bool found = false;
  std::vector<int> parallelism;  // chosen parallelism per operator
  Placement placement;           // placement for the physical graph expanded accordingly
  double objective = 0.0;
  int slots_used = 0;
  double decision_time_s = 0.0;
  uint64_t nodes = 0;
  bool budget_exhausted = false;  // stopped by timeout/max_nodes; result is best-so-far

  std::string ToString() const;
};

// Solves the joint parallelism+placement problem for `graph` (whose current parallelism
// values are ignored) against `cluster`, with per-source target rates.
OdrpResult SolveOdrp(const LogicalGraph& graph, const Cluster& cluster,
                     const std::map<OperatorId, double>& source_rates,
                     const OdrpOptions& options);

}  // namespace capsys

#endif  // SRC_ODRP_ODRP_H_
