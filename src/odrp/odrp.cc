#include "src/odrp/odrp.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {
namespace {

constexpr double kEps = 1e-12;

// Placement-independent objective terms for one parallelism vector.
struct VectorScore {
  double base = 0.0;  // response (placement-free part) + cost + sustain, weighted
  std::vector<int> parallelism;
};

}  // namespace

OdrpWeights OdrpWeights::Default() { return OdrpWeights{1.0, 1.0, 1.0, 0.0}; }

OdrpWeights OdrpWeights::Weighted() { return OdrpWeights{0.2, 1.5, 1.0, 5.0}; }

OdrpWeights OdrpWeights::Latency() { return OdrpWeights{1.0, 0.0, 0.0, 0.0}; }

std::string OdrpResult::ToString() const {
  std::vector<std::string> ps;
  for (int p : parallelism) {
    ps.push_back(Sprintf("%d", p));
  }
  return Sprintf("found=%d parallelism=[%s] slots=%d objective=%.4f time=%.2fs nodes=%llu%s",
                 found ? 1 : 0, Join(ps, ",").c_str(), slots_used, objective, decision_time_s,
                 static_cast<unsigned long long>(nodes),
                 budget_exhausted ? " BUDGET_EXHAUSTED" : "");
}

namespace {

// Branch-and-bound placement solver for one fixed parallelism vector. Enumerates distinct
// plans (up to worker symmetry) operator by operator, accumulating the placement-dependent
// objective terms (network traffic and remote-hop delays) and pruning when the partial
// objective cannot beat the incumbent.
class PlacementSolver {
 public:
  PlacementSolver(const LogicalGraph& graph, const Cluster& cluster,
                  const std::vector<OperatorRates>& rates, const OdrpOptions& options,
                  double net_ref, double response_ref)
      : graph_(graph),
        cluster_(cluster),
        options_(options),
        net_ref_(net_ref),
        response_ref_(response_ref) {
    int num_ops = graph.num_operators();
    per_task_net_.resize(static_cast<size_t>(num_ops), 0.0);
    for (const auto& op : graph.operators()) {
      double out_rate = rates[static_cast<size_t>(op.id)].output_rate / op.parallelism;
      per_task_net_[static_cast<size_t>(op.id)] = out_rate * op.profile.out_bytes_per_record;
    }
  }

  // Runs the DFS; updates `best_objective` / `best_counts` when improving on
  // `base_objective + placement terms`. Returns false if the budget was exhausted.
  bool Solve(double base_objective, double& best_objective,
             std::vector<std::vector<int>>& best_counts, uint64_t& nodes, uint64_t max_nodes,
             const std::chrono::steady_clock::time_point& deadline) {
    base_ = base_objective;
    best_ = &best_objective;
    best_counts_ = &best_counts;
    nodes_ = &nodes;
    max_nodes_ = max_nodes;
    deadline_ = deadline;
    exhausted_ = false;
    int w = cluster_.num_workers();
    used_.assign(static_cast<size_t>(w), 0);
    op_count_.assign(static_cast<size_t>(w),
                     std::vector<int>(static_cast<size_t>(graph_.num_operators()), 0));
    PlaceOp(0, 0.0);
    return !exhausted_;
  }

 private:
  // Placement-dependent objective accumulated so far (network + remote-delay), weighted.
  void PlaceOp(int op_idx, double partial) {
    if (exhausted_) {
      return;
    }
    if (op_idx == graph_.num_operators()) {
      double total = base_ + partial;
      if (total < *best_) {
        *best_ = total;
        *best_counts_ = op_count_;
      }
      return;
    }
    if (options_.break_symmetry) {
      Inner(op_idx, 0, graph_.op(op_idx).parallelism, partial);
    } else {
      // Faithful ILP mode: one x_{t,w} binary per (task, worker) pair — identical tasks are
      // distinct decision variables, exactly as in the CPLEX formulation, so the tree the
      // solver must close is the full joint assignment space.
      PerTask(op_idx, 0, partial);
    }
  }

  // Per-task branching (ILP-faithful): assigns the op's tasks one at a time, trying every
  // worker with a free slot.
  void PerTask(int op_idx, int task_idx, double partial) {
    if (exhausted_) {
      return;
    }
    if (task_idx == graph_.op(op_idx).parallelism) {
      PlaceOp(op_idx + 1, partial);
      return;
    }
    if (((*nodes_)++ & 0xfff) == 0 &&
        (std::chrono::steady_clock::now() > deadline_ || *nodes_ > max_nodes_)) {
      exhausted_ = true;
      return;
    }
    int num_workers = cluster_.num_workers();
    for (WorkerId w = 0; w < num_workers && !exhausted_; ++w) {
      if (used_[static_cast<size_t>(w)] >= cluster_.worker(w).spec.slots) {
        continue;
      }
      double delta = PlacementDelta(op_idx, w, 1);
      if (base_ + partial + delta >= *best_) {
        continue;
      }
      used_[static_cast<size_t>(w)] += 1;
      op_count_[static_cast<size_t>(w)][static_cast<size_t>(op_idx)] += 1;
      PerTask(op_idx, task_idx + 1, partial + delta);
      op_count_[static_cast<size_t>(w)][static_cast<size_t>(op_idx)] -= 1;
      used_[static_cast<size_t>(w)] -= 1;
    }
  }

  void Inner(int op_idx, WorkerId w, int remaining, double partial) {
    if (exhausted_) {
      return;
    }
    if (((*nodes_)++ & 0xfff) == 0 &&
        (std::chrono::steady_clock::now() > deadline_ || *nodes_ > max_nodes_)) {
      exhausted_ = true;
      return;
    }
    int num_workers = cluster_.num_workers();
    if (w == num_workers) {
      if (remaining == 0) {
        PlaceOp(op_idx + 1, partial);
      }
      return;
    }
    int cap = cluster_.worker(w).spec.slots - used_[static_cast<size_t>(w)];
    // Optional worker-symmetry duplicate rule (same as the CAPS inner search).
    int bound = remaining;
    if (options_.break_symmetry) {
      for (WorkerId w2 = w - 1; w2 >= 0; --w2) {
        bool equal = true;
        for (size_t j = 0; j < op_count_[static_cast<size_t>(w2)].size(); ++j) {
          if (static_cast<int>(j) != op_idx &&
              op_count_[static_cast<size_t>(w2)][j] != op_count_[static_cast<size_t>(w)][j]) {
            equal = false;
            break;
          }
        }
        if (equal) {
          bound = op_count_[static_cast<size_t>(w2)][static_cast<size_t>(op_idx)];
          break;
        }
      }
    }
    int later_cap = 0;
    for (WorkerId v = w + 1; v < num_workers; ++v) {
      later_cap += cluster_.worker(v).spec.slots - used_[static_cast<size_t>(v)];
    }
    int lo = std::max(0, remaining - later_cap);
    int hi = std::min({cap, remaining, bound});
    for (int c = lo; c <= hi && !exhausted_; ++c) {
      double delta = c > 0 ? PlacementDelta(op_idx, w, c) : 0.0;
      if (base_ + partial + delta >= *best_) {
        continue;  // bound: placement terms only grow
      }
      used_[static_cast<size_t>(w)] += c;
      op_count_[static_cast<size_t>(w)][static_cast<size_t>(op_idx)] += c;
      Inner(op_idx, w + 1, remaining - c, partial + delta);
      op_count_[static_cast<size_t>(w)][static_cast<size_t>(op_idx)] -= c;
      used_[static_cast<size_t>(w)] -= c;
    }
  }

  // Weighted objective increase caused by placing `c` tasks of `op_idx` on worker `w`:
  // resolved remote channels to already-placed neighbors contribute network traffic and
  // remote-hop delay.
  double PlacementDelta(int op_idx, WorkerId w, int c) {
    double net_bytes = 0.0;   // added cross-worker bytes/s
    double delay_frac = 0.0;  // added remote channel fraction (for link delay)
    for (const auto& e : graph_.edges()) {
      if (e.from == op_idx) {
        // Outbound from the new tasks to placed downstream tasks.
        int placed = 0;
        int here = 0;
        for (size_t v = 0; v < op_count_.size(); ++v) {
          placed += op_count_[v][static_cast<size_t>(e.to)];
          if (static_cast<WorkerId>(v) == w) {
            here = op_count_[v][static_cast<size_t>(e.to)];
          }
        }
        if (placed == 0) {
          continue;
        }
        int peer_p = graph_.op(e.to).parallelism;
        double frac = static_cast<double>(placed - here) / peer_p;
        net_bytes += c * per_task_net_[static_cast<size_t>(op_idx)] * frac;
        delay_frac += frac * c / graph_.op(op_idx).parallelism;
      } else if (e.to == op_idx) {
        // Inbound: placed upstream tasks gain remote channels to the new tasks. Each
        // upstream task sends c/my_p of its output to the new tasks remotely.
        int up_p = graph_.op(e.from).parallelism;
        int my_p = graph_.op(op_idx).parallelism;
        for (size_t v = 0; v < op_count_.size(); ++v) {
          int up_here = op_count_[v][static_cast<size_t>(e.from)];
          if (up_here == 0 || static_cast<WorkerId>(v) == w) {
            continue;
          }
          double frac = static_cast<double>(c) / my_p;
          net_bytes += up_here * per_task_net_[static_cast<size_t>(e.from)] * frac;
          delay_frac += frac * up_here / up_p;
        }
      }
    }
    double w_net = options_.weights.network * net_bytes / std::max(net_ref_, kEps);
    double w_delay = options_.weights.response_time * options_.link_delay_s * delay_frac /
                     std::max(response_ref_, kEps);
    return w_net + w_delay;
  }

  const LogicalGraph& graph_;
  const Cluster& cluster_;
  const OdrpOptions& options_;
  double net_ref_;
  double response_ref_;
  std::vector<double> per_task_net_;

  double base_ = 0.0;
  double* best_ = nullptr;
  std::vector<std::vector<int>>* best_counts_ = nullptr;
  uint64_t* nodes_ = nullptr;
  uint64_t max_nodes_ = 0;
  std::chrono::steady_clock::time_point deadline_;
  bool exhausted_ = false;
  std::vector<int> used_;
  std::vector<std::vector<int>> op_count_;
};

}  // namespace

OdrpResult SolveOdrp(const LogicalGraph& base_graph, const Cluster& cluster,
                     const std::map<OperatorId, double>& source_rates,
                     const OdrpOptions& options) {
  auto start = std::chrono::steady_clock::now();
  auto deadline = start + std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                              std::chrono::duration<double>(options.timeout_s));
  OdrpResult result;
  int num_ops = base_graph.num_operators();
  int total_slots = cluster.total_slots();

  // --- Enumerate parallelism vectors, scoring placement-independent terms ---------------
  // Sources keep parallelism sized to their generation demand; replicating sources is not
  // part of ODRP's decision space in our setup, matching "one slot per task" usage.
  std::vector<VectorScore> vectors;
  std::vector<int> current(static_cast<size_t>(num_ops), 1);
  std::vector<OperatorId> ops;
  for (int i = 0; i < num_ops; ++i) {
    ops.push_back(i);
  }

  // Reference scales for normalization.
  double response_ref = 0.0;
  for (const auto& op : base_graph.operators()) {
    response_ref += op.profile.cpu_per_record * 2.0;
  }
  response_ref += options.link_delay_s * static_cast<double>(base_graph.edges().size());

  LogicalGraph scratch = base_graph;
  double net_ref = 0.0;
  {
    auto rates = PropagateRates(base_graph, source_rates);
    for (const auto& op : base_graph.operators()) {
      net_ref += rates[static_cast<size_t>(op.id)].output_rate * op.profile.out_bytes_per_record;
    }
  }

  std::function<void(size_t, int)> enumerate = [&](size_t idx, int used) {
    if (idx == ops.size()) {
      scratch.SetParallelism(current);
      auto rates = PropagateRates(scratch, source_rates);
      // Placement-free objective terms.
      double response = 0.0;
      double overload = 0.0;
      for (const auto& op : scratch.operators()) {
        double lambda = rates[static_cast<size_t>(op.id)].input_rate;
        double exec = op.profile.cpu_per_record;
        double rho = lambda * exec / op.parallelism;
        response += exec * (1.0 + rho);
        overload += std::max(0.0, rho - 1.0);
      }
      double base = options.weights.response_time * response / std::max(response_ref, kEps) +
                    options.weights.resource_cost * static_cast<double>(used) / total_slots +
                    options.weights.sustain * overload;
      vectors.push_back(VectorScore{base, current});
      return;
    }
    const auto& op = base_graph.op(ops[idx]);
    int lo = options.min_parallelism;
    int hi = options.max_parallelism;
    if (op.kind == OperatorKind::kSource || op.kind == OperatorKind::kSink) {
      lo = hi = op.parallelism;  // sources/sinks keep their configured parallelism
    }
    for (int p = lo; p <= hi; ++p) {
      if (used + p > total_slots) {
        break;
      }
      current[static_cast<size_t>(ops[idx])] = p;
      enumerate(idx + 1, used + p);
    }
    current[static_cast<size_t>(ops[idx])] = 1;
  };
  enumerate(0, 0);

  // Best-first over parallelism vectors: like an ILP solver, good solutions surface early
  // and the remaining budget goes toward proving optimality.
  std::sort(vectors.begin(), vectors.end(),
            [](const VectorScore& a, const VectorScore& b) { return a.base < b.base; });

  double best_objective = 1e300;
  std::vector<int> best_parallelism;
  std::vector<std::vector<int>> best_counts;
  uint64_t nodes = 0;
  bool exhausted = false;

  for (const auto& vs : vectors) {
    if (std::chrono::steady_clock::now() > deadline || nodes > options.max_nodes) {
      exhausted = true;
      break;
    }
    if (vs.base >= best_objective) {
      continue;  // placement terms are non-negative; this vector cannot win
    }
    scratch.SetParallelism(vs.parallelism);
    auto rates = PropagateRates(scratch, source_rates);
    PlacementSolver solver(scratch, cluster, rates, options, net_ref, response_ref);
    std::vector<std::vector<int>> counts;
    double before = best_objective;
    if (!solver.Solve(vs.base, best_objective, counts, nodes, options.max_nodes, deadline)) {
      exhausted = true;
    }
    if (best_objective < before) {
      best_parallelism = vs.parallelism;
      best_counts = counts;
    }
    if (exhausted) {
      break;
    }
  }

  result.decision_time_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                                         start)
                               .count();
  result.nodes = nodes;
  result.budget_exhausted = exhausted;
  if (best_parallelism.empty()) {
    return result;
  }
  result.found = true;
  result.parallelism = best_parallelism;
  result.objective = best_objective;
  for (int p : best_parallelism) {
    result.slots_used += p;
  }
  // Materialize the placement from per-worker operator counts.
  scratch.SetParallelism(best_parallelism);
  PhysicalGraph graph = PhysicalGraph::Expand(scratch);
  Placement plan(graph.num_tasks());
  for (OperatorId o = 0; o < scratch.num_operators(); ++o) {
    const auto& tasks = graph.TasksOf(o);
    size_t next = 0;
    for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
      int c = best_counts[static_cast<size_t>(w)][static_cast<size_t>(o)];
      for (int i = 0; i < c; ++i) {
        plan.Assign(tasks[next++], w);
      }
    }
    CAPSYS_CHECK(next == tasks.size());
  }
  result.placement = plan;
  return result;
}

}  // namespace capsys
