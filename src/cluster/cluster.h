// Worker cluster resource model (paper §2.1, Figure 1): a set of homogeneous workers, each
// exposing a fixed number of compute slots and sharing CPU, disk-I/O, and network bandwidth
// among the tasks placed on it.
#ifndef SRC_CLUSTER_CLUSTER_H_
#define SRC_CLUSTER_CLUSTER_H_

#include <string>
#include <vector>

#include "src/common/types.h"

namespace capsys {

// Physical capacities of one worker. Units:
//  - cpu_capacity: normalized CPU-seconds per second (i.e., number of cores).
//  - io_bandwidth_bps: disk read+write bytes per second the state backend can sustain.
//  - net_bandwidth_bps: outbound NIC bytes per second.
struct WorkerSpec {
  std::string name = "generic";
  int slots = 4;
  double cpu_capacity = 4.0;
  double io_bandwidth_bps = 200e6;
  double net_bandwidth_bps = 1.25e9;  // 10 Gbps

  // Presets mirroring the paper's EC2 instance types (capacities are proportional to the
  // instances' vCPU/disk/NIC specs; absolute values are calibration constants).
  static WorkerSpec R5dXlarge(int slots = 4);   // 4 vCPU, motivation study + §6.4
  static WorkerSpec M5d2xlarge(int slots = 8);  // 8 vCPU, §6.2
  static WorkerSpec C5d4xlarge(int slots = 8);  // 16 vCPU, §6.3
};

// One worker instance in the cluster.
struct Worker {
  WorkerId id = kInvalidId;
  WorkerSpec spec;
};

// A fixed cluster of workers connected by the datacenter network. Propagation delays
// inside a datacenter are negligible (paper §7), so links are modelled only through each
// worker's outbound bandwidth. The paper's model assumes homogeneous workers; the
// heterogeneous constructor is an extension of this implementation (the CAPS search then
// breaks worker symmetry only among equal-spec workers).
class Cluster {
 public:
  Cluster() = default;
  Cluster(int num_workers, const WorkerSpec& spec);
  // Heterogeneous cluster: one worker per spec, in order.
  explicit Cluster(std::vector<WorkerSpec> specs);

  int num_workers() const { return static_cast<int>(workers_.size()); }
  // Slots of the largest worker (the homogeneous case returns the common value). Used by
  // the cost model's worst-case co-location bound.
  int slots_per_worker() const;
  int total_slots() const;
  bool IsHomogeneous() const;

  const Worker& worker(WorkerId id) const { return workers_[static_cast<size_t>(id)]; }
  const std::vector<Worker>& workers() const { return workers_; }

  // Caps every worker's outbound bandwidth (used by the Fig. 3c network-contention study,
  // which throttles workers to 1 Gbps).
  void SetNetBandwidth(double bps);

  std::string ToString() const;

 private:
  std::vector<Worker> workers_;
};

}  // namespace capsys

#endif  // SRC_CLUSTER_CLUSTER_H_
