#include "src/cluster/cluster.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {

WorkerSpec WorkerSpec::R5dXlarge(int slots) {
  WorkerSpec spec;
  spec.name = "r5d.xlarge";
  spec.slots = slots;
  spec.cpu_capacity = 4.0;
  spec.io_bandwidth_bps = 230e6;   // one NVMe SSD
  spec.net_bandwidth_bps = 1.25e9;  // "up to 10 Gbps"
  return spec;
}

WorkerSpec WorkerSpec::M5d2xlarge(int slots) {
  WorkerSpec spec;
  spec.name = "m5d.2xlarge";
  spec.slots = slots;
  spec.cpu_capacity = 8.0;
  spec.io_bandwidth_bps = 460e6;
  spec.net_bandwidth_bps = 1.25e9;
  return spec;
}

WorkerSpec WorkerSpec::C5d4xlarge(int slots) {
  WorkerSpec spec;
  spec.name = "c5d.4xlarge";
  spec.slots = slots;
  spec.cpu_capacity = 16.0;
  spec.io_bandwidth_bps = 600e6;
  spec.net_bandwidth_bps = 1.25e9;
  return spec;
}

Cluster::Cluster(int num_workers, const WorkerSpec& spec) {
  CAPSYS_CHECK(num_workers >= 0);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(Worker{.id = i, .spec = spec});
  }
}

Cluster::Cluster(std::vector<WorkerSpec> specs) {
  workers_.reserve(specs.size());
  for (size_t i = 0; i < specs.size(); ++i) {
    workers_.push_back(Worker{.id = static_cast<WorkerId>(i), .spec = std::move(specs[i])});
  }
}

int Cluster::slots_per_worker() const {
  int slots = 0;
  for (const auto& w : workers_) {
    slots = std::max(slots, w.spec.slots);
  }
  return slots;
}

bool Cluster::IsHomogeneous() const {
  for (const auto& w : workers_) {
    const auto& a = w.spec;
    const auto& b = workers_[0].spec;
    if (a.slots != b.slots || a.cpu_capacity != b.cpu_capacity ||
        a.io_bandwidth_bps != b.io_bandwidth_bps ||
        a.net_bandwidth_bps != b.net_bandwidth_bps) {
      return false;
    }
  }
  return true;
}

int Cluster::total_slots() const {
  int total = 0;
  for (const auto& w : workers_) {
    total += w.spec.slots;
  }
  return total;
}

void Cluster::SetNetBandwidth(double bps) {
  for (auto& w : workers_) {
    w.spec.net_bandwidth_bps = bps;
  }
}

std::string Cluster::ToString() const {
  if (workers_.empty()) {
    return "Cluster(empty)";
  }
  return Sprintf("Cluster(%d x %s, %d slots/worker, %d total slots)", num_workers(),
                 workers_[0].spec.name.c_str(), slots_per_worker(), total_slots());
}

}  // namespace capsys
