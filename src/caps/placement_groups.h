// Placement groups (paper §5.2 "Addressing data skew").
//
// CAPS treats all tasks of an operator as identical. Under data skew, a partitioner can
// organize an operator's tasks into groups of (approximately) equal resource demand; each
// group is then explored as an individual outer layer. This utility rewrites a logical
// graph, splitting one operator into per-group operators that inherit its edges, so the
// unmodified CAPS search handles groups natively.
#ifndef SRC_CAPS_PLACEMENT_GROUPS_H_
#define SRC_CAPS_PLACEMENT_GROUPS_H_

#include <vector>

#include "src/dataflow/logical_graph.h"

namespace capsys {

struct GroupSpec {
  int parallelism = 1;        // tasks in this group
  double demand_scale = 1.0;  // per-task resource scale relative to the original profile
};

// Returns a new graph where operator `op` is replaced by one operator per group. Each group
// operator keeps the original profile scaled by `demand_scale` and inherits every incoming
// and outgoing edge. The group parallelisms must sum to the original operator parallelism.
LogicalGraph SplitIntoPlacementGroups(const LogicalGraph& graph, OperatorId op,
                                      const std::vector<GroupSpec>& groups);

}  // namespace capsys

#endif  // SRC_CAPS_PLACEMENT_GROUPS_H_
