#include "src/caps/search.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/obs/trace.h"

namespace capsys {
namespace {

constexpr double kEps = 1e-12;

}  // namespace

std::string SearchStats::ToString() const {
  return Sprintf("nodes=%llu leaves=%llu pruned=%llu elapsed=%.4fs%s",
                 static_cast<unsigned long long>(nodes), static_cast<unsigned long long>(leaves),
                 static_cast<unsigned long long>(pruned), elapsed_s,
                 timed_out ? " TIMED_OUT" : "");
}

// Per-branch mutable search state. Copyable so subtrees can be offloaded to pool threads.
//
// The last four fields are *incremental* mirrors of information that older revisions
// recomputed by scanning all workers on every inner-search node; ApplyPlacement and
// UndoPlacement keep them exact (see DESIGN.md "Performance" for the invariants):
//   - op_placed[o]    == sum over workers of op_count[w][o]
//   - op_workers[o]   == the workers with op_count[w][o] > 0, in placement (stack) order
//   - free_slots      == total slot capacity minus sum of used
//   - num_violating   == number of workers whose load breaks the Eq. 10 bound
struct CapsSearch::Ctx {
  std::vector<ResourceVector> load;  // per-worker accumulated load (Eq. 5 / Eq. 8)
  std::vector<int> used;             // slots used per worker
  // Tasks placed per (worker, operator), flattened row-major by worker so the
  // duplicate-elimination compare walks contiguous memory.
  std::vector<int> op_count;
  int num_ops = 0;
  std::vector<int> op_placed;              // total tasks placed per operator
  std::vector<std::vector<WorkerId>> op_workers;  // workers hosting each operator
  int free_slots = 0;
  int num_violating = 0;

  int* counts_of(WorkerId w) { return op_count.data() + static_cast<size_t>(w) * num_ops; }
  const int* counts_of(WorkerId w) const {
    return op_count.data() + static_cast<size_t>(w) * num_ops;
  }
};

CapsSearch::CapsSearch(const CostModel& model, SearchOptions options)
    : model_(model), options_(options) {
  const PhysicalGraph& graph = model.graph();
  const LogicalGraph& logical = graph.logical();
  for (const auto& e : logical.edges()) {
    CAPSYS_CHECK_MSG(e.scheme != PartitionScheme::kForward ||
                         logical.op(e.from).parallelism == 1,
                     "CAPS requires all-to-all connectivity for parallel operators");
  }

  int num_ops = logical.num_operators();
  op_task_demand_.resize(static_cast<size_t>(num_ops));
  op_downstream_channels_.resize(static_cast<size_t>(num_ops), 0.0);
  op_parallelism_.resize(static_cast<size_t>(num_ops), 0);
  out_edges_.resize(static_cast<size_t>(num_ops));
  in_edges_.resize(static_cast<size_t>(num_ops));
  for (const auto& op : logical.operators()) {
    TaskId first = graph.TasksOf(op.id).front();
    op_task_demand_[static_cast<size_t>(op.id)] =
        model.demands()[static_cast<size_t>(first)];
    op_downstream_channels_[static_cast<size_t>(op.id)] =
        static_cast<double>(graph.DownstreamChannels(first).size());
    op_parallelism_[static_cast<size_t>(op.id)] = op.parallelism;
  }
  // Aggregate logical edges into per-pair channel multiplicities.
  for (const auto& e : logical.edges()) {
    double src_net = op_task_demand_[static_cast<size_t>(e.from)].net;
    double d_src = std::max(1.0, op_downstream_channels_[static_cast<size_t>(e.from)]);
    double share = src_net / d_src;  // U_net(t) / |D(t)| per channel (Eq. 8)
    // Merge with an existing entry for the same peer if present.
    auto add = [share](std::vector<OpEdge>& edges, OperatorId peer) {
      for (auto& oe : edges) {
        if (oe.peer == peer) {
          oe.net_share_per_peer_task += share;
          return;
        }
      }
      edges.push_back(OpEdge{.peer = peer, .net_share_per_peer_task = share});
    };
    add(out_edges_[static_cast<size_t>(e.from)], e.to);
    add(in_edges_[static_cast<size_t>(e.to)], e.from);
  }

  // Operator exploration order (§4.4.2): resource-heavy operators first, ranked by their
  // largest normalized per-dimension demand share.
  order_.resize(static_cast<size_t>(num_ops));
  for (int i = 0; i < num_ops; ++i) {
    order_[static_cast<size_t>(i)] = i;
  }
  if (options_.reorder) {
    ResourceVector total;
    for (int o = 0; o < num_ops; ++o) {
      total += model.OperatorDemand(o);
    }
    auto score = [&](OperatorId o) {
      ResourceVector d = model_.OperatorDemand(o);
      double best = 0.0;
      for (Resource r : kAllResources) {
        if (total[r] > kEps) {
          best = std::max(best, d[r] / total[r]);
        }
      }
      return best;
    };
    std::stable_sort(order_.begin(), order_.end(),
                     [&](OperatorId a, OperatorId b) { return score(a) > score(b); });
  }

  bound_ = model.LoadBound(options_.alpha);

  // Group workers into spec-equivalence classes; only same-class workers are
  // interchangeable for duplicate elimination.
  const Cluster& cluster = model.cluster();
  worker_slots_.resize(static_cast<size_t>(cluster.num_workers()));
  for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
    worker_slots_[static_cast<size_t>(w)] = cluster.worker(w).spec.slots;
    total_slots_ += cluster.worker(w).spec.slots;
  }
  worker_class_.assign(static_cast<size_t>(cluster.num_workers()), 0);
  std::vector<WorkerSpec> classes;
  for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
    const auto& spec = cluster.worker(w).spec;
    int cls = -1;
    for (size_t c = 0; c < classes.size(); ++c) {
      const auto& other = classes[c];
      if (spec.slots == other.slots && spec.cpu_capacity == other.cpu_capacity &&
          spec.io_bandwidth_bps == other.io_bandwidth_bps &&
          spec.net_bandwidth_bps == other.net_bandwidth_bps) {
        cls = static_cast<int>(c);
        break;
      }
    }
    if (cls < 0) {
      cls = static_cast<int>(classes.size());
      classes.push_back(spec);
    }
    worker_class_[static_cast<size_t>(w)] = cls;
  }
}

CapsSearch::~CapsSearch() = default;

bool CapsSearch::ShouldStop() {
  if (stop_.load(std::memory_order_relaxed)) {
    return true;
  }
  // Sample the clock occasionally. The gate counts calls *per thread*: gating on the
  // globally shared node counter let a thread skip the deadline check for unbounded
  // stretches under multi-threaded search (it only saw the counter at multiples of 1024 by
  // luck), so timeouts could fire arbitrarily late.
  thread_local uint64_t calls = 0;
  if ((++calls & 0x3ff) == 0) {
    double elapsed = std::chrono::duration<double>(std::chrono::steady_clock::now() - start_)
                         .count();
    if (elapsed > options_.timeout_s) {
      timed_out_.store(true);
      stop_.store(true);
      return true;
    }
  }
  return false;
}

bool CapsSearch::Violates(const ResourceVector& load) const {
  return load.cpu > bound_.cpu + kEps || load.io > bound_.io + kEps ||
         load.net > bound_.net + kEps;
}

void CapsSearch::ApplyPlacement(Ctx& ctx, size_t layer, WorkerId w, int count) {
  if (count == 0) {
    return;  // no load, slot, or count changes
  }
  OperatorId o = order_[layer];
  const ResourceVector& d = op_task_demand_[static_cast<size_t>(o)];
  const ResourceVector& scale_w = model_.WorkerScale(w);
  auto& load_w = ctx.load[static_cast<size_t>(w)];
  bool w_violated = Violates(load_w);
  load_w.cpu += count * d.cpu * scale_w.cpu;
  load_w.io += count * d.io * scale_w.io;
  // Outbound traffic of the new tasks toward already-placed downstream operators: every
  // channel to a peer task on a different worker is remote.
  for (const auto& e : out_edges_[static_cast<size_t>(o)]) {
    int peer_placed = ctx.op_placed[static_cast<size_t>(e.peer)];
    if (peer_placed == 0) {
      continue;  // downstream operator not placed yet; resolved at its own layer
    }
    int peer_here = ctx.counts_of(w)[static_cast<size_t>(e.peer)];
    load_w.net += count * e.net_share_per_peer_task * (peer_placed - peer_here) * scale_w.net;
  }
  // Inbound side: already-placed upstream tasks gain remote channels to the new tasks.
  // Only workers actually hosting the peer are visited (ctx.op_workers).
  for (const auto& e : in_edges_[static_cast<size_t>(o)]) {
    for (WorkerId v : ctx.op_workers[static_cast<size_t>(e.peer)]) {
      if (v == w) {
        continue;  // local channels do not consume the NIC
      }
      int peer_tasks = ctx.counts_of(v)[static_cast<size_t>(e.peer)];
      auto& load_v = ctx.load[static_cast<size_t>(v)];
      bool v_violated = Violates(load_v);
      load_v.net += peer_tasks * e.net_share_per_peer_task * count * model_.WorkerScale(v).net;
      ctx.num_violating += static_cast<int>(Violates(load_v)) - static_cast<int>(v_violated);
    }
  }
  ctx.num_violating += static_cast<int>(Violates(load_w)) - static_cast<int>(w_violated);
  ctx.used[static_cast<size_t>(w)] += count;
  ctx.free_slots -= count;
  int& here = ctx.counts_of(w)[static_cast<size_t>(o)];
  if (here == 0) {
    ctx.op_workers[static_cast<size_t>(o)].push_back(w);
  }
  here += count;
  ctx.op_placed[static_cast<size_t>(o)] += count;
}

void CapsSearch::UndoPlacement(Ctx& ctx, size_t layer, WorkerId w, int count) {
  if (count == 0) {
    return;
  }
  OperatorId o = order_[layer];
  ctx.op_placed[static_cast<size_t>(o)] -= count;
  int& here = ctx.counts_of(w)[static_cast<size_t>(o)];
  here -= count;
  if (here == 0) {
    // Apply/undo pairs nest LIFO within the operator's layer, so `w` is the most recently
    // pushed host.
    ctx.op_workers[static_cast<size_t>(o)].pop_back();
  }
  ctx.used[static_cast<size_t>(w)] -= count;
  ctx.free_slots += count;
  const ResourceVector& d = op_task_demand_[static_cast<size_t>(o)];
  const ResourceVector& scale_w = model_.WorkerScale(w);
  auto& load_w = ctx.load[static_cast<size_t>(w)];
  bool w_violated = Violates(load_w);
  load_w.cpu -= count * d.cpu * scale_w.cpu;
  load_w.io -= count * d.io * scale_w.io;
  for (const auto& e : out_edges_[static_cast<size_t>(o)]) {
    int peer_placed = ctx.op_placed[static_cast<size_t>(e.peer)];
    if (peer_placed == 0) {
      continue;
    }
    int peer_here = ctx.counts_of(w)[static_cast<size_t>(e.peer)];
    load_w.net -= count * e.net_share_per_peer_task * (peer_placed - peer_here) * scale_w.net;
  }
  for (const auto& e : in_edges_[static_cast<size_t>(o)]) {
    for (WorkerId v : ctx.op_workers[static_cast<size_t>(e.peer)]) {
      if (v == w) {
        continue;
      }
      int peer_tasks = ctx.counts_of(v)[static_cast<size_t>(e.peer)];
      auto& load_v = ctx.load[static_cast<size_t>(v)];
      bool v_violated = Violates(load_v);
      load_v.net -= peer_tasks * e.net_share_per_peer_task * count * model_.WorkerScale(v).net;
      ctx.num_violating += static_cast<int>(Violates(load_v)) - static_cast<int>(v_violated);
    }
  }
  ctx.num_violating += static_cast<int>(Violates(load_w)) - static_cast<int>(w_violated);
}

void CapsSearch::PlaceOp(Ctx& ctx, size_t layer) {
  if (ShouldStop()) {
    return;
  }
  if (layer == order_.size()) {
    AtLeaf(ctx);
    return;
  }
  int later_cap = ctx.free_slots - (worker_slots_[0] - ctx.used[0]);
  InnerSearch(ctx, layer, 0, op_parallelism_[static_cast<size_t>(order_[layer])], later_cap);
}

void CapsSearch::InnerSearch(Ctx& ctx, size_t layer, WorkerId w, int remaining,
                             int later_cap) {
  nodes_.fetch_add(1, std::memory_order_relaxed);
  if (ShouldStop()) {
    return;
  }
  int num_workers = static_cast<int>(ctx.load.size());
  if (w == num_workers) {
    if (remaining == 0) {
      size_t next = layer + 1;
      if (pool_ != nullptr && next < order_.size() && pool_->HasIdleThread()) {
        // Dynamic work offloading (§5.1): hand the subtree to an idle thread.
        auto copy = std::make_shared<Ctx>(ctx);
        pool_->Submit([this, copy, next] { PlaceOp(*copy, next); });
      } else {
        PlaceOp(ctx, next);
      }
    }
    return;
  }

  OperatorId o = order_[layer];
  int cap = worker_slots_[static_cast<size_t>(w)] - ctx.used[static_cast<size_t>(w)];
  // Duplicate elimination: if an earlier worker has an identical task multiset (ignoring
  // the current operator), this worker may receive at most as many tasks as it did.
  int bound = remaining;
  if (options_.eliminate_duplicates) {
    for (WorkerId w2 = w - 1; w2 >= 0; --w2) {
      if (worker_class_[static_cast<size_t>(w2)] != worker_class_[static_cast<size_t>(w)]) {
        continue;  // different hardware: not interchangeable
      }
      bool equal = true;
      const int* a = ctx.counts_of(w2);
      const int* b = ctx.counts_of(w);
      for (size_t j = 0; j < static_cast<size_t>(ctx.num_ops); ++j) {
        if (static_cast<OperatorId>(j) != o && a[j] != b[j]) {
          equal = false;
          break;
        }
      }
      if (equal) {
        // op_count[w2][o] is exactly the count w2 received at this layer (each operator is
        // placed in a single layer).
        bound = a[static_cast<size_t>(o)];
        break;
      }
    }
  }
  // Lower bound: remaining tasks must fit into this and later workers.
  int lo = std::max(0, remaining - later_cap);
  int hi = std::min({cap, remaining, bound});
  if (lo > hi) {
    return;
  }

  // Tries one task count for this worker; returns false once the search should stop.
  // Worker loads grow monotonically in c, so once a count violates the bounds every larger
  // count does too (dead_above).
  int dead_above = hi + 1;
  auto try_count = [&](int c) {
    if (c < dead_above) {
      ApplyPlacement(ctx, layer, w, c);
      if (c > 0 && ctx.num_violating > 0) {
        pruned_.fetch_add(1, std::memory_order_relaxed);
        dead_above = c;
      } else {
        // Free capacity of workers beyond w+1 is untouched by placements at w.
        int next_later = w + 1 < num_workers
                             ? later_cap - (worker_slots_[static_cast<size_t>(w) + 1] -
                                            ctx.used[static_cast<size_t>(w) + 1])
                             : 0;
        InnerSearch(ctx, layer, w + 1, remaining - c, next_later);
      }
      UndoPlacement(ctx, layer, w, c);
    }
    return !stop_.load(std::memory_order_relaxed);
  };

  // Value ordering: try counts closest to the proportional (balanced) share first, so the
  // first complete plan the DFS reaches is already near-balanced. This makes find-first
  // searches and time-budgeted searches anytime-good without changing the explored set.
  // The candidate sequence is generated in place — no per-node ordering buffer.
  if (options_.value_ordering) {
    int ideal = (remaining + (num_workers - w) - 1) / (num_workers - w);
    ideal = std::clamp(ideal, lo, hi);
    if (!try_count(ideal)) {
      return;
    }
    for (int d = 1; ideal - d >= lo || ideal + d <= hi; ++d) {
      if (ideal - d >= lo && !try_count(ideal - d)) {
        return;
      }
      if (ideal + d <= hi && !try_count(ideal + d)) {
        return;
      }
    }
  } else {
    for (int c = lo; c <= hi; ++c) {
      if (!try_count(c)) {
        return;
      }
    }
  }
}

void CapsSearch::AtLeaf(Ctx& ctx) {
  leaves_.fetch_add(1, std::memory_order_relaxed);
  // Cost from the incrementally tracked loads.
  ResourceVector max_load;
  for (const auto& l : ctx.load) {
    max_load.cpu = std::max(max_load.cpu, l.cpu);
    max_load.io = std::max(max_load.io, l.io);
    max_load.net = std::max(max_load.net, l.net);
  }
  ResourceVector cost;
  for (Resource r : kAllResources) {
    cost[r] = model_.CostOfLoad(r, max_load[r]);
  }

  // The task assignment is only materialized for plans the result actually retains
  // (new best, pareto member, or collected) — most leaves are dominated and need no
  // Placement allocation. Tasks of each operator go to workers in worker-index order.
  Placement plan;
  bool built = false;
  auto build_plan = [&] {
    if (built) {
      return;
    }
    built = true;
    const PhysicalGraph& graph = model_.graph();
    plan = Placement(graph.num_tasks());
    int num_workers = static_cast<int>(ctx.load.size());
    for (OperatorId o = 0; o < graph.logical().num_operators(); ++o) {
      const auto& tasks = graph.TasksOf(o);
      size_t next = 0;
      for (WorkerId w = 0; w < num_workers; ++w) {
        int c = ctx.counts_of(w)[static_cast<size_t>(o)];
        for (int i = 0; i < c; ++i) {
          plan.Assign(tasks[next++], w);
        }
      }
      CAPSYS_CHECK(next == tasks.size());
    }
  };

  std::lock_guard<std::mutex> lock(result_mu_);
  if (!result_.found || BetterCost(cost, result_.best.cost)) {
    build_plan();
    result_.best = ScoredPlan{plan, cost};
  }
  result_.found = true;
  // Maintain the pareto front (skip plans whose cost duplicates an existing entry).
  bool dominated = false;
  for (const auto& p : result_.pareto) {
    if (p.cost.AllLeq(cost)) {
      dominated = true;
      break;
    }
  }
  if (!dominated) {
    result_.pareto.erase(std::remove_if(result_.pareto.begin(), result_.pareto.end(),
                                        [&cost](const ScoredPlan& p) {
                                          return cost.Dominates(p.cost);
                                        }),
                         result_.pareto.end());
    if (result_.pareto.size() < 4096) {
      build_plan();
      result_.pareto.push_back(ScoredPlan{plan, cost});
    }
  }
  if (options_.collect_plans && result_.collected.size() < options_.max_collected) {
    build_plan();
    result_.collected.push_back(ScoredPlan{plan, cost});
  }
  if (options_.find_first) {
    stop_.store(true);
  }
}

SearchResult CapsSearch::Run() {
  Span span("caps.search.run");
  span.AddAttr("threads", options_.num_threads);
  span.AddAttr("find_first", options_.find_first ? "true" : "false");
  span.AddAttr("alpha", options_.alpha.ToString());
  start_ = std::chrono::steady_clock::now();
  const Cluster& cluster = model_.cluster();
  CAPSYS_CHECK_MSG(cluster.total_slots() >= model_.graph().num_tasks(),
                   "cluster has fewer slots than tasks");
  Ctx root;
  int num_ops = model_.graph().logical().num_operators();
  root.load.assign(static_cast<size_t>(cluster.num_workers()), ResourceVector{});
  root.used.assign(static_cast<size_t>(cluster.num_workers()), 0);
  root.op_count.assign(static_cast<size_t>(cluster.num_workers()) *
                           static_cast<size_t>(num_ops),
                       0);
  root.num_ops = num_ops;
  root.op_placed.assign(static_cast<size_t>(num_ops), 0);
  root.op_workers.assign(static_cast<size_t>(num_ops), {});
  for (auto& hosts : root.op_workers) {
    hosts.reserve(static_cast<size_t>(cluster.num_workers()));
  }
  root.free_slots = total_slots_;
  // One full scan seeds the violation count; Apply/UndoPlacement keep it exact after.
  root.num_violating = 0;
  for (const auto& l : root.load) {
    root.num_violating += static_cast<int>(Violates(l));
  }

  {
    Span explore("caps.search.explore");
    if (options_.num_threads > 1) {
      pool_ = std::make_unique<ThreadPool>(options_.num_threads);
      auto shared_root = std::make_shared<Ctx>(std::move(root));
      pool_->Submit([this, shared_root] { PlaceOp(*shared_root, 0); });
      pool_->Wait();
      pool_.reset();
    } else {
      PlaceOp(root, 0);
    }
  }

  result_.stats.nodes = nodes_.load();
  result_.stats.leaves = leaves_.load();
  result_.stats.pruned = pruned_.load();
  result_.stats.timed_out = timed_out_.load();
  result_.stats.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  span.AddAttr("nodes", result_.stats.nodes);
  span.AddAttr("leaves", result_.stats.leaves);
  span.AddAttr("pruned", result_.stats.pruned);
  span.AddAttr("found", result_.found ? "true" : "false");
  if (result_.stats.timed_out) {
    span.AddAttr("timed_out", "true");
  }
  return result_;
}

std::vector<ScoredPlan> EnumerateAllPlans(const CostModel& model) {
  SearchOptions options;
  options.alpha = ResourceVector{1.0, 1.0, 1.0};
  options.reorder = false;
  options.collect_plans = true;
  CapsSearch search(model, options);
  SearchResult result = search.Run();
  return std::move(result.collected);
}

}  // namespace capsys
