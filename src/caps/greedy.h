// Greedy load-balanced placement: an LPT-style constructor used as the incumbent / fallback
// plan for the CAPS search. Tasks are placed in decreasing order of their largest
// normalized demand; each goes to the worker (with a free slot) that minimizes the
// resulting scalarized cost. Runs in O(T * W) model evaluations and always returns a valid
// plan, so the search never degrades below it even under tight time budgets.
#ifndef SRC_CAPS_GREEDY_H_
#define SRC_CAPS_GREEDY_H_

#include "src/caps/cost_model.h"

namespace capsys {

Placement GreedyBalancedPlacement(const CostModel& model);

}  // namespace capsys

#endif  // SRC_CAPS_GREEDY_H_
