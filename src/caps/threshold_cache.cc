#include "src/caps/threshold_cache.h"

#include <algorithm>
#include <cmath>
#include <mutex>
#include <set>
#include <sstream>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/common/thread_pool.h"
#include "src/dataflow/rates.h"

namespace capsys {

void ThresholdCache::Precompute(const LogicalGraph& graph,
                                const std::map<OperatorId, double>& source_rates,
                                const Cluster& cluster,
                                const std::vector<std::vector<int>>& scenarios,
                                const AutoTuneOptions& options, int num_threads) {
  Revalidate(cluster);  // never mix entries tuned against different capacity shapes
  std::mutex mu;
  ThreadPool pool(std::max(1, num_threads));
  for (const auto& scenario : scenarios) {
    CAPSYS_CHECK(scenario.size() == static_cast<size_t>(graph.num_operators()));
    {
      std::lock_guard<std::mutex> lock(mu);
      if (entries_.count(scenario) > 0) {
        continue;
      }
    }
    pool.Submit([this, &mu, &graph, &source_rates, &cluster, &options, scenario] {
      LogicalGraph sized = graph;
      sized.SetParallelism(scenario);
      if (sized.total_parallelism() > cluster.total_slots()) {
        return;  // scenario does not fit this cluster
      }
      PhysicalGraph physical = PhysicalGraph::Expand(sized);
      auto rates = PropagateRates(sized, source_rates);
      CostModel model(physical, cluster, TaskDemands(physical, rates));
      AutoTuneResult tuned = AutoTuneThresholds(model, options);
      if (tuned.feasible) {
        std::lock_guard<std::mutex> lock(mu);
        entries_[scenario] = tuned.alpha;
      }
    });
  }
  pool.Wait();
}

std::optional<ResourceVector> ThresholdCache::Lookup(const std::vector<int>& parallelism) const {
  auto it = entries_.find(parallelism);
  if (it == entries_.end()) {
    return std::nullopt;
  }
  return it->second;
}

void ThresholdCache::Insert(const std::vector<int>& parallelism, const ResourceVector& alpha) {
  entries_[parallelism] = alpha;
}

void ThresholdCache::Clear() {
  entries_.clear();
  cluster_signature_.clear();
}

bool ThresholdCache::Revalidate(const Cluster& cluster) {
  std::string signature = ClusterSignature(cluster);
  if (cluster_signature_.empty()) {  // unbound: manual Inserts / fresh cache
    cluster_signature_ = std::move(signature);
    return true;
  }
  if (signature == cluster_signature_) {
    return true;
  }
  CAPSYS_LOG_INFO("threshold_cache",
                  Sprintf("capacity shape changed, evicting %zu entries", entries_.size()));
  entries_.clear();
  cluster_signature_ = std::move(signature);
  return false;
}

std::string ThresholdCache::ClusterSignature(const Cluster& cluster) {
  std::string out;
  for (const Worker& w : cluster.workers()) {
    out += Sprintf("%d/%.6g/%.6g/%.6g ", w.spec.slots, w.spec.cpu_capacity,
                   w.spec.io_bandwidth_bps, w.spec.net_bandwidth_bps);
  }
  return out;
}

std::string ThresholdCache::Serialize() const {
  std::string out;
  for (const auto& [parallelism, alpha] : entries_) {
    std::vector<std::string> parts;
    for (int p : parallelism) {
      parts.push_back(Sprintf("%d", p));
    }
    out += Sprintf("%s %.17g %.17g %.17g\n", Join(parts, ",").c_str(), alpha.cpu, alpha.io,
                   alpha.net);
  }
  return out;
}

bool ThresholdCache::Deserialize(const std::string& text) {
  std::map<std::vector<int>, ResourceVector> parsed;
  std::istringstream stream(text);
  std::string line;
  while (std::getline(stream, line)) {
    if (line.empty()) {
      continue;
    }
    std::istringstream fields(line);
    std::string key;
    ResourceVector alpha;
    if (!(fields >> key >> alpha.cpu >> alpha.io >> alpha.net)) {
      entries_.clear();
      return false;
    }
    std::vector<int> parallelism;
    std::istringstream keys(key);
    std::string token;
    while (std::getline(keys, token, ',')) {
      try {
        parallelism.push_back(std::stoi(token));
      } catch (...) {
        entries_.clear();
        return false;
      }
    }
    if (parallelism.empty()) {
      entries_.clear();
      return false;
    }
    parsed[parallelism] = alpha;
  }
  entries_ = std::move(parsed);
  return true;
}

std::vector<std::vector<int>> EnumerateScalingScenarios(
    const LogicalGraph& graph, const std::map<OperatorId, double>& source_rates,
    const WorkerSpec& worker_spec, const std::vector<double>& rate_multipliers) {
  std::set<std::vector<int>> scenarios;
  for (double mult : rate_multipliers) {
    std::map<OperatorId, double> rates = source_rates;
    for (auto& [op, r] : rates) {
      r *= mult;
    }
    auto op_rates = PropagateRates(graph, rates);
    std::vector<int> parallelism(static_cast<size_t>(graph.num_operators()), 1);
    for (const auto& op : graph.operators()) {
      // Standalone per-task rate from the declared profile (solo GC multiplier applied;
      // one slot runs one thread, i.e. at most one core).
      constexpr double kCoresPerTask = 1.0;
      double cpu_eff = op.profile.cpu_per_record * (1.0 + op.profile.gc_spike_fraction);
      double solo = 1e18;
      if (cpu_eff > 1e-15) {
        solo = std::min(solo, kCoresPerTask / cpu_eff);
      }
      if (op.profile.io_bytes_per_record > 1e-15) {
        solo = std::min(solo, worker_spec.io_bandwidth_bps / op.profile.io_bytes_per_record);
      }
      double out = op.profile.selectivity * op.profile.out_bytes_per_record;
      if (out > 1e-15) {
        solo = std::min(solo, worker_spec.net_bandwidth_bps / out);
      }
      double in = op_rates[static_cast<size_t>(op.id)].input_rate;
      if (solo > 1e-9 && in > 1e-9) {
        parallelism[static_cast<size_t>(op.id)] =
            std::max(1, static_cast<int>(std::ceil(in / solo)));
      }
    }
    scenarios.insert(parallelism);
  }
  return {scenarios.begin(), scenarios.end()};
}

}  // namespace capsys
