// Contention-Aware Placement Search (paper §4.3-§4.4).
//
// The search space of feasible plans is explored as a tree in DFS order:
//   - the *outer search* places one operator per layer (in resource-ranked order when
//     reordering is enabled, §4.4.2);
//   - the *inner search* expands a layer worker by worker, deciding how many of the
//     operator's (identical) tasks each worker receives.
//
// Duplicate elimination (§4.3): workers are homogeneous, so a worker whose already-assigned
// task multiset equals that of a previous worker may receive at most as many tasks of the
// current operator as that previous worker. This rule makes the enumeration an *exact* orbit
// enumerator: every distinct plan (up to worker permutation) is produced exactly once —
// validated against brute force in tests, and reproducing the paper's plan counts (80 for
// Q1-sliding, 665 for Q2-join, 950 for Q3-inf on the 4x4 cluster).
//
// Threshold pruning (§4.4.1): per-worker loads grow monotonically down the tree, so a branch
// dies as soon as any worker load exceeds L_i_min + alpha_i (L_i_max - L_i_min) (Eq. 10).
#ifndef SRC_CAPS_SEARCH_H_
#define SRC_CAPS_SEARCH_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/caps/cost_model.h"
#include "src/common/thread_pool.h"

namespace capsys {

struct SearchOptions {
  // Pruning thresholds per dimension; values >= 1 disable pruning in that dimension
  // (cost values never exceed 1 by construction).
  ResourceVector alpha{1.0, 1.0, 1.0};
  // Explore resource-heavy operators first (§4.4.2).
  bool reorder = true;
  // Worker-symmetry duplicate elimination (§4.3). Disabling it enumerates every symmetric
  // copy of each plan — only useful for ablation studies.
  bool eliminate_duplicates = true;
  // Try near-balanced task counts first inside the inner search so the first complete plan
  // is already good (anytime behaviour). Disabling falls back to ascending count order.
  bool value_ordering = true;
  // Stop at the first plan satisfying the thresholds (used by the Fig. 10a measurements
  // and by threshold auto-tuning feasibility probes).
  bool find_first = false;
  // Retain every satisfying plan (exhaustive studies, Fig. 2 / Fig. 5).
  bool collect_plans = false;
  size_t max_collected = size_t{1} << 22;
  // Worker threads for parallel subtree exploration; 1 = fully deterministic.
  int num_threads = 1;
  double timeout_s = 1e18;
};

struct ScoredPlan {
  Placement placement;
  ResourceVector cost;
};

struct SearchStats {
  uint64_t nodes = 0;    // inner-search tree nodes expanded
  uint64_t leaves = 0;   // complete plans satisfying the thresholds
  uint64_t pruned = 0;   // branches cut by threshold pruning
  double elapsed_s = 0.0;
  bool timed_out = false;

  std::string ToString() const;
};

struct SearchResult {
  bool found = false;
  ScoredPlan best;                    // BetterCost-minimal plan of the pareto front
  std::vector<ScoredPlan> pareto;     // pareto-optimal plans w.r.t. the cost vector
  std::vector<ScoredPlan> collected;  // all satisfying plans when collect_plans is set
  SearchStats stats;
};

class CapsSearch {
 public:
  // `model` must outlive the search. The graph may not contain forward edges between
  // operators with parallelism > 1 (task symmetry would be broken by subtask pairing);
  // this is CHECKed.
  CapsSearch(const CostModel& model, SearchOptions options);
  ~CapsSearch();

  SearchResult Run();

  // The operator exploration order the search used (after reordering).
  const std::vector<OperatorId>& operator_order() const { return order_; }

 private:
  struct Ctx;

  void PlaceOp(Ctx& ctx, size_t layer);
  // `later_cap` is the summed free slot capacity of workers > w, threaded through the
  // recursion so no node rescans the suffix of the worker array.
  void InnerSearch(Ctx& ctx, size_t layer, WorkerId w, int remaining, int later_cap);
  void AtLeaf(Ctx& ctx);
  bool ShouldStop();
  // Applies / reverts the load deltas of placing `count` tasks of the layer's operator on
  // worker `w`, including resolved cross-worker network contributions. Maintains the
  // incremental search state (per-operator placed totals, per-operator host lists, and the
  // bound-violation count) so feasibility checks touch only the mutated workers.
  void ApplyPlacement(Ctx& ctx, size_t layer, WorkerId w, int count);
  void UndoPlacement(Ctx& ctx, size_t layer, WorkerId w, int count);
  // True when `load` exceeds the Eq. 10 bound in any dimension.
  bool Violates(const ResourceVector& load) const;

  const CostModel& model_;
  SearchOptions options_;
  std::vector<OperatorId> order_;  // outer layers
  ResourceVector bound_;           // Eq. 10 load bound
  // Slot capacity per worker, captured once at construction. The search assumes specs do
  // not change while it runs; snapshotting makes that explicit instead of re-reading the
  // cluster's Worker records on every inner-search node.
  std::vector<int> worker_slots_;
  int total_slots_ = 0;
  // Per-operator task demand (tasks of one operator are identical).
  std::vector<ResourceVector> op_task_demand_;   // indexed by OperatorId
  std::vector<double> op_downstream_channels_;   // |D(t)| per task of op
  std::vector<int> op_parallelism_;
  // Adjacency between operators with channel multiplicities (all-to-all edges).
  struct OpEdge {
    OperatorId peer;
    // Edges where this op is upstream: per-task share of U_net per peer task.
    double net_share_per_peer_task;
  };
  std::vector<std::vector<OpEdge>> out_edges_;  // o -> downstream peers
  std::vector<std::vector<OpEdge>> in_edges_;   // o -> upstream peers (share = peer's)

  // Spec-equivalence class per worker: the duplicate rule only compares workers of the
  // same class (all zero for homogeneous clusters).
  std::vector<int> worker_class_;

  std::unique_ptr<ThreadPool> pool_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> nodes_{0};
  std::atomic<uint64_t> leaves_{0};
  std::atomic<uint64_t> pruned_{0};
  std::atomic<bool> timed_out_{false};
  std::chrono::steady_clock::time_point start_;

  std::mutex result_mu_;
  SearchResult result_;
};

// Convenience: enumerate every distinct placement plan (no thresholds), returning plans
// with their cost vectors. Used by the exhaustive study (Fig. 2 / Fig. 5) and by tests.
std::vector<ScoredPlan> EnumerateAllPlans(const CostModel& model);

}  // namespace capsys

#endif  // SRC_CAPS_SEARCH_H_
