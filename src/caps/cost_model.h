// The CAPS cost model (paper §4.2).
//
// A placement plan's cost vector C = [C_cpu, C_io, C_net] captures the resource imbalance
// of the cluster as the distance of the bottleneck worker's load from the ideal
// perfectly-balanced load, normalized by the worst possible imbalance:
//
//   C_i(f) = (L_i(f) - L_i_min) / (L_i_max - L_i_min)      (Eq. 4), or 0 when degenerate
//
//   L_i(f)   = max over workers of the summed task loads (Eq. 5)
//   L_i_min  = total load / |V_w|  for cpu and io (Eq. 6);  0 for net
//   L_i_max  = summed load of the s most intensive tasks T_i (Eq. 7)
//
// Network loads use Eq. 8: only the cross-worker fraction |D_r(f,t)| / |D(t)| of a task's
// output counts toward its worker's outbound load.
#ifndef SRC_CAPS_COST_MODEL_H_
#define SRC_CAPS_COST_MODEL_H_

#include <vector>

#include "src/cluster/cluster.h"
#include "src/common/types.h"
#include "src/dataflow/placement.h"

namespace capsys {

struct CostModelOptions {
  // When true, worker loads are divided by the worker's capacity per dimension before the
  // imbalance is measured. The paper's model balances absolute loads (correct for its
  // homogeneous clusters); on mixed hardware, capacity normalization makes "balanced" mean
  // "equal utilization", so larger workers carry proportionally more (extension).
  bool normalize_by_capacity = false;
};

class CostModel {
 public:
  // `demands` gives U(t) = [U_cpu, U_io, U_net] for every task (Table 1). U_net is the
  // task's full output data rate in bytes/s; the model applies the remote fraction itself.
  CostModel(const PhysicalGraph& graph, const Cluster& cluster,
            std::vector<ResourceVector> demands, CostModelOptions options = {});

  // Cost vector of a complete placement plan (Eq. 4 per dimension).
  ResourceVector Cost(const Placement& f) const;

  // Per-worker load vectors under `f` (cpu/io by Eq. 5, net by Eq. 8).
  std::vector<ResourceVector> WorkerLoads(const Placement& f) const;

  // Threshold-pruning bound (Eq. 10): the max per-worker load allowed per dimension for a
  // plan to satisfy C_i(f) <= alpha_i. Dimensions with alpha_i >= 1 are effectively
  // unconstrained (C_i <= 1 always holds).
  ResourceVector LoadBound(const ResourceVector& alpha) const;

  // Converts a bound back to the cost scale: C_i corresponding to worker load L_i.
  double CostOfLoad(Resource r, double load) const;

  const ResourceVector& l_min() const { return l_min_; }
  const ResourceVector& l_max() const { return l_max_; }
  const std::vector<ResourceVector>& demands() const { return demands_; }
  const PhysicalGraph& graph() const { return graph_; }
  const Cluster& cluster() const { return cluster_; }

  // Aggregate demand of all tasks of one operator, used to rank operators for the
  // search-reordering optimization (§4.4.2).
  ResourceVector OperatorDemand(OperatorId op) const;

  // Per-dimension factor a task demand is multiplied by when accumulated onto worker `w`
  // (all ones in the paper-faithful absolute model; 1/capacity when normalizing).
  const ResourceVector& WorkerScale(WorkerId w) const {
    return worker_scale_[static_cast<size_t>(w)];
  }
  const CostModelOptions& options() const { return options_; }

 private:
  const PhysicalGraph& graph_;
  const Cluster& cluster_;
  std::vector<ResourceVector> demands_;
  CostModelOptions options_;
  std::vector<ResourceVector> worker_scale_;
  ResourceVector l_min_;
  ResourceVector l_max_;
};

// Scalarization used to pick one plan from the pareto front: lexicographic
// (max component, sum of components). Returns true when `a` is strictly better than `b`.
bool BetterCost(const ResourceVector& a, const ResourceVector& b);

}  // namespace capsys

#endif  // SRC_CAPS_COST_MODEL_H_
