#include "src/caps/placement_groups.h"

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {

LogicalGraph SplitIntoPlacementGroups(const LogicalGraph& graph, OperatorId op,
                                      const std::vector<GroupSpec>& groups) {
  CAPSYS_CHECK(op >= 0 && op < graph.num_operators());
  CAPSYS_CHECK(!groups.empty());
  int total = 0;
  for (const auto& g : groups) {
    CAPSYS_CHECK(g.parallelism >= 1);
    total += g.parallelism;
  }
  CAPSYS_CHECK_MSG(total == graph.op(op).parallelism,
                   "group parallelisms must sum to the operator parallelism");

  LogicalGraph out(graph.name());
  // Copy all operators; the split operator becomes `groups.size()` operators appended in
  // place of the original position ordering (original op index maps to its first group).
  std::vector<OperatorId> remap(static_cast<size_t>(graph.num_operators()), kInvalidId);
  std::vector<OperatorId> group_ids;
  for (const auto& o : graph.operators()) {
    if (o.id == op) {
      for (size_t g = 0; g < groups.size(); ++g) {
        OperatorProfile profile = o.profile;
        profile.cpu_per_record *= groups[g].demand_scale;
        profile.io_bytes_per_record *= groups[g].demand_scale;
        profile.out_bytes_per_record *= groups[g].demand_scale;
        OperatorId id = out.AddOperator(Sprintf("%s/g%zu", o.name.c_str(), g), o.kind, profile,
                                        groups[g].parallelism);
        group_ids.push_back(id);
        if (g == 0) {
          remap[static_cast<size_t>(o.id)] = id;
        }
      }
    } else {
      remap[static_cast<size_t>(o.id)] =
          out.AddOperator(o.name, o.kind, o.profile, o.parallelism);
    }
  }
  for (const auto& e : graph.edges()) {
    std::vector<OperatorId> froms = {remap[static_cast<size_t>(e.from)]};
    std::vector<OperatorId> tos = {remap[static_cast<size_t>(e.to)]};
    if (e.from == op) {
      froms = group_ids;
    }
    if (e.to == op) {
      tos = group_ids;
    }
    for (OperatorId f : froms) {
      for (OperatorId t : tos) {
        out.AddEdge(f, t, e.scheme);
      }
    }
  }
  return out;
}

}  // namespace capsys
