#include "src/caps/cost_model.h"

#include <algorithm>

#include "src/common/logging.h"

namespace capsys {
namespace {

constexpr double kEps = 1e-12;

// Sum of the `s` largest values in `values`.
double TopSum(std::vector<double> values, int s) {
  s = std::min<int>(s, static_cast<int>(values.size()));
  std::partial_sort(values.begin(), values.begin() + s, values.end(), std::greater<>());
  double sum = 0.0;
  for (int i = 0; i < s; ++i) {
    sum += values[static_cast<size_t>(i)];
  }
  return sum;
}

}  // namespace

CostModel::CostModel(const PhysicalGraph& graph, const Cluster& cluster,
                     std::vector<ResourceVector> demands, CostModelOptions options)
    : graph_(graph), cluster_(cluster), demands_(std::move(demands)), options_(options) {
  CAPSYS_CHECK(demands_.size() == static_cast<size_t>(graph.num_tasks()));
  CAPSYS_CHECK(cluster.num_workers() >= 1);
  int s = cluster.slots_per_worker();

  // Per-worker accumulation scale: identity in the paper's absolute model, 1/capacity when
  // normalizing for heterogeneous hardware.
  worker_scale_.resize(static_cast<size_t>(cluster.num_workers()), ResourceVector{1, 1, 1});
  if (options_.normalize_by_capacity) {
    for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
      const auto& spec = cluster.worker(w).spec;
      auto& scale = worker_scale_[static_cast<size_t>(w)];
      scale.cpu = 1.0 / std::max(spec.cpu_capacity, kEps);
      scale.io = 1.0 / std::max(spec.io_bandwidth_bps, kEps);
      scale.net = 1.0 / std::max(spec.net_bandwidth_bps, kEps);
    }
  }

  std::vector<double> cpu;
  std::vector<double> io;
  std::vector<double> net;
  cpu.reserve(demands_.size());
  io.reserve(demands_.size());
  net.reserve(demands_.size());
  double cpu_total = 0.0;
  double io_total = 0.0;
  for (const auto& d : demands_) {
    cpu.push_back(d.cpu);
    io.push_back(d.io);
    net.push_back(d.net);
    cpu_total += d.cpu;
    io_total += d.io;
  }
  if (!options_.normalize_by_capacity) {
    double workers = static_cast<double>(cluster.num_workers());
    l_min_.cpu = cpu_total / workers;  // Eq. 6
    l_min_.io = io_total / workers;
    l_min_.net = 0.0;  // all tasks on one worker => no network traffic (§4.2)
    l_max_.cpu = TopSum(std::move(cpu), s);  // Eq. 7: co-locate T_cpu on one worker
    l_max_.io = TopSum(std::move(io), s);
    l_max_.net = TopSum(std::move(net), s);  // co-locate T_net, |T_net| = s (Table 1)
  } else {
    // Normalized variant: the ideal is equal *utilization* (total demand over total
    // capacity); the worst case is the heaviest tasks stacked on the worker where they
    // cost the most utilization.
    ResourceVector capacity_total;
    for (const auto& w : cluster.workers()) {
      capacity_total.cpu += w.spec.cpu_capacity;
      capacity_total.io += w.spec.io_bandwidth_bps;
      capacity_total.net += w.spec.net_bandwidth_bps;
    }
    l_min_.cpu = cpu_total / std::max(capacity_total.cpu, kEps);
    l_min_.io = io_total / std::max(capacity_total.io, kEps);
    l_min_.net = 0.0;
    double net_topsum = TopSum(net, s);
    double cpu_topsum = TopSum(cpu, s);
    double io_topsum = TopSum(io, s);
    for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
      const auto& scale = worker_scale_[static_cast<size_t>(w)];
      l_max_.cpu = std::max(l_max_.cpu, cpu_topsum * scale.cpu);
      l_max_.io = std::max(l_max_.io, io_topsum * scale.io);
      l_max_.net = std::max(l_max_.net, net_topsum * scale.net);
    }
  }
}

std::vector<ResourceVector> CostModel::WorkerLoads(const Placement& f) const {
  std::vector<ResourceVector> loads(static_cast<size_t>(cluster_.num_workers()));
  for (const auto& t : graph_.tasks()) {
    WorkerId w = f.WorkerOf(t.id);
    CAPSYS_CHECK(w != kInvalidId);
    auto& load = loads[static_cast<size_t>(w)];
    const auto& d = demands_[static_cast<size_t>(t.id)];
    const auto& scale = worker_scale_[static_cast<size_t>(w)];
    load.cpu += d.cpu * scale.cpu;
    load.io += d.io * scale.io;
    load.net += d.net * scale.net * f.RemoteFraction(graph_, t.id);  // Eq. 8
  }
  return loads;
}

ResourceVector CostModel::Cost(const Placement& f) const {
  auto loads = WorkerLoads(f);
  ResourceVector max_load;
  for (const auto& l : loads) {
    max_load.cpu = std::max(max_load.cpu, l.cpu);
    max_load.io = std::max(max_load.io, l.io);
    max_load.net = std::max(max_load.net, l.net);
  }
  ResourceVector c;
  for (Resource r : kAllResources) {
    c[r] = CostOfLoad(r, max_load[r]);
  }
  return c;
}

double CostModel::CostOfLoad(Resource r, double load) const {
  double span = l_max_[r] - l_min_[r];
  if (span <= kEps) {
    return 0.0;  // all plans equivalent in this dimension (Eq. 4 degenerate case)
  }
  return (load - l_min_[r]) / span;
}

ResourceVector CostModel::LoadBound(const ResourceVector& alpha) const {
  ResourceVector bound;
  for (Resource r : kAllResources) {
    double a = alpha[r];
    if (a >= 1.0) {
      bound[r] = 1e300;  // unconstrained
    } else {
      bound[r] = l_min_[r] + a * (l_max_[r] - l_min_[r]);  // Eq. 10
    }
  }
  return bound;
}

ResourceVector CostModel::OperatorDemand(OperatorId op) const {
  ResourceVector total;
  for (TaskId t : graph_.TasksOf(op)) {
    total += demands_[static_cast<size_t>(t)];
  }
  return total;
}

bool BetterCost(const ResourceVector& a, const ResourceVector& b) {
  double ma = a.Max();
  double mb = b.Max();
  if (ma != mb) {
    return ma < mb;
  }
  return a.Sum() < b.Sum();
}

}  // namespace capsys
