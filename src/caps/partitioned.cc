#include "src/caps/partitioned.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>

#include "src/caps/greedy.h"
#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {
namespace {

constexpr double kEps = 1e-12;

}  // namespace

std::string PartitionedResult::ToString() const {
  return Sprintf("found=%d partitions=%zu elapsed=%.3fs", found ? 1 : 0, partitions.size(),
                 elapsed_s);
}

PartitionedResult PartitionedPlacementSearch(const PhysicalGraph& graph,
                                             const Cluster& cluster,
                                             const std::vector<ResourceVector>& demands,
                                             const PartitionedOptions& options) {
  auto start = std::chrono::steady_clock::now();
  const LogicalGraph& logical = graph.logical();
  int k = std::clamp(options.num_partitions, 1, cluster.num_workers());
  PartitionedResult result;

  // --- 1. Partition operators, contiguous in topological order, balanced by normalized
  // demand --------------------------------------------------------------------------------
  CostModel full_model(graph, cluster, demands);
  auto op_weight = [&](OperatorId o) {
    ResourceVector d = full_model.OperatorDemand(o);
    double weight = 0.0;
    for (Resource r : kAllResources) {
      double scale = std::max(full_model.l_max()[r], kEps);
      weight = std::max(weight, d[r] / scale);
    }
    return weight;
  };
  auto topo = logical.TopologicalOrder();
  double total_weight = 0.0;
  for (OperatorId o : topo) {
    total_weight += op_weight(o);
  }
  double per_partition = total_weight / k;
  std::vector<std::vector<OperatorId>> partitions;
  std::vector<OperatorId> current;
  double acc = 0.0;
  for (OperatorId o : topo) {
    current.push_back(o);
    acc += op_weight(o);
    if (acc >= per_partition - kEps &&
        static_cast<int>(partitions.size()) < k - 1) {
      partitions.push_back(std::move(current));
      current.clear();
      acc = 0.0;
    }
  }
  if (!current.empty()) {
    partitions.push_back(std::move(current));
  }
  result.partitions = partitions;

  // --- 2. Assign disjoint worker ranges proportional to each partition's slot need --------
  int slots_per_worker = cluster.slots_per_worker();
  std::vector<int> tasks_per_partition(partitions.size(), 0);
  for (size_t pi = 0; pi < partitions.size(); ++pi) {
    for (OperatorId o : partitions[pi]) {
      tasks_per_partition[pi] += logical.op(o).parallelism;
    }
  }
  std::vector<int> workers_per_partition(partitions.size(), 0);
  int assigned_workers = 0;
  for (size_t pi = 0; pi < partitions.size(); ++pi) {
    workers_per_partition[pi] =
        std::max(1, (tasks_per_partition[pi] + slots_per_worker - 1) / slots_per_worker);
    assigned_workers += workers_per_partition[pi];
  }
  // If the per-partition worker ceilings exceed the cluster (rounding losses), merge
  // adjacent partitions until they fit — in the limit this degenerates to whole-graph CAPS.
  while (assigned_workers > cluster.num_workers() && partitions.size() > 1) {
    // Merge the pair of adjacent partitions with the smallest combined task count.
    size_t best = 0;
    int best_tasks = INT32_MAX;
    for (size_t pi = 0; pi + 1 < partitions.size(); ++pi) {
      int combined = tasks_per_partition[pi] + tasks_per_partition[pi + 1];
      if (combined < best_tasks) {
        best_tasks = combined;
        best = pi;
      }
    }
    partitions[best].insert(partitions[best].end(), partitions[best + 1].begin(),
                            partitions[best + 1].end());
    partitions.erase(partitions.begin() + static_cast<long>(best) + 1);
    tasks_per_partition[best] += tasks_per_partition[best + 1];
    tasks_per_partition.erase(tasks_per_partition.begin() + static_cast<long>(best) + 1);
    workers_per_partition.assign(partitions.size(), 0);
    assigned_workers = 0;
    for (size_t pi = 0; pi < partitions.size(); ++pi) {
      workers_per_partition[pi] =
          std::max(1, (tasks_per_partition[pi] + slots_per_worker - 1) / slots_per_worker);
      assigned_workers += workers_per_partition[pi];
    }
  }
  result.partitions = partitions;
  if (assigned_workers > cluster.num_workers()) {
    result.elapsed_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
    return result;  // infeasible even as a single partition (should not happen)
  }
  // Distribute spare workers by partition weight (more room to balance heavy partitions).
  int spare = cluster.num_workers() - assigned_workers;
  for (int s = 0; s < spare; ++s) {
    size_t heaviest = 0;
    double best = -1.0;
    for (size_t pi = 0; pi < partitions.size(); ++pi) {
      double load = static_cast<double>(tasks_per_partition[pi]) /
                    (workers_per_partition[pi] * slots_per_worker);
      if (load > best) {
        best = load;
        heaviest = pi;
      }
    }
    ++workers_per_partition[heaviest];
  }

  // --- 3. Solve each partition on its worker range -----------------------------------------
  Placement plan(graph.num_tasks());
  WorkerId worker_offset = 0;
  for (size_t pi = 0; pi < partitions.size(); ++pi) {
    // Sub-graph: the partition's operators with their intra-partition edges.
    LogicalGraph sub(logical.name() + Sprintf("/p%zu", pi));
    std::vector<OperatorId> to_sub(static_cast<size_t>(logical.num_operators()), kInvalidId);
    for (OperatorId o : partitions[pi]) {
      to_sub[static_cast<size_t>(o)] = sub.AddOperator(
          logical.op(o).name, logical.op(o).kind, logical.op(o).profile,
          logical.op(o).parallelism);
    }
    for (const auto& e : logical.edges()) {
      OperatorId f = to_sub[static_cast<size_t>(e.from)];
      OperatorId t = to_sub[static_cast<size_t>(e.to)];
      if (f != kInvalidId && t != kInvalidId) {
        sub.AddEdge(f, t, e.scheme);
      }
    }
    PhysicalGraph sub_graph = PhysicalGraph::Expand(sub);
    Cluster sub_cluster(workers_per_partition[pi], cluster.worker(worker_offset).spec);
    // Sub-demands: copy per-task demands (tasks of one operator are identical, so the
    // first global task of the operator is representative).
    std::vector<ResourceVector> sub_demands(static_cast<size_t>(sub_graph.num_tasks()));
    for (OperatorId o : partitions[pi]) {
      OperatorId so = to_sub[static_cast<size_t>(o)];
      TaskId global = graph.TasksOf(o).front();
      for (TaskId t : sub_graph.TasksOf(so)) {
        sub_demands[static_cast<size_t>(t)] = demands[static_cast<size_t>(global)];
      }
    }

    CostModel sub_model(sub_graph, sub_cluster, sub_demands);
    AutoTuneOptions tune = options.autotune;
    tune.num_threads = options.num_threads;
    AutoTuneResult tuned = AutoTuneThresholds(sub_model, tune);
    ResourceVector alpha = tuned.feasible ? tuned.alpha : ResourceVector{1.0, 1.0, 1.0};
    result.alphas.push_back(alpha);

    SearchOptions search_options;
    search_options.alpha = alpha;
    search_options.find_first = true;
    search_options.num_threads = options.num_threads;
    search_options.timeout_s = options.search_timeout_s;
    SearchResult sub_result = CapsSearch(sub_model, search_options).Run();
    Placement sub_plan =
        sub_result.found ? sub_result.best.placement : GreedyBalancedPlacement(sub_model);

    // Splice into the global plan.
    for (OperatorId o : partitions[pi]) {
      OperatorId so = to_sub[static_cast<size_t>(o)];
      const auto& global_tasks = graph.TasksOf(o);
      const auto& sub_tasks = sub_graph.TasksOf(so);
      CAPSYS_CHECK(global_tasks.size() == sub_tasks.size());
      for (size_t i = 0; i < global_tasks.size(); ++i) {
        plan.Assign(global_tasks[i], worker_offset + sub_plan.WorkerOf(sub_tasks[i]));
      }
    }
    worker_offset += workers_per_partition[pi];
  }

  result.found = plan.Validate(graph, cluster).empty();
  if (result.found) {
    result.placement = plan;
  }
  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  return result;
}

}  // namespace capsys
