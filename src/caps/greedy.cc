#include "src/caps/greedy.h"

#include <algorithm>
#include <numeric>

#include "src/common/logging.h"

namespace capsys {
namespace {

constexpr double kEps = 1e-12;

}  // namespace

Placement GreedyBalancedPlacement(const CostModel& model) {
  const PhysicalGraph& graph = model.graph();
  const Cluster& cluster = model.cluster();
  const auto& demands = model.demands();
  int num_workers = cluster.num_workers();

  // Normalization scales per dimension: the worst-case single-worker load L_max (avoid
  // division by zero for absent dimensions).
  ResourceVector scale;
  for (Resource r : kAllResources) {
    scale[r] = std::max(model.l_max()[r], kEps);
  }

  // Order tasks by their dominant normalized demand, heaviest first.
  std::vector<TaskId> order(static_cast<size_t>(graph.num_tasks()));
  std::iota(order.begin(), order.end(), 0);
  auto weight = [&](TaskId t) {
    const auto& d = demands[static_cast<size_t>(t)];
    double w = 0.0;
    for (Resource r : kAllResources) {
      w = std::max(w, d[r] / scale[r]);
    }
    return w;
  };
  std::stable_sort(order.begin(), order.end(),
                   [&](TaskId a, TaskId b) { return weight(a) > weight(b); });

  Placement plan(graph.num_tasks());
  std::vector<int> used(static_cast<size_t>(num_workers), 0);
  std::vector<ResourceVector> load(static_cast<size_t>(num_workers));
  for (TaskId t : order) {
    const auto& d = demands[static_cast<size_t>(t)];
    WorkerId best = kInvalidId;
    double best_score = 0.0;
    double best_sum = 0.0;
    for (WorkerId w = 0; w < num_workers; ++w) {
      if (used[static_cast<size_t>(w)] >= cluster.worker(w).spec.slots) {
        continue;
      }
      // Score: the worker's normalized max-dimension load after adding the task, with the
      // summed normalized load as tie-breaker (prefers emptier workers among equal maxima).
      // Network uses the full per-task output as a conservative proxy (remote fractions are
      // not known until all neighbors are placed). The model's per-worker scale folds in
      // capacity normalization on heterogeneous clusters.
      const ResourceVector& wscale = model.WorkerScale(w);
      double c = (load[static_cast<size_t>(w)].cpu + d.cpu) * wscale.cpu / scale.cpu;
      double i = (load[static_cast<size_t>(w)].io + d.io) * wscale.io / scale.io;
      double n = (load[static_cast<size_t>(w)].net + d.net) * wscale.net / scale.net;
      double score = std::max({c, i, n});
      double sum = c + i + n;
      if (best == kInvalidId || score < best_score - kEps ||
          (score < best_score + kEps && sum < best_sum)) {
        best = w;
        best_score = score;
        best_sum = sum;
      }
    }
    CAPSYS_CHECK_MSG(best != kInvalidId, "cluster has fewer free slots than tasks");
    plan.Assign(t, best);
    ++used[static_cast<size_t>(best)];
    load[static_cast<size_t>(best)] += d;
  }
  return plan;
}

}  // namespace capsys
