// Threshold auto-tuning (paper §5.2).
//
// Identifies the minimum feasible pruning-threshold vector for a deployment in two phases:
//   Phase 1: per dimension, starting from the tightest bound (perfectly balanced placement)
//            and relaxing multiplicatively until a valid plan exists with the other
//            dimensions disabled.
//   Phase 2: starting from the per-dimension minima, relax all dimensions jointly until a
//            plan satisfying the full vector exists.
// A timeout allows exiting early for infeasible configurations. Results depend only on the
// query graph and resources, so they can be precomputed offline per scaling scenario.
#ifndef SRC_CAPS_AUTO_TUNER_H_
#define SRC_CAPS_AUTO_TUNER_H_

#include <string>

#include "src/caps/cost_model.h"
#include "src/caps/search.h"

namespace capsys {

struct AutoTuneOptions {
  // Multiplicative relaxation step per iteration; the paper uses 1.1 for both phases.
  double relax_factor = 1.1;
  // Additive floor on each relaxation step. Purely multiplicative relaxation stalls when a
  // dimension's phase-1 minimum is degenerate (e.g. C_net = 0 is always achievable by
  // co-locating everything), which would let the other dimensions over-relax to 1 before
  // the stalled dimension becomes jointly feasible.
  double min_step = 0.01;
  // Tightest initial bound (a strictly positive cost floor to start relaxing from).
  double initial_alpha = 0.005;
  // Wall-clock budget across both phases.
  double timeout_s = 5.0;
  // Budget per feasibility probe. Probes that exceed it count as infeasible (slightly
  // over-relaxing the result) instead of eating the entire budget proving infeasibility of
  // one threshold vector on a large instance.
  double probe_timeout_s = 0.25;
  // Threads handed to each feasibility-probe search.
  int num_threads = 1;
};

struct AutoTuneResult {
  bool feasible = false;
  ResourceVector alpha;        // the minimum feasible threshold vector found
  ResourceVector phase1_alpha;  // per-dimension minima with other dimensions disabled
  int iterations = 0;           // total feasibility probes run
  double elapsed_s = 0.0;
  bool timed_out = false;

  std::string ToString() const;
};

// Runs the two-phase auto-tuning procedure against `model`.
AutoTuneResult AutoTuneThresholds(const CostModel& model, const AutoTuneOptions& options = {});

}  // namespace capsys

#endif  // SRC_CAPS_AUTO_TUNER_H_
