// Offline threshold precomputation (paper §5.2): "Since the auto-tuning results depend only
// on the query graph and the available resources, we can pre-compute thresholds for various
// possible scaling scenarios (combinations of operator parallelism settings) offline and in
// parallel. The results can be used to select the pre-calculated thresholds when scaling is
// triggered at runtime."
//
// Cost vectors are invariant under uniform rate scaling (all loads, L_min and L_max scale
// together), so a scenario is keyed purely by its parallelism vector.
#ifndef SRC_CAPS_THRESHOLD_CACHE_H_
#define SRC_CAPS_THRESHOLD_CACHE_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/caps/auto_tuner.h"
#include "src/cluster/cluster.h"
#include "src/dataflow/logical_graph.h"

namespace capsys {

class ThresholdCache {
 public:
  // Auto-tunes thresholds for every scenario (a parallelism vector per operator of
  // `graph`), spreading scenarios across `num_threads` workers. Existing entries are kept.
  void Precompute(const LogicalGraph& graph, const std::map<OperatorId, double>& source_rates,
                  const Cluster& cluster, const std::vector<std::vector<int>>& scenarios,
                  const AutoTuneOptions& options = {}, int num_threads = 2);

  // Returns the precomputed thresholds for a parallelism vector, if present.
  std::optional<ResourceVector> Lookup(const std::vector<int>& parallelism) const;

  void Insert(const std::vector<int>& parallelism, const ResourceVector& alpha);
  size_t size() const { return entries_.size(); }
  void Clear();

  // Entries are valid only for the capacity shape they were tuned against: thresholds are
  // load fractions of worker capacity, so adding/removing workers or changing a spec makes
  // every cached alpha stale, while transient slot occupancy (reservations, epoch bumps
  // from commits) does not. Precompute records the cluster's signature; Revalidate drops
  // all entries when called with a cluster whose signature differs (and rebinds to it).
  // Returns true when the existing entries were kept.
  bool Revalidate(const Cluster& cluster);
  const std::string& cluster_signature() const { return cluster_signature_; }

  // Canonical capacity-shape signature: per-worker "slots/cpu/io/net", occupancy excluded.
  static std::string ClusterSignature(const Cluster& cluster);

  // Plain-text persistence: one line per entry, "p1,p2,...,pk alpha_cpu alpha_io alpha_net".
  std::string Serialize() const;
  // Replaces the cache contents; returns false (leaving the cache empty) on parse errors.
  bool Deserialize(const std::string& text);

 private:
  std::map<std::vector<int>, ResourceVector> entries_;
  std::string cluster_signature_;
};

// Enumerates plausible DS2 scaling scenarios for `graph`: for every total rate in
// `rate_multipliers` (relative to `source_rates`), the minimal parallelism vector at that
// rate given standalone per-task rates. Deduplicated.
std::vector<std::vector<int>> EnumerateScalingScenarios(
    const LogicalGraph& graph, const std::map<OperatorId, double>& source_rates,
    const WorkerSpec& worker_spec, const std::vector<double>& rate_multipliers);

}  // namespace capsys

#endif  // SRC_CAPS_THRESHOLD_CACHE_H_
