#include "src/caps/auto_tuner.h"

#include <algorithm>
#include <chrono>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/obs/trace.h"

namespace capsys {
namespace {

// Runs a find-first feasibility probe with the given thresholds and remaining budget.
bool Feasible(const CostModel& model, const ResourceVector& alpha, int num_threads,
              double budget_s) {
  if (budget_s <= 0.0) {
    return false;
  }
  SearchOptions options;
  options.alpha = alpha;
  options.find_first = true;
  options.reorder = true;
  options.num_threads = num_threads;
  options.timeout_s = budget_s;
  CapsSearch search(model, options);
  return search.Run().found;
}

}  // namespace

std::string AutoTuneResult::ToString() const {
  return Sprintf("alpha=%s feasible=%d iterations=%d elapsed=%.3fs%s",
                 alpha.ToString().c_str(), feasible ? 1 : 0, iterations, elapsed_s,
                 timed_out ? " TIMED_OUT" : "");
}

AutoTuneResult AutoTuneThresholds(const CostModel& model, const AutoTuneOptions& options) {
  CAPSYS_CHECK(options.relax_factor > 1.0);
  CAPSYS_CHECK(options.initial_alpha > 0.0);
  Span tune_span("caps.autotune");
  auto start = std::chrono::steady_clock::now();
  auto elapsed = [&start] {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  };

  AutoTuneResult result;
  // Each feasibility probe is one tuning iteration: a find-first search under the candidate
  // thresholds, traced as its own (nested) span.
  auto probe = [&](const ResourceVector& alpha) {
    Span probe_span("caps.autotune.probe");
    probe_span.AddAttr("iteration", result.iterations);
    probe_span.AddAttr("alpha", alpha.ToString());
    ++result.iterations;
    double budget = std::min(options.probe_timeout_s, options.timeout_s - elapsed());
    bool feasible = Feasible(model, alpha, options.num_threads, budget);
    probe_span.AddAttr("feasible", feasible ? "true" : "false");
    return feasible;
  };
  auto out_of_time = [&] { return elapsed() > options.timeout_s; };

  // Phase 1: per-dimension minimum with the other dimensions disabled. Starting from the
  // tightest bound, the threshold is relaxed with geometrically growing steps until a valid
  // plan exists, then refined by bisection — logarithmically many probes, each of which may
  // cost up to probe_timeout_s when it must prove (or give up on) infeasibility.
  for (Resource r : kAllResources) {
    double lo = 0.0;
    double hi = options.initial_alpha;
    double step = std::max(options.min_step, options.initial_alpha * (options.relax_factor - 1.0));
    bool found = false;
    while (!found) {
      if (out_of_time()) {
        result.timed_out = true;
        result.elapsed_s = elapsed();
        return result;
      }
      ResourceVector alpha{1.0, 1.0, 1.0};
      alpha[r] = std::min(hi, 1.0);
      if (probe(alpha)) {
        found = true;
        break;
      }
      lo = hi;
      if (hi >= 1.0) {
        // Even alpha = 1 (pruning disabled) found nothing within the probe budget; treat
        // the dimension as unconstrained.
        found = true;
        break;
      }
      step *= 2.0;
      hi = std::min(1.0, hi + step);
    }
    // Bisection refinement toward the minimum feasible value.
    for (int i = 0; i < 5 && hi - lo > options.min_step && !out_of_time(); ++i) {
      double mid = 0.5 * (lo + hi);
      ResourceVector alpha{1.0, 1.0, 1.0};
      alpha[r] = mid;
      if (probe(alpha)) {
        hi = mid;
      } else {
        lo = mid;
      }
    }
    result.phase1_alpha[r] = std::min(hi, 1.0);
  }

  // Phase 2: jointly relax the combined vector until feasible, again with geometrically
  // growing steps (the per-dimension minima are rarely jointly achievable).
  ResourceVector alpha = result.phase1_alpha;
  ResourceVector step{options.min_step, options.min_step, options.min_step};
  while (true) {
    if (out_of_time()) {
      result.timed_out = true;
      result.elapsed_s = elapsed();
      return result;
    }
    if (probe(alpha)) {
      result.feasible = true;
      result.alpha = alpha;
      result.elapsed_s = elapsed();
      return result;
    }
    bool all_maxed = true;
    for (Resource r : kAllResources) {
      if (alpha[r] < 1.0) {
        alpha[r] = std::min(1.0, std::max(alpha[r] * options.relax_factor,
                                          alpha[r] + step[r]));
        step[r] = std::min(0.25, step[r] * 2.0);
        all_maxed = false;
      }
    }
    if (all_maxed) {
      // Fully relaxed and still nothing found within the probe budget: one last probe with
      // the entire remaining wall budget before declaring infeasibility.
      ResourceVector ones{1.0, 1.0, 1.0};
      ++result.iterations;
      if (Feasible(model, ones, options.num_threads, options.timeout_s - elapsed())) {
        result.feasible = true;
        result.alpha = ones;
      }
      result.elapsed_s = elapsed();
      return result;
    }
  }
}

}  // namespace capsys
