// Partitioned placement search (paper §6.5.2 future work: "Another approach would be to
// first partition the dataflow graph and apply CAPS per partition").
//
// For very large deployments, the graph's operators are split into demand-balanced
// partitions (contiguous in topological order, so chains stay together), each partition is
// assigned a disjoint worker subset sized to its share of the load, and auto-tuning + CAPS
// run independently per partition. The resulting sub-placements are spliced into one plan.
// Cross-partition channels are remote by construction, so the combined plan's network cost
// is conservative; in exchange, both auto-tuning and search costs drop from the full
// problem's size to the largest partition's.
#ifndef SRC_CAPS_PARTITIONED_H_
#define SRC_CAPS_PARTITIONED_H_

#include <string>
#include <vector>

#include "src/caps/auto_tuner.h"
#include "src/caps/search.h"

namespace capsys {

struct PartitionedOptions {
  int num_partitions = 2;
  AutoTuneOptions autotune;
  // find_first is forced on inside each partition; alpha comes from per-partition tuning.
  int num_threads = 2;
  double search_timeout_s = 5.0;
};

struct PartitionedResult {
  bool found = false;
  Placement placement;  // over the full physical graph / cluster
  double elapsed_s = 0.0;
  std::vector<std::vector<OperatorId>> partitions;  // operator ids per partition
  std::vector<ResourceVector> alphas;               // tuned thresholds per partition

  std::string ToString() const;
};

// Searches a placement for `graph` on `cluster` with per-task `demands` (same inputs as
// CostModel), partitioning the problem first. Requires at least one worker per partition.
PartitionedResult PartitionedPlacementSearch(const PhysicalGraph& graph,
                                             const Cluster& cluster,
                                             const std::vector<ResourceVector>& demands,
                                             const PartitionedOptions& options = {});

}  // namespace capsys

#endif  // SRC_CAPS_PARTITIONED_H_
