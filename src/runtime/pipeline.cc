#include "src/runtime/pipeline.h"

#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>

#include "src/common/logging.h"

namespace capsys {
namespace {

using RecordQueue = BoundedQueue<Record>;

}  // namespace

Pipeline::Pipeline(std::vector<StageSpec> stages, double stall_timeout_s)
    : stages_(std::move(stages)), stall_timeout_s_(stall_timeout_s) {
  CAPSYS_CHECK(!stages_.empty());
  CAPSYS_CHECK(stall_timeout_s_ > 0.0);
  for (const auto& s : stages_) {
    CAPSYS_CHECK(s.parallelism >= 1);
    CAPSYS_CHECK(s.factory != nullptr);
  }
}

PipelineResult Pipeline::Run(const std::vector<Event>& inputs) {
  size_t num_stages = stages_.size();
  // Input queues per stage, one per task.
  std::vector<std::vector<std::unique_ptr<RecordQueue>>> queues(num_stages);
  for (size_t s = 0; s < num_stages; ++s) {
    for (int i = 0; i < stages_[s].parallelism; ++i) {
      queues[s].push_back(std::make_unique<RecordQueue>(stages_[s].queue_capacity));
    }
  }

  PipelineResult result;
  result.processed_per_stage.assign(num_stages, 0);
  std::vector<std::atomic<uint64_t>> processed(num_stages);
  for (auto& p : processed) {
    p.store(0);
  }
  std::mutex output_mu;
  std::mutex stats_mu;
  std::atomic<bool> wedged{false};
  std::atomic<uint64_t> dropped{0};
  const auto stall_timeout =
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double>(stall_timeout_s_));

  // Routes a record to the target stage's queues (hash by key or round-robin). The push is
  // deadline-bounded: a downstream task that stopped consuming would otherwise block this
  // producer forever and deadlock the stage-by-stage drain in Run(), so after the stall
  // timeout the record is dropped and the run flagged as wedged.
  auto make_emit = [&](size_t next_stage, std::atomic<uint64_t>* rr_counter) {
    return [&, next_stage, rr_counter](Record record) {
      auto& targets = queues[next_stage];
      size_t idx = 0;
      if (targets.size() > 1) {
        if (stages_[next_stage].key != nullptr) {
          idx = stages_[next_stage].key(record) % targets.size();
        } else {
          idx = rr_counter->fetch_add(1, std::memory_order_relaxed) % targets.size();
        }
      }
      if (!targets[idx]->TryPush(std::move(record), stall_timeout)) {
        if (!targets[idx]->closed()) {
          wedged.store(true, std::memory_order_relaxed);
        }
        dropped.fetch_add(1, std::memory_order_relaxed);
      }
    };
  };

  auto output_emit = [&](Record record) {
    std::lock_guard<std::mutex> lock(output_mu);
    result.outputs.push_back(std::move(record));
  };

  // Worker threads.
  std::vector<std::vector<std::thread>> threads(num_stages);
  std::vector<std::unique_ptr<std::atomic<uint64_t>>> rr(num_stages);
  for (size_t s = 0; s < num_stages; ++s) {
    rr[s] = std::make_unique<std::atomic<uint64_t>>(0);
  }
  for (size_t s = 0; s < num_stages; ++s) {
    for (int task = 0; task < stages_[s].parallelism; ++task) {
      threads[s].emplace_back([&, s, task] {
        auto op = stages_[s].factory(task);
        EmitFn emit;
        if (s + 1 < num_stages) {
          emit = make_emit(s + 1, rr[s + 1].get());
        } else {
          emit = output_emit;
        }
        RecordQueue& in = *queues[s][static_cast<size_t>(task)];
        // Deadline-bounded pops: when the pipeline wedges, upstream stops feeding without
        // closing this queue — bail out instead of waiting on it forever.
        auto process_one = [&](Record& record) {
          op->Process(record, emit);
          processed[s].fetch_add(1, std::memory_order_relaxed);
        };
        for (;;) {
          std::optional<Record> record = in.TryPop(stall_timeout);
          if (record.has_value()) {
            process_one(*record);
            continue;
          }
          if (in.closed()) {
            // No push can succeed after the close; drain whatever raced in between the
            // timed-out wait and the close, then exit (same semantics as blocking Pop).
            while ((record = in.TryPop(std::chrono::seconds(0))).has_value()) {
              process_one(*record);
            }
            break;
          }
          if (wedged.load(std::memory_order_relaxed)) {
            break;
          }
        }
        op->Flush(emit);
        if (const StateStoreStats* stats = op->state_stats()) {
          std::lock_guard<std::mutex> lock(stats_mu);
          result.state_stats.bytes_written += stats->bytes_written;
          result.state_stats.bytes_read += stats->bytes_read;
          result.state_stats.user_bytes_written += stats->user_bytes_written;
          result.state_stats.user_bytes_read += stats->user_bytes_read;
          result.state_stats.flushes += stats->flushes;
          result.state_stats.compactions += stats->compactions;
        }
      });
    }
  }

  auto start = std::chrono::steady_clock::now();
  // Feed inputs into stage 0 (hash or round-robin, like any other stage boundary).
  {
    std::atomic<uint64_t> feed_rr{0};
    auto feed = make_emit(0, &feed_rr);
    for (const Event& e : inputs) {
      feed(Record{e});
    }
  }
  // Drain stage by stage: closing a stage's queues lets its tasks flush and exit, after
  // which the next stage's queues can be closed.
  for (size_t s = 0; s < num_stages; ++s) {
    for (auto& q : queues[s]) {
      q->Close();
    }
    for (auto& t : threads[s]) {
      t.join();
    }
  }
  result.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();
  for (size_t s = 0; s < num_stages; ++s) {
    result.processed_per_stage[s] = processed[s].load();
  }
  result.wedged = wedged.load();
  result.dropped_records = dropped.load();
  return result;
}

}  // namespace capsys
