// Multi-threaded record-level pipeline executor.
//
// A linear chain of stages, each replicated into `parallelism` tasks running on their own
// threads, connected by bounded queues with hash or round-robin routing. A full queue
// blocks the producer, so backpressure propagates to the source exactly as in Flink's
// credit-based flow control. This is the record-level counterpart of the fluid simulator:
// it executes real query semantics and is used by tests and examples to validate behaviour.
#ifndef SRC_RUNTIME_PIPELINE_H_
#define SRC_RUNTIME_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/runtime/bounded_queue.h"
#include "src/runtime/operators.h"

namespace capsys {

struct StageSpec {
  std::string name;
  int parallelism = 1;
  OperatorFactory factory;
  // Partitioning of this stage's *input*: when set, records are hashed by key; otherwise
  // they are distributed round-robin.
  KeyFn key;
  size_t queue_capacity = 1024;
};

struct PipelineResult {
  std::vector<Record> outputs;                 // records emitted by the last stage
  std::vector<uint64_t> processed_per_stage;   // records consumed per stage
  double elapsed_s = 0.0;
  // Aggregated state-store statistics across all stateful tasks.
  StateStoreStats state_stats;
  // Wedge protection fired: some barrier-point push waited longer than the stall timeout
  // (a downstream task stopped consuming) and records were dropped to keep the pipeline
  // from deadlocking.
  bool wedged = false;
  uint64_t dropped_records = 0;
};

class Pipeline {
 public:
  // `stall_timeout_s` bounds every barrier-point queue wait: a push that cannot make
  // progress for this long marks the run wedged and drops the record instead of blocking
  // forever behind a stuck stage.
  explicit Pipeline(std::vector<StageSpec> stages, double stall_timeout_s = 30.0);

  // Feeds `inputs` through the pipeline and blocks until fully drained.
  PipelineResult Run(const std::vector<Event>& inputs);

 private:
  std::vector<StageSpec> stages_;
  double stall_timeout_s_;
};

}  // namespace capsys

#endif  // SRC_RUNTIME_PIPELINE_H_
