// Multi-threaded record-level pipeline executor.
//
// A linear chain of stages, each replicated into `parallelism` tasks running on their own
// threads, connected by bounded queues with hash or round-robin routing. A full queue
// blocks the producer, so backpressure propagates to the source exactly as in Flink's
// credit-based flow control. This is the record-level counterpart of the fluid simulator:
// it executes real query semantics and is used by tests and examples to validate behaviour.
#ifndef SRC_RUNTIME_PIPELINE_H_
#define SRC_RUNTIME_PIPELINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/runtime/bounded_queue.h"
#include "src/runtime/operators.h"

namespace capsys {

struct StageSpec {
  std::string name;
  int parallelism = 1;
  OperatorFactory factory;
  // Partitioning of this stage's *input*: when set, records are hashed by key; otherwise
  // they are distributed round-robin.
  KeyFn key;
  size_t queue_capacity = 1024;
};

struct PipelineResult {
  std::vector<Record> outputs;                 // records emitted by the last stage
  std::vector<uint64_t> processed_per_stage;   // records consumed per stage
  double elapsed_s = 0.0;
  // Aggregated state-store statistics across all stateful tasks.
  StateStoreStats state_stats;
};

class Pipeline {
 public:
  explicit Pipeline(std::vector<StageSpec> stages);

  // Feeds `inputs` through the pipeline and blocks until fully drained.
  PipelineResult Run(const std::vector<Event>& inputs);

 private:
  std::vector<StageSpec> stages_;
};

}  // namespace capsys

#endif  // SRC_RUNTIME_PIPELINE_H_
