#include "src/runtime/operators.h"

#include <algorithm>
#include <cstdio>
#include <map>
#include <set>

#include "src/common/logging.h"
#include "src/common/str.h"

namespace capsys {
namespace {

// Zero-padded key segments keep StateStore scans in numeric order.
std::string PadKey(const char* prefix, int64_t a, int64_t b) {
  return Sprintf("%s/%020lld/%020lld", prefix, static_cast<long long>(a),
                 static_cast<long long>(b));
}

class BidFilter : public RecordOperator {
 public:
  void Process(const Record& record, const EmitFn& emit) override {
    const Event* e = std::get_if<Event>(&record);
    if (e != nullptr && e->kind == Event::Kind::kBid) {
      emit(record);
    }
  }
};

// Sliding event-time window counting bids per auction. A bid with timestamp t belongs to
// every window instance [s, s + window) with s in steps of `slide`. Window instances close
// when observed event time passes their end; counts are kept in the state store.
class SlidingBidCounter : public RecordOperator {
 public:
  SlidingBidCounter(int64_t window_ms, int64_t slide_ms, StateStoreOptions options)
      : window_ms_(window_ms), slide_ms_(slide_ms), state_(options) {
    CAPSYS_CHECK(window_ms_ > 0 && slide_ms_ > 0 && window_ms_ % slide_ms_ == 0);
  }

  void Process(const Record& record, const EmitFn& emit) override {
    const Event* e = std::get_if<Event>(&record);
    if (e == nullptr || e->kind != Event::Kind::kBid) {
      return;
    }
    int64_t ts = e->timestamp_ms;
    const Bid& bid = e->bid();
    // First window start covering ts.
    int64_t last_start = ts - (ts % slide_ms_);
    for (int64_t s = last_start; s > ts - window_ms_; s -= slide_ms_) {
      if (s < 0) {
        break;
      }
      std::string key = PadKey("w", s, bid.auction);
      int64_t count = 1;
      if (auto existing = state_.Get(key); existing.has_value()) {
        count = std::stoll(*existing) + 1;
      }
      state_.Put(key, std::to_string(count));
      open_windows_.insert(s);
    }
    max_ts_ = std::max(max_ts_, ts);
    CloseWindowsBefore(max_ts_ - window_ms_ + 1, emit);
  }

  void Flush(const EmitFn& emit) override {
    CloseWindowsBefore(INT64_MAX, emit);
  }

  const StateStoreStats* state_stats() const override { return &state_.stats(); }

 private:
  void CloseWindowsBefore(int64_t bound, const EmitFn& emit) {
    while (!open_windows_.empty() && *open_windows_.begin() < bound) {
      int64_t s = *open_windows_.begin();
      open_windows_.erase(open_windows_.begin());
      std::vector<std::string> spent;
      state_.Scan(PadKey("w", s, 0), PadKey("w", s, INT64_MAX),
                  [&](const std::string& key, const std::string& value) {
                    // Key layout: w/<start>/<auction>.
                    AggregateResult r;
                    r.key = key.substr(key.rfind('/') + 1);
                    r.value = std::stod(value);
                    r.window_start_ms = s;
                    emit(Record{r});
                    spent.push_back(key);
                  });
      for (const auto& key : spent) {
        state_.Delete(key);
      }
    }
  }

  int64_t window_ms_;
  int64_t slide_ms_;
  StateStore state_;
  std::set<int64_t> open_windows_;
  int64_t max_ts_ = 0;
};

// Tumbling-window join: persons joined with auctions on person.id == auction.seller within
// the same window (new users who opened auctions — Nexmark Q8).
class TumblingPersonAuctionJoin : public RecordOperator {
 public:
  TumblingPersonAuctionJoin(int64_t window_ms, StateStoreOptions options)
      : window_ms_(window_ms), state_(options) {
    CAPSYS_CHECK(window_ms_ > 0);
  }

  void Process(const Record& record, const EmitFn& emit) override {
    const Event* e = std::get_if<Event>(&record);
    if (e == nullptr) {
      return;
    }
    int64_t w = e->timestamp_ms - (e->timestamp_ms % window_ms_);
    if (e->kind == Event::Kind::kPerson) {
      state_.Put(PadKey("p", w, e->person().id), e->person().name);
      open_windows_.insert(w);
    } else if (e->kind == Event::Kind::kAuction) {
      state_.Put(PadKey("a", w, e->auction().id), std::to_string(e->auction().seller));
      open_windows_.insert(w);
    } else {
      return;
    }
    max_ts_ = std::max(max_ts_, e->timestamp_ms);
    CloseWindowsBefore(max_ts_ - window_ms_ + 1, emit);
  }

  void Flush(const EmitFn& emit) override { CloseWindowsBefore(INT64_MAX, emit); }

  const StateStoreStats* state_stats() const override { return &state_.stats(); }

 private:
  void CloseWindowsBefore(int64_t bound, const EmitFn& emit) {
    while (!open_windows_.empty() && *open_windows_.begin() < bound) {
      int64_t w = *open_windows_.begin();
      open_windows_.erase(open_windows_.begin());
      // Load this window's persons, then stream auctions against them.
      std::map<int64_t, std::string> persons;
      std::vector<std::string> spent;
      state_.Scan(PadKey("p", w, 0), PadKey("p", w, INT64_MAX),
                  [&](const std::string& key, const std::string& value) {
                    persons[std::stoll(key.substr(key.rfind('/') + 1))] = value;
                    spent.push_back(key);
                  });
      state_.Scan(PadKey("a", w, 0), PadKey("a", w, INT64_MAX),
                  [&](const std::string& key, const std::string& value) {
                    int64_t seller = std::stoll(value);
                    auto it = persons.find(seller);
                    if (it != persons.end()) {
                      JoinResult r;
                      r.left_id = seller;
                      r.right_id = std::stoll(key.substr(key.rfind('/') + 1));
                      r.payload = it->second;
                      emit(Record{r});
                    }
                    spent.push_back(key);
                  });
      for (const auto& key : spent) {
        state_.Delete(key);
      }
    }
  }

  int64_t window_ms_;
  StateStore state_;
  std::set<int64_t> open_windows_;
  int64_t max_ts_ = 0;
};

// Session windows per bidder: a session is extended by every bid within `gap_ms` of the
// previous one; idle sessions are closed and emitted when observed event time passes their
// expiry. Session state (start, last timestamp, count) lives in the state store.
class SessionBidCounter : public RecordOperator {
 public:
  SessionBidCounter(int64_t gap_ms, StateStoreOptions options)
      : gap_ms_(gap_ms), state_(options) {
    CAPSYS_CHECK(gap_ms_ > 0);
  }

  void Process(const Record& record, const EmitFn& emit) override {
    const Event* e = std::get_if<Event>(&record);
    if (e == nullptr || e->kind != Event::Kind::kBid) {
      return;
    }
    int64_t ts = e->timestamp_ms;
    int64_t bidder = e->bid().bidder;
    std::string key = Sprintf("s/%020lld", static_cast<long long>(bidder));
    int64_t start = ts;
    int64_t count = 0;
    if (auto existing = state_.Get(key); existing.has_value()) {
      int64_t last = 0;
      if (!ParseSessionEntry(*existing, &start, &last, &count)) {
        CAPSYS_LOG_WARN("runtime", Sprintf("dropping corrupt session entry '%s' for %s",
                                           existing->c_str(), key.c_str()));
        start = ts;
        count = 0;
      } else if (ts - last > gap_ms_) {
        // Previous session expired; emit it and start fresh.
        EmitSession(bidder, start, count, emit);
        start = ts;
        count = 0;
      }
    }
    ++count;
    state_.Put(key, Sprintf("%lld %lld %lld", static_cast<long long>(start),
                            static_cast<long long>(ts), static_cast<long long>(count)));
    expiry_[bidder] = ts + gap_ms_;
    max_ts_ = std::max(max_ts_, ts);
    CloseIdleSessions(max_ts_, emit);
  }

  void Flush(const EmitFn& emit) override { CloseIdleSessions(INT64_MAX, emit); }

  const StateStoreStats* state_stats() const override { return &state_.stats(); }

 private:
  void EmitSession(int64_t bidder, int64_t start, int64_t count, const EmitFn& emit) {
    if (count <= 0) {
      return;
    }
    AggregateResult r;
    r.key = std::to_string(bidder);
    r.value = static_cast<double>(count);
    r.window_start_ms = start;
    emit(Record{r});
  }

  void CloseIdleSessions(int64_t now, const EmitFn& emit) {
    for (auto it = expiry_.begin(); it != expiry_.end();) {
      if (it->second < now) {
        std::string key = Sprintf("s/%020lld", static_cast<long long>(it->first));
        if (auto value = state_.Get(key); value.has_value()) {
          int64_t start = 0;
          int64_t last = 0;
          int64_t count = 0;
          if (ParseSessionEntry(*value, &start, &last, &count)) {
            EmitSession(it->first, start, count, emit);
          } else {
            CAPSYS_LOG_WARN("runtime", Sprintf("dropping corrupt session entry '%s' for %s",
                                               value->c_str(), key.c_str()));
          }
          state_.Delete(key);
        }
        it = expiry_.erase(it);
      } else {
        ++it;
      }
    }
  }

  int64_t gap_ms_;
  StateStore state_;
  std::map<int64_t, int64_t> expiry_;  // bidder -> session expiry time
  int64_t max_ts_ = 0;
};

// Maintains the running average bid price per auction in the state store and emits the
// updated average for every bid.
class AveragePricePerAuction : public RecordOperator {
 public:
  explicit AveragePricePerAuction(StateStoreOptions options) : state_(options) {}

  void Process(const Record& record, const EmitFn& emit) override {
    const Event* e = std::get_if<Event>(&record);
    if (e == nullptr || e->kind != Event::Kind::kBid) {
      return;
    }
    const Bid& bid = e->bid();
    std::string key = Sprintf("avg/%020lld", static_cast<long long>(bid.auction));
    int64_t count = 0;
    int64_t total = 0;
    if (auto existing = state_.Get(key); existing.has_value()) {
      if (!ParseAverageEntry(*existing, &count, &total)) {
        CAPSYS_LOG_WARN("runtime", Sprintf("dropping corrupt average entry '%s' for %s",
                                           existing->c_str(), key.c_str()));
        count = 0;
        total = 0;
      }
    }
    ++count;
    total += bid.price;
    state_.Put(key, Sprintf("%lld %lld", static_cast<long long>(count),
                            static_cast<long long>(total)));
    AggregateResult r;
    r.key = std::to_string(bid.auction);
    r.value = static_cast<double>(total) / static_cast<double>(count);
    r.window_start_ms = e->timestamp_ms;
    emit(Record{r});
  }

  const StateStoreStats* state_stats() const override { return &state_.stats(); }

 private:
  StateStore state_;
};

}  // namespace

std::unique_ptr<RecordOperator> MakeBidFilter() { return std::make_unique<BidFilter>(); }

std::unique_ptr<RecordOperator> MakeSlidingBidCounter(int64_t window_ms, int64_t slide_ms,
                                                      StateStoreOptions state_options) {
  return std::make_unique<SlidingBidCounter>(window_ms, slide_ms, state_options);
}

std::unique_ptr<RecordOperator> MakeTumblingPersonAuctionJoin(int64_t window_ms,
                                                              StateStoreOptions state_options) {
  return std::make_unique<TumblingPersonAuctionJoin>(window_ms, state_options);
}

std::unique_ptr<RecordOperator> MakeSessionBidCounter(int64_t gap_ms,
                                                      StateStoreOptions state_options) {
  return std::make_unique<SessionBidCounter>(gap_ms, state_options);
}

std::unique_ptr<RecordOperator> MakeAveragePricePerAuction(StateStoreOptions state_options) {
  return std::make_unique<AveragePricePerAuction>(state_options);
}

bool ParseSessionEntry(const std::string& value, int64_t* start, int64_t* last,
                       int64_t* count) {
  long long s = 0;
  long long l = 0;
  long long c = 0;
  int consumed = 0;
  if (std::sscanf(value.c_str(), "%lld %lld %lld %n", &s, &l, &c, &consumed) != 3 ||
      value.c_str()[consumed] != '\0') {
    return false;
  }
  *start = s;
  *last = l;
  *count = c;
  return true;
}

bool ParseAverageEntry(const std::string& value, int64_t* count, int64_t* total) {
  long long c = 0;
  long long t = 0;
  int consumed = 0;
  if (std::sscanf(value.c_str(), "%lld %lld %n", &c, &t, &consumed) != 2 ||
      value.c_str()[consumed] != '\0') {
    return false;
  }
  *count = c;
  *total = t;
  return true;
}

uint64_t KeyByAuction(const Record& record) {
  const Event* e = std::get_if<Event>(&record);
  if (e != nullptr && e->kind == Event::Kind::kBid) {
    return static_cast<uint64_t>(e->bid().auction);
  }
  return 0;
}

uint64_t KeyByPersonOrSeller(const Record& record) {
  const Event* e = std::get_if<Event>(&record);
  if (e == nullptr) {
    return 0;
  }
  switch (e->kind) {
    case Event::Kind::kPerson:
      return static_cast<uint64_t>(e->person().id);
    case Event::Kind::kAuction:
      return static_cast<uint64_t>(e->auction().seller);
    case Event::Kind::kBid:
      return static_cast<uint64_t>(e->bid().bidder);
  }
  return 0;
}

}  // namespace capsys
