// Bounded multi-producer/multi-consumer queue with blocking semantics — the record-level
// analogue of Flink's bounded network buffers: a full queue blocks the producer, which is
// how backpressure propagates upstream in the mini runtime.
#ifndef SRC_RUNTIME_BOUNDED_QUEUE_H_
#define SRC_RUNTIME_BOUNDED_QUEUE_H_

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>

namespace capsys {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  // Blocks until space is available. Returns false if the queue was closed.
  bool Push(T value) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock, [this] { return items_.size() < capacity_ || closed_; });
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  // Deadline-bounded Push: waits at most `timeout` for space. Returns false on timeout or
  // when the queue was closed — callers distinguish the two via closed(). Lets pipeline
  // barrier points bound their wait on a wedged consumer instead of blocking forever.
  template <class Rep, class Period>
  bool TryPush(T value, std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_full_.wait_for(lock, timeout,
                            [this] { return items_.size() < capacity_ || closed_; })) {
      return false;
    }
    if (closed_) {
      return false;
    }
    items_.push_back(std::move(value));
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item arrives or the queue is closed and drained.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [this] { return !items_.empty() || closed_; });
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  // Deadline-bounded Pop: waits at most `timeout` for an item. Returns nullopt on timeout
  // or when the queue is closed and drained — callers distinguish the two via closed().
  template <class Rep, class Period>
  std::optional<T> TryPop(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!not_empty_.wait_for(lock, timeout,
                             [this] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) {
      return std::nullopt;
    }
    T value = std::move(items_.front());
    items_.pop_front();
    not_full_.notify_one();
    return value;
  }

  // Marks the queue closed; pending Pops drain remaining items, then return nullopt.
  void Close() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  size_t capacity_;
  bool closed_ = false;
};

}  // namespace capsys

#endif  // SRC_RUNTIME_BOUNDED_QUEUE_H_
