// Record-level streaming operators over Nexmark events, backed by the log-structured state
// store. These implement actual query semantics (filtering, windowed counting, windowed
// joins) so tests and examples can validate behaviour end to end, complementing the fluid
// simulator which models only resource consumption.
#ifndef SRC_RUNTIME_OPERATORS_H_
#define SRC_RUNTIME_OPERATORS_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <variant>

#include "src/nexmark/events.h"
#include "src/statestore/state_store.h"

namespace capsys {

// Output of an aggregation/window operator.
struct AggregateResult {
  std::string key;
  double value = 0.0;
  int64_t window_start_ms = 0;
};

// Output of a join operator.
struct JoinResult {
  int64_t left_id = 0;
  int64_t right_id = 0;
  std::string payload;
};

// A record flowing between runtime operators.
using Record = std::variant<Event, AggregateResult, JoinResult>;

using EmitFn = std::function<void(Record)>;

// One parallel instance of an operator. Instances are created per task and own their state.
class RecordOperator {
 public:
  virtual ~RecordOperator() = default;
  // Processes one record, emitting zero or more records downstream.
  virtual void Process(const Record& record, const EmitFn& emit) = 0;
  // Flushes any remaining windows/state at end of stream.
  virtual void Flush(const EmitFn& /*emit*/) {}
  // State backend statistics, if the operator is stateful.
  virtual const StateStoreStats* state_stats() const { return nullptr; }
};

using OperatorFactory = std::function<std::unique_ptr<RecordOperator>(int task_index)>;

// Routing key of a record within a stage (used for hash partitioning).
using KeyFn = std::function<uint64_t(const Record&)>;

// --- Concrete operators -------------------------------------------------------------------

// Passes through only Bid events.
std::unique_ptr<RecordOperator> MakeBidFilter();

// Counts bids per auction over a sliding event-time window; emits one AggregateResult per
// (auction, pane) when a later pane's event evicts it. Nexmark Q5 semantics at task scope.
std::unique_ptr<RecordOperator> MakeSlidingBidCounter(int64_t window_ms, int64_t slide_ms,
                                                      StateStoreOptions state_options = {});

// Tumbling-window join of Person and Auction events on person == seller (Nexmark Q8): both
// sides are buffered in the state store and matched when the window closes.
std::unique_ptr<RecordOperator> MakeTumblingPersonAuctionJoin(
    int64_t window_ms, StateStoreOptions state_options = {});

// Session windows over bids per bidder (Nexmark Q11 / Q6-session): a session closes when
// the bidder has been idle for `gap_ms`; emits one AggregateResult per session with the bid
// count, keyed by bidder, window_start = session start.
std::unique_ptr<RecordOperator> MakeSessionBidCounter(int64_t gap_ms,
                                                      StateStoreOptions state_options = {});

// Running average bid price per auction (Q5-aggregate-style stateful process function):
// emits the updated average on every bid.
std::unique_ptr<RecordOperator> MakeAveragePricePerAuction(StateStoreOptions state_options = {});

// Keys for hash partitioning.
uint64_t KeyByAuction(const Record& record);
uint64_t KeyByPersonOrSeller(const Record& record);

// --- State-entry codecs ---------------------------------------------------------------------
// Stateful operators persist small tuples as text in the state store. These parsers return
// false on malformed input (truncated/corrupted entries, trailing garbage) instead of
// aborting; the operators log and drop the bad entry, treating it as absent.

// "<start> <last> <count>" as written by the session-window operator.
bool ParseSessionEntry(const std::string& value, int64_t* start, int64_t* last,
                       int64_t* count);
// "<count> <total>" as written by the running-average operator.
bool ParseAverageEntry(const std::string& value, int64_t* count, int64_t* total);

}  // namespace capsys

#endif  // SRC_RUNTIME_OPERATORS_H_
