#include "src/faults/fault_schedule.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/common/str.h"

namespace capsys {

const char* FaultTypeName(FaultType type) {
  switch (type) {
    case FaultType::kCrash:
      return "crash";
    case FaultType::kRestore:
      return "restore";
    case FaultType::kSlowdown:
      return "slowdown";
    case FaultType::kFlap:
      return "flap";
    case FaultType::kMetricDropout:
      return "metric_dropout";
    case FaultType::kMetricStaleness:
      return "metric_staleness";
    case FaultType::kMetricNoise:
      return "metric_noise";
    case FaultType::kCheckpointFailure:
      return "checkpoint_failure";
  }
  return "?";
}

std::string FaultEvent::ToString() const {
  switch (type) {
    case FaultType::kCrash:
    case FaultType::kRestore:
      return Sprintf("t=%.1f %s w%d", time_s, FaultTypeName(type), worker);
    case FaultType::kSlowdown:
      return Sprintf("t=%.1f slowdown w%d factor=%.2f dur=%.1fs", time_s, worker, factor,
                     duration_s);
    case FaultType::kFlap:
      return Sprintf("t=%.1f flap w%d period=%.1fs cycles=%d", time_s, worker, period_s,
                     cycles);
    case FaultType::kMetricDropout:
    case FaultType::kMetricStaleness:
    case FaultType::kMetricNoise:
      return Sprintf("t=%.1f %s %.2f dur=%.1fs", time_s, FaultTypeName(type), factor,
                     duration_s);
    case FaultType::kCheckpointFailure:
      return Sprintf("t=%.1f checkpoint_failure dur=%.1fs", time_s, duration_s);
  }
  return "?";
}

std::string PrimitiveFault::ToString() const {
  switch (kind) {
    case Kind::kCrash:
      return Sprintf("t=%.1f crash w%d", time_s, worker);
    case Kind::kRestore:
      return Sprintf("t=%.1f restore w%d", time_s, worker);
    case Kind::kSetDegrade:
      return Sprintf("t=%.1f degrade w%d %.2f", time_s, worker, value);
    case Kind::kSetDropout:
      return Sprintf("t=%.1f dropout %.2f", time_s, value);
    case Kind::kSetStaleness:
      return Sprintf("t=%.1f staleness %.1fs", time_s, value);
    case Kind::kSetNoise:
      return Sprintf("t=%.1f noise %.2f", time_s, value);
    case Kind::kSetCheckpointFail:
      return Sprintf("t=%.1f checkpoint_fail %s", time_s, value > 0.0 ? "on" : "off");
  }
  return "?";
}

FaultSchedule& FaultSchedule::Crash(double time_s, WorkerId worker) {
  events_.push_back(FaultEvent{.time_s = time_s, .type = FaultType::kCrash, .worker = worker});
  return *this;
}

FaultSchedule& FaultSchedule::Restore(double time_s, WorkerId worker) {
  events_.push_back(
      FaultEvent{.time_s = time_s, .type = FaultType::kRestore, .worker = worker});
  return *this;
}

FaultSchedule& FaultSchedule::Slowdown(double time_s, WorkerId worker, double factor,
                                       double duration_s) {
  CAPSYS_CHECK_MSG(factor > 0.0 && factor <= 1.0, "slowdown factor must be in (0, 1]");
  events_.push_back(FaultEvent{.time_s = time_s,
                               .type = FaultType::kSlowdown,
                               .worker = worker,
                               .factor = factor,
                               .duration_s = duration_s});
  return *this;
}

FaultSchedule& FaultSchedule::Flap(double time_s, WorkerId worker, double period_s,
                                   int cycles) {
  CAPSYS_CHECK_MSG(period_s > 0.0 && cycles > 0, "flap needs a positive period and cycles");
  events_.push_back(FaultEvent{.time_s = time_s,
                               .type = FaultType::kFlap,
                               .worker = worker,
                               .duration_s = period_s * cycles,
                               .cycles = cycles,
                               .period_s = period_s});
  return *this;
}

FaultSchedule& FaultSchedule::MetricDropout(double time_s, double probability,
                                            double duration_s) {
  events_.push_back(FaultEvent{.time_s = time_s,
                               .type = FaultType::kMetricDropout,
                               .factor = probability,
                               .duration_s = duration_s});
  return *this;
}

FaultSchedule& FaultSchedule::MetricStaleness(double time_s, double staleness_s,
                                              double duration_s) {
  events_.push_back(FaultEvent{.time_s = time_s,
                               .type = FaultType::kMetricStaleness,
                               .factor = staleness_s,
                               .duration_s = duration_s});
  return *this;
}

FaultSchedule& FaultSchedule::MetricNoise(double time_s, double stddev, double duration_s) {
  events_.push_back(FaultEvent{.time_s = time_s,
                               .type = FaultType::kMetricNoise,
                               .factor = stddev,
                               .duration_s = duration_s});
  return *this;
}

FaultSchedule& FaultSchedule::CheckpointFailureStorm(double time_s, double duration_s) {
  CAPSYS_CHECK_MSG(duration_s > 0.0, "checkpoint failure storm needs a positive duration");
  events_.push_back(FaultEvent{.time_s = time_s,
                               .type = FaultType::kCheckpointFailure,
                               .duration_s = duration_s});
  return *this;
}

std::vector<PrimitiveFault> FaultSchedule::Expand() const {
  using Kind = PrimitiveFault::Kind;
  std::vector<PrimitiveFault> out;
  for (const FaultEvent& e : events_) {
    switch (e.type) {
      case FaultType::kCrash:
        out.push_back({e.time_s, Kind::kCrash, e.worker, 0.0});
        break;
      case FaultType::kRestore:
        out.push_back({e.time_s, Kind::kRestore, e.worker, 0.0});
        break;
      case FaultType::kSlowdown:
        out.push_back({e.time_s, Kind::kSetDegrade, e.worker, e.factor});
        out.push_back({e.time_s + e.duration_s, Kind::kSetDegrade, e.worker, 1.0});
        break;
      case FaultType::kFlap:
        for (int k = 0; k < e.cycles; ++k) {
          double cycle_start = e.time_s + k * e.period_s;
          out.push_back({cycle_start, Kind::kCrash, e.worker, 0.0});
          out.push_back({cycle_start + e.period_s / 2.0, Kind::kRestore, e.worker, 0.0});
        }
        break;
      case FaultType::kMetricDropout:
        out.push_back({e.time_s, Kind::kSetDropout, kInvalidId, e.factor});
        out.push_back({e.time_s + e.duration_s, Kind::kSetDropout, kInvalidId, 0.0});
        break;
      case FaultType::kMetricStaleness:
        out.push_back({e.time_s, Kind::kSetStaleness, kInvalidId, e.factor});
        out.push_back({e.time_s + e.duration_s, Kind::kSetStaleness, kInvalidId, 0.0});
        break;
      case FaultType::kMetricNoise:
        out.push_back({e.time_s, Kind::kSetNoise, kInvalidId, e.factor});
        out.push_back({e.time_s + e.duration_s, Kind::kSetNoise, kInvalidId, 0.0});
        break;
      case FaultType::kCheckpointFailure:
        out.push_back({e.time_s, Kind::kSetCheckpointFail, kInvalidId, 1.0});
        out.push_back({e.time_s + e.duration_s, Kind::kSetCheckpointFail, kInvalidId, 0.0});
        break;
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const PrimitiveFault& a, const PrimitiveFault& b) {
                     return a.time_s < b.time_s;
                   });
  return out;
}

std::string FaultSchedule::ToString() const {
  std::vector<std::string> parts;
  parts.reserve(events_.size());
  for (const FaultEvent& e : events_) {
    parts.push_back(e.ToString());
  }
  return Join(parts, "; ");
}

FaultSchedule FaultSchedule::Random(int num_workers, const RandomOptions& options,
                                    uint64_t seed) {
  CAPSYS_CHECK(num_workers > 0);
  Rng rng(seed);
  FaultSchedule schedule;
  // Crashed-interval bookkeeping so generated crashes never take down more than
  // max_concurrent_crashes workers at once.
  struct Outage {
    double from, to;
    WorkerId worker;
  };
  std::vector<Outage> outages;
  auto concurrent_crashes = [&](double from, double to) {
    int n = 0;
    for (const Outage& o : outages) {
      if (o.from < to && from < o.to) {
        ++n;
      }
    }
    return n;
  };

  std::vector<FaultType> mix;
  if (options.allow_crashes) {
    mix.push_back(FaultType::kCrash);
  }
  if (options.allow_slowdowns) {
    mix.push_back(FaultType::kSlowdown);
  }
  if (options.allow_flaps) {
    mix.push_back(FaultType::kFlap);
  }
  if (options.allow_metric_faults) {
    mix.push_back(FaultType::kMetricDropout);
    mix.push_back(FaultType::kMetricNoise);
  }
  CAPSYS_CHECK_MSG(!mix.empty(), "random schedule needs at least one allowed fault type");

  for (int i = 0; i < options.num_faults; ++i) {
    double t = rng.Uniform(options.min_time_s, options.horizon_s);
    FaultType type = mix[static_cast<size_t>(rng.NextBounded(mix.size()))];
    WorkerId w = static_cast<WorkerId>(rng.NextBounded(static_cast<uint64_t>(num_workers)));
    switch (type) {
      case FaultType::kCrash: {
        double end = t + options.restore_after_s;
        if (concurrent_crashes(t, end) >= options.max_concurrent_crashes) {
          continue;  // would exceed the blast-radius cap; skip this draw
        }
        schedule.Crash(t, w).Restore(end, w);
        outages.push_back({t, end, w});
        break;
      }
      case FaultType::kSlowdown:
        schedule.Slowdown(t, w, options.slowdown_factor, options.slowdown_duration_s);
        break;
      case FaultType::kFlap: {
        double end = t + options.flap_period_s * options.flap_cycles;
        if (concurrent_crashes(t, end) >= options.max_concurrent_crashes) {
          continue;
        }
        schedule.Flap(t, w, options.flap_period_s, options.flap_cycles);
        outages.push_back({t, end, w});
        break;
      }
      case FaultType::kMetricDropout:
        schedule.MetricDropout(t, options.dropout_p, options.metric_duration_s);
        break;
      case FaultType::kMetricNoise:
        schedule.MetricNoise(t, 0.2, options.metric_duration_s);
        break;
      case FaultType::kMetricStaleness:
      case FaultType::kRestore:
      case FaultType::kCheckpointFailure:
        break;  // never drawn
    }
  }
  // Present events in time order regardless of draw order.
  std::stable_sort(schedule.events_.begin(), schedule.events_.end(),
                   [](const FaultEvent& a, const FaultEvent& b) { return a.time_s < b.time_s; });
  return schedule;
}

}  // namespace capsys
