// Replays a FaultSchedule against a running FluidSimulator and models the telemetry the
// controller sees while faults are active: worker heartbeats (delayed by slowdowns, lost to
// crashes and metric dropout) and corrupted metric reads. The injector is also the ground
// truth oracle — chaos drivers compare the failure detector's verdicts against IsCrashed()
// to count false positives.
#ifndef SRC_FAULTS_FAULT_INJECTOR_H_
#define SRC_FAULTS_FAULT_INJECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/faults/fault_schedule.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {

struct InjectorOptions {
  // Workers emit one heartbeat per interval; a worker degraded to factor f emits every
  // interval/f (slow nodes report late, which is what drives detector suspicion).
  double heartbeat_interval_s = 1.0;
};

class FaultInjector {
 public:
  FaultInjector(const FaultSchedule& schedule, int num_workers, uint64_t seed,
                InjectorOptions options = {});

  // Applies every primitive fault with time <= now to the truth state and (when `sim` is
  // non-null) to the simulator. `now` must be monotonically non-decreasing across calls.
  void AdvanceTo(double now, FluidSimulator* sim);

  // Re-applies the current truth state to a freshly constructed simulator — call after a
  // reconfiguration replaces the runtime mid-run.
  void ApplyCurrentState(FluidSimulator* sim) const;

  // Heartbeats due in (previous call, now] that actually reach the controller. Crashed
  // workers emit nothing; active metric dropout loses beats with probability dropout_p;
  // degraded workers emit at a slowed cadence. Deterministic for a fixed seed and call
  // pattern.
  std::vector<WorkerId> CollectHeartbeats(double now);

  // Ground truth.
  bool IsCrashed(WorkerId w) const { return crashed_[static_cast<size_t>(w)]; }
  double DegradeFactor(WorkerId w) const { return degrade_[static_cast<size_t>(w)]; }
  int NumCrashed() const;
  // True while a checkpoint-failure storm is active — the checkpoint coordinator consults
  // this to fail every checkpoint attempted in the window.
  bool CheckpointsFailing() const { return checkpoint_failing_; }
  double dropout_p() const { return corruption_.dropout_p; }
  const MetricCorruption& corruption() const { return corruption_; }
  // True when every scheduled fault has been applied.
  bool Exhausted() const { return next_ >= timeline_.size(); }

  std::string ToString() const;

 private:
  InjectorOptions options_;
  std::vector<PrimitiveFault> timeline_;
  size_t next_ = 0;
  double now_ = 0.0;

  std::vector<bool> crashed_;
  std::vector<double> degrade_;
  bool checkpoint_failing_ = false;
  MetricCorruption corruption_;
  uint64_t corruption_seed_;

  std::vector<double> next_beat_s_;
  Rng heartbeat_rng_;
};

}  // namespace capsys

#endif  // SRC_FAULTS_FAULT_INJECTOR_H_
