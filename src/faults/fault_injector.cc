#include "src/faults/fault_injector.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/obs/events.h"

namespace capsys {

namespace {

const char* FaultKindName(PrimitiveFault::Kind kind) {
  using Kind = PrimitiveFault::Kind;
  switch (kind) {
    case Kind::kCrash:
      return "crash";
    case Kind::kRestore:
      return "restore";
    case Kind::kSetDegrade:
      return "degrade";
    case Kind::kSetDropout:
      return "metric_dropout_p";
    case Kind::kSetStaleness:
      return "metric_staleness_s";
    case Kind::kSetNoise:
      return "metric_noise_frac";
    case Kind::kSetCheckpointFail:
      return "checkpoint_fail";
  }
  return "?";
}

}  // namespace

FaultInjector::FaultInjector(const FaultSchedule& schedule, int num_workers, uint64_t seed,
                             InjectorOptions options)
    : options_(options),
      timeline_(schedule.Expand()),
      crashed_(static_cast<size_t>(num_workers), false),
      degrade_(static_cast<size_t>(num_workers), 1.0),
      corruption_seed_(seed ^ 0x9e3779b97f4a7c15ULL),
      heartbeat_rng_(seed) {
  CAPSYS_CHECK(num_workers > 0);
  next_beat_s_.assign(static_cast<size_t>(num_workers), options_.heartbeat_interval_s);
}

void FaultInjector::AdvanceTo(double now, FluidSimulator* sim) {
  CAPSYS_CHECK_MSG(now + 1e-9 >= now_, "injector time must not go backwards");
  bool corruption_changed = false;
  while (next_ < timeline_.size() && timeline_[next_].time_s <= now + 1e-9) {
    const PrimitiveFault& f = timeline_[next_];
    EmitFaultInjected(f.time_s, FaultKindName(f.kind), f.worker, f.value);
    using Kind = PrimitiveFault::Kind;
    switch (f.kind) {
      case Kind::kCrash:
        crashed_[static_cast<size_t>(f.worker)] = true;
        if (sim != nullptr) {
          sim->FailWorker(f.worker);
        }
        break;
      case Kind::kRestore:
        crashed_[static_cast<size_t>(f.worker)] = false;
        if (sim != nullptr) {
          sim->RestoreWorker(f.worker);
        }
        break;
      case Kind::kSetDegrade:
        degrade_[static_cast<size_t>(f.worker)] = f.value;
        if (sim != nullptr) {
          sim->DegradeWorker(f.worker, f.value);
        }
        break;
      case Kind::kSetDropout:
        corruption_.dropout_p = f.value;
        corruption_changed = true;
        break;
      case Kind::kSetStaleness:
        corruption_.staleness_s = f.value;
        corruption_changed = true;
        break;
      case Kind::kSetNoise:
        corruption_.noise_frac = f.value;
        corruption_changed = true;
        break;
      case Kind::kSetCheckpointFail:
        checkpoint_failing_ = f.value > 0.0;
        break;
    }
    ++next_;
  }
  if (corruption_changed && sim != nullptr) {
    sim->SetMetricCorruption(corruption_, corruption_seed_);
  }
  now_ = std::max(now_, now);
}

void FaultInjector::ApplyCurrentState(FluidSimulator* sim) const {
  CAPSYS_CHECK(sim != nullptr);
  for (size_t w = 0; w < crashed_.size(); ++w) {
    if (crashed_[w]) {
      sim->FailWorker(static_cast<WorkerId>(w));
    }
    if (degrade_[w] < 1.0) {
      sim->DegradeWorker(static_cast<WorkerId>(w), degrade_[w]);
    }
  }
  sim->SetMetricCorruption(corruption_, corruption_seed_);
}

std::vector<WorkerId> FaultInjector::CollectHeartbeats(double now) {
  std::vector<WorkerId> delivered;
  for (size_t w = 0; w < next_beat_s_.size(); ++w) {
    while (next_beat_s_[w] <= now + 1e-9) {
      // A degraded worker heartbeats at a slowed cadence; a crashed worker skips the beat
      // entirely but its cadence keeps advancing so beats resume promptly after a restore.
      double interval = options_.heartbeat_interval_s / std::max(degrade_[w], 0.05);
      bool emitted = !crashed_[w];
      bool lost = corruption_.dropout_p > 0.0 && heartbeat_rng_.Bernoulli(corruption_.dropout_p);
      if (emitted && !lost) {
        delivered.push_back(static_cast<WorkerId>(w));
      }
      next_beat_s_[w] += crashed_[w] ? options_.heartbeat_interval_s : interval;
    }
  }
  return delivered;
}

int FaultInjector::NumCrashed() const {
  int n = 0;
  for (bool c : crashed_) {
    n += c ? 1 : 0;
  }
  return n;
}

std::string FaultInjector::ToString() const {
  std::vector<std::string> down;
  std::vector<std::string> slow;
  for (size_t w = 0; w < crashed_.size(); ++w) {
    if (crashed_[w]) {
      down.push_back(Sprintf("w%zu", w));
    }
    if (degrade_[w] < 1.0) {
      slow.push_back(Sprintf("w%zu@%.2f", w, degrade_[w]));
    }
  }
  return Sprintf("t=%.1f down=[%s] slow=[%s] dropout=%.2f stale=%.1f noise=%.2f", now_,
                 Join(down, ",").c_str(), Join(slow, ",").c_str(), corruption_.dropout_p,
                 corruption_.staleness_s, corruption_.noise_frac);
}

}  // namespace capsys
