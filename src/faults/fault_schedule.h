// Deterministic, seedable fault schedules (robustness extension; StreamShield-style chaos
// testing, see PAPERS.md). A FaultSchedule is a list of timed FaultEvents — worker crashes
// and restores, transient slowdowns (stragglers), flapping workers, and metric corruption
// episodes — that the FaultInjector replays tick-by-tick against a FluidSimulator. The same
// schedule + seed always yields the same fault timeline, so chaos experiments are exactly
// reproducible across placement policies.
#ifndef SRC_FAULTS_FAULT_SCHEDULE_H_
#define SRC_FAULTS_FAULT_SCHEDULE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/types.h"

namespace capsys {

enum class FaultType : int {
  kCrash = 0,           // worker dies at time_s (stays down until restored)
  kRestore,             // worker comes back
  kSlowdown,            // capacity degraded to `factor` for `duration_s`, then restored
  kFlap,                // `cycles` crash/restore cycles of `period_s` each (half down, half up)
  kMetricDropout,       // controller-facing metric reads and heartbeats lost w.p. `factor`
  kMetricStaleness,     // controller-facing metric reads lag `factor` seconds behind
  kMetricNoise,         // controller-facing metric reads get multiplicative noise (stddev `factor`)
  kCheckpointFailure,   // every checkpoint attempted during the episode fails (storm)
};

const char* FaultTypeName(FaultType type);

// One scheduled fault. `worker` is kInvalidId for cluster-wide faults (the metric family).
// `factor` is overloaded per type: slowdown capacity fraction in (0, 1], dropout
// probability, staleness seconds, or noise stddev. Metric faults last `duration_s` and then
// switch off.
struct FaultEvent {
  double time_s = 0.0;
  FaultType type = FaultType::kCrash;
  WorkerId worker = kInvalidId;
  double factor = 1.0;
  double duration_s = 0.0;
  int cycles = 0;  // kFlap only
  double period_s = 0.0;  // kFlap only

  std::string ToString() const;
};

// A primitive state transition the injector applies. Compound events (slowdowns, flaps,
// timed metric episodes) expand into pairs/series of these.
struct PrimitiveFault {
  enum class Kind : int {
    kCrash = 0,
    kRestore,
    kSetDegrade,    // value = capacity factor (1.0 restores full speed)
    kSetDropout,    // value = loss probability (0 switches off)
    kSetStaleness,  // value = lag seconds (0 switches off)
    kSetNoise,      // value = stddev (0 switches off)
    kSetCheckpointFail,  // value = 1 storms on / 0 off (checkpoints fail while on)
  };
  double time_s = 0.0;
  Kind kind = Kind::kCrash;
  WorkerId worker = kInvalidId;
  double value = 0.0;

  std::string ToString() const;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  // Builder-style composition; all return *this for chaining.
  FaultSchedule& Crash(double time_s, WorkerId worker);
  FaultSchedule& Restore(double time_s, WorkerId worker);
  // Worker runs at `factor` (0 < factor <= 1) of normal capacity for `duration_s`.
  FaultSchedule& Slowdown(double time_s, WorkerId worker, double factor, double duration_s);
  // `cycles` crash/restore cycles: down for period_s/2, up for period_s/2, repeated.
  FaultSchedule& Flap(double time_s, WorkerId worker, double period_s, int cycles);
  FaultSchedule& MetricDropout(double time_s, double probability, double duration_s);
  FaultSchedule& MetricStaleness(double time_s, double staleness_s, double duration_s);
  FaultSchedule& MetricNoise(double time_s, double stddev, double duration_s);
  // Checkpoint-failure storm: the durable checkpoint storage is unavailable for
  // `duration_s` — every checkpoint attempted in the window fails, so recovery falls back
  // to ever-older completed checkpoints (and ever-longer source replay).
  FaultSchedule& CheckpointFailureStorm(double time_s, double duration_s);

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  // Flattens compound events into primitive transitions, stably sorted by time. The
  // expansion is fully deterministic — no randomness is involved.
  std::vector<PrimitiveFault> Expand() const;

  std::string ToString() const;

  // Options for generating a random (but seed-deterministic) schedule.
  struct RandomOptions {
    int num_faults = 8;
    double min_time_s = 30.0;    // no faults before the query warms up
    double horizon_s = 300.0;    // faults drawn uniformly in [min_time_s, horizon_s]
    double restore_after_s = 60.0;  // crashes auto-restore after this long
    double slowdown_factor = 0.3;
    double slowdown_duration_s = 40.0;
    double flap_period_s = 10.0;
    int flap_cycles = 3;
    double dropout_p = 0.3;
    double metric_duration_s = 30.0;
    bool allow_crashes = true;
    bool allow_slowdowns = true;
    bool allow_flaps = true;
    bool allow_metric_faults = true;
    // At most this many workers may be simultaneously crashed by generated crash events
    // (flaps not counted); guards against schedules that kill the whole cluster.
    int max_concurrent_crashes = 2;
  };

  // Generates a schedule of `options.num_faults` events over `num_workers` workers.
  // Identical (num_workers, options, seed) triples yield identical schedules.
  static FaultSchedule Random(int num_workers, const RandomOptions& options, uint64_t seed);

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace capsys

#endif  // SRC_FAULTS_FAULT_SCHEDULE_H_
