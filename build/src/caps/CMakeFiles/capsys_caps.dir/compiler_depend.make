# Empty compiler generated dependencies file for capsys_caps.
# This may be replaced when dependencies are built.
