file(REMOVE_RECURSE
  "libcapsys_caps.a"
)
