
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/caps/auto_tuner.cc" "src/caps/CMakeFiles/capsys_caps.dir/auto_tuner.cc.o" "gcc" "src/caps/CMakeFiles/capsys_caps.dir/auto_tuner.cc.o.d"
  "/root/repo/src/caps/cost_model.cc" "src/caps/CMakeFiles/capsys_caps.dir/cost_model.cc.o" "gcc" "src/caps/CMakeFiles/capsys_caps.dir/cost_model.cc.o.d"
  "/root/repo/src/caps/greedy.cc" "src/caps/CMakeFiles/capsys_caps.dir/greedy.cc.o" "gcc" "src/caps/CMakeFiles/capsys_caps.dir/greedy.cc.o.d"
  "/root/repo/src/caps/partitioned.cc" "src/caps/CMakeFiles/capsys_caps.dir/partitioned.cc.o" "gcc" "src/caps/CMakeFiles/capsys_caps.dir/partitioned.cc.o.d"
  "/root/repo/src/caps/placement_groups.cc" "src/caps/CMakeFiles/capsys_caps.dir/placement_groups.cc.o" "gcc" "src/caps/CMakeFiles/capsys_caps.dir/placement_groups.cc.o.d"
  "/root/repo/src/caps/search.cc" "src/caps/CMakeFiles/capsys_caps.dir/search.cc.o" "gcc" "src/caps/CMakeFiles/capsys_caps.dir/search.cc.o.d"
  "/root/repo/src/caps/threshold_cache.cc" "src/caps/CMakeFiles/capsys_caps.dir/threshold_cache.cc.o" "gcc" "src/caps/CMakeFiles/capsys_caps.dir/threshold_cache.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/capsys_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/capsys_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/capsys_dataflow.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
