file(REMOVE_RECURSE
  "CMakeFiles/capsys_caps.dir/auto_tuner.cc.o"
  "CMakeFiles/capsys_caps.dir/auto_tuner.cc.o.d"
  "CMakeFiles/capsys_caps.dir/cost_model.cc.o"
  "CMakeFiles/capsys_caps.dir/cost_model.cc.o.d"
  "CMakeFiles/capsys_caps.dir/greedy.cc.o"
  "CMakeFiles/capsys_caps.dir/greedy.cc.o.d"
  "CMakeFiles/capsys_caps.dir/partitioned.cc.o"
  "CMakeFiles/capsys_caps.dir/partitioned.cc.o.d"
  "CMakeFiles/capsys_caps.dir/placement_groups.cc.o"
  "CMakeFiles/capsys_caps.dir/placement_groups.cc.o.d"
  "CMakeFiles/capsys_caps.dir/search.cc.o"
  "CMakeFiles/capsys_caps.dir/search.cc.o.d"
  "CMakeFiles/capsys_caps.dir/threshold_cache.cc.o"
  "CMakeFiles/capsys_caps.dir/threshold_cache.cc.o.d"
  "libcapsys_caps.a"
  "libcapsys_caps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsys_caps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
