# Empty dependencies file for capsys_controller.
# This may be replaced when dependencies are built.
