file(REMOVE_RECURSE
  "libcapsys_controller.a"
)
