file(REMOVE_RECURSE
  "CMakeFiles/capsys_controller.dir/deployment.cc.o"
  "CMakeFiles/capsys_controller.dir/deployment.cc.o.d"
  "CMakeFiles/capsys_controller.dir/ds2.cc.o"
  "CMakeFiles/capsys_controller.dir/ds2.cc.o.d"
  "CMakeFiles/capsys_controller.dir/failure_experiments.cc.o"
  "CMakeFiles/capsys_controller.dir/failure_experiments.cc.o.d"
  "CMakeFiles/capsys_controller.dir/profiler.cc.o"
  "CMakeFiles/capsys_controller.dir/profiler.cc.o.d"
  "CMakeFiles/capsys_controller.dir/scaling_experiments.cc.o"
  "CMakeFiles/capsys_controller.dir/scaling_experiments.cc.o.d"
  "libcapsys_controller.a"
  "libcapsys_controller.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsys_controller.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
