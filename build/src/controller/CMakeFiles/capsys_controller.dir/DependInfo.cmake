
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/controller/deployment.cc" "src/controller/CMakeFiles/capsys_controller.dir/deployment.cc.o" "gcc" "src/controller/CMakeFiles/capsys_controller.dir/deployment.cc.o.d"
  "/root/repo/src/controller/ds2.cc" "src/controller/CMakeFiles/capsys_controller.dir/ds2.cc.o" "gcc" "src/controller/CMakeFiles/capsys_controller.dir/ds2.cc.o.d"
  "/root/repo/src/controller/failure_experiments.cc" "src/controller/CMakeFiles/capsys_controller.dir/failure_experiments.cc.o" "gcc" "src/controller/CMakeFiles/capsys_controller.dir/failure_experiments.cc.o.d"
  "/root/repo/src/controller/profiler.cc" "src/controller/CMakeFiles/capsys_controller.dir/profiler.cc.o" "gcc" "src/controller/CMakeFiles/capsys_controller.dir/profiler.cc.o.d"
  "/root/repo/src/controller/scaling_experiments.cc" "src/controller/CMakeFiles/capsys_controller.dir/scaling_experiments.cc.o" "gcc" "src/controller/CMakeFiles/capsys_controller.dir/scaling_experiments.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/capsys_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/capsys_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/capsys_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/capsys_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/capsys_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/caps/CMakeFiles/capsys_caps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/capsys_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/nexmark/CMakeFiles/capsys_nexmark.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
