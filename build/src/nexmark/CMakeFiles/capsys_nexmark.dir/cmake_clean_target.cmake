file(REMOVE_RECURSE
  "libcapsys_nexmark.a"
)
