file(REMOVE_RECURSE
  "CMakeFiles/capsys_nexmark.dir/generator.cc.o"
  "CMakeFiles/capsys_nexmark.dir/generator.cc.o.d"
  "CMakeFiles/capsys_nexmark.dir/queries.cc.o"
  "CMakeFiles/capsys_nexmark.dir/queries.cc.o.d"
  "libcapsys_nexmark.a"
  "libcapsys_nexmark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsys_nexmark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
