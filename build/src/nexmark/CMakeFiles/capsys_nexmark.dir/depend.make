# Empty dependencies file for capsys_nexmark.
# This may be replaced when dependencies are built.
