file(REMOVE_RECURSE
  "CMakeFiles/capsys_simulator.dir/contention.cc.o"
  "CMakeFiles/capsys_simulator.dir/contention.cc.o.d"
  "CMakeFiles/capsys_simulator.dir/fluid_simulator.cc.o"
  "CMakeFiles/capsys_simulator.dir/fluid_simulator.cc.o.d"
  "libcapsys_simulator.a"
  "libcapsys_simulator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsys_simulator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
