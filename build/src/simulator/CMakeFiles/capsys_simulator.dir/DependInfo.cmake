
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simulator/contention.cc" "src/simulator/CMakeFiles/capsys_simulator.dir/contention.cc.o" "gcc" "src/simulator/CMakeFiles/capsys_simulator.dir/contention.cc.o.d"
  "/root/repo/src/simulator/fluid_simulator.cc" "src/simulator/CMakeFiles/capsys_simulator.dir/fluid_simulator.cc.o" "gcc" "src/simulator/CMakeFiles/capsys_simulator.dir/fluid_simulator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/capsys_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/capsys_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/capsys_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/capsys_metrics.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
