# Empty compiler generated dependencies file for capsys_simulator.
# This may be replaced when dependencies are built.
