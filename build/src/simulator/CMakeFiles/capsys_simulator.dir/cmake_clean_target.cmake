file(REMOVE_RECURSE
  "libcapsys_simulator.a"
)
