# Empty dependencies file for capsys_statestore.
# This may be replaced when dependencies are built.
