file(REMOVE_RECURSE
  "CMakeFiles/capsys_statestore.dir/state_store.cc.o"
  "CMakeFiles/capsys_statestore.dir/state_store.cc.o.d"
  "libcapsys_statestore.a"
  "libcapsys_statestore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsys_statestore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
