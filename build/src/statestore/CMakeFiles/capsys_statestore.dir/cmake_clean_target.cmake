file(REMOVE_RECURSE
  "libcapsys_statestore.a"
)
