# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("cluster")
subdirs("dataflow")
subdirs("metrics")
subdirs("statestore")
subdirs("simulator")
subdirs("runtime")
subdirs("nexmark")
subdirs("caps")
subdirs("baselines")
subdirs("odrp")
subdirs("controller")
