# Empty compiler generated dependencies file for capsys_dataflow.
# This may be replaced when dependencies are built.
