
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dataflow/chaining.cc" "src/dataflow/CMakeFiles/capsys_dataflow.dir/chaining.cc.o" "gcc" "src/dataflow/CMakeFiles/capsys_dataflow.dir/chaining.cc.o.d"
  "/root/repo/src/dataflow/logical_graph.cc" "src/dataflow/CMakeFiles/capsys_dataflow.dir/logical_graph.cc.o" "gcc" "src/dataflow/CMakeFiles/capsys_dataflow.dir/logical_graph.cc.o.d"
  "/root/repo/src/dataflow/physical_graph.cc" "src/dataflow/CMakeFiles/capsys_dataflow.dir/physical_graph.cc.o" "gcc" "src/dataflow/CMakeFiles/capsys_dataflow.dir/physical_graph.cc.o.d"
  "/root/repo/src/dataflow/placement.cc" "src/dataflow/CMakeFiles/capsys_dataflow.dir/placement.cc.o" "gcc" "src/dataflow/CMakeFiles/capsys_dataflow.dir/placement.cc.o.d"
  "/root/repo/src/dataflow/rates.cc" "src/dataflow/CMakeFiles/capsys_dataflow.dir/rates.cc.o" "gcc" "src/dataflow/CMakeFiles/capsys_dataflow.dir/rates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/capsys_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/capsys_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
