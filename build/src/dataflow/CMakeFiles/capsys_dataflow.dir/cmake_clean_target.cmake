file(REMOVE_RECURSE
  "libcapsys_dataflow.a"
)
