file(REMOVE_RECURSE
  "CMakeFiles/capsys_dataflow.dir/chaining.cc.o"
  "CMakeFiles/capsys_dataflow.dir/chaining.cc.o.d"
  "CMakeFiles/capsys_dataflow.dir/logical_graph.cc.o"
  "CMakeFiles/capsys_dataflow.dir/logical_graph.cc.o.d"
  "CMakeFiles/capsys_dataflow.dir/physical_graph.cc.o"
  "CMakeFiles/capsys_dataflow.dir/physical_graph.cc.o.d"
  "CMakeFiles/capsys_dataflow.dir/placement.cc.o"
  "CMakeFiles/capsys_dataflow.dir/placement.cc.o.d"
  "CMakeFiles/capsys_dataflow.dir/rates.cc.o"
  "CMakeFiles/capsys_dataflow.dir/rates.cc.o.d"
  "libcapsys_dataflow.a"
  "libcapsys_dataflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsys_dataflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
