file(REMOVE_RECURSE
  "CMakeFiles/capsys_odrp.dir/odrp.cc.o"
  "CMakeFiles/capsys_odrp.dir/odrp.cc.o.d"
  "libcapsys_odrp.a"
  "libcapsys_odrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsys_odrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
