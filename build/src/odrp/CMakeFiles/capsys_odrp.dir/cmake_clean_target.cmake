file(REMOVE_RECURSE
  "libcapsys_odrp.a"
)
