# Empty dependencies file for capsys_odrp.
# This may be replaced when dependencies are built.
