file(REMOVE_RECURSE
  "CMakeFiles/capsys_metrics.dir/metrics.cc.o"
  "CMakeFiles/capsys_metrics.dir/metrics.cc.o.d"
  "libcapsys_metrics.a"
  "libcapsys_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsys_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
