file(REMOVE_RECURSE
  "libcapsys_metrics.a"
)
