# Empty dependencies file for capsys_metrics.
# This may be replaced when dependencies are built.
