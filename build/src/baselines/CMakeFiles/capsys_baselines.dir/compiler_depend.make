# Empty compiler generated dependencies file for capsys_baselines.
# This may be replaced when dependencies are built.
