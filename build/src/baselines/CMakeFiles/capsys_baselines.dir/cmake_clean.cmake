file(REMOVE_RECURSE
  "CMakeFiles/capsys_baselines.dir/flink_strategies.cc.o"
  "CMakeFiles/capsys_baselines.dir/flink_strategies.cc.o.d"
  "libcapsys_baselines.a"
  "libcapsys_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsys_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
