file(REMOVE_RECURSE
  "libcapsys_baselines.a"
)
