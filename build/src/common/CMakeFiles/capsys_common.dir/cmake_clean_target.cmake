file(REMOVE_RECURSE
  "libcapsys_common.a"
)
