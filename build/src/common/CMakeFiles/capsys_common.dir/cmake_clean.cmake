file(REMOVE_RECURSE
  "CMakeFiles/capsys_common.dir/logging.cc.o"
  "CMakeFiles/capsys_common.dir/logging.cc.o.d"
  "CMakeFiles/capsys_common.dir/rng.cc.o"
  "CMakeFiles/capsys_common.dir/rng.cc.o.d"
  "CMakeFiles/capsys_common.dir/stats.cc.o"
  "CMakeFiles/capsys_common.dir/stats.cc.o.d"
  "CMakeFiles/capsys_common.dir/str.cc.o"
  "CMakeFiles/capsys_common.dir/str.cc.o.d"
  "CMakeFiles/capsys_common.dir/thread_pool.cc.o"
  "CMakeFiles/capsys_common.dir/thread_pool.cc.o.d"
  "libcapsys_common.a"
  "libcapsys_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsys_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
