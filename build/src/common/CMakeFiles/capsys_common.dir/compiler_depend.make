# Empty compiler generated dependencies file for capsys_common.
# This may be replaced when dependencies are built.
