
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/operators.cc" "src/runtime/CMakeFiles/capsys_runtime.dir/operators.cc.o" "gcc" "src/runtime/CMakeFiles/capsys_runtime.dir/operators.cc.o.d"
  "/root/repo/src/runtime/pipeline.cc" "src/runtime/CMakeFiles/capsys_runtime.dir/pipeline.cc.o" "gcc" "src/runtime/CMakeFiles/capsys_runtime.dir/pipeline.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/capsys_common.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/capsys_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/statestore/CMakeFiles/capsys_statestore.dir/DependInfo.cmake"
  "/root/repo/build/src/nexmark/CMakeFiles/capsys_nexmark.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/capsys_cluster.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
