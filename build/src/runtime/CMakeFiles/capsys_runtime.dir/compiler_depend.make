# Empty compiler generated dependencies file for capsys_runtime.
# This may be replaced when dependencies are built.
