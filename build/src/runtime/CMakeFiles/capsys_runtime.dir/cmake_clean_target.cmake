file(REMOVE_RECURSE
  "libcapsys_runtime.a"
)
