file(REMOVE_RECURSE
  "CMakeFiles/capsys_runtime.dir/operators.cc.o"
  "CMakeFiles/capsys_runtime.dir/operators.cc.o.d"
  "CMakeFiles/capsys_runtime.dir/pipeline.cc.o"
  "CMakeFiles/capsys_runtime.dir/pipeline.cc.o.d"
  "libcapsys_runtime.a"
  "libcapsys_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsys_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
