file(REMOVE_RECURSE
  "libcapsys_cluster.a"
)
