file(REMOVE_RECURSE
  "CMakeFiles/capsys_cluster.dir/cluster.cc.o"
  "CMakeFiles/capsys_cluster.dir/cluster.cc.o.d"
  "libcapsys_cluster.a"
  "libcapsys_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capsys_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
