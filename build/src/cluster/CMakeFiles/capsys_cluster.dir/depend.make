# Empty dependencies file for capsys_cluster.
# This may be replaced when dependencies are built.
