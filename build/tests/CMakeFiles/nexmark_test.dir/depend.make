# Empty dependencies file for nexmark_test.
# This may be replaced when dependencies are built.
