file(REMOVE_RECURSE
  "CMakeFiles/nexmark_test.dir/nexmark_test.cc.o"
  "CMakeFiles/nexmark_test.dir/nexmark_test.cc.o.d"
  "nexmark_test"
  "nexmark_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexmark_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
