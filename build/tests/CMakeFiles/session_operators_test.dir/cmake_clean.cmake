file(REMOVE_RECURSE
  "CMakeFiles/session_operators_test.dir/session_operators_test.cc.o"
  "CMakeFiles/session_operators_test.dir/session_operators_test.cc.o.d"
  "session_operators_test"
  "session_operators_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/session_operators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
