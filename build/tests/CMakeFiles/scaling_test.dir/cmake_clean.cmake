file(REMOVE_RECURSE
  "CMakeFiles/scaling_test.dir/scaling_test.cc.o"
  "CMakeFiles/scaling_test.dir/scaling_test.cc.o.d"
  "scaling_test"
  "scaling_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scaling_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
