# Empty compiler generated dependencies file for scaling_test.
# This may be replaced when dependencies are built.
