# Empty compiler generated dependencies file for simulator_property_test.
# This may be replaced when dependencies are built.
