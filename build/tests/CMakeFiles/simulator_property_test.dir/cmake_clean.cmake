file(REMOVE_RECURSE
  "CMakeFiles/simulator_property_test.dir/simulator_property_test.cc.o"
  "CMakeFiles/simulator_property_test.dir/simulator_property_test.cc.o.d"
  "simulator_property_test"
  "simulator_property_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simulator_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
