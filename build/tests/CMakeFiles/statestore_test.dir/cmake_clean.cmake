file(REMOVE_RECURSE
  "CMakeFiles/statestore_test.dir/statestore_test.cc.o"
  "CMakeFiles/statestore_test.dir/statestore_test.cc.o.d"
  "statestore_test"
  "statestore_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/statestore_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
