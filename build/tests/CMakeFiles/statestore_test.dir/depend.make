# Empty dependencies file for statestore_test.
# This may be replaced when dependencies are built.
