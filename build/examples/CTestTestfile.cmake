# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;27;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_nexmark_runtime "/root/repo/build/examples/nexmark_runtime" "20000")
set_tests_properties(example_nexmark_runtime PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;28;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_placement_tool "/root/repo/build/examples/placement_tool" "q3" "4" "4" "capsys" "1.0")
set_tests_properties(example_placement_tool PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;29;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multitenant "/root/repo/build/examples/multitenant_cluster")
set_tests_properties(example_multitenant PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;30;add_test;/root/repo/examples/CMakeLists.txt;0;")
