# Empty dependencies file for multitenant_cluster.
# This may be replaced when dependencies are built.
