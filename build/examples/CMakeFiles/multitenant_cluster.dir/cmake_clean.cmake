file(REMOVE_RECURSE
  "CMakeFiles/multitenant_cluster.dir/multitenant_cluster.cpp.o"
  "CMakeFiles/multitenant_cluster.dir/multitenant_cluster.cpp.o.d"
  "multitenant_cluster"
  "multitenant_cluster.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multitenant_cluster.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
