# Empty compiler generated dependencies file for placement_tool.
# This may be replaced when dependencies are built.
