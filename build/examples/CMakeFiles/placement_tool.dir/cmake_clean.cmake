file(REMOVE_RECURSE
  "CMakeFiles/placement_tool.dir/placement_tool.cpp.o"
  "CMakeFiles/placement_tool.dir/placement_tool.cpp.o.d"
  "placement_tool"
  "placement_tool.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/placement_tool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
