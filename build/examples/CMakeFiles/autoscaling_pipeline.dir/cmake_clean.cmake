file(REMOVE_RECURSE
  "CMakeFiles/autoscaling_pipeline.dir/autoscaling_pipeline.cpp.o"
  "CMakeFiles/autoscaling_pipeline.dir/autoscaling_pipeline.cpp.o.d"
  "autoscaling_pipeline"
  "autoscaling_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autoscaling_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
