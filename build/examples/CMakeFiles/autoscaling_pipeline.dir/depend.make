# Empty dependencies file for autoscaling_pipeline.
# This may be replaced when dependencies are built.
