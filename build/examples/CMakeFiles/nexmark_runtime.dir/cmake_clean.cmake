file(REMOVE_RECURSE
  "CMakeFiles/nexmark_runtime.dir/nexmark_runtime.cpp.o"
  "CMakeFiles/nexmark_runtime.dir/nexmark_runtime.cpp.o.d"
  "nexmark_runtime"
  "nexmark_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nexmark_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
