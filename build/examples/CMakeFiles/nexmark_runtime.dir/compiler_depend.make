# Empty compiler generated dependencies file for nexmark_runtime.
# This may be replaced when dependencies are built.
