# Empty compiler generated dependencies file for threshold_precompute.
# This may be replaced when dependencies are built.
