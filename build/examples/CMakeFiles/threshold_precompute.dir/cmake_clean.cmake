file(REMOVE_RECURSE
  "CMakeFiles/threshold_precompute.dir/threshold_precompute.cpp.o"
  "CMakeFiles/threshold_precompute.dir/threshold_precompute.cpp.o.d"
  "threshold_precompute"
  "threshold_precompute.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_precompute.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
