file(REMOVE_RECURSE
  "CMakeFiles/bench_fig9_scaling_convergence.dir/bench_fig9_scaling_convergence.cc.o"
  "CMakeFiles/bench_fig9_scaling_convergence.dir/bench_fig9_scaling_convergence.cc.o.d"
  "bench_fig9_scaling_convergence"
  "bench_fig9_scaling_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_scaling_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
