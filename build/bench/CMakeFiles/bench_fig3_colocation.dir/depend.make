# Empty dependencies file for bench_fig3_colocation.
# This may be replaced when dependencies are built.
