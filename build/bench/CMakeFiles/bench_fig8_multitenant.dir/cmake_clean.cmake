file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_multitenant.dir/bench_fig8_multitenant.cc.o"
  "CMakeFiles/bench_fig8_multitenant.dir/bench_fig8_multitenant.cc.o.d"
  "bench_fig8_multitenant"
  "bench_fig8_multitenant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_multitenant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
