# Empty dependencies file for bench_fig8_multitenant.
# This may be replaced when dependencies are built.
