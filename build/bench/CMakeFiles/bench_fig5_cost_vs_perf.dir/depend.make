# Empty dependencies file for bench_fig5_cost_vs_perf.
# This may be replaced when dependencies are built.
