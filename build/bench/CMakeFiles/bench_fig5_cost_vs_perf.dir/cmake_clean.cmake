file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_cost_vs_perf.dir/bench_fig5_cost_vs_perf.cc.o"
  "CMakeFiles/bench_fig5_cost_vs_perf.dir/bench_fig5_cost_vs_perf.cc.o.d"
  "bench_fig5_cost_vs_perf"
  "bench_fig5_cost_vs_perf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_cost_vs_perf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
