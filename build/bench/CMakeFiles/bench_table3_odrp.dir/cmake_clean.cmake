file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_odrp.dir/bench_table3_odrp.cc.o"
  "CMakeFiles/bench_table3_odrp.dir/bench_table3_odrp.cc.o.d"
  "bench_table3_odrp"
  "bench_table3_odrp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_odrp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
