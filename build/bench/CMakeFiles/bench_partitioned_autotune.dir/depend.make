# Empty dependencies file for bench_partitioned_autotune.
# This may be replaced when dependencies are built.
