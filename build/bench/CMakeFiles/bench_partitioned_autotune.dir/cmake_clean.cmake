file(REMOVE_RECURSE
  "CMakeFiles/bench_partitioned_autotune.dir/bench_partitioned_autotune.cc.o"
  "CMakeFiles/bench_partitioned_autotune.dir/bench_partitioned_autotune.cc.o.d"
  "bench_partitioned_autotune"
  "bench_partitioned_autotune.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partitioned_autotune.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
