
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_partitioned_autotune.cc" "bench/CMakeFiles/bench_partitioned_autotune.dir/bench_partitioned_autotune.cc.o" "gcc" "bench/CMakeFiles/bench_partitioned_autotune.dir/bench_partitioned_autotune.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/capsys_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/capsys_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/dataflow/CMakeFiles/capsys_dataflow.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/capsys_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/statestore/CMakeFiles/capsys_statestore.dir/DependInfo.cmake"
  "/root/repo/build/src/simulator/CMakeFiles/capsys_simulator.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/capsys_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/nexmark/CMakeFiles/capsys_nexmark.dir/DependInfo.cmake"
  "/root/repo/build/src/caps/CMakeFiles/capsys_caps.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/capsys_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/odrp/CMakeFiles/capsys_odrp.dir/DependInfo.cmake"
  "/root/repo/build/src/controller/CMakeFiles/capsys_controller.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
