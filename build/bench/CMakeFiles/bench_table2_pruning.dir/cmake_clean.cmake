file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_pruning.dir/bench_table2_pruning.cc.o"
  "CMakeFiles/bench_table2_pruning.dir/bench_table2_pruning.cc.o.d"
  "bench_table2_pruning"
  "bench_table2_pruning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_pruning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
