# Empty dependencies file for bench_table2_pruning.
# This may be replaced when dependencies are built.
