file(REMOVE_RECURSE
  "CMakeFiles/bench_hetero_capacity.dir/bench_hetero_capacity.cc.o"
  "CMakeFiles/bench_hetero_capacity.dir/bench_hetero_capacity.cc.o.d"
  "bench_hetero_capacity"
  "bench_hetero_capacity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_hetero_capacity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
