# Empty compiler generated dependencies file for bench_hetero_capacity.
# This may be replaced when dependencies are built.
