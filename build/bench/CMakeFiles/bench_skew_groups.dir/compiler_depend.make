# Empty compiler generated dependencies file for bench_skew_groups.
# This may be replaced when dependencies are built.
