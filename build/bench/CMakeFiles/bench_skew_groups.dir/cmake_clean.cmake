file(REMOVE_RECURSE
  "CMakeFiles/bench_skew_groups.dir/bench_skew_groups.cc.o"
  "CMakeFiles/bench_skew_groups.dir/bench_skew_groups.cc.o.d"
  "bench_skew_groups"
  "bench_skew_groups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_skew_groups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
