file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_exhaustive.dir/bench_fig2_exhaustive.cc.o"
  "CMakeFiles/bench_fig2_exhaustive.dir/bench_fig2_exhaustive.cc.o.d"
  "bench_fig2_exhaustive"
  "bench_fig2_exhaustive.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_exhaustive.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
