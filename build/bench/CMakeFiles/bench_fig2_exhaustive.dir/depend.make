# Empty dependencies file for bench_fig2_exhaustive.
# This may be replaced when dependencies are built.
