#!/usr/bin/env python3
"""Compare a freshly measured BENCH_perf.json against the committed baseline.

Usage: compare_bench.py BASELINE.json CURRENT.json [--tolerance FRAC]

Keys encode direction: *_ns / *_ms are latencies (regression = current slower than
baseline by more than the tolerance), *_per_s are throughputs (regression = current
slower, i.e. lower). A key present only in CURRENT is reported but never fatal, so adding
a scenario does not break the perf-smoke job on the first run. A key present only in
BASELINE is fatal: a silently skipped measurement would otherwise read as "no regression"
while covering nothing (e.g. a bench binary dropped from the Measure step).

Exits 1 if any shared scenario regressed beyond the tolerance (default 25%) or any
baseline scenario was not measured.
"""

import argparse
import json
import sys


def lower_is_better(key: str) -> bool:
    if key.endswith("_per_s"):  # throughput, despite the _s suffix
        return False
    return key.endswith("_ns") or key.endswith("_ms") or key.endswith("_s")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("current")
    parser.add_argument("--tolerance", type=float, default=0.25,
                        help="allowed fractional regression (default 0.25)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    with open(args.current) as f:
        current = json.load(f)

    regressions = []
    missing = []
    for key in sorted(set(baseline) | set(current)):
        if key not in baseline:
            print(f"  NEW      {key:32s} {current[key]:.6g} (no baseline)")
            continue
        if key not in current:
            print(f"  MISSING  {key:32s} baseline {baseline[key]:.6g}, not measured")
            missing.append(key)
            continue
        base, cur = float(baseline[key]), float(current[key])
        if base <= 0:
            print(f"  SKIP     {key:32s} non-positive baseline {base:.6g}")
            continue
        # Signed regression fraction: positive = worse than baseline.
        if lower_is_better(key):
            frac = cur / base - 1.0
        else:
            frac = base / cur - 1.0 if cur > 0 else float("inf")
        status = "OK"
        if frac > args.tolerance:
            status = "REGRESSED"
            regressions.append(key)
        elif frac < -args.tolerance:
            status = "IMPROVED"
        print(f"  {status:8s} {key:32s} baseline {base:.6g}  current {cur:.6g}  "
              f"({frac:+.1%})")

    failed = False
    if missing:
        print(f"\n{len(missing)} baseline scenario(s) not measured: {', '.join(missing)}")
        failed = True
    if regressions:
        print(f"\n{len(regressions)} scenario(s) regressed beyond "
              f"{args.tolerance:.0%}: {', '.join(regressions)}")
        failed = True
    if failed:
        return 1
    print("\nNo perf regressions beyond tolerance.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
