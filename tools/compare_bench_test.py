#!/usr/bin/env python3
"""Self-test for compare_bench.py, run by ctest.

Covers the key-mismatch policy in both directions:
  - a key present only in the CURRENT file is informational (exit 0: new scenarios may
    land before their baseline), and
  - a key present only in the BASELINE file is fatal (exit 1: a dropped measurement must
    not read as a pass),
plus the basic regression/improvement/tolerance behaviour on shared keys.
"""

import json
import os
import subprocess
import sys
import tempfile

COMPARE = os.path.join(os.path.dirname(os.path.abspath(__file__)), "compare_bench.py")


def run_compare(baseline: dict, current: dict, *extra: str) -> int:
    with tempfile.TemporaryDirectory() as tmp:
        base_path = os.path.join(tmp, "baseline.json")
        cur_path = os.path.join(tmp, "current.json")
        with open(base_path, "w") as f:
            json.dump(baseline, f)
        with open(cur_path, "w") as f:
            json.dump(current, f)
        proc = subprocess.run(
            [sys.executable, COMPARE, base_path, cur_path, *extra],
            stdout=subprocess.PIPE, stderr=subprocess.STDOUT, text=True)
        print(proc.stdout)
        return proc.returncode


def check(name: str, got: int, want: int) -> bool:
    ok = got == want
    print(f"{'PASS' if ok else 'FAIL'}: {name} (exit {got}, want {want})")
    return ok


def main() -> int:
    ok = True
    # Identical files: clean pass.
    ok &= check("identical", run_compare({"a_ms": 1.0}, {"a_ms": 1.0}), 0)
    # Key only in CURRENT: informational, never fatal.
    ok &= check("new key in current",
                run_compare({"a_ms": 1.0}, {"a_ms": 1.0, "b_per_s": 5.0}), 0)
    # Key only in BASELINE: fatal -- a skipped measurement must not look like a pass.
    ok &= check("baseline key not measured",
                run_compare({"a_ms": 1.0, "b_per_s": 5.0}, {"a_ms": 1.0}), 1)
    # Latency regression beyond tolerance fails; within tolerance passes.
    ok &= check("latency regression", run_compare({"a_ms": 1.0}, {"a_ms": 2.0}), 1)
    ok &= check("latency within tolerance", run_compare({"a_ms": 1.0}, {"a_ms": 1.1}), 0)
    # Throughput direction: lower *_per_s is the regression, higher is an improvement.
    ok &= check("throughput regression", run_compare({"t_per_s": 10.0}, {"t_per_s": 5.0}), 1)
    ok &= check("throughput improvement", run_compare({"t_per_s": 10.0}, {"t_per_s": 20.0}), 0)
    # Tolerance is honoured.
    ok &= check("custom tolerance",
                run_compare({"a_ms": 1.0}, {"a_ms": 1.4}, "--tolerance", "0.5"), 0)
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
