// Quickstart: define a streaming query, compute a contention-aware placement with CAPS,
// and execute it on the cluster simulator.
//
//   $ ./quickstart
//
// Walks through the library's core API end to end:
//   1. build a logical dataflow graph with per-operator resource profiles,
//   2. expand it to a physical execution graph on a worker cluster,
//   3. derive per-task resource demands from the target rate,
//   4. auto-tune pruning thresholds and run the CAPS search,
//   5. compare the chosen plan against Flink-style baselines in the simulator.
#include <cstdio>

#include "src/baselines/flink_strategies.h"
#include "src/caps/auto_tuner.h"
#include "src/caps/cost_model.h"
#include "src/caps/search.h"
#include "src/cluster/cluster.h"
#include "src/common/rng.h"
#include "src/dataflow/rates.h"
#include "src/simulator/fluid_simulator.h"

using namespace capsys;

int main() {
  // 1. A simple stateful query: source -> map -> windowed aggregation -> sink.
  LogicalGraph query("quickstart");
  OperatorProfile source_profile;
  source_profile.cpu_per_record = 20e-6;
  source_profile.out_bytes_per_record = 150;
  OperatorId source = query.AddOperator("source", OperatorKind::kSource, source_profile, 2);

  OperatorProfile map_profile;
  map_profile.cpu_per_record = 40e-6;
  map_profile.out_bytes_per_record = 150;
  map_profile.selectivity = 0.9;
  OperatorId map = query.AddOperator("map", OperatorKind::kMap, map_profile, 4);

  OperatorProfile window_profile;
  window_profile.cpu_per_record = 120e-6;
  window_profile.io_bytes_per_record = 30000;  // state backend traffic per record
  window_profile.out_bytes_per_record = 200;
  window_profile.selectivity = 0.05;
  window_profile.stateful = true;
  OperatorId window = query.AddOperator("window", OperatorKind::kSlidingWindow, window_profile, 8);

  OperatorProfile sink_profile;
  sink_profile.cpu_per_record = 5e-6;
  OperatorId sink = query.AddOperator("sink", OperatorKind::kSink, sink_profile, 1);

  query.AddEdge(source, map, PartitionScheme::kRebalance);
  query.AddEdge(map, window, PartitionScheme::kHash);
  query.AddEdge(window, sink, PartitionScheme::kRebalance);
  std::printf("query: %s\n", query.ToString().c_str());

  // 2. A 4-worker cluster with 4 slots each, and the physical execution graph.
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph physical = PhysicalGraph::Expand(query);
  std::printf("cluster: %s\nphysical: %s\n\n", cluster.ToString().c_str(),
              physical.ToString().c_str());

  // 3. Per-task resource demands at the target input rate.
  const double target_rate = 14000.0;
  auto rates = PropagateRates(query, target_rate);
  CostModel model(physical, cluster, TaskDemands(physical, rates));

  // 4. Auto-tune thresholds and search for the pareto-optimal plan.
  AutoTuneResult tuned = AutoTuneThresholds(model);
  std::printf("auto-tuned thresholds: %s\n", tuned.ToString().c_str());
  SearchOptions options;
  options.alpha = tuned.feasible ? tuned.alpha : ResourceVector{1.0, 1.0, 1.0};
  SearchResult result = CapsSearch(model, options).Run();
  std::printf("search: %s\n", result.stats.ToString().c_str());
  std::printf("chosen plan (cost %s):\n  %s\n\n", result.best.cost.ToString().c_str(),
              result.best.placement.ToString(physical).c_str());

  // 5. Execute the plan and the baselines in the simulator.
  auto run = [&](const char* name, const Placement& plan) {
    FluidSimulator sim(physical, cluster, plan);
    sim.SetAllSourceRates(target_rate);
    QuerySummary summary = sim.RunMeasured(/*warmup_s=*/60, /*measure_s=*/120);
    std::printf("%-12s %s\n", name, summary.ToString().c_str());
  };
  Rng rng(1);
  run("caps", result.best.placement);
  run("default", FlinkDefaultPlacement(physical, cluster, rng));
  run("evenly", FlinkEvenlyPlacement(physical, cluster, rng));
  return 0;
}
