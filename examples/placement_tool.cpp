// Command-line placement tool: compute and inspect a placement for one of the built-in
// queries on a configurable cluster.
//
//   usage: placement_tool [query] [workers] [slots] [policy] [rate_scale]
//     query      q1..q6            (default q1)
//     workers    cluster size      (default 4)
//     slots      slots per worker  (default 4)
//     policy     capsys|default|evenly|odrp (default capsys)
//     rate_scale multiplier on the query's default target rate (default 1.0)
//
// Prints the DS2-sized parallelism, the chosen plan, its cost vector, decision time, and
// the simulated performance.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "src/controller/deployment.h"
#include "src/nexmark/queries.h"
#include "src/odrp/odrp.h"

using namespace capsys;

int main(int argc, char** argv) {
  std::string query_name = argc > 1 ? argv[1] : "q1";
  int workers = argc > 2 ? std::atoi(argv[2]) : 4;
  int slots = argc > 3 ? std::atoi(argv[3]) : 4;
  std::string policy_name = argc > 4 ? argv[4] : "capsys";
  double rate_scale = argc > 5 ? std::atof(argv[5]) : 1.0;
  if (workers < 1 || slots < 1 || rate_scale <= 0) {
    std::fprintf(stderr, "usage: %s [q1..q6] [workers] [slots] [capsys|default|evenly|odrp] "
                         "[rate_scale]\n",
                 argv[0]);
    return 1;
  }

  QuerySpec q = BuildQueryByName(query_name);
  q.ScaleRates(rate_scale);
  Cluster cluster(workers, WorkerSpec::R5dXlarge(slots));
  std::printf("query:   %s\ncluster: %s\ntarget:  %.0f rec/s\n\n", q.graph.ToString().c_str(),
              cluster.ToString().c_str(), q.TotalTargetRate());

  LogicalGraph graph = q.graph;
  Placement placement;
  double decision_s = 0.0;
  if (policy_name == "odrp") {
    OdrpOptions options;
    options.timeout_s = 30.0;
    OdrpResult r = SolveOdrp(q.graph, cluster, q.source_rates, options);
    if (!r.found) {
      std::fprintf(stderr, "ODRP found no plan within budget\n");
      return 1;
    }
    std::printf("ODRP: %s\n", r.ToString().c_str());
    graph.SetParallelism(r.parallelism);
    placement = r.placement;
    decision_s = r.decision_time_s;
  } else {
    DeployOptions options;
    options.use_ds2_sizing = true;
    if (policy_name == "default") {
      options.policy = PlacementPolicy::kFlinkDefault;
    } else if (policy_name == "evenly") {
      options.policy = PlacementPolicy::kFlinkEvenly;
    } else if (policy_name != "capsys") {
      std::fprintf(stderr, "unknown policy: %s\n", policy_name.c_str());
      return 1;
    }
    CapsysController controller(cluster, options);
    Deployment d = controller.Deploy(q);
    graph = d.graph;
    placement = d.placement;
    decision_s = d.decision_time_s;
    if (options.policy == PlacementPolicy::kCaps) {
      std::printf("auto-tuned alpha: %s\nplan cost:        %s\n", d.alpha.ToString().c_str(),
                  d.plan_cost.ToString().c_str());
    }
  }

  PhysicalGraph physical = PhysicalGraph::Expand(graph);
  std::printf("parallelism:");
  for (const auto& op : graph.operators()) {
    std::printf(" %s=%d", op.name.c_str(), op.parallelism);
  }
  std::printf("\ndecision time: %.3f s\nplan: %s\n\n", decision_s,
              placement.ToString(physical).c_str());

  FluidSimulator sim(physical, cluster, placement);
  for (const auto& [op, r] : q.source_rates) {
    sim.SetSourceRate(op, r);
  }
  QuerySummary s = sim.RunMeasured(60, 120);
  std::printf("simulated: %s\n", s.ToString().c_str());
  return 0;
}
