// Record-level execution example: run real Nexmark queries through the multi-threaded
// mini runtime with the log-structured state store.
//
//   $ ./nexmark_runtime [num_events]
//
// Executes (1) the Q1-sliding pipeline (filter -> sliding bid count per auction) and
// (2) the Q2-join pipeline (tumbling person/auction join) over generated Nexmark events,
// reporting throughput, per-stage record counts, sample results, and state-store behaviour
// (flushes, compactions, write amplification — the source of the I/O contention the CAPS
// cost model captures).
#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "src/nexmark/generator.h"
#include "src/runtime/pipeline.h"

using namespace capsys;

int main(int argc, char** argv) {
  int num_events = argc > 1 ? std::atoi(argv[1]) : 200000;
  GeneratorConfig config;
  config.events_per_second = 50000;
  config.hot_bid_fraction = 0.2;
  NexmarkGenerator generator(config);
  std::vector<Event> events = generator.Take(num_events);
  std::printf("generated %d Nexmark events (%lld persons+auctions pending)\n\n", num_events,
              static_cast<long long>(generator.next_auction_id() - 1000));

  // --- Q1-sliding: bid filter -> sliding window count per auction -------------------------
  {
    std::vector<StageSpec> stages;
    stages.push_back(StageSpec{.name = "filter",
                               .parallelism = 2,
                               .factory = [](int) { return MakeBidFilter(); },
                             .key = nullptr});
    stages.push_back(StageSpec{
        .name = "sliding-count",
        .parallelism = 4,
        .factory = [](int) { return MakeSlidingBidCounter(/*window_ms=*/10000,
                                                          /*slide_ms=*/2000); },
        .key = KeyByAuction});
    Pipeline pipeline(std::move(stages));
    PipelineResult r = pipeline.Run(events);
    std::printf("--- Q1-sliding (window 10 s, slide 2 s) ---\n");
    std::printf("throughput: %.0f records/s, stages processed: filter=%llu count=%llu\n",
                num_events / r.elapsed_s, static_cast<unsigned long long>(r.processed_per_stage[0]),
                static_cast<unsigned long long>(r.processed_per_stage[1]));
    std::printf("window results: %zu; sample:", r.outputs.size());
    for (size_t i = 0; i < r.outputs.size() && i < 3; ++i) {
      const auto& agg = std::get<AggregateResult>(r.outputs[i]);
      std::printf(" [auction %s: %.0f bids @%llds]", agg.key.c_str(), agg.value,
                  static_cast<long long>(agg.window_start_ms / 1000));
    }
    std::printf("\nstate store: %llu flushes, %llu compactions, write amplification %.2f\n\n",
                static_cast<unsigned long long>(r.state_stats.flushes),
                static_cast<unsigned long long>(r.state_stats.compactions),
                r.state_stats.WriteAmplification());
  }

  // --- Q2-join: tumbling person/auction join ----------------------------------------------
  {
    std::vector<StageSpec> stages;
    stages.push_back(StageSpec{
        .name = "window-join",
        .parallelism = 4,
        .factory = [](int) { return MakeTumblingPersonAuctionJoin(/*window_ms=*/10000); },
        .key = KeyByPersonOrSeller});
    Pipeline pipeline(std::move(stages));
    PipelineResult r = pipeline.Run(events);
    std::printf("--- Q2-join (tumbling 10 s, person.id == auction.seller) ---\n");
    std::printf("throughput: %.0f records/s, joins emitted: %zu; sample:",
                num_events / r.elapsed_s, r.outputs.size());
    for (size_t i = 0; i < r.outputs.size() && i < 3; ++i) {
      const auto& j = std::get<JoinResult>(r.outputs[i]);
      std::printf(" [person %lld ~ auction %lld (%s)]", static_cast<long long>(j.left_id),
                  static_cast<long long>(j.right_id), j.payload.c_str());
    }
    std::printf("\nstate store: %llu flushes, %llu compactions, write amplification %.2f\n\n",
                static_cast<unsigned long long>(r.state_stats.flushes),
                static_cast<unsigned long long>(r.state_stats.compactions),
                r.state_stats.WriteAmplification());
  }

  // --- Q6-session: session windows per bidder ----------------------------------------------
  {
    std::vector<StageSpec> stages;
    stages.push_back(StageSpec{.name = "sessions",
                               .parallelism = 4,
                               .factory = [](int) { return MakeSessionBidCounter(
                                                        /*gap_ms=*/2000); },
                               .key = KeyByPersonOrSeller});
    Pipeline pipeline(std::move(stages));
    PipelineResult r = pipeline.Run(events);
    double total_bids = 0.0;
    double longest = 0.0;
    for (const auto& rec : r.outputs) {
      const auto& agg = std::get<AggregateResult>(rec);
      total_bids += agg.value;
      longest = std::max(longest, agg.value);
    }
    std::printf("--- Q6-session (gap 2 s, per bidder) ---\n");
    std::printf("throughput: %.0f records/s, sessions: %zu, mean length %.1f bids, longest "
                "%.0f bids\n\n",
                num_events / r.elapsed_s, r.outputs.size(),
                r.outputs.empty() ? 0.0 : total_bids / r.outputs.size(), longest);
  }

  // --- Q5-style: running average bid price per auction ---------------------------------------
  {
    std::vector<StageSpec> stages;
    stages.push_back(StageSpec{.name = "filter",
                               .parallelism = 1,
                               .factory = [](int) { return MakeBidFilter(); },
                             .key = nullptr});
    stages.push_back(StageSpec{.name = "avg-price",
                               .parallelism = 4,
                               .factory = [](int) { return MakeAveragePricePerAuction(); },
                               .key = KeyByAuction});
    Pipeline pipeline(std::move(stages));
    PipelineResult r = pipeline.Run(events);
    std::printf("--- Q5-style running average price per auction ---\n");
    std::printf("throughput: %.0f records/s, updates emitted: %zu", num_events / r.elapsed_s,
                r.outputs.size());
    if (!r.outputs.empty()) {
      const auto& agg = std::get<AggregateResult>(r.outputs.back());
      std::printf(", last: auction %s avg %.1f", agg.key.c_str(), agg.value);
    }
    std::printf("\n");
  }
  return 0;
}
