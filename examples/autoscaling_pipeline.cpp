// Auto-scaling example: couple the DS2 scaling controller with CAPS placement under a
// variable workload — the CAPSys control loop of the paper's §6.4.
//
//   $ ./autoscaling_pipeline [capsys|default|evenly]
//
// Runs the Q3-inf inference pipeline against a square-wave input rate and prints the
// timeline of throughput, provisioned slots, and scaling decisions.
#include <cstdio>
#include <cstring>
#include <string>

#include "src/controller/scaling_experiments.h"

using namespace capsys;

int main(int argc, char** argv) {
  PlacementPolicy policy = PlacementPolicy::kCaps;
  if (argc > 1) {
    std::string arg = argv[1];
    if (arg == "default") {
      policy = PlacementPolicy::kFlinkDefault;
    } else if (arg == "evenly") {
      policy = PlacementPolicy::kFlinkEvenly;
    } else if (arg != "capsys") {
      std::fprintf(stderr, "usage: %s [capsys|default|evenly]\n", argv[0]);
      return 1;
    }
  }

  Cluster cluster(8, WorkerSpec::R5dXlarge(8));
  QuerySpec query = BuildQ3Inf();
  std::vector<double> rate_steps = {800, 2400, 800, 2400};

  ScalingExperimentOptions options;
  options.policy = policy;
  options.start_optimal = false;  // start from parallelism 1 and let DS2 find its way
  options.step_duration_s = 300.0;

  std::printf("policy: %s, cluster: %s\n", PolicyName(policy), cluster.ToString().c_str());
  std::printf("running %zu rate steps of %.0f s each...\n\n", rate_steps.size(),
              options.step_duration_s);
  ScalingRun run = RunScalingExperiment(query, cluster, rate_steps, options);

  std::printf("%-8s %-10s %-12s %-6s\n", "t(s)", "target", "throughput", "slots");
  double next_print = 0.0;
  for (const auto& p : run.timeline) {
    if (p.time_s + 1e-9 >= next_print) {
      std::printf("%-8.0f %-10.0f %-12.0f %-6d\n", p.time_s, p.target_rate, p.throughput,
                  p.slots);
      next_print = p.time_s + 60.0;
    }
  }
  std::printf("\nscaling decisions (%d):", run.total_decisions);
  for (double t : run.decision_times_s) {
    std::printf(" %.0fs", t);
  }
  std::printf("\nper-step outcome:\n");
  for (size_t i = 0; i < run.steps.size(); ++i) {
    std::printf("  step %zu: %s\n", i, run.steps[i].ToString().c_str());
  }
  return 0;
}
