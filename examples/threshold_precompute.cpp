// Offline threshold precomputation example (paper §5.2): enumerate the DS2 scaling
// scenarios a variable workload can reach, auto-tune pruning thresholds for each scenario
// offline (in parallel), persist the cache, and show a runtime deployment skipping the
// auto-tuning step entirely via a cache hit.
//
//   $ ./threshold_precompute [cache_file]
#include <cstdio>
#include <fstream>
#include <sstream>

#include "src/caps/threshold_cache.h"
#include "src/controller/deployment.h"
#include "src/nexmark/queries.h"

using namespace capsys;

int main(int argc, char** argv) {
  const char* cache_file = argc > 1 ? argv[1] : "/tmp/capsys_thresholds.txt";
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(8, WorkerSpec::R5dXlarge(8));

  // 1. Offline: enumerate the parallelism combinations DS2 would pick across the rate
  // range the workload oscillates over, and tune thresholds for each.
  std::vector<double> rate_multipliers;
  for (double m = 0.25; m <= 2.0; m *= 1.25) {
    rate_multipliers.push_back(m);
  }
  auto scenarios = EnumerateScalingScenarios(q.graph, q.source_rates,
                                             cluster.worker(0).spec, rate_multipliers);
  std::printf("scaling scenarios for rates x0.25..x2.0: %zu\n", scenarios.size());

  ThresholdCache cache;
  cache.Precompute(q.graph, q.source_rates, cluster, scenarios, AutoTuneOptions{},
                   /*num_threads=*/4);
  std::printf("precomputed thresholds: %zu entries\n", cache.size());
  for (const auto& scenario : scenarios) {
    auto alpha = cache.Lookup(scenario);
    std::string key;
    for (int p : scenario) {
      key += (key.empty() ? "" : ",") + std::to_string(p);
    }
    std::printf("  [%s] -> %s\n", key.c_str(),
                alpha.has_value() ? alpha->ToString().c_str() : "(infeasible)");
  }

  // 2. Persist and reload (e.g. shipped with the job's deployment bundle).
  {
    std::ofstream out(cache_file);
    out << cache.Serialize();
  }
  ThresholdCache loaded;
  {
    std::ifstream in(cache_file);
    std::stringstream buffer;
    buffer << in.rdbuf();
    if (!loaded.Deserialize(buffer.str())) {
      std::fprintf(stderr, "failed to reload cache\n");
      return 1;
    }
  }
  std::printf("reloaded %zu entries from %s\n\n", loaded.size(), cache_file);

  // 3. Runtime: deploy with the cache — the placement decision skips auto-tuning.
  DeployOptions options;
  options.policy = PlacementPolicy::kCaps;
  options.use_ds2_sizing = true;
  options.threshold_cache = &loaded;
  CapsysController controller(cluster, options);
  Deployment d = controller.Deploy(q);
  std::printf("deployed with alpha=%s (decision %.4f s, cache %s)\n",
              d.alpha.ToString().c_str(), d.decision_time_s,
              loaded.Lookup([&] {
                std::vector<int> p;
                for (const auto& op : d.graph.operators()) {
                  p.push_back(op.parallelism);
                }
                return p;
              }())
                      .has_value()
                  ? "HIT"
                  : "MISS (tuned at runtime)");
  return 0;
}
