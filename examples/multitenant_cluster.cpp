// Multi-tenant example: deploy several Nexmark queries on one shared cluster, letting
// CAPSys optimize placement globally across query boundaries (paper §6.2.2).
//
//   $ ./multitenant_cluster
//
// Merges Q1-sliding, Q4-join, and Q6-session into a single dataflow graph, runs the full
// CAPSys pipeline (profiling -> DS2 sizing -> CAPS placement), and reports per-query
// throughput and backpressure, contrasted with a randomized Flink-default deployment.
#include <cstdio>
#include <map>
#include <vector>

#include "src/baselines/flink_strategies.h"
#include "src/controller/deployment.h"
#include "src/nexmark/queries.h"

using namespace capsys;

int main() {
  Cluster cluster(8, WorkerSpec::M5d2xlarge(8));

  // Merge three queries into one logical graph, remembering per-query sources.
  LogicalGraph merged("tenants");
  std::map<OperatorId, double> source_rates;
  struct Tenant {
    std::string name;
    std::vector<OperatorId> sources;
    double target = 0.0;
  };
  std::vector<Tenant> tenants;
  for (const char* name : {"q1", "q4", "q6"}) {
    QuerySpec q = BuildQueryByName(name);
    q.ScaleRates(2.0);
    OperatorId offset = merged.Merge(q.graph);
    Tenant t;
    t.name = q.graph.name();
    for (const auto& [op, r] : q.source_rates) {
      source_rates[op + offset] = r;
      t.sources.push_back(op + offset);
      t.target += r;
    }
    tenants.push_back(t);
  }

  DeployOptions options;
  options.policy = PlacementPolicy::kCaps;
  options.use_ds2_sizing = true;
  CapsysController controller(cluster, options);
  Deployment d = controller.DeployGraph(merged, source_rates);
  std::printf("deployed %d tasks on %s (placement decided in %.3f s)\n\n",
              d.physical.num_tasks(), cluster.ToString().c_str(), d.decision_time_s);

  auto report = [&](const char* label, const Placement& placement) {
    FluidSimulator sim(d.physical, cluster, placement);
    for (const auto& [op, r] : source_rates) {
      sim.SetSourceRate(op, r);
    }
    sim.RunFor(60);
    double from = sim.time_s();
    sim.RunFor(120);
    double to = sim.time_s();
    std::printf("--- %s ---\n%-14s %-10s %-12s %-8s\n", label, "query", "target", "throughput",
                "bp(%)");
    for (const auto& t : tenants) {
      double thr = 0.0;
      double bp = 0.0;
      for (OperatorId s : t.sources) {
        thr += sim.OperatorEmitRate(s, from, to);
        bp += sim.OperatorBackpressure(s, from, to) / t.sources.size();
      }
      std::printf("%-14s %-10.0f %-12.0f %-8.1f\n", t.name.c_str(), t.target, thr, bp * 100.0);
    }
    std::printf("\n");
  };

  report("CAPSys (global contention-aware placement)", d.placement);
  Rng rng(3);
  report("Flink default (random fill)", FlinkDefaultPlacement(d.physical, cluster, rng));
  return 0;
}
