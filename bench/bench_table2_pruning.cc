// Reproduces Table 2 (paper §4.4): number of discovered plans and search-tree size for
// Q3-inf on a cluster of 8 workers x 4 slots, under compute threshold factors
// alpha_cpu in {inf, 0.5, 0.2, 0.1, 0.05, 0.03, 0.01}, with and without search-tree
// exploration reordering.
//
// Note on absolute numbers: the paper's tree counted 3.25M plans / 31M nodes because its
// duplicate elimination is heuristic; our inner search breaks worker symmetry exactly, so
// the unpruned tree is smaller. The trends the table demonstrates — plans and nodes
// collapsing as alpha tightens, and reordering pruning far earlier — are reproduced.
#include <cstdio>
#include <vector>

#include "src/caps/cost_model.h"
#include "src/caps/search.h"
#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

int Main() {
  InitLoggingFromEnv();
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(8, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));

  std::printf("=== Table 2: search-space size vs compute threshold, Q3-inf on 8x4 ===\n\n");
  std::printf("%-10s %-12s %-12s %-20s %-12s\n", "alpha_cpu", "plans", "#nodes",
              "#nodes w/ reorder", "pruned");

  std::vector<double> alphas = {1.0, 0.5, 0.2, 0.1, 0.05, 0.03, 0.01};
  for (double a : alphas) {
    SearchOptions base;
    base.alpha = ResourceVector{a, 1.0, 1.0};
    base.reorder = false;
    SearchResult plain = CapsSearch(model, base).Run();

    SearchOptions reordered = base;
    reordered.reorder = true;
    SearchResult reord = CapsSearch(model, reordered).Run();

    std::printf("%-10s %-12llu %-12llu %-20llu %-12llu\n",
                a >= 1.0 ? "inf" : Sprintf("%.2f", a).c_str(),
                static_cast<unsigned long long>(plain.stats.leaves),
                static_cast<unsigned long long>(plain.stats.nodes),
                static_cast<unsigned long long>(reord.stats.nodes),
                static_cast<unsigned long long>(plain.stats.pruned));
  }
  std::printf("\npaper (their tree): plans 3.25m -> 0 and nodes 31m -> 798k as alpha_cpu\n"
              "tightens from inf to 0.01; reordering shrinks nodes up to ~28x at 0.01.\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
