// Reproduces Figure 2 (paper §3.2): exhaustive evaluation of all placement plans for
// Q1-sliding on a 4-worker, 16-slot cluster. Executes the query under every one of the 80
// distinct plans and reports throughput and source backpressure for the 3 best- and 3
// worst-performing plans (P1..P6), plus summary statistics for the full plan population.
//
// Paper reference points: 80 plans total; best plan ~14k rec/s at 6.8% backpressure, worst
// ~9k rec/s at 86.4% backpressure; only 3 of 80 plans meet the target rate; plans that
// balance sliding-window tasks across workers win.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/caps/cost_model.h"
#include "src/caps/search.h"
#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

struct PlanResult {
  int index = 0;
  ResourceVector cost;
  double throughput = 0.0;
  double backpressure = 0.0;
  int window_colocation = 0;
};

int Main() {
  InitLoggingFromEnv();
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  auto plans = EnumerateAllPlans(model);
  double target = q.TotalTargetRate();

  std::printf("=== Figure 2: exhaustive placement study, Q1-sliding on 4x4 cluster ===\n");
  std::printf("distinct plans: %zu (paper: 80), target rate: %.0f rec/s\n\n", plans.size(),
              target);

  OperatorId window_op = 2;  // sliding-window operator
  std::vector<PlanResult> results;
  results.reserve(plans.size());
  for (size_t i = 0; i < plans.size(); ++i) {
    FluidSimulator sim(graph, cluster, plans[i].placement);
    sim.SetAllSourceRates(target);
    QuerySummary s = sim.RunMeasured(/*warmup_s=*/60, /*measure_s=*/120);
    PlanResult r;
    r.index = static_cast<int>(i);
    r.cost = plans[i].cost;
    r.throughput = s.throughput;
    r.backpressure = s.backpressure;
    r.window_colocation = plans[i].placement.ColocationDegree(graph, cluster, window_op);
    results.push_back(r);
  }

  std::sort(results.begin(), results.end(),
            [](const PlanResult& a, const PlanResult& b) { return a.throughput > b.throughput; });

  std::printf("%-6s %-12s %-10s %-12s %-24s\n", "plan", "throughput", "bp(%)", "win-coloc",
              "cost [cpu io net]");
  auto print_row = [](const char* name, const PlanResult& r) {
    std::printf("%-6s %-12.0f %-10.1f %-12d %s\n", name, r.throughput, r.backpressure * 100.0,
                r.window_colocation, r.cost.ToString().c_str());
  };
  for (int i = 0; i < 3 && i < static_cast<int>(results.size()); ++i) {
    print_row(Sprintf("P%d", i + 1).c_str(), results[static_cast<size_t>(i)]);
  }
  for (int i = 2; i >= 0; --i) {
    size_t idx = results.size() - 1 - static_cast<size_t>(i);
    print_row(Sprintf("P%zu", results.size() - static_cast<size_t>(i)).c_str(), results[idx]);
  }

  int meeting_target = 0;
  for (const auto& r : results) {
    if (r.throughput >= 0.97 * target) {
      ++meeting_target;
    }
  }
  std::printf("\nplans meeting the target rate: %d / %zu (paper: 3 / 80)\n", meeting_target,
              plans.size());
  std::printf("best/worst throughput: %.0f / %.0f rec/s (ratio %.2fx; paper: 14k / 9k = 1.56x)\n",
              results.front().throughput, results.back().throughput,
              results.front().throughput / results.back().throughput);
  std::printf("best/worst backpressure: %.1f%% / %.1f%% (paper: 6.8%% / 86.4%%)\n",
              results.front().backpressure * 100.0, results.back().backpressure * 100.0);

  // Shape check the paper's §3.2 analysis: high-throughput plans balance window tasks.
  double mean_coloc_top = 0.0;
  double mean_coloc_bottom = 0.0;
  for (int i = 0; i < 3; ++i) {
    mean_coloc_top += results[static_cast<size_t>(i)].window_colocation / 3.0;
    mean_coloc_bottom += results[results.size() - 1 - static_cast<size_t>(i)].window_colocation / 3.0;
  }
  std::printf("mean window-task co-location degree: best-3 %.1f vs worst-3 %.1f\n",
              mean_coloc_top, mean_coloc_bottom);
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
