// Extension bench (paper §6.5.2 future work): graph-partitioned CAPS for very large
// deployments. Compares whole-graph auto-tuning + find-first search against the partitioned
// variant (auto-tune and search per partition on disjoint worker subsets) on Q2-join scaled
// up to 1024 tasks, reporting wall time and resulting plan quality (predicted bottleneck
// utilization of the combined plan).
#include <chrono>
#include <cstdio>

#include "src/caps/auto_tuner.h"
#include "src/common/str.h"
#include "src/caps/cost_model.h"
#include "src/caps/partitioned.h"
#include "src/caps/search.h"
#include "src/common/logging.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

QuerySpec ScaledQ2(int total_tasks) {
  QuerySpec q = BuildQ2Join();
  int base_total = q.graph.total_parallelism();
  double factor = static_cast<double>(total_tasks) / base_total;
  std::vector<int> parallelism;
  std::vector<std::pair<double, size_t>> fractions;
  int assigned = 0;
  for (const auto& op : q.graph.operators()) {
    double exact = op.parallelism * factor;
    int p = std::max(1, static_cast<int>(exact));
    parallelism.push_back(p);
    fractions.emplace_back(-(exact - p), parallelism.size() - 1);
    assigned += p;
  }
  std::sort(fractions.begin(), fractions.end());
  for (size_t i = 0; assigned < total_tasks; i = (i + 1) % fractions.size()) {
    ++parallelism[fractions[i].second];
    ++assigned;
  }
  q.graph.SetParallelism(parallelism);
  q.ScaleRates(factor);
  return q;
}

double MaxCost(const CostModel& model, const Placement& plan) {
  return model.Cost(plan).Max();
}

int Main() {
  InitLoggingFromEnv();
  std::printf("=== Partitioned CAPS (future-work extension): Q2-join at scale ===\n\n");
  std::printf("%-8s %-14s %-12s %-12s %-14s\n", "tasks", "method", "time (s)", "max-cost",
              "feasible");
  for (int tasks : {128, 256, 512, 1024}) {
    QuerySpec q = ScaledQ2(tasks);
    Cluster cluster(tasks / 16 + 4, WorkerSpec::R5dXlarge(16));  // slack for the ceilings
    PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
    auto rates = PropagateRates(q.graph, q.source_rates);
    auto demands = TaskDemands(graph, rates);
    CostModel model(graph, cluster, demands);

    // Whole-graph: auto-tune then find-first.
    {
      auto t0 = std::chrono::steady_clock::now();
      AutoTuneOptions tune;
      tune.timeout_s = 60.0;
      tune.probe_timeout_s = 1.0;
      tune.num_threads = 4;
      AutoTuneResult tuned = AutoTuneThresholds(model, tune);
      SearchOptions options;
      options.alpha = tuned.feasible ? tuned.alpha : ResourceVector{1.0, 1.0, 1.0};
      options.find_first = true;
      options.num_threads = 4;
      options.timeout_s = 10.0;
      SearchResult r = CapsSearch(model, options).Run();
      double elapsed =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
      std::printf("%-8d %-14s %-12.2f %-12.3f %s\n", tasks, "whole-graph", elapsed,
                  r.found ? MaxCost(model, r.best.placement) : -1.0, r.found ? "yes" : "NO");
    }
    // Partitioned, K = 2 and 4.
    for (int k : {2, 4}) {
      PartitionedOptions options;
      options.num_partitions = k;
      options.autotune.timeout_s = 30.0;
      options.autotune.probe_timeout_s = 0.5;
      options.num_threads = 4;
      PartitionedResult r = PartitionedPlacementSearch(graph, cluster, demands, options);
      std::printf("%-8d %-14s %-12.2f %-12.3f %s\n", tasks, Sprintf("K=%d", k).c_str(),
                  r.elapsed_s, r.found ? MaxCost(model, r.placement) : -1.0,
                  r.found ? "yes" : "NO");
    }
  }
  std::printf("\nexpected: partitioning trades a modest cost increase (cross-partition\n"
              "channels become remote) for a large reduction in tuning+search time on the\n"
              "biggest instances.\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
