// Reproduces Figure 7 (paper §6.2.1): individual query performance under CAPSys vs Flink's
// `default` and `evenly` placement policies, each query deployed in isolation on a
// 4-worker m5d.2xlarge cluster (8 slots per worker). DS2 assigns operator parallelism from
// profiled costs; each policy is run 10 times (CAPS is deterministic; the baselines'
// random task order varies by seed) and throughput / backpressure / latency are summarized
// as box statistics.
//
// Paper reference points: CAPSys reaches the target rate on every query with the lowest
// backpressure and latency and near-zero variance; `default` and `evenly` show large
// variance and miss the target on most queries (up to 6x throughput gap on Q5-aggregate);
// CAPSys reduces backpressure by 84% and latency by 48% on average.
//
// Set CAPSYS_TELEMETRY_DIR to additionally export a telemetry bundle (spans of every
// deploy/search, placement-decision events, and the last run's simulator metrics) there.
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/controller/deployment.h"
#include "src/nexmark/queries.h"
#include "src/obs/events.h"
#include "src/obs/exporters.h"
#include "src/obs/trace.h"

namespace capsys {
namespace {

// Target-rate scale factors vs the motivation-study (r5d) rates: the m5d.2xlarge workers
// have ~2x the CPU and disk bandwidth.
constexpr double kRateScale = 2.0;
constexpr int kRuns = 10;

int Main() {
  InitLoggingFromEnv();
  Cluster cluster(4, WorkerSpec::M5d2xlarge(8));
  const char* telemetry_dir = std::getenv("CAPSYS_TELEMETRY_DIR");
  MetricsRegistry last_metrics;
  if (telemetry_dir != nullptr) {
    Tracer::Global().Enable();
    EventLog::Global().Enable();
  }
  std::printf("=== Figure 7: query performance by placement policy (%s) ===\n",
              cluster.ToString().c_str());
  std::printf("10 runs per policy; table shows median [min..max]\n\n");

  PlacementPolicy policies[3] = {PlacementPolicy::kCaps, PlacementPolicy::kFlinkDefault,
                                 PlacementPolicy::kFlinkEvenly};

  for (QuerySpec& q : BuildAllQueries()) {
    q.ScaleRates(kRateScale);
    double target = q.TotalTargetRate();
    std::printf("--- %s (target %.0f rec/s) ---\n", q.graph.name().c_str(), target);
    std::printf("%-10s %-26s %-22s %-20s %-6s\n", "policy", "throughput (rec/s)", "bp (%)",
                "latency (s)", "slots");
    for (PlacementPolicy policy : policies) {
      std::vector<double> thr;
      std::vector<double> bp;
      std::vector<double> lat;
      int slots = 0;
      for (int run = 0; run < kRuns; ++run) {
        DeployOptions options;
        options.policy = policy;
        options.use_ds2_sizing = true;
        options.seed = static_cast<uint64_t>(run) + 1;
        CapsysController controller(cluster, options);
        Deployment d = controller.Deploy(q);
        slots = d.physical.num_tasks();
        FluidSimulator sim(d.physical, cluster, d.placement);
        for (const auto& [op, r] : d.source_rates) {
          sim.SetSourceRate(op, r);
        }
        QuerySummary s = sim.RunMeasured(/*warmup_s=*/60, /*measure_s=*/120);
        thr.push_back(s.throughput);
        bp.push_back(s.backpressure * 100.0);
        lat.push_back(s.latency_s);
        if (telemetry_dir != nullptr) {
          last_metrics = sim.metrics();
        }
      }
      BoxSummary ts = Summarize(thr);
      BoxSummary bs = Summarize(bp);
      BoxSummary ls = Summarize(lat);
      std::printf("%-10s %8.0f [%6.0f..%6.0f]   %6.1f [%5.1f..%5.1f]   %6.3f [%5.3f..%5.3f] %4d\n",
                  PolicyName(policy), ts.median, ts.min, ts.max, bs.median, bs.min, bs.max,
                  ls.median, ls.min, ls.max, slots);
    }
    std::printf("\n");
  }
  if (telemetry_dir != nullptr) {
    std::string error;
    if (WriteTelemetryBundle(telemetry_dir, &last_metrics, &error)) {
      std::printf("telemetry bundle: %s/ (%zu spans, %zu events)\n", telemetry_dir,
                  Tracer::Global().SpanCount(), EventLog::Global().Count());
    } else {
      std::printf("telemetry bundle FAILED: %s\n", error.c_str());
    }
  }
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
