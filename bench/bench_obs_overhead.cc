// Observability overhead bench: proves the tracing/event layer is cheap enough to leave
// compiled into every controller and simulator path. Runs an identical deploy + simulate
// workload with telemetry fully disabled and fully enabled and compares wall time
// (median of several repetitions), and microbenchmarks the disabled-path cost of a Span —
// a single relaxed atomic load — which is what every instrumented function pays when no
// one is collecting.
//
// Acceptance bar (ISSUE.md): enabled overhead < 5% of the uninstrumented run, disabled
// overhead indistinguishable from zero (a few ns per span).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <vector>

#include "src/common/logging.h"
#include "src/controller/deployment.h"
#include "src/nexmark/queries.h"
#include "src/obs/events.h"
#include "src/obs/trace.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

double Workload() {
  Cluster cluster(4, WorkerSpec::M5d2xlarge(8));
  QuerySpec q = BuildQ1Sliding();
  q.ScaleRates(2.0);
  DeployOptions options;
  options.policy = PlacementPolicy::kCaps;
  options.use_ds2_sizing = true;
  options.search_threads = 2;
  CapsysController controller(cluster, options);
  Deployment d = controller.Deploy(q);
  FluidSimulator sim(d.physical, cluster, d.placement);
  for (const auto& [op, r] : d.source_rates) {
    sim.SetSourceRate(op, r);
  }
  QuerySummary s = sim.RunMeasured(/*warmup_s=*/30, /*measure_s=*/60);
  return s.throughput;  // consumed so the work cannot be optimized away
}

double MedianSeconds(int reps, double* sink) {
  std::vector<double> times;
  for (int i = 0; i < reps; ++i) {
    auto start = std::chrono::steady_clock::now();
    *sink += Workload();
    times.push_back(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count());
  }
  std::sort(times.begin(), times.end());
  return times[times.size() / 2];
}

int Main() {
  InitLoggingFromEnv();
  constexpr int kReps = 5;
  double sink = 0.0;

  std::printf("=== Observability overhead (deploy Q1 + 90 s simulated, median of %d) ===\n\n",
              kReps);

  Tracer::Global().Disable();
  EventLog::Global().Disable();
  Workload();  // warm-up: touch code and allocator before either timed pass
  double off_s = MedianSeconds(kReps, &sink);
  std::printf("telemetry disabled: %.3f s\n", off_s);

  Tracer::Global().Enable();
  EventLog::Global().Enable();
  Tracer::Global().Reset();
  EventLog::Global().Reset();
  double on_s = MedianSeconds(kReps, &sink);
  size_t spans = Tracer::Global().SpanCount();
  size_t events = EventLog::Global().Count();
  std::printf("telemetry enabled:  %.3f s (%zu spans, %zu events collected)\n", on_s, spans,
              events);

  double overhead_pct = off_s > 0.0 ? (on_s / off_s - 1.0) * 100.0 : 0.0;
  std::printf("enabled overhead:   %+.2f%%  -> %s (bar: < 5%%)\n\n", overhead_pct,
              overhead_pct < 5.0 ? "PASS" : "FAIL");

  // Disabled fast path: a Span costs one relaxed atomic load when the tracer is off.
  Tracer::Global().Disable();
  EventLog::Global().Disable();
  constexpr int kSpanIters = 2'000'000;
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kSpanIters; ++i) {
    Span s("bench.noop");
    sink += s.active() ? 1.0 : 0.0;
  }
  double per_span_ns =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count() /
      kSpanIters * 1e9;
  std::printf("disabled span cost: %.1f ns/span over %d spans -> %s (bar: ~0, < 50 ns)\n",
              per_span_ns, kSpanIters, per_span_ns < 50.0 ? "PASS" : "FAIL");

  std::printf("\n(checksum %.1f)\n", sink);
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
