// Robustness extension bench: chaos engineering. Replays one seeded FaultSchedule — a
// straggler, a worker crash, a flapping worker, a metric-dropout episode, and a correlated
// triple crash that makes the query unplaceable at full parallelism — against every
// placement policy, with the hardened controller loop (heartbeat failure detection,
// flap blacklisting, bounded re-planning under churn, DS2 down-scale recovery) driving
// reconfigurations. Reports MTTR, reconfiguration count, throughput-loss integral, and
// detector false positives per policy. The schedule and all randomness are seeded, so the
// comparison across policies is exact.
// Each policy's run additionally exports a full telemetry bundle (metrics.prom,
// metrics.json, trace.json, events.jsonl) under $CAPSYS_TELEMETRY_DIR/<policy>/ (default
// ./chaos_telemetry) — see EXPERIMENTS.md "Inspecting a run".
#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/controller/chaos_experiments.h"
#include "src/nexmark/queries.h"
#include "src/obs/events.h"
#include "src/obs/exporters.h"
#include "src/obs/trace.h"

namespace capsys {
namespace {

FaultSchedule BuildSchedule() {
  FaultSchedule s;
  // Transient straggler: w2 at 30% capacity for 30 s. Must be suspected at most — a
  // detector that declares it dead pays a reconfiguration for a false positive.
  s.Slowdown(50.0, 2, 0.3, 30.0);
  // Plain crash, restored two minutes later.
  s.Crash(90.0, 1).Restore(210.0, 1);
  // Flapping worker: 3 crash/restore cycles of 24 s (12 s down each time, long enough for
  // the detector to declare it dead) — should end up blacklisted with exponential backoff
  // instead of bouncing tasks back onto it.
  s.Flap(120.0, 3, 24.0, 3);
  // Lossy telemetry while w1 is still down.
  s.MetricDropout(160.0, 0.3, 30.0);
  // Correlated triple crash: with w1 down and w3 blacklisted this leaves a single usable
  // worker — too few slots for full parallelism, so the controller must down-scale
  // (degraded mode), then re-upscale when capacity returns.
  s.Crash(200.0, 0).Crash(200.0, 4).Crash(200.0, 5);
  s.Restore(300.0, 0).Restore(300.0, 4).Restore(300.0, 5);
  return s;
}

int Main() {
  InitLoggingFromEnv();
  Cluster cluster(6, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();
  // Saturate the 6-worker cluster so DS2 sizes the query wide: losing three workers then
  // genuinely leaves too few slots for full parallelism.
  q.ScaleRates(2.0);
  FaultSchedule schedule = BuildSchedule();

  const char* env_dir = std::getenv("CAPSYS_TELEMETRY_DIR");
  std::string telemetry_dir = env_dir != nullptr ? env_dir : "chaos_telemetry";
  Tracer::Global().Enable();
  EventLog::Global().Enable();

  std::printf("=== Chaos run: Q1-sliding on %s, 420 s ===\n\nschedule: %s\n\n",
              cluster.ToString().c_str(), schedule.ToString().c_str());
  std::printf("%-10s %-9s %-7s %-9s %-11s %-8s %-9s %-10s %-10s %s\n", "policy", "reconfigs",
              "deaths", "false+", "unplace", "mttr", "longest", "loss(Mrec)", "mean thr",
              "final");
  for (PlacementPolicy policy : {PlacementPolicy::kCaps, PlacementPolicy::kFlinkDefault,
                                 PlacementPolicy::kFlinkEvenly}) {
    ChaosExperimentOptions options;
    options.policy = policy;
    options.run_s = 420.0;
    options.seed = 7;
    Tracer::Global().Reset();
    EventLog::Global().Reset();
    ChaosRun run = RunChaosExperiment(q, cluster, schedule, options);
    std::string bundle_dir = telemetry_dir + "/" + PolicyName(policy);
    std::string error;
    if (WriteTelemetryBundle(bundle_dir, &run.telemetry, &error)) {
      std::printf("telemetry bundle: %s/ (%zu spans, %zu events)\n", bundle_dir.c_str(),
                  Tracer::Global().SpanCount(), EventLog::Global().Count());
    } else {
      std::printf("telemetry bundle FAILED: %s\n", error.c_str());
    }
    std::printf("--- %s timeline (t: thr/achievable, slots) ---\n", PolicyName(policy));
    for (size_t i = 5; i < run.timeline.size(); i += 6) {
      const TimelinePoint& p = run.timeline[i];
      std::printf("  t=%3.0f %7.0f /%7.0f %2d slots\n", p.time_s, p.throughput, p.target_rate,
                  p.slots);
    }
    std::printf("%-10s %-9d %-7d %-9d %-11d %-8s %-9s %-10.2f %-10.0f %s(%d slots)\n",
                PolicyName(policy), run.reconfigurations, run.deaths_declared,
                run.false_positives, run.unplaceable_verdicts,
                run.mttr_s >= 0 ? Sprintf("%.0fs", run.mttr_s).c_str() : "-",
                Sprintf("%.0fs", run.longest_outage_s).c_str(), run.throughput_loss / 1e6,
                run.mean_throughput, RecoveryOutcomeName(run.last_outcome), run.final_slots);
    // Checkpoint & restore accounting; the per-reconfiguration replayed-record counts are
    // in the bundle as the chaos.0.replayed_records series.
    std::printf("           checkpoints %d ok / %d failed / %d expired; replayed=%.0f "
                "dupes=%.0f lost=%.0f blackout=%.1fs\n",
                run.checkpoints_completed, run.checkpoints_failed, run.checkpoints_expired,
                run.replayed_records, run.duplicate_records, run.lost_records,
                run.restore_downtime_s);
  }
  std::printf(
      "\nexpected: the straggler and the dropout episode cause no deaths (false+ = 0 with\n"
      "the default suspicion settings); the flapping worker is blacklisted after two\n"
      "deaths; the triple crash forces a degraded down-scale and the controller\n"
      "re-upscales once the workers return. Blackouts are replay-aware: each\n"
      "reconfiguration restores the last completed checkpoint and replays from its\n"
      "barrier (zero lost / zero duplicate records under exactly-once), so recovery cost\n"
      "tracks barrier phase and placement concentration; the packing-blind default\n"
      "policy loses the most throughput by a wide margin.\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
