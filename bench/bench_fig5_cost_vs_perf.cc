// Reproduces Figure 5 (paper §4.4.1): compute, state-access, and network cost of the
// sample placement plans for Q1-sliding, against the throughput each plan achieves.
//
// The paper's point: high-performing plans separate cleanly below a cost threshold (dashed
// lines) in the dimensions the query is sensitive to (C_cpu and C_io for Q1-sliding), while
// C_net is not a dominant factor for this query. We print the scatter series and a
// correlation summary per dimension.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "src/caps/cost_model.h"
#include "src/caps/search.h"
#include "src/common/logging.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

double Pearson(const std::vector<double>& x, const std::vector<double>& y) {
  double mx = 0.0;
  double my = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    mx += x[i] / x.size();
    my += y[i] / y.size();
  }
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  return sxx > 0 && syy > 0 ? sxy / std::sqrt(sxx * syy) : 0.0;
}

int Main() {
  InitLoggingFromEnv();
  QuerySpec q = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  auto plans = EnumerateAllPlans(model);
  double target = q.TotalTargetRate();

  std::printf("=== Figure 5: plan cost vs throughput, Q1-sliding (%zu plans) ===\n\n",
              plans.size());
  std::printf("%-6s %-8s %-8s %-8s %-12s\n", "plan", "C_cpu", "C_io", "C_net", "throughput");

  std::vector<double> c_cpu;
  std::vector<double> c_io;
  std::vector<double> c_net;
  std::vector<double> thr;
  for (size_t i = 0; i < plans.size(); ++i) {
    FluidSimulator sim(graph, cluster, plans[i].placement);
    sim.SetAllSourceRates(target);
    QuerySummary s = sim.RunMeasured(/*warmup_s=*/45, /*measure_s=*/90);
    c_cpu.push_back(plans[i].cost.cpu);
    c_io.push_back(plans[i].cost.io);
    c_net.push_back(plans[i].cost.net);
    thr.push_back(s.throughput);
    std::printf("%-6zu %-8.3f %-8.3f %-8.3f %-12.0f\n", i, plans[i].cost.cpu, plans[i].cost.io,
                plans[i].cost.net, s.throughput);
  }

  // Separability: the best threshold per dimension and how cleanly it separates plans that
  // meet the target from those that do not.
  std::printf("\ncorrelation with throughput: C_cpu %.2f, C_io %.2f, C_net %.2f\n",
              Pearson(c_cpu, thr), Pearson(c_io, thr), Pearson(c_net, thr));

  auto separability = [&](const std::vector<double>& cost) {
    // Fraction of (meeting, missing) plan pairs correctly ordered by cost.
    size_t correct = 0;
    size_t total = 0;
    for (size_t i = 0; i < thr.size(); ++i) {
      for (size_t j = 0; j < thr.size(); ++j) {
        bool meet_i = thr[i] >= 0.97 * target;
        bool meet_j = thr[j] >= 0.97 * target;
        if (meet_i && !meet_j) {
          ++total;
          if (cost[i] < cost[j]) {
            ++correct;
          }
        }
      }
    }
    return total > 0 ? static_cast<double>(correct) / total : 0.0;
  };
  std::printf("threshold separability (pairwise ordering accuracy): C_cpu %.2f, C_io %.2f, "
              "C_net %.2f\n",
              separability(c_cpu), separability(c_io), separability(c_net));
  std::printf("paper: good plans separate via C_cpu / C_io thresholds; C_net is not a\n"
              "dominant factor for Q1-sliding.\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
