// Reproduces Figure 8 (paper §6.2.2): multi-tenant experiment. All six queries are deployed
// concurrently on an 18-worker (144-slot) cluster. CAPSys treats the whole workload as one
// dataflow graph and optimizes placement globally; Flink's `default` and `evenly` policies
// deploy one query at a time and are sensitive to submission order, so the experiment is
// repeated 10 times with randomized submission order for the baselines.
//
// Paper reference: CAPSys is the only policy that reaches the target throughput for all six
// queries while keeping backpressure and latency low; `evenly` meets only Q2-join's target;
// `default` meets three of six.
#include <cstdio>
#include <numeric>
#include <vector>

#include "src/baselines/flink_strategies.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/controller/deployment.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

constexpr double kRateScale = 2.0;
constexpr int kRuns = 10;

struct MergedWorkload {
  LogicalGraph graph;
  std::map<OperatorId, double> source_rates;
  std::vector<std::string> query_names;
  std::vector<OperatorId> offsets;        // operator-id offset of each query
  std::vector<int> op_counts;             // operators per query
  std::vector<std::vector<OperatorId>> query_sources;
  std::vector<double> query_targets;
};

MergedWorkload BuildWorkload() {
  MergedWorkload w;
  w.graph.set_name("multi-tenant");
  for (QuerySpec& q : BuildAllQueries()) {
    q.ScaleRates(kRateScale);
    OperatorId offset = w.graph.Merge(q.graph);
    w.query_names.push_back(q.graph.name());
    w.offsets.push_back(offset);
    w.op_counts.push_back(q.graph.num_operators());
    std::vector<OperatorId> sources;
    double target = 0.0;
    for (const auto& [op, r] : q.source_rates) {
      w.source_rates[op + offset] = r;
      sources.push_back(op + offset);
      target += r;
    }
    w.query_sources.push_back(sources);
    w.query_targets.push_back(target);
  }
  return w;
}

int Main() {
  InitLoggingFromEnv();
  Cluster cluster(18, WorkerSpec::M5d2xlarge(8));
  std::printf("=== Figure 8: multi-tenant workload, all six queries on %s ===\n\n",
              cluster.ToString().c_str());

  MergedWorkload base = BuildWorkload();

  // DS2 sizing is shared across policies: profile the merged workload once.
  DeployOptions size_options;
  size_options.policy = PlacementPolicy::kCaps;
  size_options.use_ds2_sizing = true;
  CapsysController sizer(cluster, size_options);
  Deployment caps_deployment = sizer.DeployGraph(base.graph, base.source_rates);
  const LogicalGraph& sized = caps_deployment.graph;
  std::printf("workload: %d operators, %d tasks on %d slots\n\n", sized.num_operators(),
              caps_deployment.physical.num_tasks(), cluster.total_slots());

  struct PerQueryStats {
    std::vector<double> thr;
    std::vector<double> bp;
    std::vector<double> lat;
  };

  auto run_sim = [&](const Placement& placement, std::vector<PerQueryStats>& stats) {
    FluidSimulator sim(caps_deployment.physical, cluster, placement);
    for (const auto& [op, r] : base.source_rates) {
      sim.SetSourceRate(op, r);
    }
    sim.RunFor(60);
    double from = sim.time_s();
    sim.RunFor(120);
    double to = sim.time_s();
    QuerySummary overall = sim.Summarize(from, to);
    for (size_t qi = 0; qi < base.query_names.size(); ++qi) {
      double thr = 0.0;
      double bp = 0.0;
      for (OperatorId s : base.query_sources[qi]) {
        thr += sim.OperatorEmitRate(s, from, to);
        bp += sim.OperatorBackpressure(s, from, to) / base.query_sources[qi].size();
      }
      stats[qi].thr.push_back(thr);
      stats[qi].bp.push_back(bp * 100.0);
      stats[qi].lat.push_back(overall.latency_s);
    }
  };

  PlacementPolicy policies[3] = {PlacementPolicy::kCaps, PlacementPolicy::kFlinkDefault,
                                 PlacementPolicy::kFlinkEvenly};
  for (PlacementPolicy policy : policies) {
    std::vector<PerQueryStats> stats(base.query_names.size());
    if (policy == PlacementPolicy::kCaps) {
      // Global placement over the merged graph, computed once (deterministic).
      run_sim(caps_deployment.placement, stats);
    } else {
      // Sequential per-query deployment in randomized submission order.
      for (int run = 0; run < kRuns; ++run) {
        Rng rng(static_cast<uint64_t>(run) + 1);
        std::vector<size_t> order(base.query_names.size());
        std::iota(order.begin(), order.end(), 0);
        rng.Shuffle(order);
        // Place each query's tasks into the remaining free slots, one query at a time, by
        // restricting the policy to a sub-cluster view via a running slot-usage vector.
        Placement placement(caps_deployment.physical.num_tasks());
        std::vector<int> used(static_cast<size_t>(cluster.num_workers()), 0);
        for (size_t qi : order) {
          // Collect this query's tasks.
          std::vector<TaskId> tasks;
          for (const auto& t : caps_deployment.physical.tasks()) {
            if (t.op >= base.offsets[qi] &&
                t.op < base.offsets[qi] + base.op_counts[qi]) {
              tasks.push_back(t.id);
            }
          }
          rng.Shuffle(tasks);
          if (policy == PlacementPolicy::kFlinkDefault) {
            WorkerId w = 0;
            for (TaskId t : tasks) {
              while (used[static_cast<size_t>(w)] >= cluster.worker(w).spec.slots) {
                ++w;
              }
              placement.Assign(t, w);
              ++used[static_cast<size_t>(w)];
            }
          } else {
            for (TaskId t : tasks) {
              WorkerId best = 0;
              for (WorkerId w = 0; w < cluster.num_workers(); ++w) {
                if (used[static_cast<size_t>(w)] < cluster.worker(w).spec.slots &&
                    used[static_cast<size_t>(w)] < used[static_cast<size_t>(best)]) {
                  best = w;
                }
              }
              placement.Assign(t, best);
              ++used[static_cast<size_t>(best)];
            }
          }
        }
        run_sim(placement, stats);
      }
    }

    std::printf("--- policy: %s ---\n", PolicyName(policy));
    std::printf("%-14s %-10s %-26s %-22s %-10s\n", "query", "target", "throughput (med [min..max])",
                "bp%% (med [min..max])", "met");
    int met = 0;
    for (size_t qi = 0; qi < base.query_names.size(); ++qi) {
      BoxSummary t = Summarize(stats[qi].thr);
      BoxSummary b = Summarize(stats[qi].bp);
      bool ok = t.median >= 0.95 * base.query_targets[qi];
      met += ok ? 1 : 0;
      std::printf("%-14s %-10.0f %8.0f [%7.0f..%7.0f]   %6.1f [%5.1f..%5.1f]   %s\n",
                  base.query_names[qi].c_str(), base.query_targets[qi], t.median, t.min, t.max,
                  b.median, b.min, b.max, ok ? "yes" : "NO");
    }
    std::printf("queries meeting target: %d / %zu\n\n", met, base.query_names.size());
  }
  std::printf("paper: CAPSys 6/6, default 3/6, evenly 1/6.\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
