// Microbenchmarks (google-benchmark) for the hot kernels on the placement and simulation
// paths: the contention solve, cost evaluation, greedy construction, find-first search, one
// simulator tick, and the state store. These are the per-decision / per-tick costs that
// determine how large a deployment the controller can manage online.
#include <benchmark/benchmark.h>

#include "src/caps/cost_model.h"
#include "src/caps/greedy.h"
#include "src/caps/search.h"
#include "src/common/rng.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"
#include "src/statestore/state_store.h"

namespace capsys {
namespace {

struct Q3Fixture {
  QuerySpec q = BuildQ3Inf();
  Cluster cluster{4, WorkerSpec::R5dXlarge(4)};
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  std::vector<ResourceVector> demands =
      TaskDemands(graph, PropagateRates(q.graph, q.source_rates));
  CostModel model{graph, cluster, demands};
};

void BM_SolveWorker(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  WorkerSpec spec = WorkerSpec::R5dXlarge(n);
  std::vector<TaskLoad> loads;
  for (int i = 0; i < n; ++i) {
    TaskLoad l;
    l.cpu_per_record = 1e-4;
    l.io_per_record = 5000;
    l.net_per_record = 2000;
    l.desired_rate = 5000;
    l.stateful = i % 2 == 0;
    l.gc_fraction = i % 3 == 0 ? 0.3 : 0.0;
    loads.push_back(l);
  }
  ContentionParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveWorker(spec, params, loads));
  }
}
BENCHMARK(BM_SolveWorker)->Arg(4)->Arg(16)->Arg(64);

void BM_CostModelEvaluate(benchmark::State& state) {
  Q3Fixture f;
  Placement plan = GreedyBalancedPlacement(f.model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.Cost(plan));
  }
}
BENCHMARK(BM_CostModelEvaluate);

void BM_GreedyPlacement(benchmark::State& state) {
  Q3Fixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyBalancedPlacement(f.model));
  }
}
BENCHMARK(BM_GreedyPlacement);

void BM_FindFirstSearch(benchmark::State& state) {
  Q3Fixture f;
  SearchOptions options;
  options.alpha = ResourceVector{0.5, 0.5, 0.8};
  options.find_first = true;
  for (auto _ : state) {
    CapsSearch search(f.model, options);
    benchmark::DoNotOptimize(search.Run());
  }
}
BENCHMARK(BM_FindFirstSearch);

void BM_ExhaustiveEnumeration(benchmark::State& state) {
  Q3Fixture f;
  for (auto _ : state) {
    SearchOptions options;
    options.reorder = false;
    CapsSearch search(f.model, options);
    benchmark::DoNotOptimize(search.Run());
  }
  state.SetItemsProcessed(state.iterations() * 950);  // plans per enumeration
}
BENCHMARK(BM_ExhaustiveEnumeration);

void BM_SimulatorTick(benchmark::State& state) {
  Q3Fixture f;
  FluidSimulator sim(f.graph, f.cluster, GreedyBalancedPlacement(f.model));
  sim.SetAllSourceRates(f.q.TotalTargetRate());
  sim.RunFor(5.0);  // warm
  for (auto _ : state) {
    sim.Step();
  }
  state.SetItemsProcessed(state.iterations() * f.graph.num_tasks());
}
BENCHMARK(BM_SimulatorTick);

void BM_StateStorePut(benchmark::State& state) {
  StateStore store;
  Rng rng(1);
  int i = 0;
  for (auto _ : state) {
    store.Put("key" + std::to_string(i++ % 10000), "value-payload-0123456789");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateStorePut);

void BM_StateStoreGet(benchmark::State& state) {
  StateStore store;
  for (int i = 0; i < 10000; ++i) {
    store.Put("key" + std::to_string(i), "value-payload-0123456789");
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get("key" + std::to_string(i++ % 10000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateStoreGet);

void BM_RatePropagation(benchmark::State& state) {
  QuerySpec q = BuildQ2Join();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PropagateRates(q.graph, q.source_rates));
  }
}
BENCHMARK(BM_RatePropagation);

}  // namespace
}  // namespace capsys

BENCHMARK_MAIN();
