// Microbenchmarks (google-benchmark) for the hot kernels on the placement and simulation
// paths: the contention solve, cost evaluation, greedy construction, find-first search, one
// simulator tick, and the state store. These are the per-decision / per-tick costs that
// determine how large a deployment the controller can manage online.
#include <benchmark/benchmark.h>

#include <chrono>

#include "bench/perf_json.h"
#include "src/caps/cost_model.h"
#include "src/caps/greedy.h"
#include "src/caps/search.h"
#include "src/common/logging.h"
#include "src/common/rng.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"
#include "src/statestore/state_store.h"

namespace capsys {
namespace {

struct Q3Fixture {
  QuerySpec q = BuildQ3Inf();
  Cluster cluster{4, WorkerSpec::R5dXlarge(4)};
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  std::vector<ResourceVector> demands =
      TaskDemands(graph, PropagateRates(q.graph, q.source_rates));
  CostModel model{graph, cluster, demands};
};

void BM_SolveWorker(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  WorkerSpec spec = WorkerSpec::R5dXlarge(n);
  std::vector<TaskLoad> loads;
  for (int i = 0; i < n; ++i) {
    TaskLoad l;
    l.cpu_per_record = 1e-4;
    l.io_per_record = 5000;
    l.net_per_record = 2000;
    l.desired_rate = 5000;
    l.stateful = i % 2 == 0;
    l.gc_fraction = i % 3 == 0 ? 0.3 : 0.0;
    loads.push_back(l);
  }
  ContentionParams params;
  for (auto _ : state) {
    benchmark::DoNotOptimize(SolveWorker(spec, params, loads));
  }
}
BENCHMARK(BM_SolveWorker)->Arg(4)->Arg(16)->Arg(64);

void BM_CostModelEvaluate(benchmark::State& state) {
  Q3Fixture f;
  Placement plan = GreedyBalancedPlacement(f.model);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.Cost(plan));
  }
}
BENCHMARK(BM_CostModelEvaluate);

void BM_GreedyPlacement(benchmark::State& state) {
  Q3Fixture f;
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyBalancedPlacement(f.model));
  }
}
BENCHMARK(BM_GreedyPlacement);

void BM_FindFirstSearch(benchmark::State& state) {
  Q3Fixture f;
  SearchOptions options;
  options.alpha = ResourceVector{0.5, 0.5, 0.8};
  options.find_first = true;
  for (auto _ : state) {
    CapsSearch search(f.model, options);
    benchmark::DoNotOptimize(search.Run());
  }
}
BENCHMARK(BM_FindFirstSearch);

void BM_ExhaustiveEnumeration(benchmark::State& state) {
  Q3Fixture f;
  for (auto _ : state) {
    SearchOptions options;
    options.reorder = false;
    CapsSearch search(f.model, options);
    benchmark::DoNotOptimize(search.Run());
  }
  state.SetItemsProcessed(state.iterations() * 950);  // plans per enumeration
}
BENCHMARK(BM_ExhaustiveEnumeration);

void BM_SimulatorTick(benchmark::State& state) {
  Q3Fixture f;
  FluidSimulator sim(f.graph, f.cluster, GreedyBalancedPlacement(f.model));
  sim.SetAllSourceRates(f.q.TotalTargetRate());
  sim.RunFor(5.0);  // warm
  for (auto _ : state) {
    sim.Step();
  }
  state.SetItemsProcessed(state.iterations() * f.graph.num_tasks());
}
BENCHMARK(BM_SimulatorTick);

void BM_StateStorePut(benchmark::State& state) {
  StateStore store;
  Rng rng(1);
  int i = 0;
  for (auto _ : state) {
    store.Put("key" + std::to_string(i++ % 10000), "value-payload-0123456789");
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateStorePut);

void BM_StateStoreGet(benchmark::State& state) {
  StateStore store;
  for (int i = 0; i < 10000; ++i) {
    store.Put("key" + std::to_string(i), "value-payload-0123456789");
  }
  int i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(store.Get("key" + std::to_string(i++ % 10000)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StateStoreGet);

void BM_RatePropagation(benchmark::State& state) {
  QuerySpec q = BuildQ2Join();
  for (auto _ : state) {
    benchmark::DoNotOptimize(PropagateRates(q.graph, q.source_rates));
  }
}
BENCHMARK(BM_RatePropagation);

// --- CAPSYS_BENCH_JSON mode: hand-timed scenarios for the perf-regression harness --------

double NowS() {
  return std::chrono::duration<double>(std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Best-of-`reps` timing: the minimum over repetitions filters scheduler noise, which
// matters because the CI perf-smoke job compares single runs against a committed baseline.
template <typename F>
double BestOfNs(F&& fn, int iters, int reps) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    double t0 = NowS();
    for (int i = 0; i < iters; ++i) {
      fn();
    }
    best = std::min(best, (NowS() - t0) * 1e9 / iters);
  }
  return best;
}

int RunPerfJson() {
  std::vector<std::pair<std::string, double>> entries;

  {  // One warmed simulator tick on Q3-inf (4x4 cluster) — the steady-state hot loop.
    Q3Fixture f;
    FluidSimulator sim(f.graph, f.cluster, GreedyBalancedPlacement(f.model));
    sim.SetAllSourceRates(f.q.TotalTargetRate());
    sim.RunFor(5.0);
    BestOfNs([&] { sim.Step(); }, 20000, 1);  // warm
    entries.emplace_back("sim_tick_ns", BestOfNs([&] { sim.Step(); }, 100000, 5));
  }

  {  // The per-worker contention solve in isolation (16 co-located tasks, arena variant).
    WorkerSpec spec = WorkerSpec::R5dXlarge(16);
    std::vector<TaskLoad> loads;
    for (int i = 0; i < 16; ++i) {
      TaskLoad l;
      l.cpu_per_record = 1e-4;
      l.io_per_record = 5000;
      l.net_per_record = 2000;
      l.desired_rate = 5000;
      l.stateful = i % 2 == 0;
      l.gc_fraction = i % 3 == 0 ? 0.3 : 0.0;
      loads.push_back(l);
    }
    ContentionParams params;
    WorkerScratch scratch;
    WorkerAllocation out;
    entries.emplace_back("solve_worker16_ns", BestOfNs([&] {
                           SolveWorkerInPlace(spec, params, loads, scratch, out);
                           benchmark::DoNotOptimize(out.utilization.cpu);
                         },
                         20000, 5));
  }

  {  // Single-threaded exhaustive enumeration of Q3 (950 plans) — search nodes/s, plans/s.
    Q3Fixture f;
    double nodes_per_s = 0.0;
    double plans_per_s = 0.0;
    for (int rep = 0; rep < 5; ++rep) {
      SearchOptions options;
      options.reorder = false;
      CapsSearch search(f.model, options);
      SearchResult r = search.Run();
      nodes_per_s = std::max(nodes_per_s, r.stats.nodes / r.stats.elapsed_s);
      plans_per_s = std::max(plans_per_s, r.stats.leaves / r.stats.elapsed_s);
    }
    entries.emplace_back("search_nodes_per_s", nodes_per_s);
    entries.emplace_back("search_plans_per_s", plans_per_s);
  }

  benchjson::Merge(entries);
  return 0;
}

}  // namespace
}  // namespace capsys

int main(int argc, char** argv) {
  capsys::InitLoggingFromEnv();
  if (capsys::benchjson::Enabled()) {
    return capsys::RunPerfJson();
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
