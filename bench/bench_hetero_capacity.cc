// Extension bench: heterogeneous clusters and capacity normalization.
//
// The paper's cost model balances *absolute* loads, which is exactly right for its
// homogeneous clusters. On mixed hardware, equal absolute loads over-burden small workers.
// This bench deploys Q1-sliding on a cluster of 2 big (m5d.2xlarge) + 4 small (r5d.xlarge)
// workers and compares:
//   - CAPS with the paper's absolute-load model,
//   - CAPS with the capacity-normalized model (extension),
//   - Flink evenly (count balancing).
#include <cstdio>

#include "src/caps/auto_tuner.h"
#include "src/caps/cost_model.h"
#include "src/caps/greedy.h"
#include "src/caps/search.h"
#include "src/baselines/flink_strategies.h"
#include "src/common/logging.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

Placement SolveWith(const CostModel& model) {
  AutoTuneResult tuned = AutoTuneThresholds(model);
  SearchOptions options;
  options.alpha = tuned.feasible ? tuned.alpha : ResourceVector{1.0, 1.0, 1.0};
  options.timeout_s = 5.0;
  SearchResult r = CapsSearch(model, options).Run();
  return r.found ? r.best.placement : GreedyBalancedPlacement(model);
}

int Main() {
  InitLoggingFromEnv();
  std::vector<WorkerSpec> specs = {WorkerSpec::M5d2xlarge(8), WorkerSpec::M5d2xlarge(8),
                                   WorkerSpec::R5dXlarge(4), WorkerSpec::R5dXlarge(4),
                                   WorkerSpec::R5dXlarge(4), WorkerSpec::R5dXlarge(4)};
  Cluster cluster(std::move(specs));
  QuerySpec q = BuildQ1Sliding();
  q.ScaleRates(2.3);  // sized so the small workers' disks are the scarce resource
  q.graph.SetParallelism({2, 6, 10, 1});
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  auto demands = TaskDemands(graph, rates);

  std::printf("=== Heterogeneous cluster: Q1-sliding on 2x m5d.2xlarge + 4x r5d.xlarge ===\n");
  std::printf("target %.0f rec/s, %d tasks on %d slots\n\n", q.TotalTargetRate(),
              graph.num_tasks(), cluster.total_slots());

  auto evaluate = [&](const char* name, const Placement& plan) {
    FluidSimulator sim(graph, cluster, plan);
    for (const auto& [op, r] : q.source_rates) {
      sim.SetSourceRate(op, r);
    }
    QuerySummary s = sim.RunMeasured(60, 120);
    // Window tasks (op 2) on big vs small workers.
    int on_big = 0;
    for (TaskId t : graph.TasksOf(2)) {
      on_big += plan.WorkerOf(t) < 2 ? 1 : 0;
    }
    std::printf("%-18s throughput %-8.0f bp %5.1f%%  window tasks on big workers: %d/10\n",
                name, s.throughput, s.backpressure * 100.0, on_big);
  };

  {
    CostModel absolute(graph, cluster, demands);
    evaluate("caps (absolute)", SolveWith(absolute));
  }
  {
    CostModelOptions options;
    options.normalize_by_capacity = true;
    CostModel normalized(graph, cluster, demands, options);
    evaluate("caps (capacity)", SolveWith(normalized));
  }
  {
    Rng rng(2);
    evaluate("evenly", FlinkEvenlyPlacement(graph, cluster, rng));
  }
  std::printf("\nexpected: capacity normalization routes proportionally more of the\n"
              "I/O-heavy window tasks to the big workers and sustains a higher rate.\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
