// Reproduces Figure 3 (paper §3.3): effect of co-locating resource-intensive tasks.
//
//   (a) compute: Q3-inf, co-location degree of the *inference* operator's tasks
//   (b) disk I/O: Q2-join, co-location degree of the *tumbling window join* tasks
//   (c) network: Q3-inf with worker NICs capped at 1 Gbps, co-location of traffic-heavy
//       (decode) tasks
//
// For each experiment we select 9 plans — 3 with the lowest achievable co-location degree
// (P1-P3), 3 at an intermediate degree (P4-P6), and 3 at the highest degree (P7-P9) — and
// report throughput and source backpressure per group.
//
// Paper reference points: (b) low ~110k rec/s at <=4% bp vs high ~91k rec/s at 32% bp;
// (c) low 1555 rec/s at 12% bp vs high 1185 rec/s at 37% bp; (a) low contention
// consistently beats high contention.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/caps/cost_model.h"
#include "src/caps/search.h"
#include "src/common/logging.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

struct GroupResult {
  const char* label;
  double throughput = 0.0;
  double backpressure = 0.0;
  int degree = 0;
};

void RunExperiment(const char* title, const QuerySpec& q, const Cluster& cluster,
                   OperatorId focus_op, const char* paper_note) {
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  auto plans = EnumerateAllPlans(model);

  // Bucket plans by the focus operator's co-location degree.
  std::vector<std::pair<int, size_t>> by_degree;  // (degree, plan index)
  for (size_t i = 0; i < plans.size(); ++i) {
    by_degree.emplace_back(plans[i].placement.ColocationDegree(graph, cluster, focus_op), i);
  }
  std::sort(by_degree.begin(), by_degree.end());
  int lo_degree = by_degree.front().first;
  int hi_degree = by_degree.back().first;
  int mid_degree = (lo_degree + hi_degree) / 2;

  // The paper manually selects plans that vary ONLY the focus operator's contention. We
  // emulate this: among the plans at a given focus degree, take the 3 that keep every
  // *other* operator maximally balanced (minimal summed co-location degree).
  auto pick = [&](int degree) {
    std::vector<std::pair<int, size_t>> candidates;  // (other-op imbalance, plan index)
    for (const auto& [d, idx] : by_degree) {
      if (d != degree) {
        continue;
      }
      int score = 0;
      for (const auto& op : q.graph.operators()) {
        if (op.id != focus_op && op.parallelism > 1) {
          score += plans[idx].placement.ColocationDegree(graph, cluster, op.id);
        }
      }
      candidates.emplace_back(score, idx);
    }
    std::sort(candidates.begin(), candidates.end());
    std::vector<size_t> picked;
    for (size_t i = 0; i < candidates.size() && picked.size() < 3; ++i) {
      picked.push_back(candidates[i].second);
    }
    return picked;
  };

  std::printf("--- %s ---\n", title);
  std::printf("focus operator: %s, plan population: %zu, degrees %d..%d\n",
              q.graph.op(focus_op).name.c_str(), plans.size(), lo_degree, hi_degree);
  double target = q.TotalTargetRate();

  struct Group {
    const char* label;
    int degree;
  };
  Group groups[3] = {{"low  (P1-P3)", lo_degree},
                     {"med  (P4-P6)", mid_degree},
                     {"high (P7-P9)", hi_degree}};
  std::printf("%-14s %-8s %-14s %-10s\n", "contention", "degree", "throughput", "bp(%)");
  for (const auto& g : groups) {
    auto picked = pick(g.degree);
    if (picked.empty()) {
      continue;
    }
    double thr = 0.0;
    double bp = 0.0;
    for (size_t idx : picked) {
      FluidSimulator sim(graph, cluster, plans[idx].placement);
      sim.SetAllSourceRates(0);  // overridden per source below
      for (const auto& [op, r] : q.source_rates) {
        sim.SetSourceRate(op, r);
      }
      QuerySummary s = sim.RunMeasured(/*warmup_s=*/60, /*measure_s=*/120);
      thr += s.throughput / picked.size();
      bp += s.backpressure / picked.size();
    }
    std::printf("%-14s %-8d %-14.0f %-10.1f\n", g.label, g.degree, thr, bp * 100.0);
  }
  std::printf("target rate: %.0f rec/s. paper: %s\n\n", target, paper_note);
}

int Main() {
  InitLoggingFromEnv();
  std::printf("=== Figure 3: co-locating resource-intensive tasks ===\n\n");

  // (a) Compute contention: Q3-inf, inference operator (OperatorId 2).
  {
    QuerySpec q = BuildQ3Inf();
    Cluster cluster(4, WorkerSpec::R5dXlarge(4));
    RunExperiment("(a) compute-intensive: Q3-inf / inference", q, cluster, /*focus_op=*/2,
                  "low-contention plans consistently achieve higher throughput, lower bp");
  }
  // (b) I/O contention: Q2-join, tumbling window join (OperatorId 4).
  {
    QuerySpec q = BuildQ2Join();
    Cluster cluster(4, WorkerSpec::R5dXlarge(4));
    RunExperiment("(b) I/O-intensive: Q2-join / tumbling window join", q, cluster,
                  /*focus_op=*/4, "low ~110k rec/s, bp<=4%; high ~91k rec/s, bp ~32%");
  }
  // (c) Network contention: Q3-inf with 1 Gbps NICs, decode operator (OperatorId 1).
  {
    QuerySpec q = BuildQ3Inf();
    Cluster cluster(4, WorkerSpec::R5dXlarge(4));
    cluster.SetNetBandwidth(125e6);  // 1 Gbps outbound cap
    RunExperiment("(c) network-intensive: Q3-inf @ 1 Gbps / decode", q, cluster,
                  /*focus_op=*/1, "low 1555 rec/s @ 12% bp; high 1185 rec/s @ 37% bp");
  }
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
