// Reproduces Table 4 (paper §6.4.1): effect of task placement on auto-scaling accuracy.
//
// Q3-inf runs under DS2 with four controlled rate steps (x2, x2, /2, /2 from the initial
// rate). The starting configuration is manually tuned to the optimal parallelism and
// placement so DS2 initially sees clean metrics. After every rate change DS2 rescales and
// the placement policy computes the new plan. A step passes "Throughput" when the target
// rate is met and "Resources" when DS2 did not over-provision.
//
// Paper reference: CAPSys passes all four steps on both criteria; `default` and `evenly`
// start well but subsequently miss targets and over-provision as bad placements corrupt
// DS2's metrics.
#include <cstdio>
#include <vector>

#include "src/common/logging.h"
#include "src/controller/scaling_experiments.h"

namespace capsys {
namespace {

int Main() {
  InitLoggingFromEnv();
  Cluster cluster(8, WorkerSpec::R5dXlarge(8));
  QuerySpec q = BuildQ3Inf();
  double base = 720.0;  // paper's initial target rate
  std::vector<double> steps = {base, base * 2, base * 4, base * 2, base};

  std::printf("=== Table 4: auto-scaling accuracy (Q3-inf, DS2, rate x2 x2 /2 /2) ===\n\n");
  std::printf("%-10s", "policy");
  for (size_t s = 1; s < steps.size(); ++s) {
    std::printf(" | step#%zu thr res", s);
  }
  std::printf("\n");

  for (PlacementPolicy policy : {PlacementPolicy::kCaps, PlacementPolicy::kFlinkDefault,
                                 PlacementPolicy::kFlinkEvenly}) {
    ScalingExperimentOptions options;
    options.policy = policy;
    options.start_optimal = true;
    options.step_duration_s = 240.0;
    options.seed = 7;
    ScalingRun run = RunScalingExperiment(q, cluster, steps, options);
    std::printf("%-10s", PolicyName(policy));
    // Step 0 establishes the tuned starting configuration; steps 1..4 are evaluated.
    for (size_t s = 1; s < run.steps.size(); ++s) {
      const auto& e = run.steps[s];
      std::printf(" |   %s   %s    ", e.met_target ? "Y" : "x",
                  e.overprovisioned ? "x" : "Y");
    }
    std::printf("\n");
    for (size_t s = 1; s < run.steps.size(); ++s) {
      std::printf("    step#%zu: %s\n", s, run.steps[s].ToString().c_str());
    }
  }
  std::printf("\npaper: CAPSys Y/Y on all steps; default x on throughput for steps 1-3 and\n"
              "over-provisions steps 2-3; evenly over-provisions from step 2 and misses the\n"
              "target from step 3.\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
