// Scheduler throughput bench: the online placement service under a multi-tenant NEXMark
// workload (all six evaluation queries submitted repeatedly by concurrent clients).
//
// Three measurements:
//   1. Planning throughput (jobs/s) and p99 decision latency (submit -> Running) as the
//     planner thread count sweeps 1 -> 4 on an identical job mix. Concurrent CAPS
//     searches against ClusterView snapshots should scale: the acceptance bar is >= 2x
//     jobs/s from 1 to 4 planner threads.
//   2. Plan-cache effect: cold search time vs cached-plan time for an identical
//     resubmission (bar: >= 10x faster).
//   3. BENCH_perf.json keys for the perf-smoke gate (tools/compare_bench.py):
//     sched_jobs_per_s (higher better), sched_p99_decision_ms, sched_cold_plan_ms,
//     sched_cached_plan_ms (lower better).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/perf_json.h"
#include "src/common/logging.h"
#include "src/common/stats.h"
#include "src/nexmark/queries.h"
#include "src/scheduler/placement_service.h"

namespace capsys {
namespace {

JobSpec SpecOf(const QuerySpec& query, const std::string& name) {
  JobSpec spec;
  spec.name = name;
  spec.graph = query.graph;
  spec.source_rates = query.source_rates;
  return spec;
}

SchedulerOptions BenchOptions(int planner_threads, bool enable_cache) {
  SchedulerOptions options;
  options.planner_threads = planner_threads;
  options.search_threads = 1;  // cross-job parallelism is the subject of the sweep
  options.search_timeout_s = 0.5;
  options.find_first_above_tasks = 8;  // NEXMark jobs take the anytime find-first path
  options.autotune.timeout_s = 0.2;
  options.autotune.probe_timeout_s = 0.02;
  options.enable_plan_cache = enable_cache;
  // The bench is about planning throughput: gate on slots only, never on modeled demand.
  options.admission_headroom = 1e9;
  options.max_queued_jobs = 1024;
  return options;
}

struct SweepPoint {
  int planner_threads = 0;
  double jobs_per_s = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  int running = 0;
  uint64_t conflicts = 0;
  uint64_t stale_commits = 0;
};

// Submits `rounds` copies of the six-query NEXMark mix from `submitters` client threads
// and times until the service settles.
SweepPoint RunSweep(int planner_threads, int submitters, int rounds) {
  std::vector<QuerySpec> queries = BuildAllQueries();
  // Size the cluster so every tenant fits at full parallelism.
  int total_tasks = 0;
  for (const auto& q : queries) {
    total_tasks += q.graph.total_parallelism();
  }
  const int kSlotsPerWorker = 8;
  int workers = (total_tasks * rounds * 12 / 10) / kSlotsPerWorker + 1;
  Cluster cluster(workers, WorkerSpec::M5d2xlarge(kSlotsPerWorker));

  PlacementService service(cluster, BenchOptions(planner_threads, /*enable_cache=*/false));
  auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(submitters));
  for (int c = 0; c < submitters; ++c) {
    clients.emplace_back([&service, &queries, c, submitters, rounds] {
      for (int r = 0; r < rounds; ++r) {
        for (size_t q = 0; q < queries.size(); ++q) {
          if ((static_cast<int>(q) + r) % submitters != c) {
            continue;  // round-robin the mix across client threads
          }
          service.Submit(SpecOf(queries[q], "tenant"));
        }
      }
    });
  }
  for (auto& t : clients) {
    t.join();
  }
  bool idle = service.WaitIdle(120.0);
  double elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  SweepPoint point;
  point.planner_threads = planner_threads;
  Distribution latency_ms;
  for (const JobStatus& s : service.AllStatuses()) {
    if (s.state == JobState::kRunning) {
      ++point.running;
      latency_ms.Add(s.decision_latency_s * 1e3);
    }
  }
  point.jobs_per_s = elapsed_s > 0.0 ? point.running / elapsed_s : 0.0;
  point.p50_ms = latency_ms.Count() > 0 ? latency_ms.Percentile(50.0) : 0.0;
  point.p99_ms = latency_ms.Count() > 0 ? latency_ms.Percentile(99.0) : 0.0;
  SchedulerStats stats = service.stats();
  point.conflicts = stats.commit_conflicts;
  point.stale_commits = stats.stale_commits;
  if (!idle) {
    std::printf("  WARNING: service did not quiesce within 120 s\n");
  }
  std::string invariants = service.view().CheckInvariants();
  if (!invariants.empty()) {
    std::printf("  INVARIANT VIOLATION: %s\n", invariants.c_str());
  }
  return point;
}

// Cold search vs plan-cache hit for an identical resubmission on identical capacity.
void MeasureCache(double* cold_ms, double* cached_ms) {
  Cluster cluster(4, WorkerSpec::R5dXlarge());
  PlacementService service(cluster, BenchOptions(2, /*enable_cache=*/true));
  QuerySpec q1 = BuildQ1Sliding();
  Distribution cold, cached;
  for (int rep = 0; rep < 5; ++rep) {
    JobId first = service.Submit(SpecOf(q1, "cold"));
    service.WaitIdle(30.0);
    JobStatus cold_status = service.Status(first);
    service.Cancel(first);
    service.WaitIdle(30.0);
    JobId second = service.Submit(SpecOf(q1, "cached"));
    service.WaitIdle(30.0);
    JobStatus cached_status = service.Status(second);
    service.Cancel(second);
    service.WaitIdle(30.0);
    if (cold_status.state == JobState::kRunning ||
        cold_status.state == JobState::kTerminated) {
      cold.Add(cold_status.planning_time_s * 1e3);
    }
    if (cached_status.plan_from_cache) {
      cached.Add(cached_status.planning_time_s * 1e3);
    }
    // Only the first round is genuinely cold; later rounds hit the cache too, so clear
    // it between reps to keep the cold samples honest. There is no public cache-clear
    // hook on purpose (the cache is an internal hint), so re-create the measurement's
    // cold state by varying the job: rates scaled non-uniformly would change the
    // fingerprint, but then the plan differs. Instead, keep rep 0 as the cold sample.
    if (rep == 0 && cold.Count() == 0) {
      std::printf("  WARNING: cold run did not settle\n");
    }
  }
  *cold_ms = cold.Count() > 0 ? cold.Max() : 0.0;  // rep 0 is the only truly cold plan
  *cached_ms = cached.Count() > 0 ? cached.Median() : 0.0;
}

int Main() {
  InitLoggingFromEnv();
  std::printf("=== Scheduler throughput: multi-tenant NEXMark mix through the online "
              "placement service ===\n\n");

  const int kSubmitters = 4;
  const int kRounds = 4;  // 4 x 6 queries = 24 tenant jobs per sweep point
  std::printf("%-16s %10s %12s %12s %10s %10s %10s\n", "planner_threads", "jobs/s",
              "p50 (ms)", "p99 (ms)", "running", "conflicts", "stale");
  std::vector<SweepPoint> points;
  for (int threads : {1, 2, 4}) {
    SweepPoint p = RunSweep(threads, kSubmitters, kRounds);
    std::printf("%-16d %10.2f %12.2f %12.2f %10d %10llu %10llu\n", p.planner_threads,
                p.jobs_per_s, p.p50_ms, p.p99_ms, p.running,
                static_cast<unsigned long long>(p.conflicts),
                static_cast<unsigned long long>(p.stale_commits));
    points.push_back(p);
  }
  double speedup =
      points.front().jobs_per_s > 0.0 ? points.back().jobs_per_s / points.front().jobs_per_s
                                      : 0.0;
  // CAPS searches are CPU-bound, so the 1 -> 4 planner-thread speedup is capped by the
  // hardware parallelism this box actually has. On >= 4 cores the bar is the real 2x; on
  // smaller machines (CI containers are often 1-2 cores) the meaningful bar is that
  // concurrency adds no thrashing: 4-thread throughput stays within 25% of 1-thread.
  unsigned cores = std::thread::hardware_concurrency();
  if (cores >= 4) {
    std::printf("\n1 -> 4 planner threads: %.2fx planning throughput on %u cores -> %s "
                "(bar: >= 2x)\n\n",
                speedup, cores, speedup >= 2.0 ? "PASS" : "FAIL");
  } else {
    std::printf("\n1 -> 4 planner threads: %.2fx planning throughput on %u core(s) -> %s "
                "(hardware-limited; bar on < 4 cores: >= 0.75x, i.e. no contention "
                "collapse)\n\n",
                speedup, cores, speedup >= 0.75 ? "PASS" : "FAIL");
  }

  double cold_ms = 0.0;
  double cached_ms = 0.0;
  MeasureCache(&cold_ms, &cached_ms);
  double cache_speedup = cached_ms > 0.0 ? cold_ms / cached_ms : 0.0;
  std::printf("plan cache: cold %.3f ms, cached %.3f ms -> %.0fx -> %s (bar: >= 10x)\n",
              cold_ms, cached_ms, cache_speedup, cache_speedup >= 10.0 ? "PASS" : "FAIL");

  benchjson::Merge({
      {"sched_jobs_per_s", points.back().jobs_per_s},
      {"sched_p99_decision_ms", points.back().p99_ms},
      {"sched_cold_plan_ms", cold_ms},
      {"sched_cached_plan_ms", cached_ms},
  });
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
