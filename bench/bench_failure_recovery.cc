// Robustness extension bench: worker-failure recovery. A worker dies mid-run; after a
// heartbeat timeout the controller re-places the query on the surviving workers using the
// same reconfiguration path as auto-scaling. Compares placement policies on post-recovery
// throughput: a contention-aware re-placement absorbs the lost worker's tasks without
// creating hotspots, while the baselines frequently stack them.
#include <cstdio>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/controller/failure_experiments.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

int Main() {
  InitLoggingFromEnv();
  // 6 workers so the survivors can absorb the victim's tasks.
  Cluster cluster(6, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();

  std::printf("=== Failure recovery: Q1-sliding on %s, worker killed at t=120s ===\n\n",
              cluster.ToString().c_str());
  std::printf("%-10s %-8s %-12s %-12s %-12s %-14s\n", "policy", "victim", "before",
              "during-fail", "after", "recovery (s)");
  for (PlacementPolicy policy : {PlacementPolicy::kCaps, PlacementPolicy::kFlinkDefault,
                                 PlacementPolicy::kFlinkEvenly}) {
    FailureExperimentOptions options;
    options.policy = policy;
    options.seed = 5;
    FailureRun run = RunFailureRecoveryExperiment(q, cluster, options);
    std::printf("%-10s w%-7d %-12.0f %-12.0f %-12.0f %s\n", PolicyName(policy), run.victim,
                run.throughput_before, run.throughput_during, run.throughput_after,
                run.recovered ? Sprintf("%.1f", run.recovery_time_s).c_str()
                              : "not recovered");
  }
  std::printf("\nexpected: all policies lose throughput while the worker is down; the\n"
              "contention-aware re-placement restores the target, while baselines may\n"
              "stack the victim's stateful tasks and stay degraded.\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
