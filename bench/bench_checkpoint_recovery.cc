// Robustness extension bench: recovery latency vs. checkpoint interval. Replays one seeded
// single-crash schedule against the chaos controller while sweeping the checkpoint interval
// and the state growth model, and reports how the blackout decomposes into restore + replay
// under exactly-once delivery. The trade-off the sweep exposes is the classic one:
//   - short intervals -> small replay backlog (fast recovery) but frequent snapshot uploads
//     stealing disk bandwidth from processing;
//   - long intervals -> cheap steady state but a long replay after a failure;
//   - larger state -> longer restore phase at every interval.
// MTTR, loss integral, replayed records, and blackout must all grow monotonically with the
// interval for a fixed state size, and with state size for a fixed interval (restore term).
#include <cstdio>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/controller/chaos_experiments.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

int Main() {
  InitLoggingFromEnv();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));
  QuerySpec q = BuildQ1Sliding();

  // One crash, never restored: exactly one recovery per run, so the per-run numbers
  // isolate the checkpoint interval's effect on that single blackout. The crash lands at
  // t=239 s — one tick before a barrier for every interval in the sweep (239 mod
  // {5,15,30,60,120} = {4,14,29,59,119}), so the replay gap grows strictly with the
  // interval instead of aliasing against the barrier phase.
  FaultSchedule schedule;
  schedule.Crash(239.0, 1);

  StateGrowthModel small;
  small.bytes_per_record = 64.0;
  StateGrowthModel large;
  large.bytes_per_record = 64.0 * 16;

  std::printf("=== Recovery latency vs. checkpoint interval (Q1-sliding, crash at 239 s, "
              "exactly-once) ===\n\n");
  std::printf("%-7s %-9s %-6s %-9s %-10s %-10s %-10s %s\n", "state", "interval", "ckpts",
              "mttr", "loss(Mrec)", "replayed", "blackout", "recoveries");
  for (const auto& [state_name, state] :
       {std::pair<const char*, StateGrowthModel>{"small", small}, {"large", large}}) {
    for (double interval_s : {5.0, 15.0, 30.0, 60.0, 120.0}) {
      ChaosExperimentOptions options;
      options.policy = PlacementPolicy::kFlinkEvenly;  // cheap, deterministic re-placement
      options.run_s = 420.0;
      options.seed = 7;
      options.use_checkpointing = true;
      options.exactly_once = true;
      options.checkpoint.interval_s = interval_s;
      options.checkpoint.min_pause_s = 1.0;
      options.state = state;
      ChaosRun run = RunChaosExperiment(q, cluster, schedule, options);
      const TimeSeries* replayed = run.telemetry.Find("chaos.0.replayed_records");
      std::printf("%-7s %-9s %-6d %-9s %-10.2f %-10.0f %-10s %zu\n", state_name,
                  Sprintf("%.0fs", interval_s).c_str(), run.checkpoints_completed,
                  run.mttr_s >= 0 ? Sprintf("%.0fs", run.mttr_s).c_str() : "-",
                  run.throughput_loss / 1e6, run.replayed_records,
                  Sprintf("%.1fs", run.restore_downtime_s).c_str(),
                  replayed != nullptr ? replayed->points().size() : 0u);
    }
    std::printf("\n");
  }
  std::printf(
      "expected: for each state size, replayed records, blackout, MTTR, and the loss\n"
      "integral grow monotonically with the checkpoint interval (a longer gap since the\n"
      "last barrier means a longer replay); for each interval, the large state pays a\n"
      "longer restore phase than the small one. The 5 s interval additionally shows the\n"
      "steady-state cost of checkpointing: snapshot uploads contend with processing I/O.\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
