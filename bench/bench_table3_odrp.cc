// Reproduces Table 3 (paper §6.3): CAPSys vs the ODRP joint parallelism+placement
// optimizer (Cardellini et al.) on Q3-inf, deployed on four c5d.4xlarge workers with 8
// slots each. ODRP runs in three configurations: Default (equal objective weights),
// Weighted (hand-tuned toward throughput/resource efficiency), and Latency (response time
// only). Each resulting plan is executed and backpressure, throughput, latency, slots, and
// the decision time are reported.
//
// Paper reference: CAPSys 0.5% bp / 4236 rec/s / 27 slots / 0.2 s decision;
// ODRP-Default 90% bp / 680 rec/s / 14 slots / 1636 s; ODRP-Weighted 48% / 3396 / 26 /
// 4037 s; ODRP-Latency 15% / 4043 / 32 / 1607 s. Our ODRP solver uses a configurable
// budget instead of running for an hour; it reports best-so-far plus whether the proof of
// optimality was cut short — the orders-of-magnitude decision-time gap is structural.
#include <cstdio>

#include "src/common/logging.h"
#include "src/common/str.h"
#include "src/controller/deployment.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/odrp/odrp.h"

namespace capsys {
namespace {

struct Row {
  const char* name;
  double bp = 0.0;
  double throughput = 0.0;
  double latency = 0.0;
  int slots = 0;
  double decision_s = 0.0;
  bool budget_hit = false;
};

Row Evaluate(const char* name, const LogicalGraph& graph, const Placement& placement,
             const Cluster& cluster, const std::map<OperatorId, double>& rates,
             double decision_s, bool budget_hit) {
  PhysicalGraph physical = PhysicalGraph::Expand(graph);
  FluidSimulator sim(physical, cluster, placement);
  for (const auto& [op, r] : rates) {
    sim.SetSourceRate(op, r);
  }
  QuerySummary s = sim.RunMeasured(/*warmup_s=*/60, /*measure_s=*/120);
  Row row;
  row.name = name;
  row.bp = s.backpressure * 100.0;
  row.throughput = s.throughput;
  row.latency = s.latency_s;
  row.slots = physical.num_tasks();
  row.decision_s = decision_s;
  row.budget_hit = budget_hit;
  return row;
}

int Main() {
  InitLoggingFromEnv();
  Cluster cluster(4, WorkerSpec::C5d4xlarge(8));
  QuerySpec q = BuildQ3Inf();
  // The c5d.4xlarge cluster has 4x the r5d CPU; scale the target accordingly (the paper
  // targets ~4.2k rec/s on this setup).
  q.ScaleRates(2.65);
  std::printf("=== Table 3: CAPSys vs ODRP, Q3-inf on %s (target %.0f rec/s) ===\n\n",
              cluster.ToString().c_str(), q.TotalTargetRate());

  std::vector<Row> rows;

  // --- CAPSys: profile + DS2 sizing + CAPS placement --------------------------------------
  {
    DeployOptions options;
    options.policy = PlacementPolicy::kCaps;
    options.use_ds2_sizing = true;
    CapsysController controller(cluster, options);
    Deployment d = controller.Deploy(q);
    rows.push_back(Evaluate("CAPSys", d.graph, d.placement, cluster, d.source_rates,
                            d.decision_time_s, false));
  }

  // --- ODRP configurations -----------------------------------------------------------------
  struct Config {
    const char* name;
    OdrpWeights weights;
  };
  Config configs[3] = {{"ODRP-Default", OdrpWeights::Default()},
                       {"ODRP-Weighted", OdrpWeights::Weighted()},
                       {"ODRP-Latency", OdrpWeights::Latency()}};
  for (const auto& cfg : configs) {
    OdrpOptions options;
    options.weights = cfg.weights;
    options.max_parallelism = 16;
    options.timeout_s = 30.0;  // budget; the full proof would run for hours (cf. paper)
    OdrpResult r = SolveOdrp(q.graph, cluster, q.source_rates, options);
    if (!r.found) {
      std::printf("%s: no plan found within budget\n", cfg.name);
      continue;
    }
    LogicalGraph sized = q.graph;
    sized.SetParallelism(r.parallelism);
    rows.push_back(Evaluate(cfg.name, sized, r.placement, cluster, q.source_rates,
                            r.decision_time_s, r.budget_exhausted));
  }

  std::printf("%-15s %-14s %-20s %-14s %-10s %-16s\n", "policy", "backpressure",
              "throughput (rec/s)", "latency (s)", "#slots", "decision time (s)");
  for (const auto& row : rows) {
    std::printf("%-15s %-14s %-20.0f %-14.3f %-10d %.3f%s\n", row.name,
                Sprintf("%.1f%%", row.bp).c_str(), row.throughput, row.latency, row.slots,
                row.decision_s, row.budget_hit ? " (budget hit)" : "");
  }
  std::printf("\npaper: CAPSys 0.5%% / 4236 / 0.292s / 27 slots / 0.2s;\n"
              "ODRP-Default 90%% / 680 / 14 slots / 1636s; Weighted 48%% / 3396 / 26 / 4037s;\n"
              "Latency 15%% / 4043 / 32 / 1607s.\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
