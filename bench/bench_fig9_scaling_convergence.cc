// Reproduces Figure 9 (paper §6.4.2): effect of task placement on auto-scaling
// convergence.
//
// Q3-inf starts with parallelism 1 for every operator; the input rate alternates between a
// low and a high value, and DS2 decides when to rescale. The placement policy computes each
// new plan. We print the throughput/slots timeline, the scaling-decision marks, and the
// total number of decisions per policy.
//
// Paper reference: CAPSys converges within a single step after each rate change and always
// reaches the target without over-provisioning; `default` and `evenly` oscillate and take
// up to 8 additional scaling decisions, occupying up to four extra slots.
#include <cstdio>

#include "src/common/logging.h"
#include "src/controller/scaling_experiments.h"

namespace capsys {
namespace {

int Main() {
  InitLoggingFromEnv();
  Cluster cluster(8, WorkerSpec::R5dXlarge(8));
  QuerySpec q = BuildQ3Inf();
  double low = 800.0;
  double high = 2400.0;
  std::vector<double> steps = {low, high, low, high, low};

  std::printf("=== Figure 9: auto-scaling convergence (Q3-inf, DS2, rate square wave) ===\n\n");

  for (PlacementPolicy policy : {PlacementPolicy::kCaps, PlacementPolicy::kFlinkDefault,
                                 PlacementPolicy::kFlinkEvenly}) {
    ScalingExperimentOptions options;
    options.policy = policy;
    options.start_optimal = false;  // parallelism 1, policy's own initial plan
    options.step_duration_s = 300.0;
    options.seed = 11;
    ScalingRun run = RunScalingExperiment(q, cluster, steps, options);

    std::printf("--- policy: %s — %d scaling decisions ---\n", PolicyName(policy),
                run.total_decisions);
    std::printf("decisions at:");
    for (double t : run.decision_times_s) {
      std::printf(" %.0fs", t);
    }
    std::printf("\n%-8s %-10s %-12s %-6s\n", "t(s)", "target", "throughput", "slots");
    // Print the timeline every 30 s.
    double next_print = 0.0;
    for (const auto& p : run.timeline) {
      if (p.time_s + 1e-9 >= next_print) {
        std::printf("%-8.0f %-10.0f %-12.0f %-6d\n", p.time_s, p.target_rate, p.throughput,
                    p.slots);
        next_print = p.time_s + 30.0;
      }
    }
    int met = 0;
    for (const auto& s : run.steps) {
      met += s.met_target ? 1 : 0;
    }
    std::printf("steps meeting target: %d/%zu, final slots per step:", met, run.steps.size());
    for (const auto& s : run.steps) {
      std::printf(" %d(min %d)", s.slots, s.min_slots);
    }
    std::printf("\n\n");
  }
  std::printf("paper: CAPSys converges in ~1 decision per rate change and meets every\n"
              "target; default/evenly oscillate with up to 8 extra decisions and occupy up\n"
              "to 4 extra slots.\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
