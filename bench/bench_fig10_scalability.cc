// Reproduces Figure 10 (paper §6.5): CAPS performance and scalability on Q2-join, a
// workload with both compute-intensive and state-intensive tasks.
//
//   (a) placement-search time until the first plan satisfying the thresholds, for problem
//       sizes of 16..256 tasks (slots == tasks) under three threshold vectors:
//       alpha1 (cpu .08 / io .15 / net .6), alpha2 (.15/.25/.8), alpha3 (.25/.3/.9).
//       Paper: tens of milliseconds, <= ~100 ms at 256 tasks; tighter thresholds cost more.
//   (b) threshold auto-tuning time for clusters of 8..16 workers with 4..64 slots each
//       (32..1024 tasks), 5 s per-probe timeout. Paper: 1.16 s at 64 tasks up to 125 s at
//       1024 tasks.
//
// The paper runs this on a 20-core CloudLab c220g2 with 20 search threads; thread count is
// configurable below and the search parallelizes across subtrees, but on a single-core host
// the speedup is nominal.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/perf_json.h"
#include "src/caps/auto_tuner.h"
#include "src/caps/cost_model.h"
#include "src/caps/search.h"
#include "src/common/logging.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

constexpr int kThreads = 4;

// Scales Q2-join so its physical graph has exactly `total_tasks` tasks, keeping operator
// proportions via largest-remainder apportionment, with target rates scaled so per-task
// demands stay constant as the problem grows.
QuerySpec ScaledQ2(int total_tasks) {
  QuerySpec q = BuildQ2Join();
  int base_total = q.graph.total_parallelism();
  double factor = static_cast<double>(total_tasks) / base_total;
  std::vector<int> parallelism;
  std::vector<std::pair<double, size_t>> fractions;  // (-frac, op) for descending sort
  int assigned = 0;
  for (const auto& op : q.graph.operators()) {
    double exact = op.parallelism * factor;
    int p = std::max(1, static_cast<int>(exact));
    parallelism.push_back(p);
    fractions.emplace_back(-(exact - p), parallelism.size() - 1);
    assigned += p;
  }
  std::sort(fractions.begin(), fractions.end());
  for (size_t i = 0; assigned < total_tasks; i = (i + 1) % fractions.size()) {
    ++parallelism[fractions[i].second];
    ++assigned;
  }
  q.graph.SetParallelism(parallelism);
  q.ScaleRates(factor);
  return q;
}

// CAPSYS_BENCH_JSON mode: one quick find-first measurement (64 tasks, mid threshold,
// single-threaded) for the perf-regression harness instead of the full figure sweep.
int RunPerfJson() {
  QuerySpec q = ScaledQ2(64);
  Cluster cluster(16, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));
  double best_ms = 1e300;
  double nodes_per_s = 0.0;
  for (int rep = 0; rep < 5; ++rep) {
    SearchOptions options;
    options.alpha = ResourceVector{0.50, 0.35, 0.70};
    options.find_first = true;
    options.num_threads = 1;
    options.timeout_s = 10.0;
    CapsSearch search(model, options);
    SearchResult r = search.Run();
    best_ms = std::min(best_ms, r.stats.elapsed_s * 1e3);
    nodes_per_s = std::max(nodes_per_s, r.stats.nodes / r.stats.elapsed_s);
  }
  benchjson::Merge({{"fig10a_find_first_64_ms", best_ms},
                    {"fig10a_nodes_per_s", nodes_per_s}});
  return 0;
}

int Main() {
  InitLoggingFromEnv();
  if (benchjson::Enabled()) {
    return RunPerfJson();
  }
  std::setvbuf(stdout, nullptr, _IOLBF, 0);
  std::printf("=== Figure 10a: placement-search time vs problem size (find-first) ===\n\n");
  struct Alpha {
    const char* name;
    ResourceVector alpha;
  };
  // Empirically-obtained thresholds pruning at different granularity (the paper's alpha
  // vectors, re-derived for our calibrated Q2-join demands via threshold auto-tuning).
  Alpha alphas[3] = {{"alpha1 (.35/.20/.50)", {0.35, 0.20, 0.50}},
                     {"alpha2 (.50/.35/.70)", {0.50, 0.35, 0.70}},
                     {"alpha3 (.70/.50/.90)", {0.70, 0.50, 0.90}}};
  std::printf("%-10s %-24s %-14s %-12s %-10s\n", "tasks", "thresholds", "time (ms)", "nodes",
              "found");
  for (int tasks : {16, 32, 64, 128, 256}) {
    QuerySpec q = ScaledQ2(tasks);
    Cluster cluster(tasks / 4, WorkerSpec::R5dXlarge(4));
    PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
    auto rates = PropagateRates(q.graph, q.source_rates);
    CostModel model(graph, cluster, TaskDemands(graph, rates));
    for (const auto& a : alphas) {
      SearchOptions options;
      options.alpha = a.alpha;
      options.find_first = true;
      options.num_threads = kThreads;
      options.timeout_s = 10.0;
      CapsSearch search(model, options);
      SearchResult r = search.Run();
      std::printf("%-10d %-24s %-14.2f %-12llu %s\n", tasks, a.name, r.stats.elapsed_s * 1e3,
                  static_cast<unsigned long long>(r.stats.nodes), r.found ? "yes" : "NO");
    }
  }
  std::printf("paper: satisfying plans found within tens of ms, <= ~100 ms at 256 tasks.\n\n");

  std::printf("=== Figure 10b: threshold auto-tuning time ===\n\n");
  std::printf("%-10s %-14s %-10s %-14s %-30s %-10s\n", "workers", "slots/worker", "tasks",
              "time (s)", "alpha", "feasible");
  for (int workers : {8, 16}) {
    for (int slots : {4, 16, 64}) {
      int tasks = workers * slots;
      QuerySpec q = ScaledQ2(tasks);
      Cluster cluster(workers, WorkerSpec::R5dXlarge(slots));
      PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
      auto rates = PropagateRates(q.graph, q.source_rates);
      CostModel model(graph, cluster, TaskDemands(graph, rates));
      AutoTuneOptions options;
      options.timeout_s = 10.0 + tasks / 8.0;
      options.probe_timeout_s = 1.0;  // budget per feasibility probe (paper used 5 s)
      options.num_threads = kThreads;
      AutoTuneResult r = AutoTuneThresholds(model, options);
      std::printf("%-10d %-14d %-10d %-14.2f %-30s %s\n", workers, slots, tasks, r.elapsed_s,
                  r.alpha.ToString().c_str(), r.feasible ? "yes" : "NO");
    }
  }
  std::printf("paper: 1.16 s for 64 tasks (4x16) up to 125 s for 1024 tasks (16x64).\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
