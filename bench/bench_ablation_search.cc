// Ablation study of the CAPS search's design choices (beyond the paper's Table 2):
//
//   - duplicate elimination (§4.3): exact worker-symmetry breaking vs naive enumeration
//   - operator reordering (§4.4.2): resource-ranked outer layers vs graph order
//   - value ordering (this implementation): balanced-first inner-search counts vs ascending
//
// For each combination we report the tree size for a full enumeration under a moderate
// threshold, and the time/nodes until the first satisfying plan — the quantity that matters
// for online reconfiguration.
#include <cstdio>

#include "src/caps/cost_model.h"
#include "src/caps/search.h"
#include "src/common/logging.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"

namespace capsys {
namespace {

int Main() {
  InitLoggingFromEnv();
  QuerySpec q = BuildQ3Inf();
  Cluster cluster(6, WorkerSpec::R5dXlarge(4));
  PhysicalGraph graph = PhysicalGraph::Expand(q.graph);
  auto rates = PropagateRates(q.graph, q.source_rates);
  CostModel model(graph, cluster, TaskDemands(graph, rates));

  std::printf("=== Search ablation: Q3-inf on 6 workers x 4 slots ===\n\n");
  std::printf("--- full enumeration under alpha = (0.5, 0.5, 0.8) ---\n");
  std::printf("%-8s %-10s %-8s %-12s %-12s %-12s\n", "dedup", "reorder", "value", "leaves",
              "nodes", "time (ms)");
  for (bool dedup : {true, false}) {
    for (bool reorder : {true, false}) {
      for (bool value : {true, false}) {
        SearchOptions options;
        options.alpha = ResourceVector{0.5, 0.5, 0.8};
        options.eliminate_duplicates = dedup;
        options.reorder = reorder;
        options.value_ordering = value;
        options.timeout_s = 30.0;
        SearchResult r = CapsSearch(model, options).Run();
        std::printf("%-8s %-10s %-8s %-12llu %-12llu %-12.2f%s\n", dedup ? "on" : "off",
                    reorder ? "on" : "off", value ? "on" : "off",
                    static_cast<unsigned long long>(r.stats.leaves),
                    static_cast<unsigned long long>(r.stats.nodes), r.stats.elapsed_s * 1e3,
                    r.stats.timed_out ? " (timeout)" : "");
      }
    }
  }

  std::printf("\n--- find-first under tight auto-tuned-grade thresholds (0.3, 0.3, 0.5) ---\n");
  std::printf("%-8s %-10s %-8s %-8s %-12s %-12s\n", "dedup", "reorder", "value", "found",
              "nodes", "time (ms)");
  for (bool dedup : {true, false}) {
    for (bool reorder : {true, false}) {
      for (bool value : {true, false}) {
        SearchOptions options;
        options.alpha = ResourceVector{0.3, 0.3, 0.5};
        options.find_first = true;
        options.eliminate_duplicates = dedup;
        options.reorder = reorder;
        options.value_ordering = value;
        options.timeout_s = 10.0;
        SearchResult r = CapsSearch(model, options).Run();
        std::printf("%-8s %-10s %-8s %-8s %-12llu %-12.2f\n", dedup ? "on" : "off",
                    reorder ? "on" : "off", value ? "on" : "off", r.found ? "yes" : "NO",
                    static_cast<unsigned long long>(r.stats.nodes), r.stats.elapsed_s * 1e3);
      }
    }
  }
  std::printf("\nexpected: duplicate elimination shrinks the enumeration by the worker\n"
              "symmetry factor; reordering prunes near the root; value ordering cuts the\n"
              "nodes-to-first-plan when thresholds are tight.\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
