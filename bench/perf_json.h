// Perf-regression harness plumbing shared by the bench binaries.
//
// When the CAPSYS_BENCH_JSON environment variable names a file, a bench binary runs its
// hand-timed perf scenarios and merges the results into that file as a flat JSON object
// {"scenario": number, ...}. Several binaries can append to the same file; the committed
// baseline lives at bench/BENCH_perf.json and tools/compare_bench.py flags regressions.
//
// Keys encode their unit and direction: *_ns / *_ms are latencies (lower is better),
// *_per_s are throughputs (higher is better).
#ifndef BENCH_PERF_JSON_H_
#define BENCH_PERF_JSON_H_

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace capsys {
namespace benchjson {

inline const char* OutputPath() { return std::getenv("CAPSYS_BENCH_JSON"); }

inline bool Enabled() {
  const char* p = OutputPath();
  return p != nullptr && *p != '\0';
}

// Parses a flat {"key": number} object. Tolerant of whitespace/ordering; ignores anything
// that is not a string key followed by a numeric value (we only ever read files written by
// Write below or hand-edited baselines of the same shape).
inline std::map<std::string, double> Load(const std::string& path) {
  std::map<std::string, double> out;
  std::ifstream in(path);
  if (!in) {
    return out;
  }
  std::string text((std::istreambuf_iterator<char>(in)), std::istreambuf_iterator<char>());
  size_t pos = 0;
  while ((pos = text.find('"', pos)) != std::string::npos) {
    size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) {
      break;
    }
    std::string key = text.substr(pos + 1, end - pos - 1);
    size_t colon = text.find_first_not_of(" \t\r\n", end + 1);
    if (colon == std::string::npos || text[colon] != ':') {
      pos = end + 1;
      continue;
    }
    const char* s = text.c_str() + colon + 1;
    char* e = nullptr;
    double v = std::strtod(s, &e);
    if (e != s) {
      out[key] = v;
      pos = static_cast<size_t>(e - text.c_str());
    } else {
      pos = end + 1;
    }
  }
  return out;
}

inline void Write(const std::string& path, const std::map<std::string, double>& values) {
  std::ofstream outf(path, std::ios::trunc);
  outf << "{\n";
  size_t i = 0;
  for (const auto& [k, v] : values) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    outf << "  \"" << k << "\": " << buf << (++i < values.size() ? "," : "") << "\n";
  }
  outf << "}\n";
}

// Merges `entries` into the CAPSYS_BENCH_JSON file (keeping other binaries' keys) and
// echoes them to stdout.
inline void Merge(const std::vector<std::pair<std::string, double>>& entries) {
  if (!Enabled()) {
    return;
  }
  std::string path = OutputPath();
  std::map<std::string, double> values = Load(path);
  for (const auto& [k, v] : entries) {
    values[k] = v;
    std::printf("BENCH_perf %-32s %.6g\n", k.c_str(), v);
  }
  Write(path, values);
}

}  // namespace benchjson
}  // namespace capsys

#endif  // BENCH_PERF_JSON_H_
