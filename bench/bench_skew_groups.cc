// Skew study (paper §5.2 "Addressing data skew" + technical-report experiment): under data
// skew, tasks of one operator have unequal resource demands. A partitioner can organize the
// tasks into *placement groups* of equal demand, which CAPS then explores as individual
// outer layers.
//
// We model skew on Q1-sliding's window operator: 2 "hot" tasks carry 3x the per-task load of
// the 6 "cold" tasks. Three placements are compared on the skewed workload:
//   - CAPS + groups: search over the group-split graph (skew-aware demands)
//   - CAPS unaware:  search over uniform demands, plan transferred to the skewed workload
//   - Flink evenly:  count-balancing baseline
//
// Paper: "CAPSys already improves query performance in the presence of skew compared to the
// baseline strategies" — and placement groups recover the rest.
#include <cstdio>

#include "src/baselines/flink_strategies.h"
#include "src/caps/cost_model.h"
#include "src/caps/placement_groups.h"
#include "src/caps/search.h"
#include "src/common/logging.h"
#include "src/dataflow/rates.h"
#include "src/nexmark/queries.h"
#include "src/simulator/fluid_simulator.h"

namespace capsys {
namespace {

int Main() {
  InitLoggingFromEnv();
  QuerySpec base = BuildQ1Sliding();
  Cluster cluster(4, WorkerSpec::R5dXlarge(4));

  // Skewed ground truth: window tasks split into 2 hot (3x demand) + 6 cold tasks. Total
  // demand is kept equal to the uniform case: 2*3x + 6*0.333x ~ 8x.
  std::vector<GroupSpec> groups = {{2, 3.0}, {6, 1.0 / 3.0}};
  LogicalGraph skewed = SplitIntoPlacementGroups(base.graph, /*op=*/2, groups);
  PhysicalGraph physical = PhysicalGraph::Expand(skewed);
  auto skew_rates = PropagateRates(skewed, base.source_rates);
  CostModel skew_model(physical, cluster, TaskDemands(physical, skew_rates));

  std::printf("=== Skew study: Q1-sliding with 2 hot (3x) + 6 cold window tasks ===\n\n");

  auto evaluate = [&](const char* name, const Placement& plan) {
    FluidSimulator sim(physical, cluster, plan);
    for (const auto& [op, r] : base.source_rates) {
      sim.SetSourceRate(op, r);
    }
    QuerySummary s = sim.RunMeasured(60, 120);
    std::printf("%-16s throughput %-8.0f bp %5.1f%%  (hot-group coloc degree %d)\n", name,
                s.throughput, s.backpressure * 100.0,
                plan.ColocationDegree(physical, cluster, 2));
  };

  // (1) CAPS with placement groups: skew-aware search.
  {
    SearchResult r = CapsSearch(skew_model, SearchOptions{}).Run();
    evaluate("caps+groups", r.best.placement);
  }

  // (2) CAPS unaware of skew: search over the same graph structure but uniform demands
  // (every window task assumed equal), plan executed on the skewed workload.
  {
    auto uniform_rates = skew_rates;
    std::vector<ResourceVector> uniform = TaskDemands(physical, uniform_rates);
    // Average the two window groups' demands (ops 2 and 3 in the split graph).
    ResourceVector mean;
    int count = 0;
    for (OperatorId o : {2, 3}) {
      for (TaskId t : physical.TasksOf(o)) {
        mean += uniform[static_cast<size_t>(t)];
        ++count;
      }
    }
    mean *= 1.0 / count;
    for (OperatorId o : {2, 3}) {
      for (TaskId t : physical.TasksOf(o)) {
        uniform[static_cast<size_t>(t)] = mean;
      }
    }
    CostModel uniform_model(physical, cluster, uniform);
    SearchResult r = CapsSearch(uniform_model, SearchOptions{}).Run();
    evaluate("caps-unaware", r.best.placement);
  }

  // (3) Flink evenly baseline (median-quality seed).
  {
    Rng rng(4);
    evaluate("evenly", FlinkEvenlyPlacement(physical, cluster, rng));
  }
  std::printf("\nexpected: caps+groups isolates the hot tasks and reaches the target;\n"
              "caps-unaware still beats the count-balancing baseline (paper §5.2).\n");
  return 0;
}

}  // namespace
}  // namespace capsys

int main() { return capsys::Main(); }
